"""Unit tests for the TokenFlow scheduler (two-step algorithm, §4)."""

import pytest

from repro.core.scheduler import TokenFlowParams, TokenFlowScheduler
from repro.core.working_set import WorkingSetParams
from repro.serving.config import ServingConfig
from repro.serving.server import ServingSystem
from repro.workload.request import Request, RequestState


def burst(n, prompt=64, output=64, rate=10.0, arrival=0.0):
    return [
        Request(req_id=i, arrival_time=arrival, prompt_len=prompt,
                output_len=output, rate=rate)
        for i in range(n)
    ]


def make_system(params=None, mem_frac=0.002, max_batch=4):
    """Tiny H200 slice: a handful of requests saturate it."""
    config = ServingConfig(
        hardware="h200", model="llama3-8b", mem_frac=mem_frac, max_batch=max_batch
    )
    return ServingSystem(config, TokenFlowScheduler(params))


class TestParams:
    def test_defaults_valid(self):
        params = TokenFlowParams()
        assert params.tick_interval == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenFlowParams(tick_interval=0.0)
        with pytest.raises(ValueError):
            TokenFlowParams(critical_buffer_s=-1.0)
        with pytest.raises(ValueError):
            TokenFlowParams(max_loads_per_tick=0)
        with pytest.raises(ValueError):
            TokenFlowParams(admission_watermark_frac=1.0)


class TestStressGating:
    def test_idle_system_not_stressed(self):
        system = make_system()
        scheduler = system.scheduler
        assert not scheduler._is_stressed(system.view())

    def test_waiting_requests_stress(self):
        system = make_system()
        system.submit(burst(2))
        system.run(until=0.01)
        # At least one request still waiting or prefilling right after arrival.
        view = system.view()
        if view.waiting or view.prefill_queue:
            assert system.scheduler._is_stressed(view)

    def test_oversized_running_set_stresses(self):
        system = make_system(max_batch=2)
        system.submit(burst(4, output=512))
        system.run(until=3.0)
        view = system.view()
        if len(view.running) > view.max_batch:
            assert system.scheduler._is_stressed(view)


class TestSchedulability:
    def test_feasible_demand_schedulable(self):
        system = make_system()
        system.submit(burst(2, rate=1.0))
        system.run(until=1.0)
        assert system.scheduler._is_schedulable(system.view())

    def test_infeasible_demand_triggers_fallback(self):
        system = make_system(max_batch=8)
        # Absurd per-request rates and more requests than memory fits:
        # the system stays stressed and demand far exceeds Γ.
        system.submit(burst(16, rate=100000.0, prompt=512, output=256))
        system.run(until=5.0)
        assert system.scheduler.fallback_ticks > 0

    def test_fallback_decision_never_preempts(self):
        system = make_system(max_batch=8)
        system.submit(burst(8, rate=100000.0, output=256))
        system.run(until=2.0)
        decision = system.scheduler._fcfs_fallback(system.view())
        assert decision.preempt == []


class TestEndToEndScheduling:
    def test_burst_completes_with_preemptions(self):
        system = make_system(max_batch=4)
        system.submit(burst(12, output=256))
        system.run(until=10_000.0)
        assert system.unfinished == 0
        report = system.report()
        assert report.preemptions > 0
        assert report.n_finished == 12

    def test_all_requests_get_first_token(self):
        system = make_system(max_batch=4)
        system.submit(burst(8, output=128))
        system.run(until=10_000.0)
        report = system.report()
        assert all(m.ttft is not None for m in report.per_request)

    def test_working_set_observes_contexts(self):
        system = make_system()
        system.submit(burst(4, output=64))
        system.run(until=10_000.0)
        policy = system.scheduler._working_set
        assert policy is not None
        assert policy.beta() != WorkingSetParams().initial_beta_tokens

    def test_scheduling_passes_counted(self):
        system = make_system()
        system.submit(burst(6, output=256))
        system.run(until=10_000.0)
        assert system.scheduler.scheduling_passes > 0

    def test_swap_latency_observation_updates(self):
        scheduler = TokenFlowScheduler()
        before = scheduler._tau_evict
        scheduler.observe_swap_latency(1.0, 0.0)
        assert scheduler._tau_evict > before

    def test_scheduling_cost_matches_params(self):
        params = TokenFlowParams(scheduling_cost_s=0.001)
        assert TokenFlowScheduler(params).scheduling_cost_s() == 0.001


class TestOOMVictims:
    def test_victims_are_fattest_buffers(self):
        system = make_system(max_batch=4)
        system.submit(burst(6, output=512))
        system.run(until=6.0)
        view = system.view()
        if len(view.running) >= 2:
            victims = system.scheduler.select_oom_victims(view, blocks_needed=1)
            assert victims
            slack = [
                view.tracker.buffer_seconds(r.req_id, view.now) for r in view.running
            ]
            chosen = view.tracker.buffer_seconds(victims[0].req_id, view.now)
            assert chosen == pytest.approx(max(slack))


class TestTimeSlicedGating:
    def test_unstressed_ticks_do_no_work(self):
        """§4.2.1: scheduling effort scales with demand — a light load
        leaves most ticks inactive."""
        system = make_system(mem_frac=0.05, max_batch=8)
        # Two small requests: never stressed after initial admission.
        system.submit(burst(2, output=512, rate=5.0))
        system.run(until=10_000.0)
        scheduler = system.scheduler
        assert scheduler.scheduling_passes > 0
        assert scheduler.active_passes < scheduler.scheduling_passes / 2

    def test_stressed_burst_activates_most_ticks(self):
        system = make_system(max_batch=4)
        system.submit(burst(16, prompt=256, output=256))
        system.run(until=10_000.0)
        scheduler = system.scheduler
        assert scheduler.active_passes > 0
