"""Serving-loop edge cases and failure injection.

Covers the awkward corners a production serving system must survive:
single-token outputs, prompts larger than the whole KV pool fraction,
extreme rates, arrival droughts, host-pool exhaustion, and pathological
parameter settings.
"""

import pytest

from repro.baselines import SGLangScheduler
from repro.core.scheduler import TokenFlowParams, TokenFlowScheduler
from repro.memory.kv_manager import KVManagerConfig
from repro.serving.config import ServingConfig
from repro.serving.server import ServingSystem
from repro.workload.request import Request


def make_system(scheduler=None, mem_frac=0.01, max_batch=8, kv=None):
    config = ServingConfig(
        hardware="h200", model="llama3-8b", mem_frac=mem_frac,
        max_batch=max_batch, kv=kv or KVManagerConfig(),
    )
    return ServingSystem(config, scheduler or TokenFlowScheduler())


class TestDegenerateRequests:
    def test_single_token_output(self):
        """Output of one token: the prefill's token finishes the request."""
        system = make_system()
        system.submit([Request(req_id=0, arrival_time=0.0, prompt_len=64,
                               output_len=1, rate=10.0)])
        system.run(until=100.0)
        assert system.unfinished == 0
        assert system.tracker.get(0).request.generated == 1

    def test_tiny_prompt(self):
        system = make_system()
        system.submit([Request(req_id=0, arrival_time=0.0, prompt_len=1,
                               output_len=4, rate=10.0)])
        system.run(until=100.0)
        assert system.unfinished == 0

    def test_very_slow_reader(self):
        """0.1 tok/s reader: the run still terminates; generation is
        not throttled by consumption."""
        system = make_system()
        system.submit([Request(req_id=0, arrival_time=0.0, prompt_len=32,
                               output_len=32, rate=0.1)])
        system.run(until=10_000.0)
        assert system.unfinished == 0

    def test_very_fast_reader(self):
        """1000 tok/s reader outpaces generation: stalls accrue but the
        request completes."""
        system = make_system()
        system.submit([Request(req_id=0, arrival_time=0.0, prompt_len=32,
                               output_len=64, rate=1000.0)])
        system.run(until=10_000.0)
        entry = system.tracker.get(0)
        assert entry.request.is_finished
        assert entry.buffer.stall_time >= 0.0

    def test_prompt_larger_than_pool_blocks_forever(self):
        """A prompt that can never fit stays queued; others proceed."""
        system = make_system(mem_frac=0.001, scheduler=SGLangScheduler())
        pool_tokens = system.kv.gpu_pool.capacity * system.kv.gpu_pool.block_size
        giant = Request(req_id=0, arrival_time=0.0,
                        prompt_len=pool_tokens + 1000, output_len=4, rate=10.0)
        system.submit([giant])
        system.run(until=50.0)
        assert system.unfinished == 1  # honestly stuck, not crashed
        assert giant.ttft is None


class TestArrivalPatterns:
    def test_long_idle_gap_between_arrivals(self):
        system = make_system()
        system.submit([
            Request(req_id=0, arrival_time=0.0, prompt_len=64,
                    output_len=16, rate=10.0),
            Request(req_id=1, arrival_time=500.0, prompt_len=64,
                    output_len=16, rate=10.0),
        ])
        system.run(until=10_000.0)
        assert system.unfinished == 0
        assert system.tracker.get(1).request.ttft < 1.0  # served on arrival

    def test_empty_workload(self):
        system = make_system()
        system.run(until=10.0)
        assert system.unfinished == 0
        assert system.makespan() == 0.0

    def test_incremental_submission(self):
        system = make_system()
        system.submit([Request(req_id=0, arrival_time=0.0, prompt_len=64,
                               output_len=16, rate=10.0)])
        system.run(until=5.0)
        system.submit([Request(req_id=1, arrival_time=6.0, prompt_len=64,
                               output_len=16, rate=10.0)])
        system.run(until=10_000.0)
        assert system.unfinished == 0


class TestHostPoolExhaustion:
    def test_tiny_cpu_pool_degrades_to_recompute(self):
        """When the host pool can't take offloads, preemption falls
        back to dropping KV and recomputing — no deadlock."""
        kv = KVManagerConfig(cpu_capacity_blocks=4)
        system = make_system(mem_frac=0.002, max_batch=4, kv=kv)
        system.submit([
            Request(req_id=i, arrival_time=0.0, prompt_len=256,
                    output_len=128, rate=10.0)
            for i in range(8)
        ])
        system.run(until=10_000.0)
        assert system.unfinished == 0
        # Either it never needed to offload, or drops happened.
        assert system.kv.stats["recompute_drops"] >= 0


class TestPathologicalParameters:
    def test_huge_tick_interval(self):
        params = TokenFlowParams(tick_interval=30.0)
        system = make_system(scheduler=TokenFlowScheduler(params))
        system.submit([
            Request(req_id=i, arrival_time=0.0, prompt_len=128,
                    output_len=64, rate=10.0)
            for i in range(6)
        ])
        system.run(until=10_000.0)
        assert system.unfinished == 0

    def test_max_batch_one(self):
        system = make_system(max_batch=1)
        system.submit([
            Request(req_id=i, arrival_time=0.0, prompt_len=64,
                    output_len=32, rate=5.0)
            for i in range(4)
        ])
        system.run(until=10_000.0)
        assert system.unfinished == 0

    def test_zero_gamma_priority(self):
        from repro.core.utility import UtilityParams
        params = TokenFlowParams(utility=UtilityParams(gamma=0.0))
        system = make_system(scheduler=TokenFlowScheduler(params))
        system.submit([
            Request(req_id=i, arrival_time=0.0, prompt_len=128,
                    output_len=64, rate=10.0)
            for i in range(6)
        ])
        system.run(until=10_000.0)
        assert system.unfinished == 0


class TestDeterminism:
    def test_identical_runs_identical_metrics(self):
        def run_once():
            system = make_system(mem_frac=0.005, max_batch=4)
            system.submit([
                Request(req_id=i, arrival_time=0.1 * i, prompt_len=128,
                        output_len=96, rate=10.0)
                for i in range(10)
            ])
            system.run(until=10_000.0)
            report = system.report()
            return (
                report.throughput, report.ttft_mean, report.ttft_p99,
                report.effective_throughput, report.preemptions,
                report.stall_total,
            )

        assert run_once() == run_once()
