"""Unit tests for the PCIe link model."""

import pytest

from repro.memory.pcie import PCIeDirection, PCIeLink


@pytest.fixture
def direction() -> PCIeDirection:
    return PCIeDirection(bandwidth_bytes_per_s=10e9, name="d2h")


class TestSubmit:
    def test_idle_transfer_timing(self, direction):
        job = direction.submit(nbytes=10e9, now=1.0)
        assert job.start == 1.0
        assert job.end == pytest.approx(2.0)
        assert job.duration == pytest.approx(1.0)

    def test_fifo_queueing(self, direction):
        direction.submit(10e9, now=0.0)          # busy until 1.0
        job = direction.submit(5e9, now=0.5)
        assert job.start == pytest.approx(1.0)   # waits for first
        assert job.end == pytest.approx(1.5)

    def test_earliest_start_respected(self, direction):
        job = direction.submit(1e9, now=0.0, earliest_start=3.0)
        assert job.start == 3.0

    def test_zero_bytes_instant(self, direction):
        job = direction.submit(0.0, now=2.0)
        assert job.start == job.end == 2.0

    def test_negative_bytes_rejected(self, direction):
        with pytest.raises(ValueError):
            direction.submit(-1.0, now=0.0)

    def test_stats_accumulate(self, direction):
        direction.submit(4e9, now=0.0)
        direction.submit(6e9, now=0.0)
        assert direction.bytes_moved == pytest.approx(10e9)
        assert direction.busy_time == pytest.approx(1.0)


class TestQueueing:
    def test_queueing_delay(self, direction):
        direction.submit(10e9, now=0.0)
        assert direction.queueing_delay(0.5) == pytest.approx(0.5)
        assert direction.queueing_delay(2.0) == 0.0

    def test_idle_bytes_within(self, direction):
        assert direction.idle_bytes_within(0.0, 1.0) == pytest.approx(10e9)
        direction.submit(10e9, now=0.0)  # busy until 1.0
        assert direction.idle_bytes_within(0.0, 1.0) == 0.0
        assert direction.idle_bytes_within(0.0, 1.5) == pytest.approx(5e9)

    def test_occupy_bulk_busy_horizon_bit_identical(self):
        # busy_until is live simulation state: the bulk form must
        # replay the exact per-transfer additions of n occupy() calls
        # (byte/busy-time totals are reporting-only and may differ in
        # summation order).
        sequential = PCIeDirection(bandwidth_bytes_per_s=64e9)
        bulk = PCIeDirection(bandwidth_bytes_per_s=64e9)
        nbytes = 12_288.0
        for _ in range(37):
            sequential.occupy(nbytes, 2.5)
        bulk.occupy_bulk(37, nbytes, 2.5)
        assert bulk.busy_until() == sequential.busy_until()
        assert bulk.bytes_moved == pytest.approx(
            sequential.bytes_moved, rel=1e-12
        )
        assert bulk.busy_time == pytest.approx(
            sequential.busy_time, rel=1e-12
        )

    def test_occupy_bulk_noop_on_empty(self, direction):
        before = direction.busy_until()
        direction.occupy_bulk(0, 1024.0, 5.0)
        direction.occupy_bulk(3, 0.0, 5.0)
        assert direction.busy_until() == before
        assert direction.bytes_moved == 0.0

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            PCIeDirection(0.0)


class TestLink:
    def test_directions_independent(self):
        link = PCIeLink(10e9)
        link.d2h.submit(10e9, now=0.0)
        job = link.h2d.submit(10e9, now=0.0)
        assert job.start == 0.0  # full duplex: no interference

    def test_utilisation(self):
        link = PCIeLink(10e9)
        link.d2h.submit(5e9, now=0.0)
        util = link.utilisation(elapsed=1.0)
        assert util["d2h"] == pytest.approx(0.5)
        assert util["h2d"] == 0.0

    def test_utilisation_zero_elapsed(self):
        link = PCIeLink(10e9)
        assert link.utilisation(0.0) == {"h2d": 0.0, "d2h": 0.0}
