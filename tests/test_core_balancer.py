"""Unit tests for buffer balancing (greedy + local search)."""

import pytest

from repro.core.balancer import BalanceResult, BufferBalancer, Candidate


def cand(req_id, priority, blocks=10, resident=False, pinned=False) -> Candidate:
    return Candidate(
        req_id=req_id, priority=priority, blocks=blocks,
        resident=resident, pinned=pinned,
    )


@pytest.fixture
def balancer() -> BufferBalancer:
    return BufferBalancer()


class TestGreedy:
    def test_selects_highest_priority(self, balancer):
        result = balancer.balance(
            [cand(1, 1.0), cand(2, 3.0), cand(3, 2.0)],
            block_budget=20, max_batch=2,
        )
        assert set(result.selected) == {2, 3}

    def test_respects_block_budget(self, balancer):
        result = balancer.balance(
            [cand(1, 3.0, blocks=15), cand(2, 2.0, blocks=10), cand(3, 1.0, blocks=5)],
            block_budget=20, max_batch=3,
        )
        assert 1 in result.selected
        assert result.blocks_used <= 20

    def test_respects_max_batch(self, balancer):
        result = balancer.balance(
            [cand(i, float(i)) for i in range(10)],
            block_budget=1000, max_batch=3,
        )
        assert len(result.selected) == 3

    def test_diff_outputs(self, balancer):
        result = balancer.balance(
            [
                cand(1, 0.1, resident=True),   # fat buffer, low priority
                cand(2, 5.0, resident=False),  # starved, offloaded
            ],
            block_budget=10, max_batch=1,
        )
        assert result.to_preempt == [1]
        assert result.to_resume == [2]

    def test_empty_candidates(self, balancer):
        result = balancer.balance([], block_budget=10, max_batch=4)
        assert result.selected == []

    def test_duplicate_ids_rejected(self, balancer):
        with pytest.raises(ValueError):
            balancer.balance([cand(1, 1.0), cand(1, 2.0)], 10, 2)

    def test_invalid_budgets(self, balancer):
        with pytest.raises(ValueError):
            balancer.balance([cand(1, 1.0)], block_budget=-1, max_batch=1)
        with pytest.raises(ValueError):
            balancer.balance([cand(1, 1.0)], block_budget=10, max_batch=0)


class TestPinning:
    def test_pinned_residents_always_selected(self, balancer):
        result = balancer.balance(
            [
                cand(1, 0.0, resident=True, pinned=True),
                cand(2, 9.0, resident=False),
            ],
            block_budget=10, max_batch=1,
        )
        assert result.selected == [1]
        assert result.to_preempt == []

    def test_pinned_never_preempted_even_outside_selection(self, balancer):
        # Three pinned residents, one slot: the overflow stays resident.
        result = balancer.balance(
            [
                cand(1, 0.1, resident=True, pinned=True),
                cand(2, 0.2, resident=True, pinned=True),
                cand(3, 0.3, resident=True, pinned=True),
            ],
            block_budget=100, max_batch=1,
        )
        assert result.to_preempt == []

    def test_pinned_requires_resident(self):
        with pytest.raises(ValueError):
            cand(1, 1.0, resident=False, pinned=True)


class TestLocalSearch:
    def test_stable_when_no_improving_swap(self):
        """Greedy's budget-feasible pick is locally optimal here: a
        swap toward either skipped item would lower total utility."""
        balancer = BufferBalancer(local_search_passes=3)
        result = balancer.balance(
            [cand(1, 5.0, blocks=20), cand(2, 4.9, blocks=10), cand(3, 4.8, blocks=10)],
            block_budget=20, max_batch=3,
        )
        assert set(result.selected) == {1}

    def test_improving_swap_applied_under_batch_cap(self):
        """With the batch cap (not the budget) binding, greedy capped at
        two picks can strand a higher-priority candidate behind a
        pinned one; the adjacent swap promotes it."""
        balancer = BufferBalancer(local_search_passes=2)
        # Pinned item sorts first regardless of priority; greedy then
        # takes candidate 2 (4.0) and hits max_batch before 3 (4.5 is
        # adjacent to 2 after sorting: order = pinned, 3, 2).
        result = balancer.balance(
            [
                cand(1, 0.5, blocks=5, resident=True, pinned=True),
                cand(2, 4.0, blocks=5),
                cand(3, 4.5, blocks=5),
            ],
            block_budget=100, max_batch=2,
        )
        # Sorting puts 3 before 2, so greedy already prefers 3; either
        # way the final selection must contain the higher-priority 3.
        assert 3 in result.selected
        assert len(result.selected) == 2

    def test_zero_passes_disables_search(self):
        balancer = BufferBalancer(local_search_passes=0)
        result = balancer.balance(
            [cand(1, 5.0, blocks=20), cand(2, 4.9, blocks=10), cand(3, 4.8, blocks=10)],
            block_budget=20, max_batch=3,
        )
        assert 1 in result.selected  # greedy keeps the big item

    def test_negative_passes_rejected(self):
        with pytest.raises(ValueError):
            BufferBalancer(local_search_passes=-1)


class TestResult:
    def test_total_priority_sums_selected(self, balancer):
        result = balancer.balance(
            [cand(1, 2.0), cand(2, 3.0)], block_budget=100, max_batch=2
        )
        assert result.total_priority == pytest.approx(5.0)

    def test_result_is_dataclass(self):
        result = BalanceResult()
        assert result.selected == [] and result.to_preempt == []
