"""Unit tests for the request lifecycle state machine."""

import pytest

from repro.workload.request import InvalidTransition, Request, RequestState
from tests.conftest import make_request


class TestValidation:
    def test_valid_request(self):
        request = make_request()
        assert request.state is RequestState.QUEUED

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"prompt": 0},
            {"output": 0},
            {"rate": 0.0},
            {"arrival": -1.0},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            make_request(**kwargs)


class TestTransitions:
    def test_normal_lifecycle(self):
        request = make_request()
        for state in (
            RequestState.PREFILLING,
            RequestState.RUNNING,
            RequestState.FINISHED,
        ):
            request.transition(state)
        assert request.is_finished

    def test_preemption_cycle_via_load(self):
        request = make_request()
        request.transition(RequestState.PREFILLING)
        request.transition(RequestState.RUNNING)
        request.transition(RequestState.PREEMPTED)
        request.transition(RequestState.LOADING)
        request.transition(RequestState.RUNNING)
        assert request.state is RequestState.RUNNING

    def test_preemption_cycle_via_recompute(self):
        request = make_request()
        request.transition(RequestState.PREFILLING)
        request.transition(RequestState.RUNNING)
        request.transition(RequestState.PREEMPTED)
        request.transition(RequestState.PREFILLING)
        request.transition(RequestState.RUNNING)
        assert request.state is RequestState.RUNNING

    def test_illegal_transition_raises(self):
        request = make_request()
        with pytest.raises(InvalidTransition):
            request.transition(RequestState.RUNNING)  # must prefill first

    def test_finished_is_terminal(self):
        request = make_request()
        request.transition(RequestState.PREFILLING)
        request.transition(RequestState.RUNNING)
        request.transition(RequestState.FINISHED)
        with pytest.raises(InvalidTransition):
            request.transition(RequestState.RUNNING)


class TestTokens:
    def test_record_token_sets_ttft(self):
        request = make_request(arrival=1.0)
        request.record_token(3.5)
        assert request.ttft == pytest.approx(2.5)
        assert request.first_token_time == 3.5
        assert request.generated == 1

    def test_context_len_tracks_generation(self):
        request = make_request(prompt=64, output=4)
        assert request.context_len == 64
        request.record_token(1.0)
        assert request.context_len == 65
        assert request.remaining_output == 3

    def test_over_generation_rejected(self):
        request = make_request(output=1)
        request.record_token(1.0)
        with pytest.raises(RuntimeError):
            request.record_token(2.0)

    def test_decreasing_timestamps_rejected(self):
        request = make_request(output=4)
        request.record_token(1.0)
        with pytest.raises(ValueError):
            request.record_token(0.5)

    def test_inter_token_latencies(self):
        request = make_request(output=8)
        for t in (0.0, 0.1, 0.3, 0.6):
            request.record_token(t)
        assert request.inter_token_latencies() == pytest.approx([0.1, 0.2, 0.3])

    def test_repr_is_informative(self):
        request = make_request(req_id=7)
        assert "id=7" in repr(request)
