"""Unit tests for the utility/priority function (Eq. 3)."""

import pytest

from repro.core.utility import (
    UtilityParams,
    eq3_utility,
    request_priority,
    stall_risk,
    token_value,
)


@pytest.fixture
def params() -> UtilityParams:
    return UtilityParams(gamma=4.0, stall_scale=2.0)


class TestStallRisk:
    def test_empty_buffer_max_risk(self, params):
        assert stall_risk(0.0, params) == 1.0

    def test_decays_with_buffer(self, params):
        assert stall_risk(2.0, params) == pytest.approx(0.3679, rel=1e-3)
        assert stall_risk(10.0, params) < stall_risk(1.0, params)

    def test_negative_buffer_rejected(self, params):
        with pytest.raises(ValueError):
            stall_risk(-0.1, params)


class TestTokenValue:
    def test_low_occupancy_full_value(self, params):
        assert token_value(0, 100, params) == 1.0

    def test_overbuffered_zero_value(self, params):
        assert token_value(30, 100, params) == 0.0

    def test_decay_region(self, params):
        assert 0.0 < token_value(15, 100, params) < 1.0


class TestPriority:
    def test_starving_request_outranks_buffered(self, params):
        starving = request_priority(0, 0.0, 100, 0.5, params)
        buffered = request_priority(50, 5.0, 100, 0.5, params)
        assert starving > buffered

    def test_overhead_reduces_priority(self, params):
        cheap = request_priority(0, 1.0, 100, effective_time=0.5, params=params)
        costly = request_priority(0, 1.0, 100, effective_time=0.1, params=params)
        assert cheap > costly

    def test_negative_effective_time_clamped(self, params):
        priority = request_priority(0, 1.0, 100, effective_time=-1.0, params=params)
        assert priority == pytest.approx(params.gamma * stall_risk(1.0, params))

    def test_gamma_scales_urgency(self):
        gentle = UtilityParams(gamma=1.0)
        urgent = UtilityParams(gamma=10.0)
        p_gentle = request_priority(0, 0.0, 100, 0.5, gentle)
        p_urgent = request_priority(0, 0.0, 100, 0.5, urgent)
        assert p_urgent > p_gentle


class TestEq3:
    def test_literal_form(self, params):
        value = eq3_utility(1.0, 0.5, 2.0, params)
        assert value == pytest.approx(0.5 - 4.0 * stall_risk(2.0, params))


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            UtilityParams(gamma=-1.0)
        with pytest.raises(ValueError):
            UtilityParams(stall_scale=0.0)
        with pytest.raises(ValueError):
            UtilityParams(tau1_frac=0.3, tau2_frac=0.2)
