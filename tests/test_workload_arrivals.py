"""Unit tests for arrival processes."""

import numpy as np
import pytest

from repro.workload.arrivals import (
    burst_arrivals,
    gamma_arrivals,
    poisson_arrivals,
    staggered_burst_arrivals,
)


class TestBurst:
    def test_simultaneous_burst(self):
        times = burst_arrivals(10, start=2.0)
        assert len(times) == 10
        assert np.all(times == 2.0)

    def test_jittered_burst_within_window(self):
        rng = np.random.default_rng(0)
        times = burst_arrivals(50, start=1.0, spread=0.5, rng=rng)
        assert len(times) == 50
        assert times.min() >= 1.0
        assert times.max() <= 1.5
        assert np.all(np.diff(times) >= 0)

    def test_spread_requires_rng(self):
        with pytest.raises(ValueError):
            burst_arrivals(5, spread=0.5)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            burst_arrivals(0)
        with pytest.raises(ValueError):
            burst_arrivals(5, spread=-1.0)


class TestPoisson:
    def test_rate_matches(self):
        rng = np.random.default_rng(1)
        times = poisson_arrivals(rate=10.0, duration=200.0, rng=rng)
        assert abs(len(times) / 200.0 - 10.0) < 1.0

    def test_within_horizon(self):
        rng = np.random.default_rng(2)
        times = poisson_arrivals(rate=5.0, duration=10.0, rng=rng, start=100.0)
        assert np.all(times >= 100.0)
        assert np.all(times < 110.0)

    def test_sorted(self):
        rng = np.random.default_rng(3)
        times = poisson_arrivals(rate=5.0, duration=50.0, rng=rng)
        assert np.all(np.diff(times) >= 0)

    def test_exponential_interarrivals(self):
        rng = np.random.default_rng(4)
        times = poisson_arrivals(rate=10.0, duration=500.0, rng=rng)
        gaps = np.diff(times)
        # Exponential: CV ~= 1.
        assert abs(gaps.std() / gaps.mean() - 1.0) < 0.1

    def test_invalid_params(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 10.0, rng)
        with pytest.raises(ValueError):
            poisson_arrivals(1.0, 0.0, rng)


class TestGamma:
    def test_burstier_than_poisson(self):
        rng = np.random.default_rng(5)
        times = gamma_arrivals(rate=10.0, cv=2.5, duration=500.0, rng=rng)
        gaps = np.diff(times)
        assert gaps.std() / gaps.mean() > 1.5

    def test_rate_preserved(self):
        rng = np.random.default_rng(6)
        times = gamma_arrivals(rate=8.0, cv=2.0, duration=400.0, rng=rng)
        assert abs(len(times) / 400.0 - 8.0) < 1.0

    def test_cv_one_is_poisson_like(self):
        rng = np.random.default_rng(7)
        times = gamma_arrivals(rate=10.0, cv=1.0, duration=400.0, rng=rng)
        gaps = np.diff(times)
        assert abs(gaps.std() / gaps.mean() - 1.0) < 0.15

    def test_invalid_params(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            gamma_arrivals(0.0, 1.0, 10.0, rng)


class TestStaggered:
    def test_burst_count(self):
        rng = np.random.default_rng(8)
        times = staggered_burst_arrivals(10, n_bursts=3, interval=60.0, rng=rng)
        assert len(times) == 30

    def test_bursts_cluster_around_epochs(self):
        rng = np.random.default_rng(9)
        times = staggered_burst_arrivals(20, n_bursts=2, interval=100.0,
                                         rng=rng, spread=0.5)
        first = times[times < 50]
        second = times[times >= 50]
        assert len(first) == 20 and len(second) == 20
        assert second.min() >= 100.0

    def test_invalid_params(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            staggered_burst_arrivals(10, 0, 60.0, rng)
        with pytest.raises(ValueError):
            staggered_burst_arrivals(10, 2, 0.0, rng)
