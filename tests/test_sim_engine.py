"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import ScopedEngine, SimEngine


class TestScheduling:
    def test_call_at_runs_at_time(self, engine):
        times = []
        engine.call_at(2.5, lambda: times.append(engine.now()))
        engine.run()
        assert times == [2.5]

    def test_call_after_offsets_from_now(self, engine):
        times = []
        engine.call_at(1.0, lambda: engine.call_after(0.5, lambda: times.append(engine.now())))
        engine.run()
        assert times == [1.5]

    def test_call_at_past_raises(self, engine):
        engine.call_at(1.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.call_at(0.5, lambda: None)

    def test_negative_delay_raises(self, engine):
        with pytest.raises(ValueError):
            engine.call_after(-0.1, lambda: None)

    def test_events_execute_in_order(self, engine):
        order = []
        engine.call_at(3.0, lambda: order.append("c"))
        engine.call_at(1.0, lambda: order.append("a"))
        engine.call_at(2.0, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_cancelled_event_does_not_fire(self, engine):
        fired = []
        event = engine.call_at(1.0, lambda: fired.append(1))
        event.cancel()
        engine.run()
        assert fired == []


class TestRun:
    def test_run_until_stops_before_later_events(self, engine):
        fired = []
        engine.call_at(1.0, lambda: fired.append(1))
        engine.call_at(10.0, lambda: fired.append(10))
        end = engine.run(until=5.0)
        assert fired == [1]
        assert end == 5.0
        assert engine.pending() == 1

    def test_run_until_advances_clock_to_horizon(self, engine):
        end = engine.run(until=7.0)
        assert end == 7.0
        assert engine.now() == 7.0

    def test_run_resumes_after_until(self, engine):
        fired = []
        engine.call_at(10.0, lambda: fired.append(10))
        engine.run(until=5.0)
        engine.run()
        assert fired == [10]

    def test_max_events_bounds_execution(self, engine):
        for idx in range(10):
            engine.call_at(float(idx), lambda: None)
        engine.run(max_events=3)
        assert engine.events_processed == 3

    def test_stop_exits_loop(self, engine):
        fired = []
        engine.call_at(1.0, lambda: (fired.append(1), engine.stop()))
        engine.call_at(2.0, lambda: fired.append(2))
        engine.run()
        assert fired == [1]

    def test_reentrant_run_rejected(self, engine):
        def recurse():
            engine.run()

        engine.call_at(1.0, recurse)
        with pytest.raises(RuntimeError):
            engine.run()

    def test_events_processed_counter(self, engine):
        engine.call_at(1.0, lambda: None)
        engine.call_at(2.0, lambda: None)
        engine.run()
        assert engine.events_processed == 2

    def test_event_can_schedule_more_events(self, engine):
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                engine.call_after(1.0, lambda: chain(depth + 1))

        engine.call_at(0.0, lambda: chain(0))
        engine.run()
        assert fired == [0, 1, 2, 3]
        assert engine.now() == 3.0


class TestRunBefore:
    """Edge cases of the conservative-window primitive (sharded plane)."""

    def test_drains_strictly_before_horizon(self, engine):
        fired = []
        engine.call_at(1.0, lambda: fired.append(1.0))
        engine.call_at(2.0, lambda: fired.append(2.0))
        engine.call_at(3.0, lambda: fired.append(3.0))
        engine.run_before(2.0)
        assert fired == [1.0]
        assert engine.now() == 2.0

    def test_tied_timestamps_at_horizon_stay_pending(self, engine):
        """Events AT the horizon instant are the next window's work:
        dispatch-time router reads happen before any same-instant
        instance event, so none of the ties may run."""
        fired = []
        for tag in ("a", "b", "c"):
            engine.call_at(2.0, lambda tag=tag: fired.append(tag))
        engine.run_before(2.0)
        assert fired == []
        assert engine.pending() == 3
        # The follow-up drain runs the ties in scheduling order.
        engine.run_before(2.5)
        assert fired == ["a", "b", "c"]

    def test_tied_timestamps_below_horizon_keep_order(self, engine):
        fired = []
        engine.call_at(1.0, lambda: fired.append("first"))
        engine.call_at(1.0, lambda: fired.append("second"))
        engine.call_at(1.0, lambda: fired.append("third"))
        engine.run_before(1.5)
        assert fired == ["first", "second", "third"]

    def test_empty_window_advances_clock_only(self, engine):
        engine.run_before(4.0)
        assert engine.now() == 4.0
        assert engine.events_processed == 0
        # A later horizon keeps advancing; an identical one is a no-op.
        engine.run_before(4.0)
        assert engine.now() == 4.0
        engine.run_before(7.0)
        assert engine.now() == 7.0

    def test_until_bounds_drained_events(self, engine):
        seen = []
        engine.call_at(1.0, lambda: seen.append(engine.run_until))
        engine.run_before(2.0, until=10.0)
        assert seen == [10.0]
        assert engine.run_until is None  # restored after the drain


class TestScopedEngine:
    def _scoped(self, horizon_holder):
        base = SimEngine()
        scoped = ScopedEngine(base, lambda: horizon_holder[0])
        return base, scoped

    def test_next_event_merges_external_horizon(self):
        horizon = [5.0]
        base, scoped = self._scoped(horizon)
        scoped.call_at(7.0, lambda: None)
        assert scoped.own_event_time() == 7.0
        assert scoped.next_event_time() == 5.0

    def test_horizon_extension_under_confirmed_placements(self):
        """Extending the dispatch ladder (confirmed placements landing
        later) moves the merged horizon but never the own-event view —
        trajectory snapshots stay valid across ladder growth."""
        horizon = [2.0]
        base, scoped = self._scoped(horizon)
        scoped.call_at(4.0, lambda: None)
        assert scoped.next_event_time() == 2.0
        horizon[0] = 3.0   # ladder extended past the old horizon
        assert scoped.next_event_time() == 3.0
        assert scoped.own_event_time() == 4.0
        horizon[0] = None  # ladder exhausted: own events take over
        assert scoped.next_event_time() == 4.0
        assert scoped.own_event_time() == 4.0

    def test_own_event_time_skips_dead_entries(self):
        horizon = [None]
        base, scoped = self._scoped(horizon)
        event = scoped.call_at(1.0, lambda: None)
        scoped.call_at(2.0, lambda: None)
        event.cancel()
        assert scoped.own_event_time() == 2.0
        base.run()
        assert scoped.own_event_time() is None

    def test_own_event_time_after_partial_drain(self):
        horizon = [None]
        base, scoped = self._scoped(horizon)
        scoped.call_at(1.0, lambda: None)
        scoped.call_at(3.0, lambda: None)
        base.run_before(2.0)
        assert scoped.own_event_time() == 3.0
