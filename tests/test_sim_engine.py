"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimEngine


class TestScheduling:
    def test_call_at_runs_at_time(self, engine):
        times = []
        engine.call_at(2.5, lambda: times.append(engine.now()))
        engine.run()
        assert times == [2.5]

    def test_call_after_offsets_from_now(self, engine):
        times = []
        engine.call_at(1.0, lambda: engine.call_after(0.5, lambda: times.append(engine.now())))
        engine.run()
        assert times == [1.5]

    def test_call_at_past_raises(self, engine):
        engine.call_at(1.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.call_at(0.5, lambda: None)

    def test_negative_delay_raises(self, engine):
        with pytest.raises(ValueError):
            engine.call_after(-0.1, lambda: None)

    def test_events_execute_in_order(self, engine):
        order = []
        engine.call_at(3.0, lambda: order.append("c"))
        engine.call_at(1.0, lambda: order.append("a"))
        engine.call_at(2.0, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_cancelled_event_does_not_fire(self, engine):
        fired = []
        event = engine.call_at(1.0, lambda: fired.append(1))
        event.cancel()
        engine.run()
        assert fired == []


class TestRun:
    def test_run_until_stops_before_later_events(self, engine):
        fired = []
        engine.call_at(1.0, lambda: fired.append(1))
        engine.call_at(10.0, lambda: fired.append(10))
        end = engine.run(until=5.0)
        assert fired == [1]
        assert end == 5.0
        assert engine.pending() == 1

    def test_run_until_advances_clock_to_horizon(self, engine):
        end = engine.run(until=7.0)
        assert end == 7.0
        assert engine.now() == 7.0

    def test_run_resumes_after_until(self, engine):
        fired = []
        engine.call_at(10.0, lambda: fired.append(10))
        engine.run(until=5.0)
        engine.run()
        assert fired == [10]

    def test_max_events_bounds_execution(self, engine):
        for idx in range(10):
            engine.call_at(float(idx), lambda: None)
        engine.run(max_events=3)
        assert engine.events_processed == 3

    def test_stop_exits_loop(self, engine):
        fired = []
        engine.call_at(1.0, lambda: (fired.append(1), engine.stop()))
        engine.call_at(2.0, lambda: fired.append(2))
        engine.run()
        assert fired == [1]

    def test_reentrant_run_rejected(self, engine):
        def recurse():
            engine.run()

        engine.call_at(1.0, recurse)
        with pytest.raises(RuntimeError):
            engine.run()

    def test_events_processed_counter(self, engine):
        engine.call_at(1.0, lambda: None)
        engine.call_at(2.0, lambda: None)
        engine.run()
        assert engine.events_processed == 2

    def test_event_can_schedule_more_events(self, engine):
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                engine.call_after(1.0, lambda: chain(depth + 1))

        engine.call_at(0.0, lambda: chain(0))
        engine.run()
        assert fired == [0, 1, 2, 3]
        assert engine.now() == 3.0
