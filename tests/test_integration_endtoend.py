"""Integration tests: the paper's headline comparisons must reproduce.

These run the full serving stack (scheduler + executor + KV manager +
client buffers) on a meaningful burst and assert the *directional*
results of the paper's evaluation:

* TokenFlow cuts mean and P99 TTFT versus SGLang under bursts;
* TokenFlow raises effective throughput;
* TokenFlow keeps raw throughput comparable to SGLang;
* Andes improves TTFT but degrades throughput;
* TokenFlow's QoS beats both baselines.
"""

import pytest

from repro.experiments.runner import run_comparison
from repro.sim.rng import RngStreams
from repro.workload.builder import RateMixture, WorkloadBuilder, WorkloadSpec
from repro.workload.lengths import NormalLengthSampler


@pytest.fixture(scope="module")
def burst_reports():
    """One shared heavy-burst comparison across the four systems."""
    spec = WorkloadSpec(
        arrival="burst",
        n_requests=120,
        burst_spread=0.25,
        lengths=NormalLengthSampler(),
        rates=RateMixture.fixed(10.0),
    )
    requests = WorkloadBuilder(spec, RngStreams(0)).build()
    return run_comparison(
        ("sglang", "sglang-chunked", "andes", "tokenflow"),
        requests,
        hardware="h200",
        model="llama3-8b",
        mem_frac=0.1,
        max_batch=48,
    )


class TestHeadlineClaims:
    def test_all_systems_complete(self, burst_reports):
        for report in burst_reports.values():
            assert report.n_finished == report.n_requests == 120

    def test_tokenflow_cuts_mean_ttft(self, burst_reports):
        assert (
            burst_reports["tokenflow"].ttft_mean
            < 0.5 * burst_reports["sglang"].ttft_mean
        )

    def test_tokenflow_cuts_p99_ttft(self, burst_reports):
        assert (
            burst_reports["tokenflow"].ttft_p99
            < 0.5 * burst_reports["sglang"].ttft_p99
        )

    def test_tokenflow_raises_effective_throughput(self, burst_reports):
        assert (
            burst_reports["tokenflow"].effective_throughput
            > 1.2 * burst_reports["sglang"].effective_throughput
        )

    def test_tokenflow_sustains_raw_throughput(self, burst_reports):
        """'without degrading overall token throughput' (abstract)."""
        assert (
            burst_reports["tokenflow"].throughput
            > 0.85 * burst_reports["sglang"].throughput
        )

    def test_tokenflow_best_qos(self, burst_reports):
        tokenflow = burst_reports["tokenflow"].qos
        assert tokenflow > burst_reports["sglang"].qos
        assert tokenflow > burst_reports["andes"].qos

    def test_andes_improves_ttft_but_loses_throughput(self, burst_reports):
        andes, sglang = burst_reports["andes"], burst_reports["sglang"]
        assert andes.ttft_mean < sglang.ttft_mean
        assert andes.throughput < sglang.throughput

    def test_tokenflow_preempts_baselines_do_not(self, burst_reports):
        assert burst_reports["tokenflow"].preemptions > 0
        assert burst_reports["sglang"].preemptions == 0

    def test_chunked_close_to_plain_sglang(self, burst_reports):
        plain, chunked = burst_reports["sglang"], burst_reports["sglang-chunked"]
        assert chunked.throughput == pytest.approx(plain.throughput, rel=0.2)


class TestTokenFlowMechanisms:
    def test_write_through_syncs_ahead_of_eviction(self, burst_reports):
        kv_stats = burst_reports["tokenflow"].kv_stats
        # Most offloaded bytes moved proactively (write-through), not
        # reactively at eviction time.
        assert kv_stats["write_through_bytes"] > kv_stats["eviction_tail_bytes"]

    def test_loads_preferred_over_recompute(self, burst_reports):
        """§4.2.3: with idle PCIe, loading beats recomputing."""
        scheduler_stats = burst_reports["tokenflow"].scheduler_stats
        kv_stats = burst_reports["tokenflow"].kv_stats
        assert kv_stats["loads"] >= scheduler_stats["recomputes"]

    def test_stalls_bounded(self, burst_reports):
        """Preemption must not wreck smoothness: per-request stall
        stays far below what head-of-line queueing would cause."""
        report = burst_reports["tokenflow"]
        assert report.stall_mean < 1.0
