"""Unit tests for the hierarchical KV cache manager (§5)."""

import pytest

from repro.memory.blocks import OutOfMemory
from repro.memory.kv_manager import HierarchicalKVManager, KVManagerConfig
from repro.sim.engine import SimEngine


def make_kv(
    engine=None,
    gpu_blocks=64,
    write_through=True,
    enable_offload=True,
    load_evict_overlap=True,
    bandwidth=1e6,           # 1 MB/s so transfer times are visible
    kv_bytes=1000.0,         # 1 kB per token
    block_size=16,
):
    engine = engine or SimEngine()
    config = KVManagerConfig(
        block_size=block_size,
        enable_offload=enable_offload,
        write_through=write_through,
        load_evict_overlap=load_evict_overlap,
    )
    kv = HierarchicalKVManager(
        engine=engine,
        gpu_capacity_blocks=gpu_blocks,
        kv_bytes_per_token=kv_bytes,
        pcie_bandwidth_bytes_per_s=bandwidth,
        config=config,
    )
    return engine, kv


class TestLifecycle:
    def test_register_and_release(self):
        _, kv = make_kv()
        kv.register(1)
        assert kv.record(1).gpu_tokens == 0
        kv.release(1)
        with pytest.raises(KeyError):
            kv.record(1)

    def test_double_register_rejected(self):
        _, kv = make_kv()
        kv.register(1)
        with pytest.raises(ValueError):
            kv.register(1)

    def test_unknown_request_rejected(self):
        _, kv = make_kv()
        with pytest.raises(KeyError):
            kv.record(42)

    def test_release_unknown_is_noop(self):
        _, kv = make_kv()
        kv.release(42)  # no exception


class TestPrefillAndDecode:
    def test_prefill_allocates_blocks(self):
        _, kv = make_kv()
        kv.register(1)
        kv.allocate_for_prefill(1, 33)  # 3 blocks of 16
        assert kv.gpu_pool.used_by(1) == 3
        kv.on_prefill_complete(1, 33)
        assert kv.record(1).gpu_tokens == 33
        assert kv.record(1).resident

    def test_prefill_oom_raises(self):
        _, kv = make_kv(gpu_blocks=2)
        kv.register(1)
        with pytest.raises(OutOfMemory):
            kv.allocate_for_prefill(1, 100)

    def test_decode_grows_context(self):
        _, kv = make_kv()
        kv.register(1)
        kv.allocate_for_prefill(1, 16)
        kv.on_prefill_complete(1, 16)
        kv.on_decode_token(1)
        assert kv.record(1).gpu_tokens == 17
        assert kv.gpu_pool.used_by(1) == 2  # crossed a block boundary

    def test_decode_requires_residency(self):
        _, kv = make_kv()
        kv.register(1)
        with pytest.raises(RuntimeError):
            kv.on_decode_token(1)


class TestWriteThrough:
    def _resident(self, kv, req_id=1, tokens=64):
        kv.register(req_id)
        kv.allocate_for_prefill(req_id, tokens)
        kv.on_prefill_complete(req_id, tokens)

    def test_backlog_counts_dirty_tokens(self):
        _, kv = make_kv()
        self._resident(kv, tokens=64)
        assert kv.write_backlog_tokens() == 64
        assert kv.write_backlog_bytes() == 64_000.0

    def test_drain_writes_syncs_prefix(self):
        _, kv = make_kv()
        self._resident(kv, tokens=64)
        # Budget: 32 ms at 1 MB/s = 32 kB = 32 tokens.
        synced = kv.drain_writes(now=0.0, horizon=0.032)
        assert synced == 32
        assert kv.record(1).cpu_tokens == 32
        assert kv.write_backlog_tokens() == 32

    def test_drain_respects_priority(self):
        _, kv = make_kv()
        self._resident(kv, req_id=1, tokens=32)
        self._resident(kv, req_id=2, tokens=32)
        kv.drain_writes(now=0.0, horizon=0.032, priority=lambda rid: rid)
        # Request 2 has higher priority: fully synced first.
        assert kv.record(2).cpu_tokens == 32
        assert kv.record(1).cpu_tokens == 0

    def test_drain_disabled_without_write_through(self):
        _, kv = make_kv(write_through=False)
        self._resident(kv)
        assert kv.drain_writes(0.0, 1.0) == 0
        assert kv.write_backlog_tokens() == 0

    def test_drain_disabled_without_offload(self):
        _, kv = make_kv(enable_offload=False)
        self._resident(kv)
        assert kv.drain_writes(0.0, 1.0) == 0

    def test_drain_zero_window(self):
        _, kv = make_kv()
        self._resident(kv)
        assert kv.drain_writes(1.0, 1.0) == 0


class TestPreempt:
    def _resident(self, kv, req_id=1, tokens=64):
        kv.register(req_id)
        kv.allocate_for_prefill(req_id, tokens)
        kv.on_prefill_complete(req_id, tokens)

    def test_synced_preemption_is_instant(self):
        engine, kv = make_kv()
        self._resident(kv, tokens=64)
        kv.drain_writes(0.0, 1.0)  # sync everything (64 kB in 1 s budget)
        done = kv.preempt(1, now=0.5)
        assert done == 0.5
        assert kv.gpu_pool.used_by(1) == 0
        assert kv.record(1).cpu_tokens == 64
        assert not kv.record(1).resident

    def test_dirty_tail_pays_transfer(self):
        engine, kv = make_kv()
        self._resident(kv, tokens=64)
        kv.drain_writes(0.0, 0.032)  # 32 synced, 32 dirty
        done = kv.preempt(1, now=0.1)
        # 32 dirty tokens = 32 kB at 1 MB/s = 32 ms.
        assert done == pytest.approx(0.1 + 0.032)
        # Synced blocks freed now; dirty tail blocks freed at `done`.
        assert kv.gpu_pool.used_by(1) == 2  # 32 tokens / 16 per block
        engine.run()
        assert kv.gpu_pool.used_by(1) == 0

    def test_write_back_transfers_everything(self):
        engine, kv = make_kv(write_through=False)
        self._resident(kv, tokens=64)
        done = kv.preempt(1, now=0.0)
        assert done == pytest.approx(0.064)  # full 64 kB
        engine.run()
        assert kv.gpu_pool.used_by(1) == 0
        assert kv.record(1).cpu_tokens == 64

    def test_offload_disabled_drops_cache(self):
        _, kv = make_kv(enable_offload=False)
        self._resident(kv, tokens=64)
        done = kv.preempt(1, now=0.0)
        assert done == 0.0
        assert kv.gpu_pool.used_by(1) == 0
        assert kv.record(1).cpu_tokens == 0
        assert kv.stats["recompute_drops"] == 1

    def test_preempt_non_resident_rejected(self):
        _, kv = make_kv()
        kv.register(1)
        with pytest.raises(RuntimeError):
            kv.preempt(1, now=0.0)

    def test_memory_freed_callback_fires(self):
        engine, kv = make_kv()
        self._resident(kv, tokens=64)
        fired = []
        kv.on_memory_freed = lambda: fired.append(engine.now())
        kv.preempt(1, now=0.0)  # all dirty -> deferred free
        engine.run()
        assert fired  # callback fired when the tail's blocks came back


class TestResume:
    def _offloaded(self, kv, req_id=1, tokens=64):
        kv.register(req_id)
        kv.allocate_for_prefill(req_id, tokens)
        kv.on_prefill_complete(req_id, tokens)
        kv.drain_writes(0.0, 10.0)
        kv.preempt(req_id, now=0.0)

    def test_resume_load_timing(self):
        _, kv = make_kv()
        self._offloaded(kv, tokens=64)
        done = kv.resume_load(1, now=1.0)
        assert done == pytest.approx(1.0 + 0.064)
        assert kv.record(1).resident
        assert kv.record(1).gpu_tokens == 64

    def test_resume_load_reserves_blocks(self):
        _, kv = make_kv()
        self._offloaded(kv, tokens=64)
        kv.resume_load(1, now=1.0)
        assert kv.gpu_pool.used_by(1) == 4

    def test_can_resume_load(self):
        _, kv = make_kv()
        self._offloaded(kv, tokens=64)
        assert kv.can_resume_load(1)

    def test_cannot_resume_without_host_copy(self):
        _, kv = make_kv(enable_offload=False)
        kv.register(1)
        kv.allocate_for_prefill(1, 64)
        kv.on_prefill_complete(1, 64)
        kv.preempt(1, now=0.0)
        assert not kv.can_resume_load(1)
        with pytest.raises(RuntimeError):
            kv.resume_load(1, now=0.0)

    def test_resume_resident_rejected(self):
        _, kv = make_kv()
        kv.register(1)
        kv.allocate_for_prefill(1, 16)
        kv.on_prefill_complete(1, 16)
        with pytest.raises(RuntimeError):
            kv.resume_load(1, now=0.0)

    def test_prepare_recompute_drops_host_copy(self):
        _, kv = make_kv()
        self._offloaded(kv, tokens=64)
        kv.prepare_recompute(1)
        assert kv.record(1).cpu_tokens == 0
        assert kv.cpu_pool.used_by(1) == 0

    def test_write_through_incremental_update_after_resume(self):
        """§5.1 advantage (3): only new tokens are dirty after a resume."""
        _, kv = make_kv()
        self._offloaded(kv, tokens=64)
        kv.resume_load(1, now=1.0)
        kv.on_decode_token(1)
        assert kv.record(1).dirty_tokens == 1


class TestLoadEvictOverlap:
    def test_overlap_runs_concurrently(self):
        engine, kv = make_kv()
        # Request 1 resident and dirty; request 2 offloaded.
        kv.register(1)
        kv.allocate_for_prefill(1, 64)
        kv.on_prefill_complete(1, 64)
        kv.register(2)
        kv.allocate_for_prefill(2, 64)
        kv.on_prefill_complete(2, 64)
        kv.drain_writes(0.0, 10.0)
        kv.preempt(2, now=0.0)
        kv.preempt(1, now=0.0)        # synced: instant
        # Now load request 2 back while (hypothetically) evictions run.
        done = kv.resume_load(2, now=0.0)
        assert done == pytest.approx(0.064)

    def test_no_overlap_serialises_behind_evictions(self):
        engine, kv = make_kv(load_evict_overlap=False, write_through=False)
        kv.register(1)
        kv.allocate_for_prefill(1, 64)
        kv.on_prefill_complete(1, 64)
        kv.register(2)
        kv.allocate_for_prefill(2, 64)
        kv.on_prefill_complete(2, 64)
        kv.preempt(2, now=0.0)        # write-back: d2h busy until 0.064
        kv.preempt(1, now=0.0)        # d2h busy until 0.128
        done = kv.resume_load(2, now=0.0)
        # The load waits for both evictions before starting.
        assert done == pytest.approx(0.128 + 0.064)


class TestEstimates:
    def test_io_estimate_decomposition(self):
        _, kv = make_kv()
        est = kv.estimate_io_time(context_tokens=64, dirty_tokens=32, now=0.0)
        assert est == pytest.approx(0.032 + 0.064)

    def test_io_estimate_includes_queueing(self):
        _, kv = make_kv()
        kv.link.h2d.submit(64_000, now=0.0)  # busy 64 ms
        est = kv.estimate_io_time(context_tokens=0, dirty_tokens=0, now=0.0)
        assert est == pytest.approx(0.064)

    def test_invariants(self):
        _, kv = make_kv()
        kv.register(1)
        kv.allocate_for_prefill(1, 48)
        kv.on_prefill_complete(1, 48)
        kv.drain_writes(0.0, 1.0)
        kv.check_invariants()
