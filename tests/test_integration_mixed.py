"""Kitchen-sink integration: every feature active in one run.

Multi-turn chat sessions, plain user requests, adaptive-rate agent
clients, a mid-run cancellation, event tracing, and a preemption-heavy
memory configuration — all simultaneously under TokenFlow.  The run
must terminate with consistent accounting across every subsystem.
"""

import pytest

from repro.client.adaptive import AdaptiveRateController, AdaptiveRateParams
from repro.core.scheduler import TokenFlowScheduler
from repro.serving.config import ServingConfig
from repro.serving.server import ServingSystem
from repro.sim.trace import TraceRecorder
from repro.workload.request import Request, RequestState
from repro.workload.sessions import SessionDriver, SessionSpec


@pytest.fixture(scope="module")
def mixed_run():
    tracer = TraceRecorder()
    controller = AdaptiveRateController(AdaptiveRateParams(
        min_rate=5.0, max_rate=30.0,
    ))
    config = ServingConfig(hardware="h200", model="llama3-8b",
                           mem_frac=0.01, max_batch=8)
    system = ServingSystem(config, TokenFlowScheduler(),
                           rate_controller=controller, tracer=tracer)

    # Two chat sessions (ids 0-1 -> req ids 0..1999).
    driver = SessionDriver(system, [
        SessionSpec(session_id=0, n_turns=2, think_time_s=1.0),
        SessionSpec(session_id=1, n_turns=2, think_time_s=1.0,
                    first_arrival=2.0),
    ])
    driver.start()

    # A burst of plain user requests at t=1; the first is long enough
    # that it is guaranteed to still be live when its client
    # disconnects at t=4.
    users = [
        Request(req_id=10_000 + i, arrival_time=1.0, prompt_len=256,
                output_len=4096 if i == 0 else 192, rate=10.0)
        for i in range(8)
    ]
    system.submit(users)

    # Two long agent requests from t=0.
    agents = [
        Request(req_id=20_000 + i, arrival_time=0.0, prompt_len=128,
                output_len=1024, rate=5.0, is_agent=True)
        for i in range(2)
    ]
    system.submit(agents)

    # One user disconnects mid-stream.
    system.cancel_at(10_000, when=4.0)

    system.run(until=100_000.0)
    return system, driver, tracer, controller


class TestMixedRun:
    def test_terminates_cleanly(self, mixed_run):
        system, driver, _, _ = mixed_run
        assert system.unfinished == 0
        assert driver.all_done

    def test_cancelled_request_state(self, mixed_run):
        system, _, _, _ = mixed_run
        assert system.tracker.get(10_000).request.state is RequestState.CANCELLED

    def test_everything_else_finished(self, mixed_run):
        system, _, _, _ = mixed_run
        for entry in system.tracker.entries():
            if entry.request.req_id == 10_000:
                continue
            assert entry.request.state is RequestState.FINISHED

    def test_memory_fully_reclaimed(self, mixed_run):
        system, _, _, _ = mixed_run
        assert system.kv.gpu_pool.used == 0
        assert system.kv.cpu_pool.used == 0

    def test_trace_consistent_with_tracker(self, mixed_run):
        system, _, tracer, _ = mixed_run
        counts = tracer.counts()
        arrivals = counts[("request", "arrive")]
        finishes = counts[("request", "finish")]
        cancels = counts.get(("request", "cancel"), 0)
        assert arrivals == len(system.tracker)
        assert finishes + cancels == arrivals

    def test_agents_were_rate_controlled(self, mixed_run):
        _, _, _, controller = mixed_run
        assert controller.adjustments > 0

    def test_preemption_happened_under_pressure(self, mixed_run):
        system, _, _, _ = mixed_run
        assert system.report().preemptions > 0

    def test_user_burst_got_fast_ttft(self, mixed_run):
        system, _, _, _ = mixed_run
        ttfts = [
            system.tracker.get(10_000 + i).request.ttft
            for i in range(1, 8)  # skip the cancelled one
        ]
        assert all(t is not None and t < 10.0 for t in ttfts)
