"""Smoke + shape tests for the per-figure experiment modules.

These run each experiment at a very small scale and assert the
*structural* properties the paper's figures rely on (who wins, which
direction a knob pushes), not absolute numbers.
"""

import numpy as np
import pytest

from repro.experiments import ablation, controlled, endtoend, micro, multirate
from repro.experiments import overhead as overhead_mod
from repro.experiments import ratesweep, sensitivity, temporal, timeline, toy


class TestControlled:
    def test_table1_complete(self):
        assert len(controlled.TABLE1) == 8
        for gpu in ("rtx4090", "h200"):
            for key in "abcd":
                assert (gpu, key) in controlled.TABLE1

    def test_length_regimes(self):
        short = controlled.length_sampler(controlled.TABLE1[("rtx4090", "a")])
        long_ = controlled.length_sampler(controlled.TABLE1[("rtx4090", "b")])
        assert long_.prompt_mean == 2 * short.prompt_mean

    def test_h200_output_scaled(self):
        rtx = controlled.length_sampler(controlled.TABLE1[("rtx4090", "a")])
        h200 = controlled.length_sampler(controlled.TABLE1[("h200", "a")])
        assert h200.output_mean == 2 * rtx.output_mean

    def test_build_workload_scales(self):
        setup = controlled.TABLE1[("h200", "a")]
        full = controlled.build_workload(setup, scale=0.1, seed=0)
        assert len(full) == 40

    def test_run_small_cell(self):
        reports = controlled.run_controlled(
            "rtx4090", "a", systems=("sglang", "tokenflow"), scale=0.1
        )
        assert reports["tokenflow"].n_finished == reports["sglang"].n_finished
        text = controlled.render_controlled("rtx4090", "a", reports)
        assert "sglang" in text and "tokenflow" in text


class TestMicro:
    def test_burst_sweep_shape(self):
        points = micro.run_burst_sweep(loads=(0.25, 1.0), full_burst=40)
        assert len(points) == 2
        # TTFT worsens as burst load rises (Fig. 2 left).
        assert points[1].ttft_p99 > points[0].ttft_p99
        assert "Fig. 2" in micro.render_burst_sweep(points)

    def test_generation_speed_exceeds_reading(self):
        points = micro.run_burst_sweep(loads=(0.5,), full_burst=40)
        # Fig. 2 right: SGLang generates much faster than users read.
        assert points[0].gen_speed_mean > micro.READING_SPEED_2X


class TestToy:
    def test_rotation_without_stalls(self):
        result = toy.run_toy_example()
        assert result.preemptions > 0
        assert result.stall_total < 0.5
        assert all(v is not None for v in result.ttfts.values())

    def test_third_request_served_promptly(self):
        result = toy.run_toy_example(third_arrival=2.0)
        assert result.ttfts[2] < 1.5  # admitted via preemption, not queued

    def test_buffers_stay_bounded(self):
        result = toy.run_toy_example()
        for series in result.occupancy.values():
            assert series.max() < 120  # never the whole output buffered

    def test_render(self):
        result = toy.run_toy_example()
        assert "buffer" in toy.render_toy(result).lower()

    def test_input_validation(self):
        with pytest.raises(ValueError):
            toy.run_toy_example(rates=(1.0, 2.0))


class TestTimeline:
    def test_tokenflow_beats_sglang_ttft(self):
        results = timeline.run_timelines(n_requests=8, max_batch=2)
        sglang_ttft = np.mean([v for v in results["sglang"].ttfts.values()])
        tf_ttft = np.mean([v for v in results["tokenflow"].ttfts.values()])
        assert tf_ttft < sglang_ttft

    def test_render(self):
        results = timeline.run_timelines(n_requests=6, max_batch=2)
        assert "Fig. 18" in timeline.render_timelines(results)

    def test_tokens_at_monotone(self):
        times = np.asarray([0.0, 1.0, 2.0])
        counts = timeline.tokens_at(times, [0.5, 1.5, 2.5])
        assert list(counts) == [1, 2, 3]


class TestMultirate:
    def test_classes_hold_their_rates(self):
        stats = multirate.run_multirate(n_requests=30)
        for rate, cls in stats.items():
            assert cls.n_requests > 0
            # Achieved delivery within 20% of the target rate.
            assert abs(cls.delivery_rate_mean - rate) / rate < 0.2

    def test_render(self):
        stats = multirate.run_multirate(n_requests=20)
        assert "Fig. 19" in multirate.render_multirate(stats)


class TestRateSweep:
    def test_tokenflow_gains_at_all_rates(self):
        points = ratesweep.run_rate_sweep(rates=(20.0, 30.0), n_requests=60)
        for point in points:
            assert point.gain > 0.1  # TokenFlow wins clearly (paper: ~+50%)
        assert "Fig. 20" in ratesweep.render_rate_sweep(points)


class TestSensitivity:
    def test_interval_sweep_returns_points(self):
        points = sensitivity.run_interval_sweep(
            intervals=(0.5, 1.5), n_requests=40
        )
        assert [p.setting for p in points] == [0.5, 1.5]
        assert all(p.effective_throughput > 0 for p in points)

    def test_conservativeness_affects_preemption(self):
        points = sensitivity.run_conservativeness_sweep(
            mus=(1.0, 20.0), n_requests=40
        )
        aggressive, cautious = points
        # Fig. 23: high mu behaves cautiously -> fewer preemptions.
        assert cautious.preemptions <= aggressive.preemptions

    def test_render(self):
        points = sensitivity.run_interval_sweep(intervals=(0.5,), n_requests=20)
        assert "Sensitivity" in sensitivity.render_sensitivity(points, "dt")


class TestAblation:
    def test_full_tokenflow_fastest(self):
        reports = ablation.run_ablation(scale=0.3)
        times = ablation.completion_times(reports)
        # Table 2 ordering: the full system completes fastest; dropping
        # offload entirely is the most expensive.
        assert times["tokenflow"] <= min(times.values()) * 1.05
        assert times["tokenflow-no-offload"] >= times["tokenflow"]

    def test_constrained_link_exposes_overlap(self):
        reports = ablation.run_ablation(
            variants=("tokenflow", "tokenflow-no-overlap"),
            scale=0.5, pcie_gbps=2.0,
        )
        times = ablation.completion_times(reports)
        assert times["tokenflow-no-overlap"] > times["tokenflow"]

    def test_render(self):
        reports = ablation.run_ablation(scale=0.2)
        assert "Table 2" in ablation.render_ablation(reports)


class TestTemporal:
    def test_series_shapes(self):
        results = temporal.run_temporal(
            systems=("sglang", "tokenflow"), duration=60.0,
            base_rate=0.3, bin_s=10.0,
        )
        for series in results.values():
            assert len(series["t"]) == len(series["queued"]) == len(series["running"])
        assert "Fig. 14" in temporal.render_temporal(results, "queued")

    def test_tokenflow_fewer_queued_at_peak(self):
        # Heavy enough that real queues form (32B on H200 saturates).
        results = temporal.run_temporal(
            systems=("sglang", "tokenflow"), duration=80.0,
            base_rate=2.0, bin_s=10.0, max_batch=32,
        )
        assert results["sglang"]["peak_queued"] > 1.0  # pressure existed
        assert (
            results["tokenflow"]["peak_queued"] < results["sglang"]["peak_queued"]
        )


class TestEndToEnd:
    def test_burstgpt_comparison(self):
        reports = endtoend.run_endtoend(
            "h200-llama3-8b", trace="burstgpt",
            systems=("sglang", "tokenflow"), duration=40.0, scale=1.0,
        )
        summary = endtoend.improvement_summary(reports)
        assert summary["ttft_p99_reduction"] > -0.5  # sane range
        assert "h200" in endtoend.render_endtoend("h200-llama3-8b", "burstgpt", reports)

    def test_unknown_testbed_rejected(self):
        with pytest.raises(KeyError):
            endtoend.build_trace_workload("tpu-pod")

    def test_unknown_trace_rejected(self):
        with pytest.raises(ValueError):
            endtoend.build_trace_workload("h200-llama3-8b", trace="netflix")

    def test_improvement_summary_needs_both(self):
        with pytest.raises(KeyError):
            endtoend.improvement_summary({"sglang": None})


class TestOverhead:
    def test_tokenflow_pass_cheap_but_pricier_than_sglang(self):
        results = overhead_mod.measure_overhead(
            systems=("sglang", "tokenflow"), n_requests=60, repeats=10
        )
        by_name = {r.system: r for r in results}
        assert by_name["tokenflow"].pass_ms_mean < 50.0  # well under an iteration
        assert by_name["sglang"].pass_ms_mean < by_name["tokenflow"].pass_ms_mean * 50
        assert "overhead" in overhead_mod.render_overhead(results)
