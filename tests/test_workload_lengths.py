"""Unit tests for length samplers."""

import numpy as np

from repro.workload.lengths import (
    LONG_LENGTHS,
    SHORT_LENGTHS,
    LogNormalLengthSampler,
    NormalLengthSampler,
    sharegpt_like,
)


class TestNormalSampler:
    def test_means_approximately_match(self):
        rng = np.random.default_rng(0)
        sampler = NormalLengthSampler(prompt_mean=512, prompt_std=64,
                                      output_mean=1024, output_std=128)
        samples = [sampler.sample(rng) for _ in range(2000)]
        prompts = np.array([p for p, _ in samples])
        outputs = np.array([o for _, o in samples])
        assert abs(prompts.mean() - 512) < 15
        assert abs(outputs.mean() - 1024) < 25

    def test_clamping_to_bounds(self):
        rng = np.random.default_rng(0)
        sampler = NormalLengthSampler(
            prompt_mean=1, prompt_std=100, output_mean=1, output_std=100,
            min_len=8, max_len=64,
        )
        for _ in range(200):
            prompt, output = sampler.sample(rng)
            assert 8 <= prompt <= 64
            assert 8 <= output <= 64

    def test_integer_outputs(self):
        rng = np.random.default_rng(0)
        prompt, output = NormalLengthSampler().sample(rng)
        assert isinstance(prompt, int) and isinstance(output, int)

    def test_long_regime_longer_than_short(self):
        rng = np.random.default_rng(1)
        short = np.mean([SHORT_LENGTHS.sample(rng)[0] for _ in range(500)])
        long_ = np.mean([LONG_LENGTHS.sample(rng)[0] for _ in range(500)])
        assert long_ > short * 1.5


class TestLogNormalSampler:
    def test_heavy_tail(self):
        """Log-normal produces occasional much-longer-than-median draws."""
        rng = np.random.default_rng(2)
        sampler = LogNormalLengthSampler(prompt_median=256, prompt_sigma=0.9)
        prompts = np.array([sampler.sample(rng)[0] for _ in range(3000)])
        assert np.percentile(prompts, 99) > 4 * np.median(prompts)

    def test_median_approximately_matches(self):
        rng = np.random.default_rng(3)
        sampler = LogNormalLengthSampler(prompt_median=256, prompt_sigma=0.5)
        prompts = np.array([sampler.sample(rng)[0] for _ in range(3000)])
        assert abs(np.median(prompts) - 256) < 30

    def test_sharegpt_factory(self):
        assert isinstance(sharegpt_like(), LogNormalLengthSampler)
