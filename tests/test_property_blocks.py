"""Property-based tests for the block pool allocator."""

import pytest

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.memory.blocks import BlockPool, OutOfMemory

pytestmark = pytest.mark.slow  # full tier-1 lane only (see scripts/ci.sh)

# An operation is (op, owner, n_blocks).
operations = st.lists(
    st.tuples(
        st.sampled_from(["alloc", "release", "release_all"]),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=40),
    ),
    max_size=60,
)


class TestPoolProperties:
    @given(ops=operations)
    @settings(max_examples=200, deadline=None)
    def test_invariants_under_random_ops(self, ops):
        """Used never exceeds capacity; owner sums always match."""
        pool = BlockPool(capacity_blocks=100, block_size=16)
        for op, owner, n_blocks in ops:
            try:
                if op == "alloc":
                    pool.allocate(owner, n_blocks)
                elif op == "release":
                    pool.release(owner, min(n_blocks, pool.used_by(owner)))
                else:
                    pool.release_all(owner)
            except OutOfMemory:
                pass
            pool.check_invariants()
            assert 0 <= pool.used <= pool.capacity
            assert pool.free == pool.capacity - pool.used

    @given(
        tokens=st.integers(min_value=0, max_value=10_000),
        block_size=st.integers(min_value=1, max_value=128),
    )
    def test_blocks_for_tokens_is_tight_ceiling(self, tokens, block_size):
        pool = BlockPool(capacity_blocks=10, block_size=block_size)
        blocks = pool.blocks_for_tokens(tokens)
        assert blocks * block_size >= tokens
        assert (blocks - 1) * block_size < tokens or blocks == 0

    @given(
        allocs=st.lists(
            st.tuples(st.integers(0, 9), st.integers(1, 20)), max_size=20
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_full_teardown_restores_capacity(self, allocs):
        pool = BlockPool(capacity_blocks=200)
        owners = set()
        for owner, n_blocks in allocs:
            try:
                pool.allocate(owner, n_blocks)
                owners.add(owner)
            except OutOfMemory:
                pass
        for owner in owners:
            pool.release_all(owner)
        assert pool.used == 0
        assert pool.free == pool.capacity
