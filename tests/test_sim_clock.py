"""Unit tests for the simulation clock."""

import pytest

from repro.sim.clock import ClockError, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_custom_epoch(self):
        assert SimClock(epoch=5.0).now() == 5.0

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError):
            SimClock(epoch=-1.0)

    def test_advance_forward(self):
        clock = SimClock()
        clock.advance_to(3.5)
        assert clock.now() == 3.5

    def test_advance_to_same_time_is_noop(self):
        clock = SimClock()
        clock.advance_to(2.0)
        clock.advance_to(2.0)
        assert clock.now() == 2.0

    def test_advance_backwards_raises(self):
        clock = SimClock()
        clock.advance_to(2.0)
        with pytest.raises(ClockError):
            clock.advance_to(1.0)

    def test_repr_contains_time(self):
        clock = SimClock()
        clock.advance_to(1.25)
        assert "1.25" in repr(clock)
