"""Unit tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig16" in out and "tab02" in out

    def test_experiment_requires_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment"])

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestExperimentCommand:
    def test_fig01_renders(self, capsys):
        assert main(["experiment", "fig01"]) == 0
        out = capsys.readouterr().out
        assert "english" in out

    def test_fig06_renders(self, capsys):
        assert main(["experiment", "fig06"]) == 0
        out = capsys.readouterr().out
        assert "R3_buffer" in out

    def test_all_ids_have_descriptions(self):
        for name, (description, _) in EXPERIMENTS.items():
            assert description


class TestScenarioCommands:
    def test_list_scenarios(self, capsys):
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "table1-h200-a" in out
        assert "cluster-burst-4x" in out
        assert "bursty-sessions" in out

    def test_run_single_instance(self, capsys):
        assert main(["run", "table1-h200-a", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "single instance" in out
        assert "tokenflow" in out

    def test_run_cluster_with_router(self, capsys):
        code = main([
            "run", "table1-h200-a", "--scale", "0.05",
            "--replicas", "4", "--router", "buffer_aware",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "4 replicas" in out and "buffer_aware" in out
        assert "node3" in out

    def test_run_is_deterministic(self, capsys):
        args = ["run", "table1-h200-a", "--scale", "0.05",
                "--replicas", "2", "--router", "buffer_aware"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_run_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["run", "not-a-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_unknown_system_fails_cleanly(self, capsys):
        code = main(["run", "table1-h200-a", "--scale", "0.05",
                     "--system", "warp"])
        assert code == 2
        assert "unknown system" in capsys.readouterr().err

    def test_run_unknown_router_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table1-h200-a",
                                       "--router", "warp_drive"])

    def test_selftest_registered(self):
        args = build_parser().parse_args(["selftest"])
        assert args.func.__name__ == "cmd_selftest"
        assert args.fast is False

    def test_selftest_fast_flag(self):
        args = build_parser().parse_args(["selftest", "--fast"])
        assert args.fast is True


class TestMatrixCommand:
    def test_list_expands_cells_without_running(self, capsys):
        code = main(["matrix", "table1-h200-a", "cluster-burst-4x",
                     "--seeds", "0", "1", "--list"])
        assert code == 0
        out = capsys.readouterr().out
        assert "4 jobs" in out
        assert "table1-h200-a/seed=1" in out
        assert "cluster-burst-4x/seed=0" in out

    def test_small_matrix_runs(self, capsys, tmp_path):
        code = main([
            "matrix", "cluster-burst-4x", "--scale", "0.05",
            "--seeds", "0", "1", "--jobs", "1", "--no-cache",
            "--out", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 cells" in out and "0 failed" in out
        assert (tmp_path / "matrix_report.md").exists()
        assert (tmp_path / "matrix_report.json").exists()

    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["matrix", "not-a-scenario", "--list"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_invalid_jobs_fails_cleanly(self, capsys):
        code = main(["matrix", "cluster-burst-4x", "--scale", "0.05",
                     "--jobs", "0", "--no-cache"])
        assert code == 2
        assert "jobs must be" in capsys.readouterr().err

    def test_unknown_router_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["matrix", "--routers", "warp_drive"])


class TestCompareCommand:
    def test_small_burst_comparison(self, capsys):
        code = main([
            "compare", "--systems", "sglang", "tokenflow",
            "--n-requests", "8", "--mem-frac", "0.01", "--max-batch", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sglang" in out and "tokenflow" in out

    def test_poisson_comparison(self, capsys):
        code = main([
            "compare", "--systems", "sglang", "--arrival", "poisson",
            "--poisson-rate", "0.5", "--duration", "10",
            "--mem-frac", "0.05", "--max-batch", "8",
        ])
        assert code == 0
        assert "poisson" in capsys.readouterr().out
