"""Unit tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig16" in out and "tab02" in out

    def test_experiment_requires_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment"])

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestExperimentCommand:
    def test_fig01_renders(self, capsys):
        assert main(["experiment", "fig01"]) == 0
        out = capsys.readouterr().out
        assert "english" in out

    def test_fig06_renders(self, capsys):
        assert main(["experiment", "fig06"]) == 0
        out = capsys.readouterr().out
        assert "R3_buffer" in out

    def test_all_ids_have_descriptions(self):
        for name, (description, _) in EXPERIMENTS.items():
            assert description


class TestCompareCommand:
    def test_small_burst_comparison(self, capsys):
        code = main([
            "compare", "--systems", "sglang", "tokenflow",
            "--n-requests", "8", "--mem-frac", "0.01", "--max-batch", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sglang" in out and "tokenflow" in out

    def test_poisson_comparison(self, capsys):
        code = main([
            "compare", "--systems", "sglang", "--arrival", "poisson",
            "--poisson-rate", "0.5", "--duration", "10",
            "--mem-frac", "0.05", "--max-batch", "8",
        ])
        assert code == 0
        assert "poisson" in capsys.readouterr().out
