"""Unit tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig16" in out and "tab02" in out

    def test_experiment_requires_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment"])

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestExperimentCommand:
    def test_fig01_renders(self, capsys):
        assert main(["experiment", "fig01"]) == 0
        out = capsys.readouterr().out
        assert "english" in out

    def test_fig06_renders(self, capsys):
        assert main(["experiment", "fig06"]) == 0
        out = capsys.readouterr().out
        assert "R3_buffer" in out

    def test_all_ids_have_descriptions(self):
        for name, (description, _) in EXPERIMENTS.items():
            assert description


class TestScenarioCommands:
    def test_list_scenarios(self, capsys):
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "table1-h200-a" in out
        assert "cluster-burst-4x" in out
        assert "bursty-sessions" in out

    def test_run_single_instance(self, capsys):
        assert main(["run", "table1-h200-a", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "single instance" in out
        assert "tokenflow" in out

    def test_run_cluster_with_router(self, capsys):
        code = main([
            "run", "table1-h200-a", "--scale", "0.05",
            "--replicas", "4", "--router", "buffer_aware",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "4 replicas" in out and "buffer_aware" in out
        assert "node3" in out

    def test_run_is_deterministic(self, capsys):
        args = ["run", "table1-h200-a", "--scale", "0.05",
                "--replicas", "2", "--router", "buffer_aware"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_run_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["run", "not-a-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_unknown_system_fails_cleanly(self, capsys):
        code = main(["run", "table1-h200-a", "--scale", "0.05",
                     "--system", "warp"])
        assert code == 2
        assert "unknown system" in capsys.readouterr().err

    def test_run_unknown_router_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table1-h200-a",
                                       "--router", "warp_drive"])

    def test_run_out_writes_json_artifact(self, capsys, tmp_path):
        import json

        path = tmp_path / "report.json"
        code = main(["run", "table1-h200-a", "--scale", "0.05",
                     "--out", str(path)])
        assert code == 0
        assert f"wrote {path}" in capsys.readouterr().out
        payload = json.loads(path.read_text())
        assert payload["scenario"]["name"] == "table1-h200-a"
        assert payload["report"]["n_requests"] > 0
        # The artifact mirrors `repro profile --json`: executor/kv/
        # scheduler stats included, per-request rows elided.
        assert payload["report"]["executor_stats"]["decode_iterations"] > 0
        assert "pcie_utilisation" in payload["report"]["kv_stats"]
        assert payload["report"]["scheduler_stats"]["name"] == "tokenflow"
        assert "per_request" not in payload["report"]

    def test_run_out_json_is_deterministic(self, tmp_path):
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["run", "table1-h200-a", "--scale", "0.05",
                     "--out", str(first)]) == 0
        assert main(["run", "table1-h200-a", "--scale", "0.05",
                     "--out", str(second)]) == 0
        assert first.read_text() == second.read_text()

    def test_run_out_cluster_payload(self, capsys, tmp_path):
        import json

        path = tmp_path / "cluster.json"
        code = main(["run", "cluster-burst-4x", "--scale", "0.1",
                     "--out", str(path)])
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["scenario"]["replicas"] == 4
        assert len(payload["per_instance"]) == 4
        assert sum(payload["placement_counts"]) == payload["cluster"]["n_requests"]

    def test_run_stream_flag_matches_submit(self, capsys):
        args = ["run", "table1-h200-a", "--scale", "0.05"]
        assert main(args) == 0
        submitted = capsys.readouterr().out
        assert main(args + ["--stream"]) == 0
        streamed = capsys.readouterr().out
        assert submitted == streamed

    def test_run_soak_scenario_streams_natively(self, capsys):
        # Stream-native scenario with streaming telemetry end-to-end.
        assert main(["run", "soak-steady", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "soak-steady" in out

    def test_selftest_registered(self):
        args = build_parser().parse_args(["selftest"])
        assert args.func.__name__ == "cmd_selftest"
        assert args.fast is False

    def test_selftest_fast_flag(self):
        args = build_parser().parse_args(["selftest", "--fast"])
        assert args.fast is True


class TestMatrixCommand:
    def test_list_expands_cells_without_running(self, capsys):
        code = main(["matrix", "table1-h200-a", "cluster-burst-4x",
                     "--seeds", "0", "1", "--list"])
        assert code == 0
        out = capsys.readouterr().out
        assert "4 jobs" in out
        assert "table1-h200-a/seed=1" in out
        assert "cluster-burst-4x/seed=0" in out

    def test_small_matrix_runs(self, capsys, tmp_path):
        code = main([
            "matrix", "cluster-burst-4x", "--scale", "0.05",
            "--seeds", "0", "1", "--jobs", "1", "--no-cache",
            "--out", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 cells" in out and "0 failed" in out
        assert (tmp_path / "matrix_report.md").exists()
        assert (tmp_path / "matrix_report.json").exists()

    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["matrix", "not-a-scenario", "--list"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_invalid_jobs_fails_cleanly(self, capsys):
        code = main(["matrix", "cluster-burst-4x", "--scale", "0.05",
                     "--jobs", "0", "--no-cache"])
        assert code == 2
        assert "jobs must be" in capsys.readouterr().err

    def test_unknown_router_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["matrix", "--routers", "warp_drive"])


class TestCompareCommand:
    def test_small_burst_comparison(self, capsys):
        code = main([
            "compare", "--systems", "sglang", "tokenflow",
            "--n-requests", "8", "--mem-frac", "0.01", "--max-batch", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sglang" in out and "tokenflow" in out

    def test_poisson_comparison(self, capsys):
        code = main([
            "compare", "--systems", "sglang", "--arrival", "poisson",
            "--poisson-rate", "0.5", "--duration", "10",
            "--mem-frac", "0.05", "--max-batch", "8",
        ])
        assert code == 0
        assert "poisson" in capsys.readouterr().out


class TestProfileCommand:
    def test_by_subsystem_renders(self, capsys):
        assert main(["profile", "--scale", "0.02", "--by-subsystem"]) == 0
        out = capsys.readouterr().out
        assert "-- by subsystem (exclusive time) --" in out
        for name in ("serving", "kv", "buffer"):
            assert name in out

    def test_no_vectorize_flag(self, capsys):
        assert main(["profile", "--scale", "0.02", "--no-vectorize"]) == 0
        out = capsys.readouterr().out
        assert "vectorize_decode=off" in out

    def test_json_artifact_includes_subsystems(self, capsys, tmp_path):
        path = tmp_path / "profile.json"
        assert main(["profile", "--scale", "0.02",
                     "--json", str(path)]) == 0
        import json

        payload = json.loads(path.read_text())
        rows = payload["subsystems"]
        assert rows and {"subsystem", "tottime", "ncalls"} <= set(rows[0])
        assert {"buffer", "kv"} <= {row["subsystem"] for row in rows}
