"""Unit tests for statistics and table rendering."""

import pytest

from repro.analysis.stats import Summary, percentile, summarize
from repro.analysis.tables import format_number, render_series, render_table


class TestStats:
    def test_percentile_interpolation(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)

    def test_percentile_bounds(self):
        data = [5, 1, 9]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 9

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([1], 120)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0, 100.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(26.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 100.0
        assert summary.p50 == pytest.approx(2.5)

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestFormatting:
    def test_integers_verbatim(self):
        assert format_number(42) == "42"

    def test_floats_rounded(self):
        assert format_number(3.14159) == "3.142"

    def test_extreme_magnitudes_scientific(self):
        assert "e" in format_number(1.5e7)
        assert "e" in format_number(1.5e-5)

    def test_strings_pass_through(self):
        assert format_number("abc") == "abc"

    def test_none_becomes_dash(self):
        assert format_number(None) == "-"


class TestTables:
    def test_render_alignment(self):
        table = render_table(["a", "bbbb"], [[1, 2], [333, 4]])
        lines = table.split("\n")
        assert len(lines) == 4  # header, separator, two rows
        assert len(set(len(line) for line in lines)) == 1  # aligned

    def test_title_prepended(self):
        table = render_table(["x"], [[1]], title="My Table")
        assert table.startswith("My Table")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_render_series(self):
        series = render_series("s", [1, 2], [10, 20], x_label="t", y_label="v")
        assert "t" in series and "v" in series and "20" in series

    def test_series_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_series("s", [1], [1, 2])
