"""Unit tests for hardware specs."""

import pytest

from repro.gpu.hardware import HARDWARE_SPECS, HardwareSpec, get_hardware


class TestSpecs:
    def test_all_paper_gpus_present(self):
        for name in ("rtx4090", "a6000", "h200", "ascend910b"):
            assert name in HARDWARE_SPECS

    def test_h200_dominates_a6000(self):
        h200, a6000 = get_hardware("h200"), get_hardware("a6000")
        assert h200.fp16_tflops > a6000.fp16_tflops
        assert h200.mem_bandwidth_gbps > a6000.mem_bandwidth_gbps
        assert h200.mem_capacity_gb > a6000.mem_capacity_gb

    def test_effective_values_below_peak(self):
        for spec in HARDWARE_SPECS.values():
            assert spec.effective_flops < spec.fp16_tflops * 1e12
            assert spec.effective_mem_bandwidth < spec.mem_bandwidth_gbps * 1e9

    def test_capacity_bytes(self):
        assert get_hardware("rtx4090").mem_capacity_bytes == int(24e9)

    def test_pcie_bytes_per_s(self):
        assert get_hardware("h200").pcie_bytes_per_s == 50e9


class TestLookup:
    def test_case_insensitive(self):
        assert get_hardware("H200") is get_hardware("h200")

    def test_separator_insensitive(self):
        assert get_hardware("RTX-4090") is get_hardware("rtx4090")
        assert get_hardware("ascend_910b") is get_hardware("ascend910b")

    def test_unknown_raises_with_known_list(self):
        with pytest.raises(KeyError, match="h200"):
            get_hardware("tpu-v5")


class TestValidation:
    def test_zero_flops_rejected(self):
        with pytest.raises(ValueError):
            HardwareSpec("bad", 0.0, 100.0, 10.0, 10.0)

    def test_bad_efficiency_rejected(self):
        with pytest.raises(ValueError):
            HardwareSpec("bad", 10.0, 100.0, 10.0, 10.0, compute_efficiency=1.5)
        with pytest.raises(ValueError):
            HardwareSpec("bad", 10.0, 100.0, 10.0, 10.0, bandwidth_efficiency=0.0)
