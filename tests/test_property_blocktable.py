"""Property tests for the prefix block table and pool transfer.

Drives ``HierarchicalKVManager`` (``kv_allocator="prefix_cow"``)
through randomised request lifecycles — admit, decode, preempt,
resume (load or recompute), finish, engine flush — and checks the
full invariant set after **every** operation:

* no reference count is ever negative (asserted inside
  ``PrefixBlockTable.check_invariants``),
* ``used + free == capacity`` on every pool (``BlockPool``
  invariants), with the shared-owner ledger matching the index,
* cached blocks are exactly the refs-0 entries, chains stay
  contiguous, and per-request ``shared_blocks`` matches held refs.

Also covers :meth:`BlockPool.transfer` directly: ownership
re-labelling conserves ``used``/``free`` and never bumps the
allocation counters.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.blocks import BlockPool, OutOfMemory
from repro.memory.blocktable import SHARED_OWNER
from repro.memory.kv_manager import HierarchicalKVManager, KVManagerConfig
from repro.sim.engine import SimEngine
from repro.workload.request import Request

pytestmark = pytest.mark.slow


# --- BlockPool.transfer --------------------------------------------------------

transfer_ops = st.lists(
    st.tuples(
        st.sampled_from(["allocate", "release", "transfer"]),
        st.integers(min_value=-1, max_value=3),   # src owner (-1 = shared)
        st.integers(min_value=-1, max_value=3),   # dst owner
        st.integers(min_value=0, max_value=8),    # block count
    ),
    max_size=60,
)


@given(ops=transfer_ops)
@settings(max_examples=200, deadline=None)
def test_pool_transfer_conserves_accounting(ops):
    pool = BlockPool(capacity_blocks=24)
    for action, src, dst, n in ops:
        used_before = pool.used
        allocated_before = pool.total_allocated
        if action == "allocate":
            try:
                pool.allocate(src, n)
            except OutOfMemory:
                pass
        elif action == "release":
            pool.release(src, min(n, pool.used_by(src)))
        else:
            held = pool.used_by(src)
            if n <= held or src == dst:
                # src == dst is a documented no-op, even when overdrawn.
                pool.transfer(src, dst, n)
                # Pure re-labelling: nothing allocated, nothing freed.
                assert pool.used == used_before
                assert pool.total_allocated == allocated_before
                if src != dst:
                    assert pool.used_by(src) == held - n
            else:
                with pytest.raises(ValueError):
                    pool.transfer(src, dst, n)
        assert pool.used + pool.free == pool.capacity
        pool.check_invariants()


@given(n=st.integers(min_value=1, max_value=8))
@settings(max_examples=50, deadline=None)
def test_pool_transfer_rejects_negative(n):
    pool = BlockPool(capacity_blocks=16)
    pool.allocate(0, n)
    with pytest.raises(ValueError):
        pool.transfer(0, 1, -1)
    with pytest.raises(ValueError):
        pool.transfer(1, 0, 1)  # owner 1 holds nothing
    pool.check_invariants()


# --- block-table lifecycle -----------------------------------------------------

lifecycle_ops = st.lists(
    st.tuples(
        st.sampled_from(
            ["admit", "decode", "preempt", "resume", "finish", "flush"]
        ),
        st.integers(min_value=0, max_value=3),     # request slot
        st.integers(min_value=8, max_value=260),   # prompt length
    ),
    max_size=70,
)


@given(
    ops=lifecycle_ops,
    capacity=st.integers(min_value=16, max_value=96),
    offload=st.booleans(),
)
@settings(max_examples=200, deadline=None)
def test_lifecycle_preserves_invariants(ops, capacity, offload):
    engine = SimEngine()
    config = KVManagerConfig(
        kv_allocator="prefix_cow",
        cpu_capacity_blocks=4096,
        enable_offload=offload,
    )
    kv = HierarchicalKVManager(
        engine, capacity, kv_bytes_per_token=1000.0,
        pcie_bandwidth_bytes_per_s=1e9, config=config,
    )
    # slot -> (req_id, context_tokens, state); sessions cycle over two
    # namespaces so successive requests in a slot actually share.
    slots = {}
    next_id = 0
    now = 0.0

    def check():
        kv.check_invariants()
        assert kv.gpu_pool.used + kv.gpu_pool.free == kv.gpu_pool.capacity
        assert kv.gpu_pool.used_by(SHARED_OWNER) == len(kv.prefix.index)

    for action, slot, prompt in ops:
        state = slots.get(slot)
        if action == "admit" and state is None:
            rid = next_id
            next_id += 1
            prompt = min(prompt, (capacity - 2) * kv.gpu_pool.block_size)
            request = Request(
                req_id=rid, arrival_time=now, prompt_len=prompt,
                output_len=8, rate=10.0, session_id=slot % 2,
            )
            kv.register(rid, request)
            try:
                kv.allocate_for_prefill(rid, prompt)
                kv.on_prefill_complete(rid, prompt)
            except OutOfMemory:
                # Admission failed; retire immediately (drops any refs
                # the attach step already took).
                kv.release(rid)
            else:
                slots[slot] = [rid, prompt, "resident"]
        elif action == "decode" and state and state[2] == "resident":
            try:
                kv.on_decode_token(state[0])
            except OutOfMemory:
                pass
            else:
                state[1] += 1
        elif action == "preempt" and state and state[2] == "resident":
            now = engine.now()
            kv.preempt(state[0], now)
            state[2] = "preempted"
        elif action == "resume" and state and state[2] == "preempted":
            rid, context = state[0], state[1]
            now = max(now, engine.now())
            if kv.record(rid).cpu_tokens > 0 and kv.can_resume_load(rid):
                kv.resume_load(rid, now)
                state[2] = "resident"
            else:
                kv.prepare_recompute(rid)
                try:
                    kv.allocate_for_prefill(rid, context)
                    kv.on_prefill_complete(rid, context)
                except OutOfMemory:
                    kv.release(rid)
                    slots.pop(slot)
                else:
                    state[2] = "resident"
        elif action == "finish" and state:
            kv.release(state[0])
            slots.pop(slot)
        elif action == "flush":
            engine.run(until=engine.now() + 1e6)
        check()

    # Drain everything: remaining requests retire, deferred frees land.
    for slot in list(slots):
        kv.release(slots.pop(slot)[0])
        check()
    engine.run(until=engine.now() + 1e9)
    check()
    # Every non-shared block left belongs to the cache (refs == 0).
    assert kv.gpu_pool.used == kv.prefix.evictable_blocks
    # Reclaiming the whole cache returns the pool to empty.
    kv.prefix.reclaim(kv.prefix.evictable_blocks)
    check()
    assert kv.gpu_pool.used == 0


@given(
    prompts=st.lists(st.integers(min_value=16, max_value=200),
                     min_size=2, max_size=6),
    prefix_len=st.integers(min_value=16, max_value=120),
)
@settings(max_examples=100, deadline=None)
def test_group_fanout_refcounts_balance(prompts, prefix_len):
    """N concurrent members of one prefix group: total refs on the
    shared chain equals the number of live attachments; finishing all
    members leaves only refs-0 cached blocks."""
    engine = SimEngine()
    config = KVManagerConfig(kv_allocator="prefix_cow",
                             cpu_capacity_blocks=4096)
    kv = HierarchicalKVManager(
        engine, 512, kv_bytes_per_token=1000.0,
        pcie_bandwidth_bytes_per_s=1e9, config=config,
    )
    live = []
    for rid, prompt in enumerate(prompts):
        plen = min(prefix_len, prompt)
        request = Request(
            req_id=rid, arrival_time=0.0, prompt_len=prompt, output_len=4,
            rate=10.0, prefix_group=9, prefix_len=plen,
        )
        kv.register(rid, request)
        kv.allocate_for_prefill(rid, prompt)
        kv.on_prefill_complete(rid, prompt)
        live.append(rid)
        kv.check_invariants()
    total_refs = sum(b.refs for b in kv.prefix.index.values())
    held = sum(len(chain) for chain in kv.prefix.refs_held.values())
    assert total_refs == held
    for rid in live:
        kv.release(rid)
        kv.check_invariants()
    assert all(b.refs == 0 for b in kv.prefix.index.values())
    assert kv.gpu_pool.used == kv.prefix.evictable_blocks
