"""Golden regression test: a pinned scenario's exact metrics.

The simulator is deterministic, so this fixed 24-request burst must
reproduce these numbers bit-for-bit (up to float tolerance).  Any
behavioural change to the scheduler, memory manager, latency model, or
serving loop shows up here first — if a change is *intentional*,
regenerate the goldens with the command in the comment below.
"""

import pytest

from repro.experiments.runner import run_comparison
from repro.sim.rng import RngStreams
from repro.workload.builder import RateMixture, WorkloadBuilder, WorkloadSpec

pytestmark = pytest.mark.slow  # full tier-1 lane only (see scripts/ci.sh)

# Regenerate after intentional behaviour changes with:
#   python -c "see tests/test_regression_golden.py docstring scenario"
GOLDEN = {
    "sglang": dict(
        throughput=1017.9222922304302,
        effective_throughput=164.13436426805185,
        ttft_mean=7.031508756383656,
        ttft_p99=15.676536112916832,
        stall_total=0.0,
        preemptions=1,
    ),
    "andes": dict(
        throughput=511.13103622269205,
        effective_throughput=106.38967974638149,
        ttft_mean=0.48950130738028746,
        ttft_p99=0.9564914159206187,
        stall_total=0.0,
        preemptions=619,
    ),
    "tokenflow": dict(
        throughput=1016.6633538657566,
        effective_throughput=217.28395441931013,
        ttft_mean=0.19928931115219042,
        ttft_p99=0.8258598827359686,
        stall_total=0.22232648857674786,
        preemptions=54,
    ),
}


@pytest.fixture(scope="module")
def reports():
    spec = WorkloadSpec(
        arrival="burst", n_requests=24, burst_spread=0.25,
        rates=RateMixture.fixed(10.0),
    )
    requests = WorkloadBuilder(spec, RngStreams(42)).build()
    return run_comparison(
        ("sglang", "andes", "tokenflow"), requests,
        hardware="h200", model="llama3-8b", mem_frac=0.01, max_batch=8,
    )


@pytest.mark.parametrize("system", sorted(GOLDEN))
def test_golden_metrics(reports, system):
    report = reports[system]
    golden = GOLDEN[system]
    assert report.throughput == pytest.approx(golden["throughput"], rel=1e-9)
    assert report.effective_throughput == pytest.approx(
        golden["effective_throughput"], rel=1e-9
    )
    assert report.ttft_mean == pytest.approx(golden["ttft_mean"], rel=1e-9)
    assert report.ttft_p99 == pytest.approx(golden["ttft_p99"], rel=1e-9)
    assert report.stall_total == pytest.approx(
        golden["stall_total"], abs=1e-9
    )
    assert report.preemptions == golden["preemptions"]


def test_golden_relationships(reports):
    """The relationships the paper claims, pinned on this scenario."""
    sglang, andes, tokenflow = (
        reports["sglang"], reports["andes"], reports["tokenflow"]
    )
    assert tokenflow.ttft_p99 < 0.1 * sglang.ttft_p99
    assert tokenflow.effective_throughput > 1.3 * sglang.effective_throughput
    assert tokenflow.throughput > 0.95 * sglang.throughput
    assert andes.throughput < 0.6 * sglang.throughput
