"""Unit tests for the block pool allocator."""

import pytest

from repro.memory.blocks import BlockPool, OutOfMemory


@pytest.fixture
def pool() -> BlockPool:
    return BlockPool(capacity_blocks=100, block_size=16)


class TestSizing:
    def test_blocks_for_tokens_ceil(self, pool):
        assert pool.blocks_for_tokens(0) == 0
        assert pool.blocks_for_tokens(1) == 1
        assert pool.blocks_for_tokens(16) == 1
        assert pool.blocks_for_tokens(17) == 2

    def test_negative_tokens_rejected(self, pool):
        with pytest.raises(ValueError):
            pool.blocks_for_tokens(-1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BlockPool(0)
        with pytest.raises(ValueError):
            BlockPool(10, block_size=0)


class TestAllocate:
    def test_allocate_and_free_counters(self, pool):
        pool.allocate(owner=1, n_blocks=30)
        assert pool.used == 30
        assert pool.free == 70
        assert pool.used_by(1) == 30

    def test_over_allocation_raises(self, pool):
        pool.allocate(1, 90)
        with pytest.raises(OutOfMemory):
            pool.allocate(2, 20)

    def test_failed_allocation_changes_nothing(self, pool):
        pool.allocate(1, 90)
        try:
            pool.allocate(2, 20)
        except OutOfMemory:
            pass
        assert pool.used == 90
        assert pool.used_by(2) == 0

    def test_zero_allocation_is_noop(self, pool):
        pool.allocate(1, 0)
        assert pool.used == 0
        assert pool.used_by(1) == 0

    def test_can_allocate(self, pool):
        assert pool.can_allocate(100)
        assert not pool.can_allocate(101)

    def test_multiple_owners(self, pool):
        pool.allocate(1, 10)
        pool.allocate(2, 20)
        pool.allocate(1, 5)
        assert pool.used_by(1) == 15
        assert pool.used_by(2) == 20
        assert pool.used == 35


class TestRelease:
    def test_partial_release(self, pool):
        pool.allocate(1, 30)
        pool.release(1, 10)
        assert pool.used_by(1) == 20
        assert pool.free == 80

    def test_release_all(self, pool):
        pool.allocate(1, 30)
        assert pool.release_all(1) == 30
        assert pool.used == 0
        assert pool.used_by(1) == 0

    def test_release_all_unknown_owner(self, pool):
        assert pool.release_all(99) == 0

    def test_over_release_raises(self, pool):
        pool.allocate(1, 5)
        with pytest.raises(ValueError):
            pool.release(1, 6)

    def test_full_release_removes_owner(self, pool):
        pool.allocate(1, 5)
        pool.release(1, 5)
        assert 1 not in list(pool.owners())

    def test_invariants_hold(self, pool):
        pool.allocate(1, 10)
        pool.allocate(2, 20)
        pool.release(1, 4)
        pool.check_invariants()
