"""Unit tests for the experiment runner and small experiment modules."""

import pytest

from repro.experiments.runner import clone_requests, run_comparison, run_single
from repro.experiments.systems import build_system
from repro.sim.rng import RngStreams
from repro.workload.builder import RateMixture, WorkloadBuilder, WorkloadSpec
from repro.workload.lengths import NormalLengthSampler
from repro.workload.request import RequestState


def small_workload(n=6):
    spec = WorkloadSpec(
        arrival="burst",
        n_requests=n,
        burst_spread=0.1,
        lengths=NormalLengthSampler(prompt_mean=64, prompt_std=8,
                                    output_mean=64, output_std=8),
        rates=RateMixture.fixed(10.0),
    )
    return WorkloadBuilder(spec, RngStreams(0)).build()


class TestCloneRequests:
    def test_clone_copies_workload_attributes(self):
        original = small_workload(3)
        clones = clone_requests(original)
        for a, b in zip(original, clones):
            assert a is not b
            assert (a.req_id, a.arrival_time, a.prompt_len, a.output_len, a.rate) == (
                b.req_id, b.arrival_time, b.prompt_len, b.output_len, b.rate
            )

    def test_clone_resets_runtime_state(self):
        original = small_workload(1)
        original[0].transition(RequestState.PREFILLING)
        original[0].record_token(1.0)
        clone = clone_requests(original)[0]
        assert clone.state is RequestState.QUEUED
        assert clone.generated == 0


class TestRunSingle:
    def test_completes_and_reports(self):
        system = build_system("sglang", mem_frac=0.05, max_batch=8)
        report = run_single(system, small_workload())
        assert report.n_finished == 6

    def test_horizon_violation_raises(self):
        system = build_system("sglang", mem_frac=0.05, max_batch=8)
        with pytest.raises(RuntimeError):
            run_single(system, small_workload(), horizon=0.001)

    def test_original_requests_untouched(self):
        requests = small_workload()
        system = build_system("sglang", mem_frac=0.05, max_batch=8)
        run_single(system, requests)
        assert all(r.state is RequestState.QUEUED for r in requests)


class TestRunComparison:
    def test_all_systems_reported(self):
        reports = run_comparison(
            ("sglang", "tokenflow"), small_workload(),
            mem_frac=0.05, max_batch=8,
        )
        assert list(reports) == ["sglang", "tokenflow"]
        assert all(r.n_finished == 6 for r in reports.values())

    def test_identical_workload_token_totals(self):
        reports = run_comparison(
            ("sglang", "andes"), small_workload(),
            mem_frac=0.05, max_batch=8,
        )
        totals = {r.total_tokens for r in reports.values()}
        assert len(totals) == 1  # same workload, same token count
