"""Property-based tests for the client buffer's consumption model."""

import pytest

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.client.buffer import ClientBuffer

pytestmark = pytest.mark.slow  # full tier-1 lane only (see scripts/ci.sh)

gaps = st.lists(st.floats(min_value=0.0, max_value=2.0), min_size=1, max_size=80)
rates = st.floats(min_value=0.5, max_value=50.0)


def deliver_all(rate, gap_list):
    buffer = ClientBuffer(rate=rate)
    t = 0.0
    for gap in gap_list:
        t += gap
        buffer.deliver(t)
    return buffer, t


class TestConsumptionProperties:
    @given(rate=rates, gap_list=gaps)
    @settings(max_examples=200, deadline=None)
    def test_consumption_times_nondecreasing(self, rate, gap_list):
        buffer, _ = deliver_all(rate, gap_list)
        times = buffer.consumption_times
        assert all(a <= b for a, b in zip(times, times[1:]))

    @given(rate=rates, gap_list=gaps)
    @settings(max_examples=200, deadline=None)
    def test_token_never_consumed_before_generated(self, rate, gap_list):
        buffer, _ = deliver_all(rate, gap_list)
        for gen, consume in zip(buffer.generation_times, buffer.consumption_times):
            assert consume >= gen - 1e-12

    @given(rate=rates, gap_list=gaps)
    @settings(max_examples=200, deadline=None)
    def test_consumption_respects_rate_limit(self, rate, gap_list):
        """Consecutive consumptions are at least 1/rate apart."""
        buffer, _ = deliver_all(rate, gap_list)
        times = buffer.consumption_times
        interval = 1.0 / rate
        for a, b in zip(times, times[1:]):
            assert b - a >= interval - 1e-9

    @given(rate=rates, gap_list=gaps)
    @settings(max_examples=200, deadline=None)
    def test_stall_time_nonnegative_and_bounded(self, rate, gap_list):
        buffer, last = deliver_all(rate, gap_list)
        assert buffer.stall_time >= 0.0
        # Total stall cannot exceed the whole delivery span.
        assert buffer.stall_time <= last + 1e-9

    @given(rate=rates, gap_list=gaps)
    @settings(max_examples=200, deadline=None)
    def test_occupancy_bounds(self, rate, gap_list):
        buffer, last = deliver_all(rate, gap_list)
        occupancy = buffer.occupancy(last)
        assert 0 <= occupancy <= buffer.delivered

    @given(rate=rates, gap_list=gaps)
    @settings(max_examples=200, deadline=None)
    def test_occupancy_at_generation_bounds(self, rate, gap_list):
        buffer, _ = deliver_all(rate, gap_list)
        for idx, occupancy in enumerate(buffer.occupancy_at_generation):
            assert 0 <= occupancy <= idx + 1

    @given(rate=rates, gap_list=gaps)
    @settings(max_examples=100, deadline=None)
    def test_fast_delivery_never_stalls(self, rate, gap_list):
        """If every gap is under 1/rate, no stall can occur."""
        interval = 1.0 / rate
        capped = [min(g, interval * 0.9) for g in gap_list]
        buffer, _ = deliver_all(rate, capped)
        assert buffer.stall_time == 0.0
