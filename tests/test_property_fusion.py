"""Property tests: fused and unfused decode runs are equivalent.

Sweeps scenario-registry cells (single-node, ablations, sessions, and
a multi-replica cluster behind a Router) plus hypothesis-randomised
workloads, asserting that ``fuse_decode=True`` and ``fuse_decode=False``
produce equal RunReport metrics to rel 1e-9 with identical
event-count invariants: same executor iteration/token totals, and the
fused engine never processes more events than the per-iteration one.
"""

import pytest

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.experiments.systems import build_system
from repro.scenarios import build_run, get_scenario
from repro.workload.request import Request, clone_requests

pytestmark = pytest.mark.slow  # full tier-1 lane only (see scripts/ci.sh)

SINGLE_NODE_METRICS = (
    "n_requests", "n_finished", "makespan", "total_tokens", "throughput",
    "effective_tokens", "effective_throughput", "qos", "ttft_mean",
    "ttft_p50", "ttft_p99", "stall_total", "stall_mean", "preemptions",
)
CLUSTER_METRICS = (
    "n_requests", "n_finished", "total_tokens", "throughput",
    "effective_throughput", "qos", "ttft_mean", "ttft_p50", "ttft_p99",
    "stall_total", "preemptions",
)

# Registry cells covering each workload family: a Table 1 burst cell
# under memory pressure, a Poisson cell, every Table 2 memory-ablation
# variant, and the multi-turn session workload (completion callbacks
# schedule follow-up arrivals).
REGISTRY_CELLS = [
    ("table1-h200-a", 0.10),
    ("table1-rtx4090-a", 0.25),
    ("table1-h200-c", 0.25),
    ("tab02-tokenflow", 0.25),
    ("tab02-tokenflow-no-offload", 0.25),
    ("tab02-tokenflow-no-writethrough", 0.25),
    ("tab02-tokenflow-no-overlap", 0.25),
    ("bursty-sessions", 0.25),
]


def _execute(spec):
    run = build_run(spec)
    report = run.execute()
    return run.target, report


@pytest.mark.parametrize("name,scale", REGISTRY_CELLS)
@pytest.mark.parametrize("seed", [0, 1])
def test_registry_cell_parity(name, scale, seed):
    spec_on = get_scenario(name, scale=scale, seed=seed)
    spec_off = spec_on.with_overrides(fuse_decode=False)
    target_off, report_off = _execute(spec_off)
    target_on, report_on = _execute(spec_on)
    keys = (
        CLUSTER_METRICS if spec_on.replicas > 1 else SINGLE_NODE_METRICS
    )
    for key in keys:
        off, on = getattr(report_off, key), getattr(report_on, key)
        assert on == pytest.approx(off, rel=1e-9, abs=1e-9), (name, key)
    # Event-count invariants: same work, fewer (or equal) events.
    assert target_on.engine.events_processed <= target_off.engine.events_processed
    if spec_on.replicas == 1:
        s_off, s_on = report_off.executor_stats, report_on.executor_stats
        for key in ("prefill_iterations", "decode_iterations",
                    "prefill_tokens", "decode_tokens"):
            assert s_on[key] == s_off[key], (name, key)
        assert report_off.executor_stats["fused_windows"] == 0


def test_cluster_parity_through_router():
    spec_on = get_scenario(
        "cluster-burst-4x", scale=0.1, seed=0,
        replicas=2, router="round_robin",
    )
    spec_off = spec_on.with_overrides(fuse_decode=False)
    target_off, report_off = _execute(spec_off)
    target_on, report_on = _execute(spec_on)
    for key in CLUSTER_METRICS:
        off, on = getattr(report_off, key), getattr(report_on, key)
        assert on == pytest.approx(off, rel=1e-9, abs=1e-9), key
    # Per-instance reports must line up too (same placements, same
    # per-node runs), and at least one node must actually have fused.
    assert len(report_on.per_instance) == len(report_off.per_instance) == 2
    fused_windows = 0
    for inst_on, inst_off in zip(report_on.per_instance,
                                 report_off.per_instance):
        for key in SINGLE_NODE_METRICS:
            assert getattr(inst_on, key) == pytest.approx(
                getattr(inst_off, key), rel=1e-9, abs=1e-9
            ), key
        fused_windows += inst_on.executor_stats["fused_windows"]
    assert fused_windows > 0
    assert target_on.engine.events_processed < target_off.engine.events_processed


@st.composite
def workloads(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    requests = []
    for req_id in range(n):
        requests.append(
            Request(
                req_id=req_id,
                arrival_time=draw(st.floats(0.0, 3.0)),
                prompt_len=draw(st.integers(8, 384)),
                output_len=draw(st.integers(4, 256)),
                rate=draw(st.sampled_from([5.0, 10.0, 20.0])),
            )
        )
    return requests


class TestRandomisedParity:
    @given(
        requests=workloads(),
        system_name=st.sampled_from(
            ("sglang", "andes", "mlfq", "tokenflow")
        ),
        mem_frac=st.sampled_from([0.002, 0.01, 0.1]),
    )
    @settings(max_examples=40, deadline=None)
    def test_fused_equals_unfused(self, requests, system_name, mem_frac):
        reports = []
        for fuse in (False, True):
            system = build_system(
                system_name, hardware="h200", model="llama3-8b",
                mem_frac=mem_frac, max_batch=6, fuse_decode=fuse,
            )
            system.submit(clone_requests(requests))
            system.run(until=100_000.0)
            reports.append(system.report())
        report_off, report_on = reports
        for key in SINGLE_NODE_METRICS:
            off, on = getattr(report_off, key), getattr(report_on, key)
            assert on == pytest.approx(off, rel=1e-9, abs=1e-9), key
        assert report_on.timeline == report_off.timeline
