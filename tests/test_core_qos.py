"""Unit tests for the QoS metric (Eq. 1-2) and effective throughput."""

import pytest

from repro.core.qos import (
    QoSParams,
    effective_token_count,
    effective_token_weight,
    qos_score,
    request_qos_terms,
    token_utility,
)


class TestTokenUtility:
    def test_full_weight_below_threshold(self):
        assert token_utility(5.0, tau=10.0, alpha=0.1) == 1.0
        assert token_utility(10.0, tau=10.0, alpha=0.1) == 1.0

    def test_linear_decay_above_threshold(self):
        assert token_utility(15.0, tau=10.0, alpha=0.1) == pytest.approx(0.5)

    def test_clamped_at_zero(self):
        assert token_utility(100.0, tau=10.0, alpha=0.1) == 0.0

    def test_monotone_nonincreasing(self):
        values = [token_utility(b, 10.0, 0.05) for b in range(0, 50, 5)]
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestEffectiveWeight:
    def test_piecewise_shape(self):
        # output_len 100: full below 10, zero above 20, linear between.
        assert effective_token_weight(5, 100) == 1.0
        assert effective_token_weight(10, 100) == 1.0
        assert effective_token_weight(15, 100) == pytest.approx(0.5)
        assert effective_token_weight(20, 100) == 0.0
        assert effective_token_weight(50, 100) == 0.0

    def test_thresholds_scale_with_output_length(self):
        assert effective_token_weight(15, 100) < 1.0
        assert effective_token_weight(15, 1000) == 1.0  # 15 < 10% of 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            effective_token_weight(5, 0)
        with pytest.raises(ValueError):
            effective_token_weight(5, 100, tau1_frac=0.3, tau2_frac=0.2)

    def test_effective_count_sums_weights(self):
        count = effective_token_count([0, 0, 15, 50], output_len=100)
        assert count == pytest.approx(1.0 + 1.0 + 0.5 + 0.0)


class TestQoSParams:
    def test_tau_resolution_fixed(self):
        params = QoSParams(tau=42.0)
        assert params.resolve_tau(1000) == 42.0

    def test_tau_resolution_fractional(self):
        params = QoSParams(tau=None, tau_frac=0.1)
        assert params.resolve_tau(500) == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            QoSParams(tau=-1.0)
        with pytest.raises(ValueError):
            QoSParams(alpha=0.0)
        with pytest.raises(ValueError):
            QoSParams(lam=-0.1)


class TestQoSScore:
    def test_request_terms_combine_penalties(self):
        params = QoSParams(tau=100.0, alpha=0.01, lam=2.0, mu=3.0)
        term = request_qos_terms(
            occupancies=[0, 0, 0], output_len=10, ttft=1.0, rebuffer=0.5,
            params=params,
        )
        assert term == pytest.approx(3.0 - 2.0 * 1.0 - 3.0 * 0.5)

    def test_stall_reduces_qos(self):
        params = QoSParams()
        clean = request_qos_terms([0] * 10, 100, ttft=0.5, rebuffer=0.0, params=params)
        stalled = request_qos_terms([0] * 10, 100, ttft=0.5, rebuffer=5.0, params=params)
        assert clean > stalled

    def test_high_ttft_reduces_qos(self):
        params = QoSParams()
        fast = request_qos_terms([0] * 10, 100, ttft=0.1, rebuffer=0.0, params=params)
        slow = request_qos_terms([0] * 10, 100, ttft=10.0, rebuffer=0.0, params=params)
        assert fast > slow

    def test_overbuffered_tokens_reduce_qos(self):
        params = QoSParams(tau=None, tau_frac=0.1, alpha=0.05)
        tight = request_qos_terms([0] * 10, 20, ttft=0.0, rebuffer=0.0, params=params)
        fat = request_qos_terms([15] * 10, 20, ttft=0.0, rebuffer=0.0, params=params)
        assert tight > fat

    def test_score_normalised_by_time(self):
        assert qos_score([10.0, 20.0], total_time=10.0) == pytest.approx(3.0)

    def test_zero_time_rejected(self):
        with pytest.raises(ValueError):
            qos_score([1.0], total_time=0.0)


class TestFoldHistMetrics:
    def test_matches_standalone_folds(self):
        from repro.core.qos import (
            effective_token_count_hist,
            fold_hist_metrics,
            request_qos_terms_hist,
        )

        params = QoSParams()
        hist = {0: 12, 3: 4, 17: 9, 40: 2, 90: 1}
        effective, utility = fold_hist_metrics(hist, 100, params)
        assert effective == effective_token_count_hist(hist, 100)
        assert utility == request_qos_terms_hist(hist, 100, 0.0, 0.0, params)

    def test_array_fold_bit_identical_to_loop(self, monkeypatch):
        # Histograms at least _FOLD_VECTOR_MIN buckets long take a
        # numpy fold; its cumsum accumulation must replay the scalar
        # loop's left-to-right additions bit-for-bit.
        import random

        from repro.core import qos as qos_module

        rng = random.Random(3)
        params = QoSParams()
        for _ in range(50):
            n = rng.randint(64, 400)
            hist = {b: rng.randint(1, 9) for b in
                    rng.sample(range(2000), n)}
            output_len = rng.randint(1, 600)
            vec = qos_module.fold_hist_metrics(hist, output_len, params)
            monkeypatch.setattr(qos_module, "_FOLD_VECTOR_MIN", 10**9)
            scalar = qos_module.fold_hist_metrics(hist, output_len, params)
            monkeypatch.undo()
            assert vec == scalar

    def test_validation(self):
        from repro.core.qos import fold_hist_metrics

        with pytest.raises(ValueError):
            fold_hist_metrics({0: 1}, 0, QoSParams())
        with pytest.raises(ValueError):
            fold_hist_metrics({0: 1}, 10, QoSParams(),
                              tau1_frac=0.3, tau2_frac=0.2)
