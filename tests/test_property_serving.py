"""Property-based end-to-end serving invariants.

Small randomized workloads run to completion under every scheduler;
afterwards the system must satisfy conservation laws: every request
finished with exactly its output length, memory fully reclaimed,
token timestamps monotone, and no tokens lost or duplicated.
"""

import pytest

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.experiments.systems import build_system
from repro.workload.request import Request, RequestState

pytestmark = pytest.mark.slow  # full tier-1 lane only (see scripts/ci.sh)


@st.composite
def workloads(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    requests = []
    for req_id in range(n):
        requests.append(
            Request(
                req_id=req_id,
                arrival_time=draw(st.floats(0.0, 5.0)),
                prompt_len=draw(st.integers(8, 512)),
                output_len=draw(st.integers(4, 192)),
                rate=draw(st.sampled_from([5.0, 10.0, 20.0])),
            )
        )
    return requests


SYSTEMS = ("sglang", "andes", "tokenflow")


class TestServingInvariants:
    @given(
        requests=workloads(),
        system_name=st.sampled_from(SYSTEMS),
        seed_mem=st.sampled_from([0.002, 0.01, 0.05]),
    )
    @settings(max_examples=60, deadline=None)
    def test_conservation_laws(self, requests, system_name, seed_mem):
        system = build_system(
            system_name, hardware="h200", model="llama3-8b",
            mem_frac=seed_mem, max_batch=4,
        )
        system.submit(requests)
        system.run(until=100_000.0)
        assert system.unfinished == 0

        total_generated = 0
        for entry in system.tracker.entries():
            request = entry.request
            assert request.state is RequestState.FINISHED
            # Exactly output_len tokens, no more, no fewer.
            assert request.generated == request.output_len
            assert len(request.token_times) == request.output_len
            # Timestamps monotone and after arrival.
            times = request.token_times
            assert all(a <= b for a, b in zip(times, times[1:]))
            assert times[0] >= request.arrival_time
            # Client buffer saw every token.
            assert entry.buffer.delivered == request.output_len
            assert entry.buffer.stall_time >= 0.0
            total_generated += request.generated

        # All memory reclaimed.
        assert system.kv.gpu_pool.used == 0
        # Executor token accounting matches request accounting.
        assert system.executor.stats.decode_tokens + len(requests) >= total_generated
