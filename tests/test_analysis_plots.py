"""Unit tests for ASCII charting."""

import pytest

from repro.analysis.plots import ascii_chart, ascii_sparkline


class TestSparkline:
    def test_empty_series(self):
        assert ascii_sparkline([]) == ""

    def test_flat_series_lowest_tick(self):
        line = ascii_sparkline([5, 5, 5])
        assert line == "▁▁▁"

    def test_ramp_uses_range(self):
        line = ascii_sparkline(list(range(8)))
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_long_series_resampled(self):
        line = ascii_sparkline(list(range(1000)), width=40)
        assert len(line) == 40


class TestChart:
    def test_single_series(self):
        chart = ascii_chart({"a": [0, 1, 2, 3]}, height=5, width=16, title="T")
        assert chart.startswith("T")
        assert "*=a" in chart
        assert len(chart.split("\n")) == 5 + 2  # rows + title + legend

    def test_multiple_series_distinct_markers(self):
        chart = ascii_chart({"x": [0, 1], "y": [1, 0]}, height=4, width=12)
        assert "*=x" in chart and "o=y" in chart

    def test_axis_labels_contain_range(self):
        chart = ascii_chart({"a": [2.0, 10.0]}, height=4, width=12)
        assert "10.0" in chart and "2.0" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"a": []})
        with pytest.raises(ValueError):
            ascii_chart({"a": [1]}, height=1)

    def test_long_series_resampled_to_width(self):
        chart = ascii_chart({"a": list(range(500))}, height=4, width=20)
        body_rows = chart.split("\n")[:-1]
        assert all(len(row) <= 12 + 20 for row in body_rows)
