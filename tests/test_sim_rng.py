"""Unit tests for named RNG streams."""

import numpy as np
import pytest

from repro.sim.rng import RngStreams


class TestRngStreams:
    def test_same_name_same_stream(self):
        streams = RngStreams(7)
        assert streams.stream("a") is streams.stream("a")

    def test_reproducible_across_instances(self):
        first = RngStreams(42).stream("arrivals").uniform(size=5)
        second = RngStreams(42).stream("arrivals").uniform(size=5)
        np.testing.assert_array_equal(first, second)

    def test_different_names_differ(self):
        streams = RngStreams(42)
        a = streams.stream("a").uniform(size=8)
        b = streams.stream("b").uniform(size=8)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x").uniform(size=8)
        b = RngStreams(2).stream("x").uniform(size=8)
        assert not np.allclose(a, b)

    def test_new_consumer_does_not_perturb_existing(self):
        plain = RngStreams(5)
        seq_before = plain.stream("workload").uniform(size=4)
        mixed = RngStreams(5)
        mixed.stream("other")  # extra consumer created first
        seq_after = mixed.stream("workload").uniform(size=4)
        np.testing.assert_array_equal(seq_before, seq_after)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RngStreams(0).stream("")

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngStreams(-1)

    def test_spawn_derives_independent_family(self):
        parent = RngStreams(3)
        child = parent.spawn(1)
        a = parent.stream("x").uniform(size=8)
        b = child.stream("x").uniform(size=8)
        assert not np.allclose(a, b)

    def test_spawn_reproducible(self):
        a = RngStreams(3).spawn(9).stream("x").uniform(size=4)
        b = RngStreams(3).spawn(9).stream("x").uniform(size=4)
        np.testing.assert_array_equal(a, b)
