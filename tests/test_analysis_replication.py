"""Unit + integration tests for multi-seed replication."""

import pytest

from repro.analysis.replication import (
    MetricAggregate,
    paired_win_rate,
    replicate,
    report_metrics,
)
from repro.experiments.runner import run_comparison
from repro.sim.rng import RngStreams
from repro.workload.builder import RateMixture, WorkloadBuilder, WorkloadSpec


class TestReplicate:
    def test_aggregates_scalars(self):
        aggregates = replicate(lambda seed: {"x": seed, "y": 2.0}, seeds=[1, 2, 3])
        assert aggregates["x"].mean == pytest.approx(2.0)
        assert aggregates["x"].minimum == 1.0
        assert aggregates["x"].maximum == 3.0
        assert aggregates["y"].std == 0.0
        assert aggregates["x"].n == 3

    def test_non_numeric_skipped(self):
        aggregates = replicate(
            lambda seed: {"x": 1.0, "name": "abc", "flag": True}, seeds=[0]
        )
        assert "name" not in aggregates
        assert "flag" not in aggregates

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda seed: {}, seeds=[])

    def test_as_row(self):
        aggregate = MetricAggregate("m", 1.0, 0.1, 0.9, 1.1, 4)
        assert aggregate.as_row()[0] == "m"
        assert len(aggregate.as_row()) == 6


class TestWinRate:
    def test_higher_better(self):
        rate = paired_win_rate(lambda s: (2.0, 1.0), seeds=[0, 1])
        assert rate == 1.0

    def test_lower_better(self):
        rate = paired_win_rate(lambda s: (2.0, 1.0), seeds=[0, 1],
                               lower_is_better=True)
        assert rate == 0.0

    def test_mixed(self):
        rate = paired_win_rate(lambda s: (s, 1), seeds=[0, 2])
        assert rate == 0.5


class TestAcrossSeedsClaim:
    def test_tokenflow_wins_ttft_across_seeds(self):
        """The headline TTFT claim holds for every tested seed."""

        def experiment(seed: int):
            spec = WorkloadSpec(
                arrival="burst", n_requests=40, burst_spread=0.25,
                rates=RateMixture.fixed(10.0),
            )
            requests = WorkloadBuilder(spec, RngStreams(seed)).build()
            reports = run_comparison(
                ("sglang", "tokenflow"), requests,
                hardware="h200", model="llama3-8b",
                mem_frac=0.02, max_batch=16,
            )
            return (
                reports["tokenflow"].ttft_p99,
                reports["sglang"].ttft_p99,
            )

        rate = paired_win_rate(experiment, seeds=[0, 1, 2], lower_is_better=True)
        assert rate == 1.0

    def test_report_metrics_extraction(self):
        spec = WorkloadSpec(arrival="burst", n_requests=6,
                            rates=RateMixture.fixed(10.0))
        requests = WorkloadBuilder(spec, RngStreams(0)).build()
        reports = run_comparison(("sglang",), requests,
                                 mem_frac=0.02, max_batch=8)
        metrics = report_metrics(reports["sglang"])
        assert set(metrics) >= {"throughput", "ttft_p99", "qos"}
