"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.scheduler import TokenFlowScheduler
from repro.serving.config import ServingConfig
from repro.serving.server import ServingSystem
from repro.sim.engine import SimEngine
from repro.sim.rng import RngStreams
from repro.workload.request import Request


@pytest.fixture
def engine() -> SimEngine:
    return SimEngine()


@pytest.fixture
def rng_streams() -> RngStreams:
    return RngStreams(root_seed=1234)


@pytest.fixture
def small_config() -> ServingConfig:
    """A small H200 slice: tight memory so preemption paths trigger."""
    return ServingConfig(
        hardware="h200", model="llama3-8b", mem_frac=0.05, max_batch=8
    )


@pytest.fixture
def tokenflow_system(small_config) -> ServingSystem:
    return ServingSystem(small_config, TokenFlowScheduler())


def make_request(
    req_id: int = 0,
    arrival: float = 0.0,
    prompt: int = 64,
    output: int = 32,
    rate: float = 10.0,
) -> Request:
    """Concise request constructor for tests."""
    return Request(
        req_id=req_id,
        arrival_time=arrival,
        prompt_len=prompt,
        output_len=output,
        rate=rate,
    )


@pytest.fixture
def request_factory():
    return make_request
