"""Property-based tests for the roofline latency model.

The scheduler's decisions rest on a handful of monotonicity and
linearity facts about the timing model; these pin them across random
batch compositions and all paper hardware/model pairings.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.gpu.hardware import HARDWARE_SPECS, get_hardware
from repro.gpu.latency import LatencyModel
from repro.gpu.models import MODEL_SPECS, get_model

pytestmark = pytest.mark.slow  # full tier-1 lane only (see scripts/ci.sh)

PAIRINGS = [
    (hw, model)
    for hw in ("h200", "rtx4090", "a6000", "ascend910b")
    for model in ("llama3-8b", "qwen2-7b")
]

contexts = st.lists(st.integers(min_value=1, max_value=8192),
                    min_size=1, max_size=32)


def model_for(pair):
    hw, model = pair
    return LatencyModel(get_hardware(hw), get_model(model))


class TestDecodeProperties:
    @given(ctx=contexts, pair=st.sampled_from(PAIRINGS))
    @settings(max_examples=150, deadline=None)
    def test_decode_time_positive_and_finite(self, ctx, pair):
        step = model_for(pair).decode_step_time(ctx)
        assert 0 < step < 10.0

    @given(ctx=contexts, extra=st.integers(1, 4096),
           pair=st.sampled_from(PAIRINGS))
    @settings(max_examples=150, deadline=None)
    def test_decode_monotone_in_context(self, ctx, extra, pair):
        latency = model_for(pair)
        longer = list(ctx)
        longer[0] += extra
        assert latency.decode_step_time(longer) >= latency.decode_step_time(ctx)

    @given(ctx=contexts, pair=st.sampled_from(PAIRINGS))
    @settings(max_examples=150, deadline=None)
    def test_batching_never_reduces_step_throughput(self, ctx, pair):
        """Adding a request to the batch never lowers tokens/s."""
        latency = model_for(pair)
        base = len(ctx) / latency.decode_step_time(ctx)
        bigger = ctx + [ctx[0]]
        grown = len(bigger) / latency.decode_step_time(bigger)
        assert grown >= base * 0.999


class TestPrefillProperties:
    @given(tokens=st.integers(1, 16384), pair=st.sampled_from(PAIRINGS))
    @settings(max_examples=150, deadline=None)
    def test_prefill_positive(self, tokens, pair):
        assert model_for(pair).prefill_time([tokens]) > 0

    @given(a=st.integers(1, 8192), b=st.integers(1, 8192),
           pair=st.sampled_from(PAIRINGS))
    @settings(max_examples=150, deadline=None)
    def test_prefill_superadditive_in_one_prompt(self, a, b, pair):
        """One long prompt costs at least as much as its two halves in
        one batch (quadratic attention), minus one iteration overhead."""
        latency = model_for(pair)
        whole = latency.prefill_time([a + b])
        split = latency.prefill_time([a, b])
        overhead = latency.hardware.iteration_overhead_s
        assert whole >= split - overhead - 1e-9

    @given(tokens=st.integers(64, 8192), pair=st.sampled_from(PAIRINGS))
    @settings(max_examples=100, deadline=None)
    def test_prefill_cheaper_per_token_than_decode(self, tokens, pair):
        latency = model_for(pair)
        prefill_per_token = latency.prefill_time([tokens]) / tokens
        decode_per_token = latency.decode_step_time([tokens])
        assert prefill_per_token < decode_per_token


class TestTransferProperties:
    @given(n=st.integers(0, 100_000), m=st.integers(0, 100_000),
           pair=st.sampled_from(PAIRINGS))
    @settings(max_examples=150, deadline=None)
    def test_transfer_additive(self, n, m, pair):
        latency = model_for(pair)
        combined = latency.transfer_time(n + m)
        parts = latency.transfer_time(n) + latency.transfer_time(m)
        assert combined == pytest.approx(parts, rel=1e-9, abs=1e-12)

    @given(n=st.integers(1, 100_000), pair=st.sampled_from(PAIRINGS))
    @settings(max_examples=100, deadline=None)
    def test_transfer_monotone(self, n, pair):
        latency = model_for(pair)
        assert latency.transfer_time(n + 1) > latency.transfer_time(n)
