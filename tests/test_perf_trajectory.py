"""Perf-trajectory guard over the tracked benchmark artifact.

``benchmarks/BENCH_simcore.json`` is the committed perf trajectory:
each full tier-1 run refreshes it with the current deterministic
call-count speedup (see ``benchmarks/test_perf_simcore.py``) and keeps
the best ratio ever recorded under ``best.calls``.  This guard is
cheap (no simulation) so it runs in the fast CI lane too, and fails
when the recorded current ratio has slid more than 10% below the
recorded best — i.e. when a perf regression was *measured and
committed* without being acknowledged.

If a regression is intentional (e.g. trading calls for clarity),
update ``best.calls`` in the artifact alongside the change and say so
in the PR.
"""

import json
from pathlib import Path

import pytest

BENCH_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "BENCH_simcore.json"
)

SHARD_BENCH_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "BENCH_shard.json"
)

# Committed coordination-overhead ceiling for the sharded cluster (best
# sharded wall vs classic wall on the soak workload; matches the gate
# asserted live in benchmarks/test_shard_scaling.py).
ALLOWED_SHARD_OVERHEAD = 1.15

# Fraction of the recorded-best call-count ratio the current ratio
# must retain.
ALLOWED_REGRESSION = 0.10

# Soft memory guard: the recorded bare-run peak RSS may exceed the
# pinned seed baseline by at most this factor.  Deliberately loose —
# RSS varies with Python version and allocator — it exists to catch
# committed accounting mistakes (a profiler/suite high-water mark
# recorded as the workload's footprint) and order-of-magnitude leaks,
# not percent-level drift.
ALLOWED_RSS_FACTOR = 1.5


def test_bench_artifact_exists_and_parses():
    payload = json.loads(BENCH_PATH.read_text())
    assert payload["speedup"]["calls"] > 0
    assert payload["baseline"]["total_calls"] > 0


def test_call_ratio_not_regressed_vs_recorded_best():
    payload = json.loads(BENCH_PATH.read_text())
    current = payload["speedup"]["calls"]
    best = payload.get("best", {}).get("calls", current)
    assert best > 0
    floor = (1.0 - ALLOWED_REGRESSION) * best
    assert current >= floor, (
        f"deterministic call-count speedup regressed: current {current:.2f}x "
        f"is more than {ALLOWED_REGRESSION:.0%} below the recorded best "
        f"{best:.2f}x (floor {floor:.2f}x). If intentional, update "
        f"best.calls in benchmarks/BENCH_simcore.json and justify it."
    )


def test_bare_rss_within_soft_guard():
    payload = json.loads(BENCH_PATH.read_text())
    optimized = payload["optimized"]
    source = optimized.get("peak_rss_source", "bare")
    if source == "unavailable":
        # The bare subprocess could not run (e.g. a sandbox forbidding
        # spawns) and no earlier measurement exists to carry forward —
        # RSS is a soft metric, so that is not a failure.
        pytest.skip("no bare-run RSS measurement available")
    assert source in ("bare", "carried"), source
    baseline_kb = payload["baseline"]["peak_rss_kb"]
    current_kb = optimized["peak_rss_kb"]
    assert current_kb > 0, "bare-run RSS missing from the artifact"
    ceiling = ALLOWED_RSS_FACTOR * baseline_kb
    assert current_kb <= ceiling, (
        f"recorded bare-run peak RSS {current_kb / 1024:.1f} MiB exceeds "
        f"{ALLOWED_RSS_FACTOR:.1f}x the seed baseline "
        f"({baseline_kb / 1024:.1f} MiB). Either memory genuinely "
        f"regressed or the artifact recorded a suite/profiler high-water "
        f"mark instead of a bare run (see BARE_RSS_CODE in "
        f"benchmarks/test_perf_simcore.py)."
    )


def test_history_rows_well_formed():
    payload = json.loads(BENCH_PATH.read_text())
    history = payload.get("history", [])
    assert history, "artifact carries no per-PR history rows"
    for row in history:
        assert row["total_calls"] > 0
        assert row["wall_s"] > 0
        assert row["calls_speedup"] > 0
        assert "notes" in row


def test_call_ratio_not_regressed_vs_any_history_row():
    """The current recorded speedup must stay within the allowed band
    of the best *any* prior PR achieved — a slide hidden by several
    small steps still fails once it exceeds the band cumulatively."""
    payload = json.loads(BENCH_PATH.read_text())
    history = payload.get("history", [])
    assert history
    best = max(row["calls_speedup"] for row in history)
    current = payload["speedup"]["calls"]
    floor = (1.0 - ALLOWED_REGRESSION) * best
    assert current >= floor, (
        f"call-count speedup {current:.2f}x fell below {floor:.2f}x, the "
        f"{ALLOWED_REGRESSION:.0%} band under the best history row "
        f"({best:.2f}x). If intentional, update the artifact's history "
        f"and best.calls and justify it in the PR."
    )


def test_best_is_monotone_upper_bound():
    payload = json.loads(BENCH_PATH.read_text())
    best = payload.get("best", {}).get("calls", 0.0)
    # The refresh logic takes max(current, previous best); the artifact
    # must never be committed with best below current.
    assert best >= payload["speedup"]["calls"] * (1.0 - 1e-12)


# --- sharded cluster trajectory (benchmarks/BENCH_shard.json) ---------------

def test_shard_bench_artifact_exists_and_parses():
    payload = json.loads(SHARD_BENCH_PATH.read_text())
    assert payload["workload"]["replicas"] >= 64
    assert payload["workload"]["n_requests"] > 0
    assert payload["baseline"]["wall_s"] > 0


def test_shard_bench_rows_well_formed():
    payload = json.loads(SHARD_BENCH_PATH.read_text())
    rows = payload["shards"]
    assert {row["shards"] for row in rows} >= {1, 2, 4}
    for row in rows:
        assert row["wall_s"] > 0
        assert row["overhead"] > 0
        assert row["messages_sent"] >= row["shards"]
        assert len(row["shard_events"]) == row["shards"]
        assert all(events > 0 for events in row["shard_events"])


def test_shard_overhead_within_committed_gate():
    """The committed artifact must show the coordination protocol
    holding the ISSUE's overhead gate — a regression that was measured
    and committed without acknowledgement fails here, cheaply, in the
    fast lane."""
    payload = json.loads(SHARD_BENCH_PATH.read_text())
    best = payload["best"]["overhead"]
    assert best <= ALLOWED_SHARD_OVERHEAD, (
        f"recorded best sharded overhead {best:.2f}x exceeds the "
        f"{ALLOWED_SHARD_OVERHEAD}x gate. Either coordination genuinely "
        f"regressed (see benchmarks/test_shard_scaling.py) or the "
        f"artifact was refreshed on a loaded machine — re-run the "
        f"harness and justify any real change in the PR."
    )


def test_shard_speculation_block_holds_reduction_gate():
    """Speculative dispatch must keep coordination rounds at least 5x
    below the pause-round protocol on the committed soak figure."""
    payload = json.loads(SHARD_BENCH_PATH.read_text())
    spec = payload["speculation"]
    assert spec["router"] == "least_loaded"
    assert spec["coordination_rounds"] > 0
    assert spec["coordination_rounds_speculation_off"] >= spec["coordination_rounds"]
    assert spec["speculation_hits"] > 0
    assert spec["reduction"] >= 5.0, (
        f"recorded speculative-dispatch reduction {spec['reduction']:.1f}x "
        f"fell below the 5x acceptance gate "
        f"({spec['coordination_rounds_speculation_off']} -> "
        f"{spec['coordination_rounds']} rounds). Re-run "
        f"benchmarks/test_shard_scaling.py and justify any real change."
    )


def test_shard_rounds_not_regressed_vs_history_best():
    """Coordination rounds are deterministic, so this is an exact guard:
    the committed speculative figure may exceed the best (lowest) rounds
    any prior PR recorded by at most ``ALLOWED_REGRESSION``.  A slide
    hidden across several PRs still fails once it leaves the band."""
    payload = json.loads(SHARD_BENCH_PATH.read_text())
    history = payload.get("history", [])
    assert history, "shard artifact carries no rounds/messages history"
    for row in history:
        assert row["coordination_rounds"] > 0
        assert row["messages_sent"] > 0
        assert "notes" in row
    speculative = [
        row["coordination_rounds"] for row in history if row["reduction"] > 1.0
    ]
    assert speculative, "history has no speculative-dispatch rows"
    best = min(speculative)
    current = payload["speculation"]["coordination_rounds"]
    ceiling = (1.0 + ALLOWED_REGRESSION) * best
    assert current <= ceiling, (
        f"coordination rounds regressed: current {current} is more than "
        f"{ALLOWED_REGRESSION:.0%} above the best history row ({best}, "
        f"ceiling {ceiling:.0f}). If intentional, update the history in "
        f"benchmarks/BENCH_shard.json and justify it in the PR."
    )
