"""Perf-trajectory guard over the tracked benchmark artifact.

``benchmarks/BENCH_simcore.json`` is the committed perf trajectory:
each full tier-1 run refreshes it with the current deterministic
call-count speedup (see ``benchmarks/test_perf_simcore.py``) and keeps
the best ratio ever recorded under ``best.calls``.  This guard is
cheap (no simulation) so it runs in the fast CI lane too, and fails
when the recorded current ratio has slid more than 10% below the
recorded best — i.e. when a perf regression was *measured and
committed* without being acknowledged.

If a regression is intentional (e.g. trading calls for clarity),
update ``best.calls`` in the artifact alongside the change and say so
in the PR.
"""

import json
from pathlib import Path

BENCH_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "BENCH_simcore.json"
)

# Fraction of the recorded-best call-count ratio the current ratio
# must retain.
ALLOWED_REGRESSION = 0.10


def test_bench_artifact_exists_and_parses():
    payload = json.loads(BENCH_PATH.read_text())
    assert payload["speedup"]["calls"] > 0
    assert payload["baseline"]["total_calls"] > 0


def test_call_ratio_not_regressed_vs_recorded_best():
    payload = json.loads(BENCH_PATH.read_text())
    current = payload["speedup"]["calls"]
    best = payload.get("best", {}).get("calls", current)
    assert best > 0
    floor = (1.0 - ALLOWED_REGRESSION) * best
    assert current >= floor, (
        f"deterministic call-count speedup regressed: current {current:.2f}x "
        f"is more than {ALLOWED_REGRESSION:.0%} below the recorded best "
        f"{best:.2f}x (floor {floor:.2f}x). If intentional, update "
        f"best.calls in benchmarks/BENCH_simcore.json and justify it."
    )


def test_best_is_monotone_upper_bound():
    payload = json.loads(BENCH_PATH.read_text())
    best = payload.get("best", {}).get("calls", 0.0)
    # The refresh logic takes max(current, previous best); the artifact
    # must never be committed with best below current.
    assert best >= payload["speedup"]["calls"] * (1.0 - 1e-12)
