"""Unit tests for the serving loop."""

import pytest

from repro.baselines import SGLangScheduler
from repro.core.scheduler import TokenFlowScheduler
from repro.serving.config import ServingConfig
from repro.serving.server import ServingSystem
from repro.workload.request import Request, RequestState


def burst(n, prompt=64, output=32, rate=10.0, start=0.0):
    return [
        Request(req_id=i, arrival_time=start, prompt_len=prompt,
                output_len=output, rate=rate)
        for i in range(n)
    ]


def make_system(scheduler=None, mem_frac=0.01, max_batch=8, **kwargs):
    config = ServingConfig(
        hardware="h200", model="llama3-8b", mem_frac=mem_frac,
        max_batch=max_batch, **kwargs,
    )
    return ServingSystem(config, scheduler or SGLangScheduler())


class TestSubmission:
    def test_past_arrival_rejected(self):
        system = make_system()
        system.run(until=5.0)
        with pytest.raises(ValueError):
            system.submit(burst(1, start=1.0))

    def test_unfinished_counter(self):
        system = make_system()
        system.submit(burst(3))
        assert system.unfinished == 3
        system.run(until=10_000.0)
        assert system.unfinished == 0


class TestSingleRequest:
    def test_lifecycle_and_metrics(self):
        system = make_system()
        system.submit(burst(1, prompt=128, output=16))
        system.run(until=1_000.0)
        report = system.report()
        assert report.n_finished == 1
        metrics = report.per_request[0]
        assert metrics.generated == 16
        assert metrics.ttft is not None and metrics.ttft > 0
        assert metrics.finish_time is not None

    def test_first_token_comes_from_prefill(self):
        system = make_system()
        system.submit(burst(1, prompt=512, output=8))
        system.run(until=1_000.0)
        entry = system.tracker.get(0)
        # TTFT equals the first prefill completion, which must cost at
        # least the latency model's prefill time.
        min_prefill = system.latency.prefill_time([512])
        assert entry.request.ttft >= min_prefill * 0.9

    def test_token_timestamps_monotone(self):
        system = make_system()
        system.submit(burst(1, output=32))
        system.run(until=1_000.0)
        times = system.tracker.get(0).request.token_times
        assert all(a <= b for a, b in zip(times, times[1:]))
        assert len(times) == 32

    def test_memory_released_after_finish(self):
        system = make_system()
        system.submit(burst(1, output=8))
        system.run(until=1_000.0)
        assert system.kv.gpu_pool.used == 0


class TestBatching:
    def test_concurrent_decode(self):
        system = make_system(max_batch=8)
        system.submit(burst(4, output=64))
        system.run(until=1_000.0)
        stats = system.executor.stats
        # 4 requests of 64 tokens each decode mostly together: far
        # fewer decode iterations than total tokens.
        assert stats.decode_iterations < 4 * 64

    def test_max_batch_respected_in_decode(self):
        system = make_system(max_batch=2)
        system.submit(burst(6, output=64))
        system.run(until=10_000.0)
        assert system.report().n_finished == 6

    def test_staggered_arrivals(self):
        system = make_system()
        early = burst(2, output=32)
        late = [
            Request(req_id=10 + i, arrival_time=5.0, prompt_len=64,
                    output_len=32, rate=10.0)
            for i in range(2)
        ]
        system.submit(early + late)
        system.run(until=10_000.0)
        report = system.report()
        assert report.n_finished == 4


class TestMemoryPressure:
    def test_oom_triggers_reactive_preemption(self):
        system = make_system(mem_frac=0.002, max_batch=8)
        system.submit(burst(8, prompt=256, output=512))
        system.run(until=10_000.0)
        report = system.report()
        assert report.n_finished == 8
        # Reactive preemption (or admission blocking) must have kicked
        # in; with this little memory all 8 cannot be resident at once.
        assert report.preemptions > 0 or report.ttft_p99 > report.ttft_p50

    def test_tokenflow_preempts_and_resumes(self):
        system = make_system(
            scheduler=TokenFlowScheduler(), mem_frac=0.002, max_batch=4
        )
        system.submit(burst(10, prompt=256, output=256))
        system.run(until=10_000.0)
        report = system.report()
        assert report.n_finished == 10
        assert report.preemptions > 0
        assert system.kv.stats["loads"] + system.offload.stats["recomputes"] > 0


class TestChunkedPrefill:
    def test_chunked_config_splits_prompts(self):
        system = make_system(chunked_prefill=True, prefill_chunk_size=128)
        system.submit(burst(1, prompt=512, output=8))
        system.run(until=1_000.0)
        assert system.executor.stats.prefill_iterations >= 4


class TestTimeline:
    def test_timeline_sampled(self):
        system = make_system()
        system.submit(burst(4, output=32))
        system.run(until=1_000.0)
        assert len(system.timeline) > 0
        times = [t for t, _, _ in system.timeline]
        assert times == sorted(times)

    def test_makespan_positive(self):
        system = make_system()
        system.submit(burst(2, output=16))
        system.run(until=1_000.0)
        assert system.makespan() > 0

    def test_report_contains_stats(self):
        system = make_system()
        system.submit(burst(2, output=16))
        system.run(until=1_000.0)
        report = system.report()
        assert "decode_iterations" in report.executor_stats
        assert "pcie_utilisation" in report.kv_stats
        assert report.scheduler_stats["name"] == "sglang"
