"""Unit tests for the Request Offload Manager."""

import pytest

from repro.core.offload import RequestOffloadManager
from repro.core.tracker import RequestTracker
from repro.memory.kv_manager import HierarchicalKVManager, KVManagerConfig
from repro.serving.interface import SchedulerDecision
from repro.sim.engine import SimEngine
from repro.workload.request import RequestState
from tests.conftest import make_request


@pytest.fixture
def setup():
    engine = SimEngine()
    tracker = RequestTracker()
    kv = HierarchicalKVManager(
        engine=engine,
        gpu_capacity_blocks=64,
        kv_bytes_per_token=1000.0,
        pcie_bandwidth_bytes_per_s=1e6,
        config=KVManagerConfig(block_size=16),
    )
    queues = {name: [] for name in
              ("waiting", "prefill_queue", "running", "preempted", "loading")}
    manager = RequestOffloadManager(
        engine=engine, tracker=tracker, kv=kv, **queues
    )
    return engine, tracker, kv, queues, manager


def register(tracker, kv, queues, state="waiting", tokens=32, req_id=0):
    request = make_request(req_id=req_id, prompt=tokens, output=16)
    tracker.register(request)
    kv.register(request.req_id)
    if state == "waiting":
        queues["waiting"].append(request)
    elif state == "running":
        request.transition(RequestState.PREFILLING)
        request.transition(RequestState.RUNNING)
        kv.allocate_for_prefill(request.req_id, tokens)
        kv.on_prefill_complete(request.req_id, tokens)
        queues["running"].append(request)
    return request


class TestAdmit:
    def test_admit_moves_to_prefill_queue(self, setup):
        engine, tracker, kv, queues, manager = setup
        request = register(tracker, kv, queues)
        manager.admit(request)
        assert request.state is RequestState.PREFILLING
        assert queues["waiting"] == []
        assert queues["prefill_queue"] == [request]
        assert manager.stats["admissions"] == 1

    def test_admit_wrong_state_rejected(self, setup):
        engine, tracker, kv, queues, manager = setup
        request = register(tracker, kv, queues, state="running")
        with pytest.raises(RuntimeError):
            manager.admit(request)


class TestPreempt:
    def test_preempt_offloads(self, setup):
        engine, tracker, kv, queues, manager = setup
        request = register(tracker, kv, queues, state="running")
        manager.preempt(request)
        assert request.state is RequestState.PREEMPTED
        assert request.preemption_count == 1
        assert queues["preempted"] == [request]
        assert manager.stats["preemptions"] == 1

    def test_preempt_non_running_rejected(self, setup):
        engine, tracker, kv, queues, manager = setup
        request = register(tracker, kv, queues)
        with pytest.raises(RuntimeError):
            manager.preempt(request)


class TestResume:
    def _preempted(self, setup, synced=True):
        engine, tracker, kv, queues, manager = setup
        request = register(tracker, kv, queues, state="running")
        if synced:
            kv.drain_writes(0.0, 10.0)
        manager.preempt(request)
        return request

    def test_resume_load_schedules_completion(self, setup):
        engine, tracker, kv, queues, manager = setup
        request = self._preempted(setup)
        manager.resume_load(request)
        assert request.state is RequestState.LOADING
        assert queues["loading"] == [request]
        engine.run()
        assert request.state is RequestState.RUNNING
        assert queues["running"] == [request]
        assert manager.stats["loads"] == 1

    def test_resume_load_falls_back_to_recompute(self, setup):
        engine, tracker, kv, queues, manager = setup
        request = self._preempted(setup)
        kv.cpu_pool.release_all(request.req_id)
        kv.record(request.req_id).cpu_tokens = 0  # host copy gone
        manager.resume_load(request)
        assert request.state is RequestState.PREFILLING
        assert manager.stats["recomputes"] == 1

    def test_resume_recompute_clears_host_copy(self, setup):
        engine, tracker, kv, queues, manager = setup
        request = self._preempted(setup)
        manager.resume_recompute(request)
        assert request.state is RequestState.PREFILLING
        assert request.prefill_progress == 0
        assert kv.record(request.req_id).cpu_tokens == 0
        assert queues["prefill_queue"] == [request]

    def test_events_recorded(self, setup):
        engine, tracker, kv, queues, manager = setup
        request = self._preempted(setup)
        manager.resume_load(request)
        kinds = [kind for _, kind, _ in manager.events]
        assert kinds == ["preempt", "load"]


class TestExecute:
    def test_decision_order_preempts_first(self, setup):
        engine, tracker, kv, queues, manager = setup
        running = register(tracker, kv, queues, state="running", req_id=0)
        waiting = register(tracker, kv, queues, state="waiting", req_id=1)
        kv.drain_writes(0.0, 10.0)
        decision = SchedulerDecision(admit=[waiting], preempt=[running])
        manager.execute(decision)
        assert running.state is RequestState.PREEMPTED
        assert waiting.state is RequestState.PREFILLING

    def test_duplicate_requests_rejected(self, setup):
        engine, tracker, kv, queues, manager = setup
        request = register(tracker, kv, queues, state="running")
        decision = SchedulerDecision(preempt=[request], resume_load=[request])
        with pytest.raises(ValueError):
            manager.execute(decision)

    def test_state_change_callback_fires(self, setup):
        engine, tracker, kv, queues, manager = setup
        fired = []
        manager._on_state_change = lambda: fired.append(True)
        request = register(tracker, kv, queues)
        manager.execute(SchedulerDecision(admit=[request]))
        assert fired

    def test_empty_decision_no_callback(self, setup):
        engine, tracker, kv, queues, manager = setup
        fired = []
        manager._on_state_change = lambda: fired.append(True)
        manager.execute(SchedulerDecision())
        assert not fired
