"""Tests for request cancellation (client disconnects)."""

import pytest

from repro.baselines import SGLangScheduler
from repro.core.scheduler import TokenFlowScheduler
from repro.serving.config import ServingConfig
from repro.serving.server import ServingSystem
from repro.workload.request import Request, RequestState


def burst(n, prompt=64, output=64, rate=10.0):
    return [
        Request(req_id=i, arrival_time=0.0, prompt_len=prompt,
                output_len=output, rate=rate)
        for i in range(n)
    ]


def make_system(scheduler=None, mem_frac=0.005, max_batch=4):
    config = ServingConfig(hardware="h200", model="llama3-8b",
                           mem_frac=mem_frac, max_batch=max_batch)
    return ServingSystem(config, scheduler or TokenFlowScheduler())


class TestCancelStates:
    def test_cancel_queued_request(self):
        system = make_system(scheduler=SGLangScheduler(), mem_frac=0.001)
        system.submit(burst(8, prompt=256, output=64))
        system.run(until=0.5)
        queued = [r for r in system.waiting]
        if queued:
            victim = queued[-1]
            assert system.cancel(victim.req_id)
            assert victim.state is RequestState.CANCELLED
            assert victim not in system.waiting
        system.run(until=10_000.0)
        assert system.unfinished == 0

    def test_cancel_running_request_frees_memory(self):
        system = make_system()
        system.submit(burst(2, output=512))
        system.run(until=2.0)
        running = list(system.running)
        assert running
        victim = running[0]
        held_before = system.kv.gpu_pool.used
        assert system.cancel(victim.req_id)
        assert system.kv.gpu_pool.used_by(victim.req_id) == 0
        assert system.kv.gpu_pool.used < held_before
        system.run(until=10_000.0)
        assert system.unfinished == 0

    def test_cancel_mid_decode_iteration_is_safe(self):
        """Cancelling during an in-flight iteration must not corrupt
        the completion handler."""
        system = make_system()
        system.submit(burst(3, output=256))
        system.run(until=1.0)
        if system.running:
            system.cancel(system.running[0].req_id)
        system.run(until=10_000.0)
        assert system.unfinished == 0
        for entry in system.tracker.entries():
            assert entry.request.state in (
                RequestState.FINISHED, RequestState.CANCELLED
            )

    def test_cancel_unknown_or_finished_returns_false(self):
        system = make_system()
        system.submit(burst(1, output=8))
        system.run(until=1_000.0)
        assert not system.cancel(0)   # already finished
        assert not system.cancel(99)  # never existed

    def test_double_cancel_harmless(self):
        system = make_system()
        system.submit(burst(1, output=512))
        system.run(until=1.0)
        assert system.cancel(0)
        assert not system.cancel(0)
        system.run(until=100.0)

    def test_cancel_at_schedules_future_cancel(self):
        system = make_system()
        system.submit(burst(1, output=2000))
        system.cancel_at(0, when=3.0)
        system.run(until=10_000.0)
        request = system.tracker.get(0).request
        assert request.state is RequestState.CANCELLED
        # Tokens streamed before the disconnect stay recorded.
        assert 0 < request.generated < 2000

    def test_report_counts_cancelled_as_unfinished(self):
        system = make_system()
        system.submit(burst(2, output=512))
        system.cancel_at(0, when=2.0)
        system.run(until=10_000.0)
        report = system.report()
        assert report.n_requests == 2
        assert report.n_finished == 1


class TestCancelUnderPreemption:
    def test_cancel_preempted_request(self):
        system = make_system(mem_frac=0.002, max_batch=4)
        system.submit(burst(10, prompt=256, output=256))
        cancelled = []

        def try_cancel():
            if system.preempted and not cancelled:
                victim = system.preempted[0]
                assert system.cancel(victim.req_id)
                cancelled.append(victim)

        for checkpoint in (1.0, 2.0, 3.0, 5.0):
            system.run(until=checkpoint)
            try_cancel()
        system.run(until=50_000.0)
        assert system.unfinished == 0
        if cancelled:
            assert cancelled[0].state is RequestState.CANCELLED
