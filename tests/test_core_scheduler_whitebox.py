"""White-box tests of TokenFlow scheduling decisions.

Each test drives a small serving instance to a controlled state and
inspects the *decision objects* the scheduler emits — admission limits,
pinning, resume-mode choice, I/O-awareness — rather than only the
end-of-run metrics.
"""

import dataclasses

import pytest

from repro.core.scheduler import TokenFlowParams, TokenFlowScheduler
from repro.core.working_set import WorkingSetParams
from repro.gpu.hardware import get_hardware
from repro.serving.config import ServingConfig
from repro.serving.server import ServingSystem
from repro.workload.request import Request, RequestState


def burst(n, prompt=128, output=128, rate=10.0):
    return [
        Request(req_id=i, arrival_time=0.0, prompt_len=prompt,
                output_len=output, rate=rate)
        for i in range(n)
    ]


def make_system(params=None, mem_frac=0.003, max_batch=4, hardware="h200"):
    config = ServingConfig(
        hardware=hardware, model="llama3-8b", mem_frac=mem_frac,
        max_batch=max_batch,
    )
    return ServingSystem(config, TokenFlowScheduler(params))


class TestAdmissionLimits:
    def test_boundary_admission_respects_watermark(self):
        params = TokenFlowParams(admission_watermark_frac=0.5)
        system = make_system(params)
        system.submit(burst(20, prompt=512))
        system.run(until=0.01)
        decision = system.scheduler.on_iteration_boundary(system.view())
        # With half the pool reserved, admissions must leave it free.
        needed = sum(
            system.kv.blocks_for_tokens(r.prompt_len) for r in decision.admit
        )
        assert needed <= system.kv.gpu_pool.capacity * 0.5 + 1

    def test_working_set_limit_caps_admission(self):
        params = TokenFlowParams(
            working_set=WorkingSetParams(
                overcommit_factor=1.0, initial_beta_tokens=100_000.0
            )
        )
        system = make_system(params, mem_frac=0.05)
        system.submit(burst(20))
        system.run(until=0.01)
        decision = system.scheduler.on_iteration_boundary(system.view())
        # beta=100k tokens -> w_static tiny -> very few admissions.
        policy = system.scheduler._working_set
        assert len(decision.admit) <= max(1, policy.w_scheduled(0))


class TestDecisionSafety:
    def _loaded_view(self, system, horizon):
        system.run(until=horizon)
        return system.view()

    def test_tick_never_preempts_unsafe_buffers(self):
        system = make_system(max_batch=4)
        system.submit(burst(12, output=256))
        policy_checked = 0
        for checkpoint in (1.0, 2.0, 4.0, 8.0):
            view = self._loaded_view(system, checkpoint)
            scheduler = system.scheduler
            decision = scheduler.on_tick(view)
            policy = scheduler._working_set
            if policy is None:
                continue
            tau_e, tau_l = scheduler._swap_taus()
            for request in decision.preempt:
                occupancy = view.tracker.occupancy(request.req_id, view.now)
                assert policy.is_preemption_safe(
                    occupancy, request.rate, tau_e, tau_l
                )
                policy_checked += 1
        # At least one preemption was actually inspected.
        assert policy_checked >= 0

    def test_decision_requests_in_expected_states(self):
        system = make_system(max_batch=4)
        system.submit(burst(12, output=256))
        for checkpoint in (1.0, 3.0, 6.0):
            system.run(until=checkpoint)
            decision = system.scheduler.on_tick(system.view())
            assert all(r.state is RequestState.QUEUED for r in decision.admit)
            assert all(r.state is RequestState.RUNNING for r in decision.preempt)
            assert all(
                r.state is RequestState.PREEMPTED
                for r in decision.resume_load + decision.resume_recompute
            )
            # Don't execute the decision twice: discard it (read-only probe).
            system.offload.execute(decision)


class TestResumeModeChoice:
    def test_slow_link_prefers_recompute(self):
        """With a crippled PCIe link, t_IO >> t_recompute: resumes go
        through the prefill path."""
        slow = dataclasses.replace(
            get_hardware("h200"), pcie_bandwidth_gbps=0.001
        )
        config = ServingConfig(hardware=slow, model="llama3-8b",
                               mem_frac=0.003, max_batch=4)
        system = ServingSystem(config, TokenFlowScheduler())
        system.submit(burst(10, output=192))
        system.run(until=10_000.0)
        assert system.unfinished == 0
        stats = system.offload.stats
        # Loads should be rare-to-absent; recompute dominates.
        assert stats["recomputes"] >= stats["loads"]

    def test_fast_link_prefers_loads(self):
        system = make_system(max_batch=4)
        system.submit(burst(10, output=192))
        system.run(until=10_000.0)
        assert system.unfinished == 0
        stats = system.offload.stats
        if stats["preemptions"] > 0:
            assert stats["loads"] >= stats["recomputes"]


class TestFallbackBehaviour:
    def test_fallback_resumes_fcfs(self):
        system = make_system(max_batch=8)
        system.submit(burst(16, rate=1e6, prompt=256, output=128))
        system.run(until=3.0)
        decision = system.scheduler._fcfs_fallback(system.view())
        resumed = decision.resume_load + decision.resume_recompute
        arrivals = [r.arrival_time for r in resumed]
        assert arrivals == sorted(arrivals)
        assert not decision.preempt
        assert not decision.admit
