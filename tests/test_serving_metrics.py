"""Unit tests for metric collection and the run report."""

import math

import pytest

from repro.core.tracker import RequestTracker
from repro.serving.metrics import (
    RunReport,
    aggregate_reports,
    build_report,
    report_fingerprint,
)
from repro.workload.request import RequestState
from tests.conftest import make_request


def tracked_run():
    """Two finished requests with known token timings."""
    tracker = RequestTracker()
    fast = make_request(req_id=1, arrival=0.0, output=5, rate=10.0)
    slow = make_request(req_id=2, arrival=0.0, output=5, rate=10.0)
    for request in (fast, slow):
        tracker.register(request)
        request.transition(RequestState.PREFILLING)
        request.transition(RequestState.RUNNING)
    for idx in range(5):
        tracker.deliver_token(1, 0.5 + 0.1 * idx)      # ttft 0.5, steady
    for idx in range(5):
        tracker.deliver_token(2, 5.0 + 1.0 * idx)      # ttft 5, stalls
    for request in (fast, slow):
        request.transition(RequestState.FINISHED)
    tracker.mark_finished(1, 0.9)
    tracker.mark_finished(2, 9.0)
    return tracker


class TestBuildReport:
    def test_counts(self):
        report = build_report("test", tracked_run(), makespan=9.0)
        assert report.n_requests == 2
        assert report.n_finished == 2
        assert report.total_tokens == 10

    def test_throughput(self):
        report = build_report("test", tracked_run(), makespan=10.0)
        assert report.throughput == pytest.approx(1.0)

    def test_ttft_stats(self):
        report = build_report("test", tracked_run(), makespan=9.0)
        assert report.ttft_mean == pytest.approx((0.5 + 5.0) / 2)
        assert report.ttft_p50 == pytest.approx(2.75)

    def test_stalls_counted(self):
        report = build_report("test", tracked_run(), makespan=9.0)
        # Request 2 gets tokens 1 s apart but reads at 10 tok/s:
        # 0.9 s of stall per gap, four gaps.
        assert report.stall_total == pytest.approx(3.6)

    def test_effective_tokens_bounded_by_total(self):
        report = build_report("test", tracked_run(), makespan=9.0)
        assert 0 < report.effective_tokens <= report.total_tokens

    def test_qos_penalises_the_slow_request(self):
        report = build_report("test", tracked_run(), makespan=9.0)
        by_id = {m.req_id: m for m in report.per_request}
        assert by_id[1].qos_term > by_id[2].qos_term

    def test_per_request_fields(self):
        report = build_report("test", tracked_run(), makespan=9.0)
        metrics = report.per_request[0]
        assert metrics.generated == 5
        assert metrics.output_len == 5
        assert metrics.preemptions == 0

    def test_unstarted_request_has_nan_free_handling(self):
        tracker = RequestTracker()
        tracker.register(make_request(req_id=1))
        report = build_report("test", tracker, makespan=5.0)
        assert report.n_finished == 0
        assert math.isnan(report.ttft_mean)

    def test_summary_row_shape(self):
        report = build_report("test", tracked_run(), makespan=9.0)
        row = report.summary_row()
        assert row[0] == "test"
        assert len(row) == len(RunReport.summary_headers())


class TestAggregateReportsEdgeCases:
    def test_single_report_identity(self):
        # Folding one report must reproduce it exactly — every
        # aggregate and every per-request record.
        report = build_report("solo", tracked_run(), makespan=9.0)
        folded = aggregate_reports([report], system="solo")
        assert report_fingerprint(folded) == report_fingerprint(report)

    def test_zero_finished_requests(self):
        # A run where nothing ever started: registered requests with
        # no tokens, no TTFTs — aggregates must stay NaN-safe.
        tracker = RequestTracker()
        tracker.register(make_request(req_id=1))
        tracker.register(make_request(req_id=2))
        report = build_report("stalled", tracker, makespan=5.0)
        folded = aggregate_reports([report])
        assert folded.n_requests == 2
        assert folded.n_finished == 0
        assert folded.total_tokens == 0
        assert folded.throughput == 0.0
        assert math.isnan(folded.ttft_mean)
        assert math.isnan(folded.ttft_p99)
        assert folded.stall_total == 0.0

    def test_empty_instance_does_not_skew_makespan(self):
        # A cluster instance that served nothing reports n_requests=0
        # with the floor makespan; the aggregate must take its wall
        # from instances that actually served requests.
        busy = build_report("busy", tracked_run(), makespan=9.0)
        idle_tracker = RequestTracker()
        idle = build_report("idle", idle_tracker, makespan=0.0)
        folded = aggregate_reports([busy, idle])
        assert folded.makespan == busy.makespan
        assert folded.n_requests == busy.n_requests
        assert folded.throughput == pytest.approx(busy.throughput)
        assert folded.ttft_mean == pytest.approx(busy.ttft_mean)

    def test_all_instances_empty(self):
        reports = [build_report(f"n{i}", RequestTracker(), makespan=0.0)
                   for i in range(3)]
        folded = aggregate_reports(reports)
        assert folded.n_requests == 0
        assert folded.makespan == pytest.approx(1e-9)
        assert math.isnan(folded.ttft_mean)

    def test_no_reports_at_all(self):
        folded = aggregate_reports([])
        assert folded.n_requests == 0
        assert folded.preemptions == 0
