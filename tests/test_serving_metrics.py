"""Unit tests for metric collection and the run report."""

import math

import pytest

from repro.core.tracker import RequestTracker
from repro.serving.metrics import RunReport, build_report
from repro.workload.request import RequestState
from tests.conftest import make_request


def tracked_run():
    """Two finished requests with known token timings."""
    tracker = RequestTracker()
    fast = make_request(req_id=1, arrival=0.0, output=5, rate=10.0)
    slow = make_request(req_id=2, arrival=0.0, output=5, rate=10.0)
    for request in (fast, slow):
        tracker.register(request)
        request.transition(RequestState.PREFILLING)
        request.transition(RequestState.RUNNING)
    for idx in range(5):
        tracker.deliver_token(1, 0.5 + 0.1 * idx)      # ttft 0.5, steady
    for idx in range(5):
        tracker.deliver_token(2, 5.0 + 1.0 * idx)      # ttft 5, stalls
    for request in (fast, slow):
        request.transition(RequestState.FINISHED)
    tracker.mark_finished(1, 0.9)
    tracker.mark_finished(2, 9.0)
    return tracker


class TestBuildReport:
    def test_counts(self):
        report = build_report("test", tracked_run(), makespan=9.0)
        assert report.n_requests == 2
        assert report.n_finished == 2
        assert report.total_tokens == 10

    def test_throughput(self):
        report = build_report("test", tracked_run(), makespan=10.0)
        assert report.throughput == pytest.approx(1.0)

    def test_ttft_stats(self):
        report = build_report("test", tracked_run(), makespan=9.0)
        assert report.ttft_mean == pytest.approx((0.5 + 5.0) / 2)
        assert report.ttft_p50 == pytest.approx(2.75)

    def test_stalls_counted(self):
        report = build_report("test", tracked_run(), makespan=9.0)
        # Request 2 gets tokens 1 s apart but reads at 10 tok/s:
        # 0.9 s of stall per gap, four gaps.
        assert report.stall_total == pytest.approx(3.6)

    def test_effective_tokens_bounded_by_total(self):
        report = build_report("test", tracked_run(), makespan=9.0)
        assert 0 < report.effective_tokens <= report.total_tokens

    def test_qos_penalises_the_slow_request(self):
        report = build_report("test", tracked_run(), makespan=9.0)
        by_id = {m.req_id: m for m in report.per_request}
        assert by_id[1].qos_term > by_id[2].qos_term

    def test_per_request_fields(self):
        report = build_report("test", tracked_run(), makespan=9.0)
        metrics = report.per_request[0]
        assert metrics.generated == 5
        assert metrics.output_len == 5
        assert metrics.preemptions == 0

    def test_unstarted_request_has_nan_free_handling(self):
        tracker = RequestTracker()
        tracker.register(make_request(req_id=1))
        report = build_report("test", tracker, makespan=5.0)
        assert report.n_finished == 0
        assert math.isnan(report.ttft_mean)

    def test_summary_row_shape(self):
        report = build_report("test", tracked_run(), makespan=9.0)
        row = report.summary_row()
        assert row[0] == "test"
        assert len(row) == len(RunReport.summary_headers())
