"""Tests for closed-loop multi-turn sessions."""

import numpy as np
import pytest

from repro.core.scheduler import TokenFlowScheduler
from repro.serving.config import ServingConfig
from repro.serving.server import ServingSystem
from repro.workload.sessions import TURN_STRIDE, SessionDriver, SessionSpec


def make_system(mem_frac=0.02, max_batch=8):
    config = ServingConfig(hardware="h200", model="llama3-8b",
                           mem_frac=mem_frac, max_batch=max_batch)
    return ServingSystem(config, TokenFlowScheduler())


class TestSpec:
    def test_prompt_grows_with_history(self):
        spec = SessionSpec(session_id=0, question_tokens=50, answer_tokens=100)
        assert spec.prompt_len_at(0) == 50
        assert spec.prompt_len_at(1) == 200   # 50+100 history + 50
        assert spec.prompt_len_at(2) == 350

    def test_request_ids_partitioned(self):
        spec = SessionSpec(session_id=3)
        assert spec.request_id(2) == 3 * TURN_STRIDE + 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SessionSpec(session_id=0, n_turns=0)
        with pytest.raises(ValueError):
            SessionSpec(session_id=0, think_time_s=-1.0)
        with pytest.raises(ValueError):
            SessionSpec(session_id=0, question_tokens=0)


class TestDriver:
    def test_single_session_completes_all_turns(self):
        system = make_system()
        spec = SessionSpec(session_id=0, n_turns=3, think_time_s=2.0)
        driver = SessionDriver(system, [spec])
        driver.start()
        system.run(until=50_000.0)
        assert driver.all_done
        # All three turns tracked and finished.
        for turn in range(3):
            entry = system.tracker.get(spec.request_id(turn))
            assert entry.request.is_finished

    def test_follow_up_waits_for_reading_and_thinking(self):
        system = make_system()
        spec = SessionSpec(session_id=0, n_turns=2, answer_tokens=100,
                           rate=10.0, think_time_s=3.0)
        driver = SessionDriver(system, [spec])
        driver.start()
        system.run(until=50_000.0)
        first = system.tracker.get(spec.request_id(0))
        second = system.tracker.get(spec.request_id(1))
        read_done = first.buffer.final_consumption_time()
        # Turn 1 arrives only after reading (10s for 100 tokens) + think.
        assert second.request.arrival_time >= read_done + 3.0 - 1e-9

    def test_multiple_concurrent_sessions(self):
        system = make_system()
        sessions = [
            SessionSpec(session_id=i, n_turns=2, think_time_s=1.0,
                        first_arrival=0.2 * i)
            for i in range(6)
        ]
        driver = SessionDriver(system, sessions)
        driver.start()
        system.run(until=50_000.0)
        assert driver.all_done
        assert len(driver.completed_sessions) == 6

    def test_session_latency_reported(self):
        system = make_system()
        spec = SessionSpec(session_id=0, n_turns=2, think_time_s=1.0)
        driver = SessionDriver(system, [spec])
        driver.start()
        assert driver.session_latency(0) is None  # not finished yet
        system.run(until=50_000.0)
        latency = driver.session_latency(0)
        # Two answers read at 10 tok/s (19.2 s each) plus thinking.
        assert latency > 2 * spec.answer_tokens / spec.rate

    def test_randomised_think_time(self):
        system = make_system()
        spec = SessionSpec(session_id=0, n_turns=3, think_time_s=2.0)
        driver = SessionDriver(system, [spec], rng=np.random.default_rng(0))
        driver.start()
        system.run(until=100_000.0)
        assert driver.all_done

    def test_duplicate_session_ids_rejected(self):
        system = make_system()
        with pytest.raises(ValueError):
            SessionDriver(system, [SessionSpec(session_id=0),
                                   SessionSpec(session_id=0)])

    def test_second_hook_rejected(self):
        system = make_system()
        SessionDriver(system, [SessionSpec(session_id=0)])
        with pytest.raises(RuntimeError):
            SessionDriver(system, [SessionSpec(session_id=1)])

    def test_mixed_with_plain_requests(self):
        from repro.workload.request import Request
        system = make_system()
        driver = SessionDriver(
            system, [SessionSpec(session_id=0, n_turns=2, think_time_s=0.5)]
        )
        driver.start()
        # A plain request with an id outside the session partition.
        system.submit([Request(req_id=999_999, arrival_time=1.0,
                               prompt_len=64, output_len=32, rate=10.0)])
        system.run(until=50_000.0)
        assert driver.all_done
        assert system.unfinished == 0
