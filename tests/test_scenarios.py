"""Tests for the scenario layer: spec, registry, build_run pipeline,
and router determinism (same spec + seed => identical ClusterReport)."""

import dataclasses

import pytest

from repro.scenarios import (
    ScenarioSpec,
    build_run,
    get_scenario,
    list_scenarios,
    scenario_names,
)
from repro.serving.cluster import ClusterReport, ServingCluster
from repro.serving.metrics import RunReport
from repro.serving.routers import ROUTERS
from repro.serving.server import ServingSystem
from repro.workload.request import Request


def tiny_cluster_spec(router, replicas=2, seed=0):
    """A fast cluster scenario: small crowd, small KV pools."""
    return get_scenario(
        "cluster-burst-4x", scale=0.1, seed=seed,
        replicas=replicas, router=router,
    )


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", replicas=0)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", scale=0.0)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", router="warp_drive")

    def test_with_overrides_revalidates(self):
        spec = ScenarioSpec(name="x")
        assert spec.with_overrides(replicas=3).replicas == 3
        with pytest.raises(ValueError):
            spec.with_overrides(router="warp_drive")

    def test_workloadless_spec_requires_explicit_requests(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x").build_workload()


class TestRegistry:
    def test_families_registered(self):
        names = scenario_names()
        for gpu in ("h200", "rtx4090"):
            for key in "abcd":
                assert f"table1-{gpu}-{key}" in names
        assert "tab02-tokenflow-no-offload" in names
        assert "cluster-burst-4x" in names
        assert "bursty-sessions" in names
        assert "soak-steady" in names
        assert "soak-diurnal" in names

    def test_listing_has_descriptions(self):
        for name, description in list_scenarios():
            assert name and description

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            get_scenario("nope")

    def test_scale_propagates_to_workload_and_memory(self):
        small = get_scenario("table1-h200-a", scale=0.05)
        large = get_scenario("table1-h200-a", scale=0.25)
        assert len(small.build_workload()) < len(large.build_workload())
        assert small.mem_frac < large.mem_frac

    def test_overrides_apply(self):
        spec = get_scenario("table1-h200-a", scale=0.05,
                            replicas=4, router="buffer_aware")
        assert spec.replicas == 4 and spec.router == "buffer_aware"

    def test_bursty_sessions_workload_is_session_striped(self):
        spec = get_scenario("bursty-sessions", scale=0.2)
        requests = spec.build_workload()
        assert all(isinstance(r, Request) for r in requests)
        assert all(r.session_id is not None for r in requests)
        sessions = {r.session_id for r in requests}
        assert len(sessions) > 1
        times = [r.arrival_time for r in requests]
        assert times == sorted(times)


class TestBuildRun:
    def test_single_replica_builds_system(self):
        run = build_run(get_scenario("table1-h200-a", scale=0.05))
        assert isinstance(run.target, ServingSystem)
        assert not run.is_cluster
        report = run.execute()
        assert isinstance(report, RunReport)
        assert report.n_finished == report.n_requests > 0

    def test_multi_replica_builds_cluster(self):
        run = build_run(tiny_cluster_spec("least_loaded"))
        assert isinstance(run.target, ServingCluster)
        assert run.is_cluster
        report = run.execute()
        assert isinstance(report, ClusterReport)
        assert report.n_finished == report.n_requests > 0
        assert len(report.per_instance) == 2

    def test_cluster_reports_label_system(self):
        run = build_run(tiny_cluster_spec("round_robin"))
        report = run.execute()
        assert all(r.system == "tokenflow" for r in report.per_instance)

    def test_explicit_requests_override_workload(self):
        requests = [
            Request(req_id=i, arrival_time=0.0, prompt_len=32,
                    output_len=8, rate=10.0)
            for i in range(3)
        ]
        run = build_run(get_scenario("table1-h200-a", scale=0.05),
                        requests=requests)
        report = run.execute()
        assert report.n_requests == 3

    def test_unfinished_at_horizon_raises(self):
        spec = get_scenario("table1-h200-a", scale=0.05,
                            horizon=0.001)
        with pytest.raises(RuntimeError, match="unfinished"):
            build_run(spec).execute()


def _report_fingerprint(report: ClusterReport) -> tuple:
    """Every aggregate number plus per-request detail, exact."""
    per_request = tuple(
        sorted(
            (m.req_id, m.ttft, m.finish_time, m.generated, m.stall_time,
             m.effective_tokens, m.preemptions)
            for instance in report.per_instance
            for m in instance.per_request
        )
    )
    return (
        report.n_requests, report.n_finished, report.total_tokens,
        report.throughput, report.effective_throughput, report.qos,
        report.ttft_mean, report.ttft_p50, report.ttft_p99,
        report.stall_total, report.preemptions, per_request,
    )


class TestRouterDeterminism:
    """Satellite: same ScenarioSpec + seed => identical ClusterReport
    across repeated runs, for every registered router."""

    @pytest.mark.parametrize("router", sorted(ROUTERS))
    def test_repeat_runs_identical(self, router):
        fingerprints = []
        placements = []
        for _ in range(2):
            run = build_run(tiny_cluster_spec(router))
            report = run.execute()
            fingerprints.append(_report_fingerprint(report))
            placements.append(run.target.placement_counts())
        assert fingerprints[0] == fingerprints[1]
        assert placements[0] == placements[1]

    @pytest.mark.parametrize("router", sorted(ROUTERS))
    def test_session_workload_repeat_runs_identical(self, router):
        fingerprints = []
        for _ in range(2):
            spec = get_scenario("bursty-sessions", scale=0.2, router=router)
            report = build_run(spec).execute()
            fingerprints.append(_report_fingerprint(report))
        assert fingerprints[0] == fingerprints[1]

    def test_seed_changes_workload(self):
        a = build_run(tiny_cluster_spec("least_loaded", seed=0)).execute()
        b = build_run(tiny_cluster_spec("least_loaded", seed=1)).execute()
        assert _report_fingerprint(a) != _report_fingerprint(b)

    def test_router_instance_on_spec_does_not_leak_state(self):
        """A Router *instance* in the spec is copied per run, so its
        stripe counter / sticky maps never carry across runs."""
        from repro.serving.routers import RoundRobinRouter

        spec = tiny_cluster_spec(RoundRobinRouter(), replicas=3)
        placements = []
        for _ in range(2):
            run = build_run(spec)
            run.execute()
            placements.append(run.target.placement_counts())
        assert placements[0] == placements[1]


class TestRouterBehaviour:
    def test_session_affinity_pins_conversations(self):
        spec = get_scenario("bursty-sessions", scale=0.3)
        run = build_run(spec)
        run.execute()
        cluster = run.target
        by_session: dict = {}
        for req_id, idx in cluster.placements.items():
            session = req_id // 1000  # TURN_STRIDE partitioning
            by_session.setdefault(session, set()).add(idx)
        # Every conversation stayed on one instance.
        assert all(len(nodes) == 1 for nodes in by_session.values())
        # And the cluster as a whole used more than one instance.
        used = {idx for nodes in by_session.values() for idx in nodes}
        assert len(used) > 1

    def test_buffer_aware_spreads_a_burst(self):
        run = build_run(tiny_cluster_spec("buffer_aware", replicas=3))
        run.execute()
        counts = run.target.placement_counts()
        assert all(count > 0 for count in counts)


class TestExecuteErrorPaths:
    def test_unfinished_requests_raise_at_horizon(self):
        # A horizon shorter than the workload's service time must fail
        # loudly (mis-sized workload), naming the scenario and count.
        spec = get_scenario("table1-h200-a", scale=0.1, horizon=0.5)
        run = build_run(spec)
        with pytest.raises(RuntimeError, match="unfinished at horizon"):
            run.execute()

    def test_unfinished_error_names_the_scenario(self):
        spec = get_scenario("table1-h200-a", scale=0.1, horizon=0.5)
        with pytest.raises(RuntimeError, match="table1-h200-a"):
            build_run(spec).execute()

    def test_streamed_execute_also_raises(self):
        # The feed() path shares the horizon guard: pending stream
        # arrivals past the horizon count as unfinished.
        spec = get_scenario("soak-steady", scale=0.01, horizon=2.0)
        with pytest.raises(RuntimeError, match="unfinished at horizon"):
            build_run(spec).execute()

    def test_workloadless_spec_requires_requests(self):
        from repro.scenarios.spec import ScenarioSpec

        spec = ScenarioSpec(name="adhoc")
        with pytest.raises(ValueError, match="workload factory"):
            build_run(spec)
