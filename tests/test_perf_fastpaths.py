"""Equivalence and whitebox tests for the incremental hot paths.

The perf refactor (closed-form buffer occupancy, tracker memoisation,
KV dirty-set, drain fast path) must be *behaviour-preserving to the
bit*.  These tests pin that claim:

* the segment-cursor :class:`ClientBuffer` against a reference
  re-implementation of the original per-token pointer scan, over
  random delivery/stall/rate-change traces;
* tracker memo invalidation on same-instant deliveries and mid-stream
  ``set_rate``;
* run reports with token traces on vs off;
* chunked-write drain ordering (priority desc, registration asc) and
  the uniform-backlog fast path.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.client.buffer import ClientBuffer
from repro.core.scheduler import TokenFlowScheduler
from repro.core.tracker import RequestTracker
from repro.memory.kv_manager import HierarchicalKVManager, KVManagerConfig
from repro.serving.config import ServingConfig
from repro.serving.export import report_to_dict
from repro.serving.server import ServingSystem
from repro.sim.engine import SimEngine
from repro.sim.rng import RngStreams
from repro.workload.builder import RateMixture, WorkloadBuilder, WorkloadSpec
from tests.conftest import make_request


class ReferenceBuffer:
    """The original O(tokens) pointer-scan consumption model, verbatim.

    Kept as the oracle: the production buffer's closed-form cursor must
    reproduce these floats exactly (same additions in the same order).
    """

    def __init__(self, rate):
        self.rate = rate
        self._interval = 1.0 / rate
        self._gen_times = []
        self._consume_times = []
        self._stall_time = 0.0
        self._occupancy_at_gen = []
        self._consumed_ptr = 0

    def set_rate(self, rate):
        if rate != self.rate:
            self.rate = rate
            self._interval = 1.0 / rate

    def deliver(self, timestamp):
        if self._gen_times and timestamp < self._gen_times[-1]:
            raise ValueError("deliveries must have non-decreasing timestamps")
        if self._consume_times:
            ideal = self._consume_times[-1] + self._interval
            consume = max(ideal, timestamp)
            if timestamp > ideal:
                self._stall_time += timestamp - ideal
        else:
            consume = timestamp
        self._gen_times.append(timestamp)
        self._consume_times.append(consume)
        self._occupancy_at_gen.append(self.occupancy(timestamp))

    def consumed_count(self, now):
        while (
            self._consumed_ptr < len(self._consume_times)
            and self._consume_times[self._consumed_ptr] <= now
        ):
            self._consumed_ptr += 1
        return self._consumed_ptr

    def occupancy(self, now):
        return len(self._gen_times) - self.consumed_count(now)

    def drain_deadline(self, now):
        return self.occupancy(now) * self._interval


# One trace step: (gap to next delivery, optional new rate, query offset).
steps = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1.5),
        st.one_of(st.none(), st.floats(min_value=0.5, max_value=40.0)),
        st.floats(min_value=0.0, max_value=2.0),
    ),
    min_size=1,
    max_size=120,
)
rates = st.floats(min_value=0.5, max_value=50.0)


class TestClosedFormEquivalence:
    @given(rate=rates, trace=steps)
    @settings(max_examples=300, deadline=None)
    def test_matches_pointer_scan_bit_for_bit(self, rate, trace):
        fast = ClientBuffer(rate=rate)
        reference = ReferenceBuffer(rate=rate)
        t = 0.0
        for gap, new_rate, query_offset in trace:
            if new_rate is not None:
                fast.set_rate(new_rate)
                reference.set_rate(new_rate)
            t += gap
            fast.deliver(t)
            reference.deliver(t)
            # Queries are non-decreasing (monotone simulation time).
            now = t + query_offset
            assert fast.occupancy(now) == reference.occupancy(now)
            assert fast.drain_deadline(now) == reference.drain_deadline(now)
            t = now
        assert fast.stall_time == reference._stall_time
        assert fast.consumption_times == reference._consume_times
        assert fast.generation_times == reference._gen_times
        assert fast.occupancy_at_generation == reference._occupancy_at_gen
        hist = {}
        for occ in reference._occupancy_at_gen:
            hist[occ] = hist.get(occ, 0) + 1
        assert dict(fast.occupancy_histogram) == hist

    @given(rate=rates, trace=steps)
    @settings(max_examples=100, deadline=None)
    def test_trace_off_matches_trace_on(self, rate, trace):
        lean = ClientBuffer(rate=rate, record_trace=False)
        full = ClientBuffer(rate=rate, record_trace=True)
        t = 0.0
        for gap, new_rate, query_offset in trace:
            if new_rate is not None:
                lean.set_rate(new_rate)
                full.set_rate(new_rate)
            t += gap
            lean.deliver(t)
            full.deliver(t)
            now = t + query_offset
            assert lean.occupancy(now) == full.occupancy(now)
            t = now
        assert lean.stall_time == full.stall_time
        assert dict(lean.occupancy_histogram) == dict(full.occupancy_histogram)
        assert lean.final_consumption_time() == full.final_consumption_time()
        with pytest.raises(RuntimeError):
            lean.consumption_times


class TestDeliveryGuards:
    def test_backwards_delivery_rejected_after_stall(self):
        buffer = ClientBuffer(rate=10.0)
        buffer.deliver(0.0)
        buffer.deliver(1.0)   # stall re-bases consumption at t=1.0
        with pytest.raises(ValueError):
            buffer.deliver(0.5)

    def test_backwards_delivery_rejected_without_trace(self):
        buffer = ClientBuffer(rate=10.0, record_trace=False)
        buffer.deliver(1.0)
        with pytest.raises(ValueError):
            buffer.deliver(0.999)


class TestTrackerMemo:
    def test_same_instant_queries_are_memoised(self):
        tracker = RequestTracker()
        tracker.register(make_request(req_id=1, output=32, rate=10.0))
        for idx in range(10):
            tracker.deliver_token(1, 0.01 * idx)
        first = tracker.occupancy(1, 0.1)
        # A second query at the same instant must hit the memo (same
        # object identity for the cached tuple entry).
        entry = tracker._memo_occ[1]
        assert tracker.occupancy(1, 0.1) == first
        assert tracker._memo_occ[1] is entry

    def test_deliver_invalidates_memo_at_same_instant(self):
        tracker = RequestTracker()
        tracker.register(make_request(req_id=1, output=32, rate=10.0))
        tracker.deliver_token(1, 0.0)
        assert tracker.occupancy(1, 0.05) == 0  # token 0 consumed at 0.0
        tracker.deliver_token(1, 0.05)
        # Same `now`, but the delivery just changed the buffer: the
        # memo entry must have been dropped and recomputed.
        assert tracker.occupancy(1, 0.05) == 1

    def test_set_rate_mid_stream_bypasses_memoised_seconds(self):
        tracker = RequestTracker()
        tracker.register(make_request(req_id=1, output=64, rate=10.0))
        for idx in range(10):
            tracker.deliver_token(1, 0.01 * idx)
        now = 0.1
        occupancy = tracker.occupancy(1, now)
        assert tracker.buffer_seconds(1, now) == occupancy * (1.0 / 10.0)
        # Adaptive controllers mutate the buffer's rate directly; the
        # occupancy memo must still be valid while the derived seconds
        # pick up the new interval immediately.
        tracker.get(1).buffer.set_rate(20.0)
        assert tracker.occupancy(1, now) == occupancy
        assert tracker.buffer_seconds(1, now) == occupancy * (1.0 / 20.0)

    def test_min_buffer_seconds_matches_scalar_queries(self):
        tracker = RequestTracker()
        requests = []
        for rid, rate in ((1, 10.0), (2, 5.0), (3, 25.0)):
            request = make_request(req_id=rid, output=64, rate=rate)
            tracker.register(request)
            requests.append(request)
            for idx in range(rid * 3):
                tracker.deliver_token(rid, 0.01 * idx)
        now = 0.5
        expected = min(tracker.buffer_seconds(r.req_id, now) for r in requests)
        assert tracker.min_buffer_seconds(requests, now) == expected
        with pytest.raises(ValueError):
            tracker.min_buffer_seconds([], now)


class TestReportTraceParity:
    def _run(self, record_traces: bool):
        spec = WorkloadSpec(
            arrival="burst", n_requests=12, burst_spread=0.25,
            rates=RateMixture.fixed(10.0),
        )
        requests = WorkloadBuilder(spec, RngStreams(7)).build()
        config = ServingConfig(
            hardware="h200", model="llama3-8b", mem_frac=0.01, max_batch=4,
            record_token_traces=record_traces,
        )
        system = ServingSystem(config, TokenFlowScheduler())
        system.submit(requests)
        system.run(until=50_000.0)
        assert system.unfinished == 0
        return system.report()

    def test_reports_identical_with_and_without_traces(self):
        lean = report_to_dict(self._run(False))
        full = report_to_dict(self._run(True))
        assert lean == full


class TestDrainWriteOrdering:
    def _manager(self, kv_bytes_per_token=1.0):
        return HierarchicalKVManager(
            engine=SimEngine(),
            gpu_capacity_blocks=1024,
            kv_bytes_per_token=kv_bytes_per_token,
            pcie_bandwidth_bytes_per_s=1.0,  # 1 byte/s: tight budgets
            config=KVManagerConfig(block_size=16),
        )

    def _resident(self, kv, req_id, gpu_tokens):
        kv.register(req_id)
        kv.allocate_for_prefill(req_id, gpu_tokens)
        kv.on_prefill_complete(req_id, gpu_tokens)

    def test_priority_order_when_budget_is_scarce(self):
        kv = self._manager()
        self._resident(kv, 1, 8)    # dirty tails: 8, 24, 8 tokens
        self._resident(kv, 2, 24)
        self._resident(kv, 3, 8)
        priorities = {1: 1.0, 2: 5.0, 3: 9.0}
        # Budget of 10 bytes = 10 tokens: the highest-priority record
        # (3) syncs fully, then (2) gets the remaining 2 tokens.
        synced = kv.drain_writes(0.0, 10.0, priority=lambda r: priorities[r])
        assert synced == 10
        assert kv.record(3).cpu_tokens == 8
        assert kv.record(2).cpu_tokens == 2
        assert kv.record(1).cpu_tokens == 0
        kv.check_invariants()

    def test_priority_ties_break_by_registration_order(self):
        kv = self._manager()
        self._resident(kv, 5, 8)
        self._resident(kv, 2, 8)   # registered second despite lower id
        synced = kv.drain_writes(0.0, 8.0, priority=lambda r: 0.0)
        assert synced == 8
        assert kv.record(5).cpu_tokens == 8   # first registered wins the tie
        assert kv.record(2).cpu_tokens == 0

    def test_uniform_fast_path_matches_full_sync(self):
        kv = self._manager()
        for rid in (1, 2, 3):
            self._resident(kv, rid, 8)
        # Ample budget + uniform tails: the no-sort fast path must sync
        # everything and empty the dirty set.
        synced = kv.drain_writes(0.0, 1_000.0, priority=lambda r: float(r))
        assert synced == 24
        assert kv.write_backlog_tokens() == 0
        for rid in (1, 2, 3):
            assert kv.record(rid).cpu_tokens == 8
        kv.check_invariants()
