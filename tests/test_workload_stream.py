"""Streaming workload plane: stream-vs-materialised parity.

The whole plane rests on one invariant: a workload stream yields the
*same* request sequence its materialised spelling builds (numpy
``Generator`` draws are sequence-stable across batch splits, and every
sampler owns an independent named RNG stream).  These tests pin that
invariant for every arrival process, plus the bounded-draw behaviour
that motivated the streaming rewrite of ``poisson_arrivals``.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.sim.rng import RngStreams
from repro.workload.arrivals import (
    burst_arrival_stream,
    gamma_arrival_stream,
    gamma_arrivals,
    poisson_arrival_stream,
    poisson_arrivals,
)
from repro.workload.builder import RateMixture, WorkloadBuilder, WorkloadSpec
from repro.workload.lengths import NormalLengthSampler
from repro.workload.production import ProductionTraceGenerator
from repro.workload.request import Request
from repro.workload.stream import materialize, ordered, stream_workload


def rng(seed=0):
    return np.random.default_rng(seed)


class TestArrivalStreamParity:
    def test_poisson_stream_matches_list_factory(self):
        times = poisson_arrivals(5.0, 30.0, rng())
        streamed = list(poisson_arrival_stream(5.0, 30.0, rng()))
        assert np.array_equal(times, np.asarray(streamed))

    def test_poisson_chunking_does_not_change_times(self, monkeypatch):
        # Chunk boundaries must be invisible to the produced gap
        # sequence: numpy Generator draws are sequence-stable, so a
        # tiny chunk cap yields exactly the default-cap timestamps.
        import repro.workload.arrivals as arrivals_mod

        baseline = list(poisson_arrival_stream(50.0, 20.0, rng(7)))
        monkeypatch.setattr(arrivals_mod, "_GAP_CHUNK", 13)
        chunked = list(poisson_arrival_stream(50.0, 20.0, rng(7)))
        assert baseline == chunked
        assert chunked == sorted(chunked)

    def test_poisson_stream_is_lazy(self):
        # Pulling a handful of arrivals from a million-request-scale
        # process must not draw the whole horizon's gaps.
        stream = poisson_arrival_stream(1000.0, 1e6, rng())
        first = list(itertools.islice(stream, 10))
        assert len(first) == 10
        assert first == sorted(first)

    def test_gamma_stream_matches_list_factory(self):
        times = gamma_arrivals(3.0, 2.0, 40.0, rng(3))
        streamed = list(gamma_arrival_stream(3.0, 2.0, 40.0, rng(3)))
        assert np.array_equal(times, np.asarray(streamed))

    def test_burst_stream_matches_list_factory(self):
        streamed = list(burst_arrival_stream(32, spread=0.5, rng=rng(1)))
        assert len(streamed) == 32
        assert streamed == sorted(streamed)

    def test_production_stream_matches_generate(self):
        generator = ProductionTraceGenerator(mean_rate=4.0)
        times = generator.generate(120.0, rng(9))
        streamed = list(generator.generate_stream(120.0, rng(9)))
        assert np.array_equal(times, np.asarray(streamed))

    def test_poisson_validation(self):
        with pytest.raises(ValueError):
            list(poisson_arrival_stream(0.0, 10.0, rng()))
        with pytest.raises(ValueError):
            list(poisson_arrival_stream(1.0, 0.0, rng()))


class TestBuilderStreamParity:
    @pytest.mark.parametrize("arrival", ["burst", "poisson", "burstgpt", "production"])
    def test_stream_equals_build(self, arrival):
        spec = WorkloadSpec(
            arrival=arrival,
            n_requests=48,
            duration=30.0,
            poisson_rate=4.0,
            lengths=NormalLengthSampler(),
            rates=RateMixture.fixed(10.0),
        )
        built = WorkloadBuilder(spec, RngStreams(11)).build()
        streamed = list(WorkloadBuilder(spec, RngStreams(11)).stream())
        assert len(built) == len(streamed)
        for a, b in zip(built, streamed):
            assert (a.req_id, a.arrival_time, a.prompt_len, a.output_len, a.rate) == (
                b.req_id, b.arrival_time, b.prompt_len, b.output_len, b.rate
            )

    def test_request_cap_stops_the_stream(self):
        spec = WorkloadSpec(arrival="poisson", n_requests=10, duration=1e5,
                            poisson_rate=100.0)
        streamed = list(WorkloadBuilder(spec, RngStreams(0)).stream())
        assert len(streamed) == 10

    def test_stream_workload_helper(self):
        spec = WorkloadSpec(arrival="burst", n_requests=8, burst_spread=0.0)
        assert len(materialize(stream_workload(spec, RngStreams(0)))) == 8


class TestOrderedGuard:
    def test_passes_ordered_streams(self):
        reqs = [Request(req_id=i, arrival_time=float(i), prompt_len=8,
                        output_len=8, rate=10.0) for i in range(5)]
        assert list(ordered(iter(reqs))) == reqs

    def test_rejects_out_of_order(self):
        reqs = [
            Request(req_id=0, arrival_time=5.0, prompt_len=8, output_len=8, rate=10.0),
            Request(req_id=1, arrival_time=1.0, prompt_len=8, output_len=8, rate=10.0),
        ]
        with pytest.raises(ValueError, match="out of order"):
            list(ordered(iter(reqs)))
