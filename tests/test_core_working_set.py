"""Unit tests for working-set sizing and admission (Eq. 4-5)."""

import pytest

from repro.core.working_set import WorkingSetParams, WorkingSetPolicy


def make_policy(capacity_tokens=64_000, **kwargs) -> WorkingSetPolicy:
    return WorkingSetPolicy(capacity_tokens, WorkingSetParams(**kwargs))


class TestBeta:
    def test_initial_beta(self):
        policy = make_policy(initial_beta_tokens=1000.0)
        assert policy.beta() == 1000.0

    def test_beta_learns_from_observations(self):
        policy = make_policy(beta_window=4)
        for _ in range(4):
            policy.observe_footprint(2000)
        assert policy.beta() == pytest.approx(2000.0)

    def test_invalid_footprint_rejected(self):
        with pytest.raises(ValueError):
            make_policy().observe_footprint(0)


class TestSizing:
    def test_w_static_eq4(self):
        policy = make_policy(initial_beta_tokens=1000.0)
        assert policy.w_static() == 64  # 64000 / 1000

    def test_w_static_at_least_one(self):
        policy = make_policy(capacity_tokens=100, initial_beta_tokens=1000.0)
        assert policy.w_static() == 1

    def test_w_max_overcommits(self):
        policy = make_policy(initial_beta_tokens=1000.0, overcommit_factor=2.0)
        assert policy.w_max() == 128

    def test_w_scheduled_scales_down_when_idle(self):
        policy = make_policy(initial_beta_tokens=1000.0, adjust_rate=0.5)
        idle = policy.w_scheduled(0)
        busy = policy.w_scheduled(60)
        assert idle < busy

    def test_w_scheduled_saturates_at_w_max(self):
        policy = make_policy(initial_beta_tokens=1000.0)
        assert policy.w_scheduled(10_000) == policy.w_max()

    def test_w_scheduled_at_least_n_running(self):
        policy = make_policy(initial_beta_tokens=1000.0)
        for n in (0, 10, 50, 100):
            assert policy.w_scheduled(n) >= min(n, policy.w_max())

    def test_negative_running_rejected(self):
        with pytest.raises(ValueError):
            make_policy().w_scheduled(-1)


class TestAdmission:
    def test_buffer_requirement_formula(self):
        policy = make_policy(safety_factor=2.0, schedule_latency=0.5)
        required = policy.admission_buffer_requirement(
            rate=10.0, tau_evict=0.1, tau_load=0.4
        )
        assert required == pytest.approx(2.0 * 10.0 * (0.1 + 0.4 + 0.5))

    def test_safety_factor_scales_requirement(self):
        relaxed = make_policy(safety_factor=1.0)
        cautious = make_policy(safety_factor=20.0)
        assert cautious.admission_buffer_requirement(10.0, 0.1, 0.1) == pytest.approx(
            20 * relaxed.admission_buffer_requirement(10.0, 0.1, 0.1)
        )

    def test_is_preemption_safe(self):
        policy = make_policy(safety_factor=2.0, schedule_latency=0.5)
        need = policy.admission_buffer_requirement(10.0, 0.1, 0.4)
        assert policy.is_preemption_safe(need, 10.0, 0.1, 0.4)
        assert not policy.is_preemption_safe(need - 1, 10.0, 0.1, 0.4)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            make_policy().admission_buffer_requirement(0.0, 0.1, 0.1)


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkingSetParams(overcommit_factor=0.5)
        with pytest.raises(ValueError):
            WorkingSetParams(adjust_rate=1.5)
        with pytest.raises(ValueError):
            WorkingSetParams(safety_factor=0.5)
        with pytest.raises(ValueError):
            WorkingSetParams(schedule_latency=-1.0)
        with pytest.raises(ValueError):
            WorkingSetPolicy(0.0)
