"""Unit tests for the experiment system factory."""

import pytest

from repro.baselines import AndesScheduler, SGLangChunkedScheduler, SGLangScheduler
from repro.core.scheduler import TokenFlowScheduler
from repro.experiments.systems import (
    ABLATION_NAMES,
    SYSTEM_NAMES,
    build_system,
    make_kv_config,
    make_scheduler,
)


class TestSchedulerFactory:
    def test_all_names_build(self):
        for name in SYSTEM_NAMES + ABLATION_NAMES:
            assert make_scheduler(name) is not None

    def test_types(self):
        assert isinstance(make_scheduler("sglang"), SGLangScheduler)
        assert isinstance(make_scheduler("sglang-chunked"), SGLangChunkedScheduler)
        assert isinstance(make_scheduler("andes"), AndesScheduler)
        assert isinstance(make_scheduler("tokenflow"), TokenFlowScheduler)
        assert isinstance(make_scheduler("tokenflow-no-offload"), TokenFlowScheduler)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            make_scheduler("vllm")


class TestKVFactory:
    def test_baselines_have_no_offload(self):
        for name in ("sglang", "sglang-chunked", "andes"):
            assert not make_kv_config(name).enable_offload

    def test_tokenflow_full_codesign(self):
        config = make_kv_config("tokenflow")
        assert config.enable_offload
        assert config.write_through
        assert config.load_evict_overlap

    def test_ablations_disable_one_feature_each(self):
        assert not make_kv_config("tokenflow-no-offload").enable_offload
        assert not make_kv_config("tokenflow-no-writethrough").write_through
        assert not make_kv_config("tokenflow-no-overlap").load_evict_overlap

    def test_block_size_propagates(self):
        assert make_kv_config("tokenflow", block_size=32).block_size == 32

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            make_kv_config("orca")


class TestBuildSystem:
    def test_report_labelled_with_system_name(self):
        system = build_system("tokenflow-no-offload", mem_frac=0.05)
        assert system.scheduler.name == "tokenflow-no-offload"

    def test_settings_propagate(self):
        system = build_system("sglang", hardware="a6000", model="qwen2-7b",
                              max_batch=16)
        assert system.config.hardware.name == "a6000"
        assert system.config.model.name == "qwen2-7b"
        assert system.config.max_batch == 16
