"""Unit tests for the baseline schedulers (SGLang, chunked, Andes)."""

import pytest

from repro.baselines import AndesParams, AndesScheduler, SGLangChunkedScheduler, SGLangScheduler
from repro.memory.kv_manager import KVManagerConfig
from repro.serving.config import ServingConfig
from repro.serving.server import ServingSystem
from repro.workload.request import Request


def burst(n, prompt=64, output=64, rate=10.0):
    return [
        Request(req_id=i, arrival_time=0.0, prompt_len=prompt,
                output_len=output, rate=rate)
        for i in range(n)
    ]


def run_system(scheduler, n=8, prompt=64, output=128, rate=10.0,
               mem_frac=0.002, max_batch=4, offload=False):
    # Baselines have no hierarchical offload: preemptions drop the KV
    # cache (recompute-based restore), matching the paper's wiring.
    config = ServingConfig(
        hardware="h200", model="llama3-8b", mem_frac=mem_frac,
        max_batch=max_batch, kv=KVManagerConfig(enable_offload=offload),
    )
    system = ServingSystem(config, scheduler)
    system.submit(burst(n, prompt=prompt, output=output, rate=rate))
    system.run(until=10_000.0)
    assert system.unfinished == 0
    return system


class TestSGLang:
    def test_no_periodic_tick(self):
        assert SGLangScheduler().tick_interval is None

    def test_completes_burst_fcfs(self):
        system = run_system(SGLangScheduler())
        report = system.report()
        assert report.n_finished == 8
        # Pure FCFS without memory pressure preemptions: TTFTs follow
        # arrival (= req_id) order.
        ttfts = {m.req_id: m.ttft for m in report.per_request}
        ordered = [ttfts[i] for i in range(8)]
        assert ordered == sorted(ordered)

    def test_head_of_line_blocking_under_memory_pressure(self):
        """Later requests wait for earlier ones: P99 TTFT >> P50."""
        system = run_system(SGLangScheduler(), n=24, prompt=256, output=256)
        report = system.report()
        assert report.ttft_p99 > 1.8 * report.ttft_p50

    def test_admission_watermark_validated(self):
        with pytest.raises(ValueError):
            SGLangScheduler(admission_watermark_frac=1.0)

    def test_scheduling_cost_tiny(self):
        assert SGLangScheduler().scheduling_cost_s() < 1e-3


class TestSGLangChunked:
    def test_wants_chunked_prefill(self):
        assert SGLangChunkedScheduler.wants_chunked_prefill

    def test_completes_burst(self):
        system = run_system(SGLangChunkedScheduler(), n=8, prompt=256)
        assert system.report().n_finished == 8
        # Chunked prefill ran more (smaller) prefill iterations than
        # whole-prompt prefill would need.
        assert system.executor.stats.prefill_iterations >= 2


class TestAndes:
    def test_params_validation(self):
        with pytest.raises(ValueError):
            AndesParams(tick_interval=0.0)
        with pytest.raises(ValueError):
            AndesParams(ahead_threshold_s=-1.0)
        with pytest.raises(ValueError):
            AndesParams(max_preempts_per_tick=0)

    def test_completes_burst(self):
        system = run_system(AndesScheduler(), n=10, prompt=256, output=256)
        assert system.report().n_finished == 10

    def test_preempts_under_pressure(self):
        system = run_system(AndesScheduler(), n=12, prompt=256, output=512)
        assert system.report().preemptions > 0

    def test_recompute_based_restore(self):
        """Andes drops KV on preemption: loads never happen."""
        system = run_system(AndesScheduler(), n=12, prompt=256, output=512)
        assert system.kv.stats["loads"] == 0
        assert system.kv.stats["recompute_drops"] >= 1

    def test_improves_ttft_over_sglang_in_burst(self):
        sglang = run_system(SGLangScheduler(), n=16, prompt=256, output=512)
        andes = run_system(AndesScheduler(), n=16, prompt=256, output=512)
        assert andes.report().ttft_p99 < sglang.report().ttft_p99

    def test_loses_throughput_to_sglang(self):
        """The paper's observation: recompute preemption wastes compute."""
        sglang = run_system(SGLangScheduler(), n=16, prompt=256, output=512)
        andes = run_system(AndesScheduler(), n=16, prompt=256, output=512)
        assert andes.report().throughput <= sglang.report().throughput * 1.05
