"""Unit + behaviour tests for the FastServe-style MLFQ baseline."""

import pytest

from repro.baselines import MLFQParams, MLFQScheduler, SGLangScheduler
from repro.experiments.runner import run_comparison
from repro.memory.kv_manager import KVManagerConfig
from repro.serving.config import ServingConfig
from repro.serving.server import ServingSystem
from repro.sim.rng import RngStreams
from repro.workload.builder import RateMixture, WorkloadBuilder, WorkloadSpec
from repro.workload.lengths import NormalLengthSampler
from repro.workload.request import Request


def run_system(scheduler, requests, mem_frac=0.002, max_batch=4):
    config = ServingConfig(
        hardware="h200", model="llama3-8b", mem_frac=mem_frac,
        max_batch=max_batch, kv=KVManagerConfig(enable_offload=False),
    )
    system = ServingSystem(config, scheduler)
    system.submit(requests)
    system.run(until=50_000.0)
    assert system.unfinished == 0
    return system


def burst(n, prompt=128, output=128, rate=10.0):
    return [
        Request(req_id=i, arrival_time=0.0, prompt_len=prompt,
                output_len=output, rate=rate)
        for i in range(n)
    ]


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            MLFQParams(tick_interval=0.0)
        with pytest.raises(ValueError):
            MLFQParams(n_levels=0)
        with pytest.raises(ValueError):
            MLFQParams(base_quantum_tokens=0)
        with pytest.raises(ValueError):
            MLFQParams(skip_join_threshold=0)


class TestLevels:
    def test_skip_join_by_prompt_length(self):
        scheduler = MLFQScheduler(MLFQParams(skip_join_threshold=512, n_levels=4))
        assert scheduler.initial_level(100) == 0
        assert scheduler.initial_level(600) == 1
        assert scheduler.initial_level(1200) == 2
        assert scheduler.initial_level(99_999) == 3  # clamped

    def test_quantum_doubles_per_level(self):
        scheduler = MLFQScheduler(MLFQParams(base_quantum_tokens=64))
        assert scheduler.quantum(0) == 64
        assert scheduler.quantum(2) == 256

    def test_demotion_after_quantum(self):
        scheduler = MLFQScheduler(MLFQParams(base_quantum_tokens=4, n_levels=3))
        request = Request(req_id=0, arrival_time=0.0, prompt_len=64,
                          output_len=64, rate=10.0)
        assert scheduler.level_of(request) == 0
        request.generated = 5  # beyond the level-0 quantum
        scheduler.note_progress(request)
        assert scheduler.level_of(request) == 1

    def test_no_demotion_below_last_level(self):
        scheduler = MLFQScheduler(MLFQParams(base_quantum_tokens=1, n_levels=2))
        request = Request(req_id=0, arrival_time=0.0, prompt_len=64,
                          output_len=64, rate=10.0)
        scheduler.level_of(request)
        request.generated = 100
        scheduler.note_progress(request)
        scheduler.note_progress(request)
        assert scheduler.level_of(request) == 1


class TestBehaviour:
    def test_completes_burst(self):
        system = run_system(MLFQScheduler(), burst(10, prompt=256, output=256))
        assert system.report().n_finished == 10

    def test_short_prompts_finish_before_long_under_pressure(self):
        """Skip-join favours short prompts: their mean TTFT is lower."""
        short = [Request(req_id=i, arrival_time=0.0, prompt_len=128,
                         output_len=128, rate=10.0) for i in range(6)]
        long_ = [Request(req_id=100 + i, arrival_time=0.0, prompt_len=1400,
                         output_len=128, rate=10.0) for i in range(6)]
        system = run_system(MLFQScheduler(), short + long_, mem_frac=0.003)
        report = system.report()
        short_ttft = [m.ttft for m in report.per_request if m.req_id < 100]
        long_ttft = [m.ttft for m in report.per_request if m.req_id >= 100]
        assert sum(short_ttft) / len(short_ttft) < sum(long_ttft) / len(long_ttft)

    def test_recompute_based_restore(self):
        system = run_system(MLFQScheduler(), burst(12, prompt=256, output=384))
        assert system.kv.stats["loads"] == 0

    def test_factory_integration(self):
        spec = WorkloadSpec(
            arrival="burst", n_requests=8,
            lengths=NormalLengthSampler(prompt_mean=128, prompt_std=16,
                                        output_mean=96, output_std=16),
            rates=RateMixture.fixed(10.0),
        )
        requests = WorkloadBuilder(spec, RngStreams(0)).build()
        reports = run_comparison(("mlfq", "tokenflow"), requests,
                                 mem_frac=0.01, max_batch=8)
        assert reports["mlfq"].n_finished == 8

    def test_buffer_agnostic_contrast_with_tokenflow(self):
        """MLFQ knows nothing about buffers: under a burst TokenFlow
        matches or beats its effective throughput."""
        spec = WorkloadSpec(
            arrival="burst", n_requests=40, burst_spread=0.25,
            rates=RateMixture.fixed(10.0),
        )
        requests = WorkloadBuilder(spec, RngStreams(1)).build()
        reports = run_comparison(("mlfq", "tokenflow"), requests,
                                 mem_frac=0.02, max_batch=16)
        assert (
            reports["tokenflow"].effective_throughput
            >= 0.95 * reports["mlfq"].effective_throughput
        )
