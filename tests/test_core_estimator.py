"""Unit tests for sliding-window estimators."""

import pytest

from repro.core.estimator import (
    PrefillCostEstimator,
    QueueDelayEstimator,
    SlidingWindowMean,
)


class TestSlidingWindowMean:
    def test_empty_returns_initial(self):
        assert SlidingWindowMean(4).mean() is None
        assert SlidingWindowMean(4, initial=0.5).mean() == 0.5

    def test_mean_of_observations(self):
        window = SlidingWindowMean(4)
        for value in (1.0, 2.0, 3.0):
            window.observe(value)
        assert window.mean() == pytest.approx(2.0)
        assert window.count == 3

    def test_window_slides(self):
        window = SlidingWindowMean(2)
        for value in (1.0, 2.0, 9.0):
            window.observe(value)
        assert window.mean() == pytest.approx(5.5)  # only (2, 9)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SlidingWindowMean(0)

    def test_bulk_bit_identical_to_sequential(self):
        # Contract behind the fused decode path's boundary replay:
        # observe_bulk/observe_many must leave the running sum and
        # window contents *bit*-identical to per-sample observe calls,
        # chunked any which way (the sum carries the whole observation
        # history's float error, so only an exact replay matches).
        import random

        rng = random.Random(7)
        values = [rng.uniform(1.0, 4096.0) for _ in range(500)]
        sequential = SlidingWindowMean(64)
        for value in values:
            sequential.observe(value)
        bulk = SlidingWindowMean(64)
        i = 0
        while i < len(values):
            step = rng.randint(1, 97)
            bulk.observe_bulk(values[i:i + step])
            i += step
        assert bulk._sum == sequential._sum
        assert list(bulk._values) == list(sequential._values)
        assert bulk.mean() == sequential.mean()


class TestPrefillCostEstimator:
    def test_initial_estimate_positive(self):
        est = PrefillCostEstimator()
        assert est.per_token() > 0
        assert est.estimate_recompute(1000) == pytest.approx(est.per_token() * 1000)

    def test_observations_update_estimate(self):
        est = PrefillCostEstimator(window=4)
        for _ in range(4):
            est.observe_prefill(n_tokens=1000, duration=0.1)
        assert est.per_token() == pytest.approx(1e-4)
        assert est.estimate_recompute(500) == pytest.approx(0.05)

    def test_validation(self):
        est = PrefillCostEstimator()
        with pytest.raises(ValueError):
            est.observe_prefill(0, 0.1)
        with pytest.raises(ValueError):
            est.observe_prefill(10, -0.1)
        with pytest.raises(ValueError):
            est.estimate_recompute(-1)
        with pytest.raises(ValueError):
            PrefillCostEstimator(initial_per_token=0.0)


class TestQueueDelayEstimator:
    def test_initial_default(self):
        assert QueueDelayEstimator().current() == pytest.approx(0.05)

    def test_moving_average(self):
        est = QueueDelayEstimator(window=2, initial=0.0)
        est.observe_delay(0.1)
        est.observe_delay(0.3)
        assert est.current() == pytest.approx(0.2)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            QueueDelayEstimator().observe_delay(-0.1)

    def test_ndarray_bulk_bit_identical_to_sequential(self):
        # The vectorised decode plane hands footprint observations to
        # the estimator as numpy arrays; the array fold must leave the
        # same bits as per-sample observe calls (same contract as the
        # list path above).
        import random

        import numpy as np

        rng = random.Random(11)
        for window in (3, 64, 200):
            values = [rng.uniform(1.0, 4096.0) for _ in range(300)]
            sequential = SlidingWindowMean(window)
            for value in values:
                sequential.observe(value)
            bulk = SlidingWindowMean(window)
            i = 0
            while i < len(values):
                step = rng.randint(1, 97)
                bulk.observe_bulk(np.asarray(values[i:i + step]))
                i += step
            assert bulk._sum == sequential._sum
            assert list(bulk._values) == list(sequential._values)
            assert bulk.mean() == sequential.mean()
