"""Unit tests for the roofline latency model."""

import pytest

from repro.gpu.hardware import get_hardware
from repro.gpu.latency import LatencyModel
from repro.gpu.models import get_model


@pytest.fixture
def h200_llama() -> LatencyModel:
    return LatencyModel(get_hardware("h200"), get_model("llama3-8b"))


@pytest.fixture
def rtx4090_llama() -> LatencyModel:
    return LatencyModel(get_hardware("rtx4090"), get_model("llama3-8b"))


class TestPrefill:
    def test_zero_tokens_is_free(self, h200_llama):
        assert h200_llama.prefill_time([]) == 0.0
        assert h200_llama.prefill_time([0]) == 0.0

    def test_monotone_in_tokens(self, h200_llama):
        assert h200_llama.prefill_time([2048]) > h200_llama.prefill_time([512])

    def test_quadratic_attention_term(self, h200_llama):
        # One 4096-token prompt costs more than four 1024-token prompts
        # (equal linear FLOPs; the n^2 attention term differs).
        single = h200_llama.prefill_time([4096])
        split = h200_llama.prefill_time([1024] * 4)
        assert single > split

    def test_negative_tokens_rejected(self, h200_llama):
        with pytest.raises(ValueError):
            h200_llama.prefill_time([-5])

    def test_h200_faster_than_4090(self, h200_llama, rtx4090_llama):
        assert h200_llama.prefill_time([2048]) < rtx4090_llama.prefill_time([2048])


class TestDecode:
    def test_empty_batch_is_free(self, h200_llama):
        assert h200_llama.decode_step_time([]) == 0.0

    def test_single_stream_speed_plausible(self, h200_llama):
        # H200 + 8B fp16 should decode well over 100 tokens/s single-stream.
        step = h200_llama.decode_step_time([512])
        assert 1.0 / step > 100.0

    def test_4090_single_stream_slower(self, rtx4090_llama):
        step = rtx4090_llama.decode_step_time([512])
        assert 20.0 < 1.0 / step < 100.0

    def test_bandwidth_bound_at_small_batch(self, h200_llama):
        # Doubling a small batch barely changes the step time (weights
        # dominate), so throughput nearly doubles.
        t1 = h200_llama.decode_step_time([512])
        t2 = h200_llama.decode_step_time([512, 512])
        assert t2 < 1.2 * t1

    def test_kv_reads_grow_with_context(self, h200_llama):
        assert h200_llama.decode_step_time([8192] * 16) > h200_llama.decode_step_time([256] * 16)

    def test_negative_context_rejected(self, h200_llama):
        with pytest.raises(ValueError):
            h200_llama.decode_step_time([-1])

    def test_batching_improves_throughput(self, h200_llama):
        assert h200_llama.decode_throughput(32, 1024) > h200_llama.decode_throughput(1, 1024)

    def test_throughput_zero_batch(self, h200_llama):
        assert h200_llama.decode_throughput(0, 1024) == 0.0


class TestTransfersAndRecompute:
    def test_transfer_time_linear(self, h200_llama):
        assert h200_llama.transfer_time(2000) == pytest.approx(
            2 * h200_llama.transfer_time(1000)
        )

    def test_transfer_negative_rejected(self, h200_llama):
        with pytest.raises(ValueError):
            h200_llama.transfer_time(-1)

    def test_load_beats_recompute_on_h200(self, h200_llama):
        # The §4.2.3 crossover: with idle PCIe, loading 2k tokens of KV
        # is much cheaper than re-prefilling them.
        ctx = 2048
        assert h200_llama.transfer_time(ctx) < h200_llama.recompute_time(ctx)

    def test_recompute_equals_prefill(self, h200_llama):
        assert h200_llama.recompute_time(1024) == h200_llama.prefill_time([1024])
