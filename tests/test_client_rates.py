"""Unit tests for the Fig. 1 consumption-rate tables."""

import pytest

from repro.client.rates import (
    AGE_GROUPS,
    LANGUAGES,
    LISTENING_RATES,
    READING_RATES,
    listening_rate,
    rate_table_rows,
    reading_rate,
)


class TestTables:
    def test_all_cells_populated(self):
        for table in (READING_RATES, LISTENING_RATES):
            for language in LANGUAGES:
                for age in AGE_GROUPS:
                    assert table[language][age] > 0

    def test_reading_peaks_in_young_adults(self):
        """The NIH age curve: 18-25 reads fastest, then decline."""
        for language in LANGUAGES:
            ages = READING_RATES[language]
            assert ages["18-25"] == max(ages.values())
            assert ages["18-25"] > ages["60+"]
            assert ages["<12"] < ages["16-17"]

    def test_reading_generally_faster_than_listening_for_adults(self):
        for language in LANGUAGES:
            assert READING_RATES[language]["18-25"] > LISTENING_RATES[language]["18-25"]

    def test_all_rates_below_llm_generation_speed(self):
        """The paper's premise: consumption << generation (~30 tok/s)."""
        for table in (READING_RATES, LISTENING_RATES):
            for language in LANGUAGES:
                for value in table[language].values():
                    assert value < 12.0


class TestLookup:
    def test_reading_rate(self):
        assert reading_rate("english", "18-25") == READING_RATES["english"]["18-25"]

    def test_listening_rate(self):
        assert listening_rate("chinese", "60+") == LISTENING_RATES["chinese"]["60+"]

    def test_case_insensitive_language(self):
        assert reading_rate("English", "18-25") == reading_rate("english", "18-25")

    def test_unknown_language_raises(self):
        with pytest.raises(KeyError):
            reading_rate("klingon", "18-25")

    def test_unknown_age_raises(self):
        with pytest.raises(KeyError):
            reading_rate("english", "150+")


class TestRows:
    def test_row_count(self):
        assert len(rate_table_rows("reading")) == len(LANGUAGES) * len(AGE_GROUPS)

    def test_listening_rows(self):
        rows = rate_table_rows("listening")
        assert all(len(row) == 3 for row in rows)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            rate_table_rows("skimming")
