"""Unit tests for the BurstGPT and production trace synthesizers."""

import numpy as np
import pytest

from repro.workload.burstgpt import BurstGPTTraceGenerator
from repro.workload.production import ProductionTraceGenerator


class TestBurstGPT:
    def test_generates_sorted_arrivals(self):
        rng = np.random.default_rng(0)
        gen = BurstGPTTraceGenerator(base_rate=2.0)
        times = gen.generate(300.0, rng)
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 0 and times.max() < 300.0

    def test_bursts_raise_rate_inside_windows(self):
        rng = np.random.default_rng(1)
        gen = BurstGPTTraceGenerator(
            base_rate=1.0, burst_rate_multiplier=10.0,
            burst_duration=20.0, burst_frequency=1.0 / 100.0,
        )
        windows = gen.burst_windows(1000.0, np.random.default_rng(2))
        times = gen.generate(1000.0, rng)
        assert len(times) > 1000.0 * 1.0 * 0.8  # at least the baseline

    def test_no_bursts_when_frequency_zero(self):
        gen = BurstGPTTraceGenerator(base_rate=2.0, burst_frequency=0.0)
        rng = np.random.default_rng(3)
        assert gen.burst_windows(100.0, rng) == []
        times = gen.generate(200.0, rng)
        assert abs(len(times) / 200.0 - 2.0) < 0.8

    def test_burstier_than_poisson_overall(self):
        rng = np.random.default_rng(4)
        gen = BurstGPTTraceGenerator(
            base_rate=2.0, base_cv=2.0, burst_rate_multiplier=8.0,
            burst_duration=10.0, burst_frequency=1.0 / 50.0,
        )
        times = gen.generate(1000.0, rng)
        gaps = np.diff(times)
        assert gaps.std() / gaps.mean() > 1.3

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BurstGPTTraceGenerator(base_rate=0.0)
        with pytest.raises(ValueError):
            BurstGPTTraceGenerator(burst_rate_multiplier=0.5)

    def test_invalid_duration(self):
        gen = BurstGPTTraceGenerator()
        with pytest.raises(ValueError):
            gen.generate(0.0, np.random.default_rng(0))


class TestProduction:
    def test_rate_function_positive(self):
        gen = ProductionTraceGenerator()
        for t in np.linspace(0, gen.period, 100):
            assert gen.rate_at(float(t)) > 0

    def test_peaks_raise_rate(self):
        gen = ProductionTraceGenerator(
            mean_rate=2.0, diurnal_amplitude=0.0, peak_times=(0.5,),
            peak_multiplier=5.0, peak_width=0.05,
        )
        at_peak = gen.rate_at(0.5 * gen.period)
        off_peak = gen.rate_at(0.25 * gen.period)
        assert at_peak > 3 * off_peak

    def test_diurnal_variation(self):
        gen = ProductionTraceGenerator(
            mean_rate=2.0, diurnal_amplitude=0.8, peak_times=(),
        )
        crest = gen.rate_at(0.25 * gen.period)  # sin peak
        trough = gen.rate_at(0.75 * gen.period)
        assert crest > 3 * trough

    def test_max_rate_bounds_rate_at(self):
        gen = ProductionTraceGenerator()
        upper = gen.max_rate()
        for t in np.linspace(0, gen.period, 500):
            assert gen.rate_at(float(t)) <= upper + 1e-9

    def test_thinning_matches_mean_rate(self):
        gen = ProductionTraceGenerator(mean_rate=3.0, peak_times=())
        rng = np.random.default_rng(5)
        times = gen.generate(600.0, rng)
        assert abs(len(times) / 600.0 - 3.0) < 0.6

    def test_histogram_shape(self):
        gen = ProductionTraceGenerator()
        centres, rates = gen.rate_histogram(600.0, bins=30)
        assert len(centres) == len(rates) == 30
        assert np.all(rates > 0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ProductionTraceGenerator(mean_rate=0.0)
        with pytest.raises(ValueError):
            ProductionTraceGenerator(diurnal_amplitude=1.5)
