"""Unit tests for the composable serving-loop stages."""

import pytest

from repro.baselines import SGLangScheduler
from repro.core.scheduler import TokenFlowScheduler
from repro.serving.config import ServingConfig
from repro.serving.server import ServingSystem
from repro.serving.stages import (
    AdmissionStage,
    BatchComposer,
    DecodeStream,
    MemoryPressureStage,
)
from repro.workload.request import Request


def burst(n, prompt=64, output=32, rate=10.0, start=0.0):
    return [
        Request(req_id=i, arrival_time=start, prompt_len=prompt,
                output_len=output, rate=rate)
        for i in range(n)
    ]


def make_system(scheduler=None, mem_frac=0.01, max_batch=8, **kwargs):
    config = ServingConfig(
        hardware="h200", model="llama3-8b", mem_frac=mem_frac,
        max_batch=max_batch, **kwargs,
    )
    return ServingSystem(config, scheduler or SGLangScheduler())


class TestWiring:
    def test_shell_exposes_all_four_stages(self):
        system = make_system()
        assert isinstance(system.admission, AdmissionStage)
        assert isinstance(system.composer, BatchComposer)
        assert isinstance(system.memory, MemoryPressureStage)
        assert isinstance(system.decode_stream, DecodeStream)

    def test_stages_share_the_shell_queues(self):
        """Stages bind the shell's queue lists by identity, so state
        changes are visible everywhere without copying."""
        system = make_system()
        assert system.composer.running is system.running
        assert system.composer.prefill_queue is system.prefill_queue
        assert system.admission.waiting is system.waiting
        assert system.decode_stream.running is system.running
        assert system.decode_stream.finished is system.finished

    def test_offload_reports_swaps_to_memory_stage(self):
        system = make_system()
        assert system.offload._on_swap_observed == system.memory.observe_swap

    def test_chunked_flag_from_config(self):
        system = make_system(chunked_prefill=True)
        assert system.composer.chunked

    def test_chunked_flag_from_scheduler(self):
        class ChunkWanting(SGLangScheduler):
            wants_chunked_prefill = True

        system = make_system(scheduler=ChunkWanting())
        assert system.composer.chunked


class TestAdmissionStage:
    def test_past_arrival_rejected(self):
        system = make_system()
        system.run(until=5.0)
        with pytest.raises(ValueError):
            system.admission.submit(burst(1, start=1.0))

    def test_arrival_registers_everywhere(self):
        system = make_system()
        system.submit(burst(2))
        assert system.unfinished == 2
        system.run(until=0.0)  # deliver the arrival events only
        assert all(r in system.tracker for r in (0, 1))

    def test_tick_clock_only_for_ticking_schedulers(self):
        system = make_system()  # SGLang: tick_interval None
        system.submit(burst(1))
        system.run(until=0.0)  # deliver the arrival event
        assert not system.admission._tick_scheduled
        ticking = make_system(scheduler=TokenFlowScheduler())
        ticking.submit(burst(1))
        ticking.run(until=0.0)
        assert ticking.admission._tick_scheduled


class TestBatchComposer:
    def test_min_buffer_memo_shared_within_iteration(self):
        system = make_system()
        system.submit(burst(2, output=64))
        system.run(until=0.5)
        composer = system.composer
        composer.iter_min_buffer = None
        if system.running:
            first = composer.min_running_buffer()
            # Second call must hit the memo (same object, not recompute).
            assert composer.min_running_buffer() == first
            assert composer.iter_min_buffer == first

    def test_decode_batch_respects_max_batch(self):
        system = make_system(max_batch=2)
        system.submit(burst(6, prompt=32, output=64))
        system.run(until=2.0)
        if system.running:
            batch = system.composer.plan_decode()
            assert len(batch) <= 2

    def test_full_run_matches_monolith_metrics(self):
        """End-to-end smoke: the staged loop still finishes workloads
        with the exact accounting invariants of the old monolith."""
        system = make_system(scheduler=TokenFlowScheduler())
        system.submit(burst(8, output=32))
        system.run(until=10_000.0)
        report = system.report()
        assert report.n_finished == 8
        assert report.total_tokens == 8 * 32


class TestMemoryPressureStage:
    def test_write_priority_orders_by_buffer(self):
        system = make_system()
        system.submit(burst(2, output=64))
        system.run(until=5.0)
        now = system.engine.now()
        priority = system.memory.write_priority_at(now)
        for req_id in (0, 1):
            if req_id in system.tracker:
                assert priority(req_id) == system.tracker.buffer_seconds(
                    req_id, now
                )

    def test_resolve_deficit_noop_without_pressure(self):
        system = make_system(mem_frac=0.2)
        system.submit(burst(2, output=8))
        system.run(until=2.0)
        batch = list(system.running)
        growth = {r.req_id: 0 for r in batch}
        assert system.memory.resolve_deficit(batch, growth) == batch


class TestDecodeStream:
    def test_last_token_time_feeds_makespan(self):
        system = make_system()
        system.submit(burst(1, prompt=64, output=8))
        system.run(until=1_000.0)
        stream = system.decode_stream
        assert stream.last_token_time > 0
        first = system.tracker.first_arrival()
        assert system.makespan() == pytest.approx(
            stream.last_token_time - first
        )

    def test_finish_fires_session_callback(self):
        system = make_system()
        done = []
        system.on_request_finished = lambda r: done.append(r.req_id)
        system.submit(burst(2, output=8))
        system.run(until=1_000.0)
        assert sorted(done) == [0, 1]
