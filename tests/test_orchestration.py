"""Tests for the scenario-matrix orchestrator.

Covers the determinism contract (matrix cell ≡ solo run, expansion
ordering regardless of completion order), cache hit/miss behaviour,
retry/timeout bookkeeping, and the spec-fingerprint sensitivity that
backs the cache key.
"""

import pytest

from repro.orchestration import (
    InlineCell,
    MatrixCache,
    MatrixCell,
    MatrixSpec,
    run_matrix,
    spec_fingerprint,
)
from repro.orchestration import executor as executor_mod
from repro.orchestration.report import (
    STATUS_CACHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
)
from repro.scenarios import build_run, get_scenario, run_matrix as scenarios_run_matrix
from repro.scenarios.spec import ScenarioSpec
from repro.serving.metrics import aggregate_reports, report_fingerprint
from repro.workload.request import Request

_fingerprint = report_fingerprint


def _sleep_forever(_cell):
    """Stand-in worker body for hung-cell tests (module-level so it
    pickles into the worker by reference)."""
    import time as time_mod

    time_mod.sleep(300)
    raise AssertionError("unreachable")


def _kill_self(_cell):
    """Stand-in worker body simulating an OOM-killed worker."""
    import os
    import signal

    os.kill(os.getpid(), signal.SIGKILL)


def _solo_report(cell: MatrixCell):
    """The exact `repro run` code path for one cell, flattened like the
    orchestrator flattens cluster reports."""
    run = build_run(cell.resolve())
    report = run.execute()
    if run.is_cluster:
        report = aggregate_reports(report.per_instance,
                                   system=cell.resolve().system)
    return report


class TestMatrixSpec:
    def test_expansion_is_deterministic_product(self):
        spec = MatrixSpec(
            scenarios=("table1-h200-a", "cluster-burst-4x"),
            routers=("round_robin", "least_loaded"),
            seeds=(0, 1),
            scale=0.05,
        )
        cells = spec.expand()
        assert len(cells) == spec.n_cells == 8
        assert cells == spec.expand()  # stable
        # scenario-major, then router, then seed
        assert cells[0] == MatrixCell(scenario="table1-h200-a", seed=0,
                                      scale=0.05, router="round_robin")
        assert cells[1].seed == 1 and cells[2].router == "least_loaded"
        assert cells[4].scenario == "cluster-burst-4x"

    def test_axis_validation(self):
        with pytest.raises(KeyError):
            MatrixSpec(scenarios=("no-such-scenario",))
        with pytest.raises(ValueError):
            MatrixSpec(scenarios=())
        with pytest.raises(ValueError):
            MatrixSpec(scenarios=("table1-h200-a",), seeds=())
        with pytest.raises(ValueError):
            MatrixSpec(scenarios=("table1-h200-a",), scale=0.0)

    def test_axis_values_preflighted(self):
        # Typos and bad counts are usage errors at expansion time, not
        # N worker failures at run time.
        with pytest.raises(KeyError, match="unknown system"):
            MatrixSpec(scenarios=("table1-h200-a",), systems=("tokenflo",))
        with pytest.raises(ValueError, match="unknown router"):
            MatrixSpec(scenarios=("table1-h200-a",), routers=("warp_drive",))
        with pytest.raises(ValueError, match="replicas"):
            MatrixSpec(scenarios=("table1-h200-a",), replicas=(0,))
        with pytest.raises(ValueError, match="seeds"):
            MatrixSpec(scenarios=("table1-h200-a",), seeds=(-1,))
        # The registered system/ablation names all pass.
        spec = MatrixSpec(scenarios=("table1-h200-a",),
                          systems=("sglang", "tokenflow-no-offload"))
        assert spec.n_cells == 2

    def test_from_axes_defaults_to_all_scenarios(self):
        spec = MatrixSpec.from_axes(scale=0.1)
        assert "table1-h200-a" in spec.scenarios
        assert spec.n_cells == len(spec.scenarios)

    def test_cell_id_reflects_overrides(self):
        cell = MatrixCell(scenario="table1-h200-a", seed=3, scale=0.1,
                          router="buffer_aware", replicas=2)
        assert "router=buffer_aware" in cell.cell_id
        assert "replicas=2" in cell.cell_id
        assert "seed=3" in cell.cell_id

    def test_inline_cell_rejects_workload_callables(self):
        spec = get_scenario("table1-h200-a", scale=0.05)
        with pytest.raises(ValueError, match="workloadless"):
            InlineCell(spec=spec, requests=(), label="x")


class TestMatrixExecution:
    def test_cells_bit_identical_to_solo_runs_across_processes(self):
        # One single-node cell and one cluster cell, two seeds, run on
        # a 2-worker process pool: every per-cell RunReport must equal
        # the solo `repro run` result bit-for-bit.
        matrix = MatrixSpec(
            scenarios=("table1-h200-a", "cluster-burst-4x"),
            seeds=(0, 1),
            scale=0.05,
        )
        cells = matrix.expand()
        report = run_matrix(matrix, jobs=2)
        assert report.succeeded and report.jobs == 2
        for cell, result in zip(cells, report.cells):
            assert result.status == STATUS_OK
            assert _fingerprint(result.report) == _fingerprint(_solo_report(cell))

    def test_report_order_is_expansion_order_not_completion_order(self):
        # The first cell takes several times longer than the later
        # ones, so with 2 workers the later cells finish first; the
        # report must still list cells in expansion order.
        cells = [
            MatrixCell(scenario="table1-h200-a", seed=0, scale=0.05),
            MatrixCell(scenario="cluster-burst-4x", seed=0, scale=0.02),
            MatrixCell(scenario="cluster-burst-4x", seed=1, scale=0.02),
            MatrixCell(scenario="cluster-burst-4x", seed=2, scale=0.02),
        ]
        report = run_matrix(cells, jobs=2)
        assert report.succeeded
        assert [c.cell_id for c in report.cells] == [c.cell_id for c in cells]

    def test_serial_and_parallel_reports_identical(self):
        matrix = MatrixSpec(scenarios=("cluster-burst-4x",), seeds=(0, 1, 2),
                            scale=0.05)
        serial = run_matrix(matrix, jobs=1)
        parallel = run_matrix(matrix, jobs=3)
        assert [(c.cell_id, _fingerprint(c.report)) for c in serial.cells] \
            == [(c.cell_id, _fingerprint(c.report)) for c in parallel.cells]

    def test_scenarios_layer_entrypoint(self):
        report = scenarios_run_matrix(
            MatrixSpec(scenarios=("cluster-burst-4x",), scale=0.05), jobs=1
        )
        assert report.succeeded and len(report.cells) == 1

    def test_aggregate_uses_shared_fold(self):
        matrix = MatrixSpec(scenarios=("cluster-burst-4x",), seeds=(0, 1),
                            scale=0.05)
        report = run_matrix(matrix, jobs=1)
        direct = aggregate_reports([c.report for c in report.cells],
                                   system="matrix")
        assert _fingerprint(report.aggregate()) == _fingerprint(direct)

    def test_markdown_and_json_writers(self, tmp_path):
        report = run_matrix(
            MatrixSpec(scenarios=("cluster-burst-4x",), scale=0.05), jobs=1
        )
        md = report.render_markdown()
        assert "cluster-burst-4x" in md and "| cell |" in md
        paths = report.write(tmp_path)
        assert all(p.exists() for p in paths)
        payload = __import__("json").loads(
            (tmp_path / "matrix_report.json").read_text()
        )
        assert payload["n_cells"] == 1 and payload["n_failed"] == 0
        assert payload["cells"][0]["report"]["n_requests"] > 0
        assert "aggregate" in payload


class TestRetryAndTimeout:
    def test_serial_retry_bookkeeping(self, monkeypatch):
        cell = MatrixCell(scenario="cluster-burst-4x", scale=0.02)
        real = executor_mod._execute_cell
        calls = {"n": 0}

        def flaky(c):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return real(c)

        monkeypatch.setattr(executor_mod, "_execute_cell", flaky)
        report = run_matrix([cell], jobs=1, retries=1)
        assert report.cells[0].status == STATUS_OK
        assert report.cells[0].attempts == 2

    def test_serial_error_after_retries_exhausted(self, monkeypatch):
        cell = MatrixCell(scenario="cluster-burst-4x", scale=0.02)

        def boom(_cell):
            raise RuntimeError("deterministic failure")

        monkeypatch.setattr(executor_mod, "_execute_cell", boom)
        report = run_matrix([cell], jobs=1, retries=2)
        result = report.cells[0]
        assert result.status == STATUS_ERROR
        assert result.attempts == 3
        assert "deterministic failure" in result.error
        assert not report.succeeded

    def test_parallel_timeout_bookkeeping(self):
        # A 10 ms deadline that every real cell exceeds: each cell ends
        # in `timeout` (running jobs cannot be interrupted; they are
        # recorded and their late results discarded), and ordering is
        # still the expansion order.  table1-h200-a at this scale runs
        # for several poll intervals, so no cell can slip through by
        # finishing before the first deadline check.
        cells = [MatrixCell(scenario="table1-h200-a", seed=s, scale=0.05)
                 for s in range(3)]
        report = run_matrix(cells, jobs=2, timeout_s=0.01)
        assert [c.cell_id for c in report.cells] == [c.cell_id for c in cells]
        assert all(c.status in (STATUS_TIMEOUT, STATUS_OK)
                   for c in report.cells)
        assert any(c.status == STATUS_TIMEOUT for c in report.cells)
        timed_out = [c for c in report.cells if c.status == STATUS_TIMEOUT]
        assert all("deadline" in c.error for c in timed_out)

    def test_hung_cell_cannot_hang_the_matrix(self, monkeypatch):
        # A cell that sleeps far longer than the deadline must leave
        # run_matrix promptly with a timeout verdict — abandoned
        # workers are terminated, not awaited.  (Worker patching
        # relies on fork-style process start.)
        import multiprocessing
        import time as time_mod

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("worker patching requires fork start method")
        monkeypatch.setattr(executor_mod, "_execute_cell", _sleep_forever)
        cells = [MatrixCell(scenario="cluster-burst-4x", seed=s, scale=0.02)
                 for s in range(2)]
        t0 = time_mod.perf_counter()
        report = run_matrix(cells, jobs=2, timeout_s=0.3)
        elapsed = time_mod.perf_counter() - t0
        assert [c.status for c in report.cells] == [STATUS_TIMEOUT] * 2
        assert elapsed < 15.0, "run_matrix waited on hung workers"

    def test_queue_wait_does_not_count_against_deadline(self):
        # Three ~0.7s cells behind one worker with a 1.5s run-time
        # deadline: the later cells spend multiples of the deadline
        # waiting in the queue (and sit in the executor's call queue
        # with Future.running() already true) but must all pass —
        # only actual run time counts.
        cells = [MatrixCell(scenario="table1-h200-a", seed=s, scale=0.05)
                 for s in range(3)]
        report = run_matrix(cells, jobs=1, timeout_s=1.5)
        assert [c.status for c in report.cells] == [STATUS_OK] * 3

    def test_hung_workers_with_deep_queue_do_not_livelock(self, monkeypatch):
        # More cells than worker slots, every running cell hung: once
        # all slots are held by over-deadline jobs, the queued cells
        # are abandoned with a timeout verdict instead of being
        # resubmitted with fresh deadlines forever.
        import multiprocessing
        import time as time_mod

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("worker patching requires fork start method")
        monkeypatch.setattr(executor_mod, "_execute_cell", _sleep_forever)
        cells = [MatrixCell(scenario="cluster-burst-4x", seed=s, scale=0.02)
                 for s in range(4)]
        t0 = time_mod.perf_counter()
        report = run_matrix(cells, jobs=1, timeout_s=0.3)
        elapsed = time_mod.perf_counter() - t0
        assert [c.status for c in report.cells] == [STATUS_TIMEOUT] * 4
        assert elapsed < 15.0, "queued cells kept the matrix spinning"

    def test_dead_worker_surfaces_as_error_not_exception(self, monkeypatch):
        # A worker killed mid-job (OOM-style) breaks the pool; with
        # retries requested, run_matrix must still return a report with
        # error verdicts rather than leaking BrokenProcessPool.
        import multiprocessing
        if multiprocessing.get_start_method() != "fork":
            pytest.skip("worker patching requires fork start method")
        from repro.orchestration.pool import reset_pool

        # Deadline-free parallel runs reuse the warm pool, whose
        # workers may have forked before this monkeypatch existed;
        # force a re-fork so they execute the patched body.
        reset_pool()
        monkeypatch.setattr(executor_mod, "_execute_cell", _kill_self)
        cells = [MatrixCell(scenario="cluster-burst-4x", seed=s, scale=0.02)
                 for s in range(2)]
        report = run_matrix(cells, jobs=2, retries=2)
        assert [c.status for c in report.cells] == [STATUS_ERROR] * 2
        assert not report.succeeded
        # Leave a clean slate for whoever uses the warm pool next.
        reset_pool()

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_single_miss_with_timeout_still_enforced(self, monkeypatch, jobs):
        # Deadlines must hold even when the batch would otherwise take
        # the in-process serial shortcut (jobs=1, or a single miss).
        import multiprocessing
        if multiprocessing.get_start_method() != "fork":
            pytest.skip("worker patching requires fork start method")
        monkeypatch.setattr(executor_mod, "_execute_cell", _sleep_forever)
        report = run_matrix(
            [MatrixCell(scenario="cluster-burst-4x", scale=0.02)],
            jobs=jobs, timeout_s=0.3,
        )
        assert report.cells[0].status == STATUS_TIMEOUT


class TestCache:
    def test_cache_hit_and_miss(self, tmp_path):
        matrix = MatrixSpec(scenarios=("cluster-burst-4x",), seeds=(0, 1),
                            scale=0.05)
        first = run_matrix(matrix, jobs=1, cache=True, cache_dir=tmp_path)
        assert [c.status for c in first.cells] == [STATUS_OK, STATUS_OK]
        second = run_matrix(matrix, jobs=1, cache=True, cache_dir=tmp_path)
        assert [c.status for c in second.cells] == [STATUS_CACHED, STATUS_CACHED]
        assert [_fingerprint(c.report) for c in first.cells] \
            == [_fingerprint(c.report) for c in second.cells]
        # cached cells record the key and zero attempts
        assert all(c.cache_key and c.attempts == 0 for c in second.cells)

    def test_cache_disabled_reruns(self, tmp_path):
        matrix = MatrixSpec(scenarios=("cluster-burst-4x",), scale=0.05)
        run_matrix(matrix, jobs=1, cache=True, cache_dir=tmp_path)
        again = run_matrix(matrix, jobs=1, cache=False, cache_dir=tmp_path)
        assert again.cells[0].status == STATUS_OK

    def test_key_depends_on_code_version_and_fingerprint(self):
        cache = MatrixCache()
        cell = MatrixCell(scenario="cluster-burst-4x", scale=0.05)
        fp = spec_fingerprint(cell)
        assert cache.key(fp, "v1") != cache.key(fp, "v2")
        assert cache.key(fp, "v1") == cache.key(fp, "v1")

    def test_fingerprint_sensitive_to_cell_coordinates(self):
        base = MatrixCell(scenario="cluster-burst-4x", scale=0.05)
        assert spec_fingerprint(base) != spec_fingerprint(
            MatrixCell(scenario="cluster-burst-4x", scale=0.05, seed=1))
        assert spec_fingerprint(base) != spec_fingerprint(
            MatrixCell(scenario="cluster-burst-4x", scale=0.05,
                       router="round_robin"))
        assert spec_fingerprint(base) != spec_fingerprint(
            MatrixCell(scenario="cluster-burst-4x", scale=0.1))

    def test_inline_fingerprint_sensitive_to_requests(self):
        spec = ScenarioSpec(name="adhoc", system="tokenflow")
        reqs_a = (Request(req_id=0, arrival_time=0.0, prompt_len=16,
                          output_len=8, rate=10.0),)
        reqs_b = (Request(req_id=0, arrival_time=0.0, prompt_len=32,
                          output_len=8, rate=10.0),)
        assert spec_fingerprint(InlineCell(spec=spec, requests=reqs_a)) \
            != spec_fingerprint(InlineCell(spec=spec, requests=reqs_b))

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = MatrixCache(tmp_path)
        key = cache.key("fp", "v")
        (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")
        assert cache.load(key) is None
