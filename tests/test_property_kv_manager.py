"""Property-based tests for the hierarchical KV manager.

Random sequences of lifecycle operations (prefill, decode, drain,
preempt, resume, release) must never corrupt pool accounting: used
blocks match owner sums, cpu copies never exceed what was generated,
dirty counts stay non-negative, and draining the event engine leaves
no orphaned blocks.
"""

import pytest

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.memory.blocks import OutOfMemory
from repro.memory.kv_manager import HierarchicalKVManager, KVManagerConfig
from repro.sim.engine import SimEngine

pytestmark = pytest.mark.slow  # full tier-1 lane only (see scripts/ci.sh)

N_REQUESTS = 4

operations = st.lists(
    st.tuples(
        st.sampled_from(
            ["prefill", "decode", "drain", "preempt", "resume_load",
             "recompute", "release"]
        ),
        st.integers(min_value=0, max_value=N_REQUESTS - 1),
        st.integers(min_value=1, max_value=64),
    ),
    max_size=80,
)


def fresh_manager(write_through=True, enable_offload=True):
    engine = SimEngine()
    kv = HierarchicalKVManager(
        engine=engine,
        gpu_capacity_blocks=48,
        kv_bytes_per_token=1000.0,
        pcie_bandwidth_bytes_per_s=1e6,
        config=KVManagerConfig(
            block_size=16, write_through=write_through,
            enable_offload=enable_offload,
        ),
    )
    return engine, kv


def drive(engine, kv, ops, write_through=True):
    """Apply an operation sequence, tolerating (only) legal rejections."""
    now = [0.0]

    def tick():
        now[0] += 0.01
        return now[0]

    state = {i: "new" for i in range(N_REQUESTS)}
    for op, rid, amount in ops:
        t = tick()
        engine.run(until=t)
        try:
            if op == "prefill" and state[rid] == "new":
                kv.register(rid)
                kv.allocate_for_prefill(rid, amount)
                kv.on_prefill_complete(rid, amount)
                state[rid] = "resident"
            elif op == "decode" and state[rid] == "resident":
                kv.on_decode_token(rid)
            elif op == "drain":
                kv.drain_writes(t, t + amount / 1000.0)
            elif op == "preempt" and state[rid] == "resident":
                kv.preempt(rid, t)
                state[rid] = "offloaded"
            elif op == "resume_load" and state[rid] == "offloaded":
                if kv.can_resume_load(rid):
                    kv.resume_load(rid, t)
                    state[rid] = "resident"
            elif op == "recompute" and state[rid] == "offloaded":
                kv.prepare_recompute(rid)
                ctx = max(1, amount)
                kv.allocate_for_prefill(rid, ctx)
                kv.on_prefill_complete(rid, ctx)
                state[rid] = "resident"
            elif op == "release" and state[rid] in ("resident", "offloaded"):
                kv.release(rid)
                state[rid] = "released"
        except OutOfMemory:
            pass  # legal rejection under pressure
        kv.check_invariants()
        assert kv.gpu_pool.used <= kv.gpu_pool.capacity
    return state


class TestKVManagerProperties:
    @given(ops=operations)
    @settings(max_examples=150, deadline=None)
    def test_random_lifecycles_keep_invariants(self, ops):
        engine, kv = fresh_manager()
        drive(engine, kv, ops)
        engine.run()  # flush deferred frees
        kv.check_invariants()

    @given(ops=operations)
    @settings(max_examples=100, deadline=None)
    def test_write_back_mode_invariants(self, ops):
        engine, kv = fresh_manager(write_through=False)
        drive(engine, kv, ops, write_through=False)
        engine.run()
        kv.check_invariants()

    @given(ops=operations)
    @settings(max_examples=100, deadline=None)
    def test_recompute_only_mode_invariants(self, ops):
        engine, kv = fresh_manager(enable_offload=False)
        drive(engine, kv, ops)
        engine.run()
        kv.check_invariants()

    @given(ops=operations)
    @settings(max_examples=100, deadline=None)
    def test_full_release_returns_all_memory(self, ops):
        engine, kv = fresh_manager()
        state = drive(engine, kv, ops)
        for rid, s in state.items():
            if s in ("resident", "offloaded"):
                kv.release(rid)
        engine.run()
        assert kv.gpu_pool.used == 0
        assert kv.cpu_pool.used == 0

    @given(ops=operations)
    @settings(max_examples=100, deadline=None)
    def test_cpu_copy_never_exceeds_context(self, ops):
        engine, kv = fresh_manager()
        drive(engine, kv, ops)
        for rid in list(kv.resident_requests()):
            record = kv.record(rid)
            assert record.cpu_tokens <= record.gpu_tokens
            assert record.dirty_tokens >= 0
