"""Property-based tests for the event engine and arrival processes."""

import pytest

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.sim.engine import SimEngine
from repro.workload.arrivals import gamma_arrivals, poisson_arrivals

pytestmark = pytest.mark.slow  # full tier-1 lane only (see scripts/ci.sh)


class TestEngineProperties:
    @given(
        delays=st.lists(st.floats(min_value=0.0, max_value=10.0), max_size=40)
    )
    @settings(max_examples=200, deadline=None)
    def test_execution_order_matches_timestamps(self, delays):
        engine = SimEngine()
        seen = []
        for delay in delays:
            engine.call_at(delay, lambda d=delay: seen.append(d))
        engine.run()
        assert seen == sorted(seen)
        assert engine.events_processed == len(delays)

    @given(
        delays=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=30),
        horizon=st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_run_until_partitions_events(self, delays, horizon):
        engine = SimEngine()
        seen = []
        for delay in delays:
            engine.call_at(delay, lambda d=delay: seen.append(d))
        engine.run(until=horizon)
        assert all(d <= horizon for d in seen)
        remaining = [d for d in delays if d > horizon]
        assert engine.pending() == len(remaining)

    @given(delays=st.lists(st.floats(min_value=0.0, max_value=5.0), max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_clock_never_goes_backwards(self, delays):
        engine = SimEngine()
        stamps = []
        for delay in delays:
            engine.call_at(delay, lambda: stamps.append(engine.now()))
        engine.run()
        assert stamps == sorted(stamps)


class TestArrivalProperties:
    @given(
        rate=st.floats(min_value=0.5, max_value=20.0),
        duration=st.floats(min_value=1.0, max_value=50.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=100, deadline=None)
    def test_poisson_arrivals_sorted_within_horizon(self, rate, duration, seed):
        rng = np.random.default_rng(seed)
        times = poisson_arrivals(rate, duration, rng)
        assert np.all(np.diff(times) >= 0)
        if len(times):
            assert times[0] >= 0.0
            assert times[-1] < duration

    @given(
        rate=st.floats(min_value=0.5, max_value=20.0),
        cv=st.floats(min_value=0.2, max_value=4.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=100, deadline=None)
    def test_gamma_arrivals_sorted_within_horizon(self, rate, cv, seed):
        rng = np.random.default_rng(seed)
        times = gamma_arrivals(rate, cv, 30.0, rng)
        assert np.all(np.diff(times) >= 0)
        if len(times):
            assert 0.0 <= times[0] and times[-1] < 30.0
