"""Unit tests for the client token buffer."""

import pytest

from repro.client.buffer import ClientBuffer


class TestDelivery:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            ClientBuffer(rate=0.0)

    def test_out_of_order_delivery_rejected(self):
        buffer = ClientBuffer(rate=10.0)
        buffer.deliver(1.0)
        with pytest.raises(ValueError):
            buffer.deliver(0.5)

    def test_delivered_counter(self):
        buffer = ClientBuffer(rate=10.0)
        for t in (0.0, 0.1, 0.2):
            buffer.deliver(t)
        assert buffer.delivered == 3


class TestConsumption:
    def test_first_token_consumed_at_delivery(self):
        buffer = ClientBuffer(rate=10.0)
        buffer.deliver(2.0)
        assert buffer.consumption_times == [2.0]

    def test_steady_consumption_when_tokens_ready(self):
        buffer = ClientBuffer(rate=10.0)  # one token per 0.1 s
        for idx in range(4):
            buffer.deliver(0.01 * idx)   # generation outpaces reading
        expected = [0.0, 0.1, 0.2, 0.3]
        assert buffer.consumption_times == pytest.approx(expected)

    def test_consumed_count_monotone_queries(self):
        buffer = ClientBuffer(rate=10.0)
        for idx in range(5):
            buffer.deliver(0.01 * idx)
        assert buffer.consumed_count(0.05) == 1
        assert buffer.consumed_count(0.25) == 3
        assert buffer.consumed_count(10.0) == 5


class TestOccupancy:
    def test_occupancy_grows_with_fast_generation(self):
        buffer = ClientBuffer(rate=1.0)  # slow reader
        for idx in range(10):
            buffer.deliver(0.1 * idx)
        assert buffer.occupancy(1.0) == 8  # 10 delivered, 2 consumed (t=0, t=1)

    def test_occupancy_at_generation_recorded(self):
        buffer = ClientBuffer(rate=1.0)
        for idx in range(5):
            buffer.deliver(0.1 * idx)
        # Token j's occupancy counts itself minus what's been consumed:
        # the first token is consumed the instant it arrives.
        assert buffer.occupancy_at_generation == [0, 1, 2, 3, 4]

    def test_drain_deadline(self):
        buffer = ClientBuffer(rate=2.0)
        for idx in range(5):
            buffer.deliver(0.01 * idx)
        # 4 unread tokens at 2 tok/s = 2 s of slack (1 consumed at start).
        assert buffer.drain_deadline(0.1) == pytest.approx(4 * 0.5)


class TestStalls:
    def test_no_stall_when_generation_keeps_up(self):
        buffer = ClientBuffer(rate=10.0)
        for idx in range(20):
            buffer.deliver(0.05 * idx)  # 20 tok/s > 10 tok/s
        assert buffer.stall_time == 0.0

    def test_stall_accrues_on_late_token(self):
        buffer = ClientBuffer(rate=10.0)
        buffer.deliver(0.0)    # consumed at 0.0; next wanted at 0.1
        buffer.deliver(0.5)    # 0.4 s late
        assert buffer.stall_time == pytest.approx(0.4)

    def test_startup_delay_not_a_stall(self):
        buffer = ClientBuffer(rate=10.0)
        buffer.deliver(5.0)    # huge TTFT, but not a rebuffer event
        assert buffer.stall_time == 0.0

    def test_consumption_shifts_after_stall(self):
        buffer = ClientBuffer(rate=10.0)
        buffer.deliver(0.0)
        buffer.deliver(0.5)    # stall; consumed at 0.5
        buffer.deliver(0.52)   # buffered; consumed at 0.6
        assert buffer.consumption_times == pytest.approx([0.0, 0.5, 0.6])
        assert buffer.stall_time == pytest.approx(0.4)

    def test_multiple_stalls_accumulate(self):
        buffer = ClientBuffer(rate=10.0)
        buffer.deliver(0.0)
        buffer.deliver(0.3)    # +0.2
        buffer.deliver(0.8)    # +0.4
        assert buffer.stall_time == pytest.approx(0.6)


class TestFinal:
    def test_final_consumption_time(self):
        buffer = ClientBuffer(rate=10.0)
        assert buffer.final_consumption_time() is None
        buffer.deliver(0.0)
        buffer.deliver(0.01)
        assert buffer.final_consumption_time() == pytest.approx(0.1)


class TestDeliverMany:
    def test_empty_timestamps_is_noop(self):
        buffer = ClientBuffer(rate=10.0)
        buffer.deliver_many([])
        assert buffer.delivered == 0
        assert buffer.stall_time == 0.0
        assert buffer.occupancy_histogram == {}

    def test_single_timestamp_equals_deliver(self):
        bulk = ClientBuffer(rate=10.0)
        scalar = ClientBuffer(rate=10.0)
        for t in (0.0, 0.05, 0.4):
            bulk.deliver_many([t])
            scalar.deliver(t)
        assert bulk.delivered == scalar.delivered
        assert bulk.stall_time == scalar.stall_time
        assert bulk.occupancy_histogram == scalar.occupancy_histogram
        assert bulk.final_consumption_time() == scalar.final_consumption_time()

    def test_rate_change_mid_delivery_raises(self):
        # The pacing interval is read once per deliver_many call; a
        # set_rate landing while the timestamps are being iterated
        # (only reachable from a generator argument) must fail loudly
        # instead of silently pacing half the window at the old rate.
        buffer = ClientBuffer(rate=10.0)

        def hostile():
            yield 0.0
            buffer.set_rate(20.0)
            yield 0.1

        with pytest.raises(RuntimeError, match="rate changed mid-delivery"):
            buffer.deliver_many(hostile())

    def test_rate_change_between_calls_is_fine(self):
        buffer = ClientBuffer(rate=10.0)
        buffer.deliver_many([0.0, 0.01])
        buffer.set_rate(20.0)
        buffer.deliver_many([0.02, 0.03])
        assert buffer.delivered == 4
