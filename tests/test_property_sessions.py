"""Property-based tests for multi-turn session workloads."""

import pytest

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.scheduler import TokenFlowScheduler
from repro.serving.config import ServingConfig
from repro.serving.server import ServingSystem
from repro.workload.sessions import SessionDriver, SessionSpec

pytestmark = pytest.mark.slow  # full tier-1 lane only (see scripts/ci.sh)


@st.composite
def session_lists(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    sessions = []
    for sid in range(n):
        sessions.append(SessionSpec(
            session_id=sid,
            n_turns=draw(st.integers(1, 3)),
            first_arrival=draw(st.floats(0.0, 3.0)),
            question_tokens=draw(st.integers(16, 128)),
            answer_tokens=draw(st.integers(16, 128)),
            think_time_s=draw(st.floats(0.0, 2.0)),
            rate=draw(st.sampled_from([5.0, 10.0, 20.0])),
        ))
    return sessions


class TestSessionProperties:
    @given(sessions=session_lists())
    @settings(max_examples=40, deadline=None)
    def test_every_session_terminates(self, sessions):
        config = ServingConfig(hardware="h200", model="llama3-8b",
                               mem_frac=0.02, max_batch=8)
        system = ServingSystem(config, TokenFlowScheduler())
        driver = SessionDriver(system, sessions)
        driver.start()
        system.run(until=200_000.0)
        assert system.unfinished == 0
        assert driver.all_done
        # Every turn of every session exists and finished with the
        # history-growth law respected.
        for spec in sessions:
            for turn in range(spec.n_turns):
                entry = system.tracker.get(spec.request_id(turn))
                assert entry.request.is_finished
                assert entry.request.prompt_len == spec.prompt_len_at(turn)

    @given(sessions=session_lists())
    @settings(max_examples=40, deadline=None)
    def test_turn_ordering_respected(self, sessions):
        """Turn k+1 never arrives before turn k's answer completed."""
        config = ServingConfig(hardware="h200", model="llama3-8b",
                               mem_frac=0.02, max_batch=8)
        system = ServingSystem(config, TokenFlowScheduler())
        driver = SessionDriver(system, sessions)
        driver.start()
        system.run(until=200_000.0)
        for spec in sessions:
            for turn in range(1, spec.n_turns):
                previous = system.tracker.get(spec.request_id(turn - 1)).request
                current = system.tracker.get(spec.request_id(turn)).request
                assert current.arrival_time >= previous.finish_time - 1e-9
