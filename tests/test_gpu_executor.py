"""Unit tests for the iteration-level executor."""

import pytest

from repro.gpu.executor import LLMExecutor
from repro.gpu.hardware import get_hardware
from repro.gpu.latency import LatencyModel
from repro.gpu.models import get_model


@pytest.fixture
def executor() -> LLMExecutor:
    latency = LatencyModel(get_hardware("h200"), get_model("llama3-8b"))
    return LLMExecutor(latency)


class TestPlanning:
    def test_prefill_plan(self, executor):
        result = executor.plan_prefill([(1, 512), (2, 256)])
        assert result.kind == "prefill"
        assert result.req_ids == (1, 2)
        assert result.tokens == 768
        assert result.duration > 0

    def test_decode_plan(self, executor):
        result = executor.plan_decode([(1, 512), (2, 1024)])
        assert result.kind == "decode"
        assert result.tokens == 2  # one token per request
        assert result.duration > 0

    def test_empty_batches_rejected(self, executor):
        with pytest.raises(ValueError):
            executor.plan_prefill([])
        with pytest.raises(ValueError):
            executor.plan_decode([])

    def test_planning_does_not_mutate_stats(self, executor):
        executor.plan_decode([(1, 512)])
        assert executor.stats.decode_iterations == 0


class TestAccounting:
    def test_commit_updates_totals(self, executor):
        executor.commit(executor.plan_prefill([(1, 512)]))
        executor.commit(executor.plan_decode([(1, 513)]))
        assert executor.stats.prefill_iterations == 1
        assert executor.stats.decode_iterations == 1
        assert executor.stats.prefill_tokens == 512
        assert executor.stats.decode_tokens == 1
        assert executor.stats.busy_time > 0

    def test_capacity_estimate_before_history(self, executor):
        assert executor.capacity_estimate() > 0

    def test_capacity_estimate_tracks_batch(self, executor):
        for _ in range(8):
            executor.commit(executor.plan_decode([(i, 512) for i in range(32)]))
        batched = executor.capacity_estimate()
        fresh = LLMExecutor(executor.latency)
        for _ in range(8):
            fresh.commit(fresh.plan_decode([(0, 512)]))
        single = fresh.capacity_estimate()
        assert batched > single

    def test_capacity_window_bounded(self, executor):
        for _ in range(LLMExecutor.CAPACITY_WINDOW + 10):
            executor.commit(executor.plan_decode([(0, 512)]))
        assert len(executor.stats.recent_decode) == LLMExecutor.CAPACITY_WINDOW


class TestChunking:
    def test_chunk_prompt_exact(self, executor):
        assert executor.chunk_prompt(4096, 2048) == [2048, 2048]

    def test_chunk_prompt_remainder(self, executor):
        assert executor.chunk_prompt(1000, 300) == [300, 300, 300, 100]

    def test_chunk_smaller_than_size(self, executor):
        assert executor.chunk_prompt(100, 2048) == [100]

    def test_zero_chunk_size_rejected(self, executor):
        with pytest.raises(ValueError):
            executor.chunk_prompt(100, 0)

    def test_max_prefill_tokens_validated(self):
        latency = LatencyModel(get_hardware("h200"), get_model("llama3-8b"))
        with pytest.raises(ValueError):
            LLMExecutor(latency, max_prefill_tokens=0)
