"""Unit tests for the Request Tracker."""

import pytest

from repro.core.tracker import RequestTracker
from repro.workload.request import RequestState
from tests.conftest import make_request


@pytest.fixture
def tracker() -> RequestTracker:
    return RequestTracker()


class TestRegistration:
    def test_register_creates_buffer(self, tracker):
        entry = tracker.register(make_request(req_id=1, rate=5.0))
        assert entry.buffer.rate == 5.0
        assert 1 in tracker
        assert len(tracker) == 1

    def test_double_register_rejected(self, tracker):
        tracker.register(make_request(req_id=1))
        with pytest.raises(ValueError):
            tracker.register(make_request(req_id=1))

    def test_get_unknown_raises(self, tracker):
        with pytest.raises(KeyError):
            tracker.get(9)


class TestDelivery:
    def test_deliver_updates_request_and_buffer(self, tracker):
        tracker.register(make_request(req_id=1, output=4))
        tracker.deliver_token(1, 0.5)
        entry = tracker.get(1)
        assert entry.request.generated == 1
        assert entry.buffer.delivered == 1
        assert entry.request.ttft == pytest.approx(0.5)

    def test_occupancy_and_deadline(self, tracker):
        tracker.register(make_request(req_id=1, output=32, rate=10.0))
        for idx in range(10):
            tracker.deliver_token(1, 0.01 * idx)
        occupancy = tracker.occupancy(1, 0.1)
        assert occupancy == 10 - 2  # two consumed by t=0.1
        assert tracker.drain_deadline(1, 0.1) == pytest.approx(occupancy / 10.0)
        assert tracker.buffer_seconds(1, 0.1) == tracker.drain_deadline(1, 0.1)

    def test_rate_lookup(self, tracker):
        tracker.register(make_request(req_id=3, rate=7.0))
        assert tracker.rate(3) == 7.0


class TestFinish:
    def test_mark_finished_orders_entries(self, tracker):
        for rid in (1, 2):
            request = make_request(req_id=rid, output=1)
            tracker.register(request)
            request.transition(RequestState.PREFILLING)
            request.transition(RequestState.RUNNING)
        tracker.deliver_token(2, 1.0)
        tracker.get(2).request.transition(RequestState.FINISHED)
        tracker.mark_finished(2, 1.0)
        tracker.deliver_token(1, 2.0)
        tracker.get(1).request.transition(RequestState.FINISHED)
        tracker.mark_finished(1, 2.0)
        finished = tracker.finished_entries()
        assert [e.request.req_id for e in finished] == [2, 1]

    def test_first_arrival_and_last_activity(self, tracker):
        tracker.register(make_request(req_id=1, arrival=1.0, output=4))
        tracker.register(make_request(req_id=2, arrival=0.5, output=4))
        assert tracker.first_arrival() == 0.5
        tracker.deliver_token(1, 3.0)
        assert tracker.last_activity() == pytest.approx(3.0)

    def test_empty_tracker_queries(self, tracker):
        assert tracker.first_arrival() is None
        assert tracker.last_activity() is None
        assert tracker.finished_entries() == []
