"""Calibration tests: the roofline lands in published regimes."""

import pytest

from repro.gpu.calibration import calibrate, sanity_check
from repro.gpu.hardware import HARDWARE_SPECS, get_hardware
from repro.gpu.models import get_model


class TestPairings:
    @pytest.mark.parametrize("hardware,model", [
        ("h200", "llama3-8b"),
        ("a6000", "qwen2.5-7b"),
        ("rtx4090", "llama3-8b"),
        ("ascend910b", "llama3-8b"),
        ("h200", "qwen2.5-32b"),
    ])
    def test_paper_pairings_healthy(self, hardware, model):
        report = calibrate(get_hardware(hardware), get_model(model))
        assert sanity_check(report) == []

    def test_h200_llama8b_single_stream_ballpark(self):
        """Published H200 8B fp16 decode runs well above 100 tok/s."""
        report = calibrate(get_hardware("h200"), get_model("llama3-8b"))
        assert 100.0 < report.single_stream_tok_s < 1000.0

    def test_rtx4090_llama8b_single_stream_ballpark(self):
        """Consumer 4090 with 8B fp16 sits in the tens of tok/s."""
        report = calibrate(get_hardware("rtx4090"), get_model("llama3-8b"))
        assert 20.0 < report.single_stream_tok_s < 100.0

    def test_32b_slower_than_8b(self):
        h200 = get_hardware("h200")
        big = calibrate(h200, get_model("qwen2.5-32b"))
        small = calibrate(h200, get_model("llama3-8b"))
        assert big.single_stream_tok_s < small.single_stream_tok_s

    def test_batch_scaling_strong_on_h200(self):
        report = calibrate(get_hardware("h200"), get_model("llama3-8b"))
        assert report.batch_scaling > 10.0

    def test_load_beats_recompute_early(self):
        """§4.2.3 crossover: with an idle link, loading wins from small
        contexts on every paper pairing."""
        for hardware in ("h200", "a6000", "rtx4090"):
            report = calibrate(get_hardware(hardware), get_model("llama3-8b"))
            assert report.load_vs_recompute_crossover < 4096

    def test_weights_fit_flag(self):
        report = calibrate(get_hardware("rtx4090"), get_model("qwen2.5-32b"))
        assert not report.weights_fit
        assert "exceed device memory" in sanity_check(report)[0]

    def test_rows_renderable(self):
        report = calibrate(get_hardware("h200"), get_model("llama3-8b"))
        rows = report.rows()
        assert len(rows) == 7

    def test_all_specs_calibrate_without_error(self):
        for spec in HARDWARE_SPECS.values():
            calibrate(spec, get_model("llama3-8b"))
