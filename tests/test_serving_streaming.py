"""Streaming plane: feed-vs-submit parity and bounded-memory telemetry.

Two independent guarantees are pinned here:

1. **Arrival-path parity** — driving a run through
   ``ServingSystem.feed(stream)`` / ``ServingCluster.feed(stream)`` is
   *event-for-event identical* to the materialised ``submit(list)``
   path: same engine event count, bit-identical
   :func:`report_fingerprint` (every aggregate and every per-request
   float), for every registry scenario (fast subset here, the full
   sweep in the slow marker).
2. **Streaming telemetry** — with ``retain_per_request=False`` the
   tracker retires finished requests into
   :class:`StreamingRunStats`; exact aggregates (counts, sums, QoS,
   means) match the retained report to float tolerance, percentile
   sketches stay within their error envelope, and no O(total)
   structure survives the run.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.scenarios import build_run, get_scenario, scenario_names
from repro.serving.metrics import (
    QuantileSketch,
    StreamingRunStats,
    aggregate_reports,
    report_fingerprint,
)
from repro.workload.request import clone_requests

FAST_PARITY_SCENARIOS = [
    ("table1-h200-a", 0.1),        # burst, fusion-heavy
    ("table1-rtx4090-c", 0.25),    # poisson, preemption pressure
    ("cluster-burst-4x", 0.25),    # 4-replica cluster routing
    ("bursty-sessions", 0.25),     # session-id workload, 2 replicas
]


def run_pair(name, scale, seed=0):
    """One scenario executed via submit() and via feed()."""
    submitted = build_run(get_scenario(name, scale=scale, seed=seed))
    report_a = submitted.execute(streamed=False)
    streamed = build_run(get_scenario(name, scale=scale, seed=seed))
    report_b = streamed.execute(streamed=True)
    return submitted, report_a, streamed, report_b


def flatten(run, report):
    """Single-node RunReport, or the cluster per-instance fold."""
    if run.is_cluster:
        return aggregate_reports(report.per_instance)
    return report


class TestFeedSubmitParity:
    @pytest.mark.parametrize("name,scale", FAST_PARITY_SCENARIOS)
    def test_bit_identical_reports(self, name, scale):
        run_a, rep_a, run_b, rep_b = run_pair(name, scale)
        assert report_fingerprint(flatten(run_a, rep_a)) == report_fingerprint(
            flatten(run_b, rep_b)
        )

    @pytest.mark.parametrize("name,scale", FAST_PARITY_SCENARIOS)
    def test_same_event_count(self, name, scale):
        # The self-refilling arrival chain adds no events: each arrival
        # pops its successor inside its own event.
        run_a, _, run_b, _ = run_pair(name, scale)
        assert (
            run_a.target.engine.events_processed
            == run_b.target.engine.events_processed
        )

    def test_cluster_placements_identical(self):
        run_a, _, run_b, _ = run_pair("cluster-burst-4x", 0.25)
        assert run_a.target.placements == run_b.target.placements
        assert run_a.target.placement_counts() == run_b.target.placement_counts()

    def test_unfused_parity(self):
        # The parity must not depend on the fusion plane being on.
        spec = get_scenario("table1-h200-a", scale=0.1).with_overrides(
            fuse_decode=False
        )
        run_a = build_run(spec)
        rep_a = run_a.execute(streamed=False)
        run_b = build_run(spec)
        rep_b = run_b.execute(streamed=True)
        assert report_fingerprint(rep_a) == report_fingerprint(rep_b)

    def test_feed_rejects_unordered_stream(self):
        from tests.conftest import make_request

        run = build_run(get_scenario("table1-h200-a", scale=0.1))
        unordered = [make_request(req_id=0, arrival=5.0),
                     make_request(req_id=1, arrival=1.0)]
        with pytest.raises(ValueError, match="ordered by arrival"):
            run.target.feed(iter(unordered))
            run.target.run(until=run.spec.horizon)

    @pytest.mark.parametrize("streamed", [False, True])
    def test_cluster_truncation_raises_not_drops(self, streamed):
        # A cluster run cut at the horizon must report the unserved
        # tail as unfinished — in both arrival modes.  (Streamed runs
        # count every request popped off the stream; the not-yet-popped
        # tail is unknowable by construction, but at least one pending
        # arrival is always scheduled, so truncation can never look
        # like success.)
        spec = get_scenario("cluster-burst-4x", scale=0.1, horizon=0.2)
        with pytest.raises(RuntimeError, match="unfinished at horizon"):
            build_run(spec).execute(streamed=streamed)

    def test_stream_native_run_supports_forced_submit(self):
        # execute(streamed=False) on a stream-native scenario
        # materialises the stream rather than crashing.
        run = build_run(get_scenario("soak-steady", scale=0.002))
        report = run.execute(streamed=False)
        assert report.n_finished == report.n_requests > 0

    def test_lookahead_window_is_bounded(self):
        # With lookahead=1 at most one future arrival is scheduled:
        # pending events never exceed in-flight work + 1 arrival +
        # tick, regardless of how many requests the stream holds.
        run = build_run(get_scenario("table1-h200-a", scale=0.1))
        engine = run.target.engine
        run.target.feed(iter(clone_requests(run.requests)))
        assert engine.pending() == 1  # exactly the first arrival
        run.target.run(until=run.spec.horizon)
        assert run.target.unfinished == 0


@pytest.mark.slow
class TestFeedSubmitParityFullRegistry:
    @pytest.mark.parametrize("name", scenario_names())
    def test_every_registry_scenario(self, name):
        scale = 0.02 if name.startswith("soak") else 0.1
        spec = get_scenario(name, scale=scale)
        if spec.is_stream_native:
            # Stream-native soaks: parity is submit(materialised list)
            # vs the native stream factory.
            requests = spec.build_workload()
            run_a = build_run(spec, requests=requests)
            rep_a = run_a.execute(streamed=False)
            run_b = build_run(spec)
            rep_b = run_b.execute(streamed=True)
        else:
            run_a, rep_a, run_b, rep_b = run_pair(name, scale)
        assert report_fingerprint(flatten(run_a, rep_a)) == report_fingerprint(
            flatten(run_b, rep_b)
        )


class TestStreamingTelemetry:
    @pytest.fixture(scope="class")
    def reports(self):
        spec = get_scenario("table1-rtx4090-c", scale=0.25)
        retained = build_run(spec).execute()
        streaming = build_run(spec.with_overrides(retain_per_request=False)).execute()
        return retained, streaming

    def test_exact_aggregates_match(self, reports):
        retained, streaming = reports
        assert streaming.n_requests == retained.n_requests
        assert streaming.n_finished == retained.n_finished
        assert streaming.total_tokens == retained.total_tokens
        assert streaming.preemptions == retained.preemptions
        assert streaming.makespan == retained.makespan
        for attr in ("throughput", "effective_throughput", "qos",
                     "ttft_mean", "stall_total", "stall_mean"):
            assert getattr(streaming, attr) == pytest.approx(
                getattr(retained, attr), rel=1e-9
            ), attr

    def test_percentiles_within_sketch_envelope(self, reports):
        retained, streaming = reports
        # The sketch approximates the order statistic itself (no
        # interpolation); allow the bucket error plus one order-stat
        # step at this sample size.
        for attr in ("ttft_p50", "ttft_p99"):
            exact = getattr(retained, attr)
            approx = getattr(streaming, attr)
            assert approx == pytest.approx(exact, rel=0.15), attr

    def test_streaming_report_shape(self, reports):
        _, streaming = reports
        assert streaming.is_streaming
        assert streaming.per_request == []
        assert streaming.stream_stats.n_requests == streaming.n_requests
        # Executor/kv/scheduler stats still ride on the report.
        assert streaming.executor_stats["decode_iterations"] > 0
        assert "pcie_utilisation" in streaming.kv_stats

    def test_tracker_fully_retired(self):
        spec = get_scenario("soak-steady", scale=0.01)
        run = build_run(spec)
        report = run.execute()
        assert report.n_finished == report.n_requests
        assert len(run.target.tracker) == 0
        assert run.target.finished == []
        assert run.target.offload.events == []

    def test_summary_row_renders(self, reports):
        _, streaming = reports
        row = streaming.summary_row()
        assert len(row) == len(type(streaming).summary_headers())


class TestQuantileSketch:
    def test_empty(self):
        sketch = QuantileSketch()
        assert math.isnan(sketch.quantile(50))
        assert math.isnan(sketch.mean)

    def test_relative_error_bound(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(mean=0.0, sigma=1.5, size=20_000)
        sketch = QuantileSketch(rel_accuracy=0.01)
        for v in values:
            sketch.add(float(v))
        for q in (10, 50, 90, 99):
            exact = float(np.percentile(values, q))
            assert sketch.quantile(q) == pytest.approx(exact, rel=0.02), q

    def test_mean_total_exact(self):
        sketch = QuantileSketch()
        for v in (0.0, 1.0, 2.0, 3.0):
            sketch.add(v)
        assert sketch.count == 4
        assert sketch.mean == pytest.approx(1.5)
        assert sketch.minimum == 0.0 and sketch.maximum == 3.0

    def test_zero_values(self):
        sketch = QuantileSketch()
        for _ in range(10):
            sketch.add(0.0)
        sketch.add(5.0)
        assert sketch.quantile(50) == 0.0
        assert sketch.quantile(100) == 5.0

    def test_merge_equals_union(self):
        rng = np.random.default_rng(1)
        a_vals = rng.exponential(1.0, 500)
        b_vals = rng.exponential(3.0, 700)
        a, b, union = QuantileSketch(), QuantileSketch(), QuantileSketch()
        for v in a_vals:
            a.add(float(v)); union.add(float(v))
        for v in b_vals:
            b.add(float(v)); union.add(float(v))
        a.merge(b)
        assert a.count == union.count
        assert a.total == pytest.approx(union.total)
        for q in (25, 50, 95):
            assert a.quantile(q) == union.quantile(q)

    def test_merge_rejects_mismatched_accuracy(self):
        with pytest.raises(ValueError, match="accuracies"):
            QuantileSketch(0.01).merge(QuantileSketch(0.02))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            QuantileSketch().add(-1.0)

    def test_pickle_roundtrip(self):
        import pickle

        sketch = QuantileSketch()
        for v in (0.5, 1.5, 2.5):
            sketch.add(v)
        clone = pickle.loads(pickle.dumps(sketch))
        assert clone.count == 3
        assert clone.quantile(50) == sketch.quantile(50)


class TestStreamingRunStatsMerge:
    def test_merge_matches_single_fold(self):
        spec = get_scenario("table1-h200-a", scale=0.1)
        streaming = build_run(
            spec.with_overrides(retain_per_request=False)
        ).execute()
        # Merging a report's stats with an empty one must be identity.
        empty = StreamingRunStats()
        merged = aggregate_reports([streaming], system="x")
        assert merged.n_requests == streaming.n_requests
        assert merged.qos == pytest.approx(streaming.qos, rel=1e-12)
        assert merged.is_streaming
        del empty

    def test_mixed_retained_and_streaming(self):
        spec = get_scenario("table1-h200-a", scale=0.1)
        retained = build_run(spec).execute()
        streaming = build_run(
            spec.with_overrides(retain_per_request=False)
        ).execute()
        combined = aggregate_reports([retained, streaming])
        assert combined.is_streaming
        assert combined.n_requests == retained.n_requests + streaming.n_requests
        assert combined.total_tokens == retained.total_tokens + streaming.total_tokens
        assert combined.preemptions == retained.preemptions + streaming.preemptions
