"""Property-based tests for the QoS metric and utility functions."""

import pytest

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.qos import (
    QoSParams,
    effective_token_weight,
    request_qos_terms,
    token_utility,
)
from repro.core.utility import UtilityParams, request_priority, stall_risk

pytestmark = pytest.mark.slow  # full tier-1 lane only (see scripts/ci.sh)

occupancy = st.floats(min_value=0.0, max_value=10_000.0)
output_lens = st.integers(min_value=1, max_value=10_000)


class TestWeightProperties:
    @given(b=occupancy, tau=st.floats(0.0, 1000.0), alpha=st.floats(0.001, 1.0))
    def test_token_utility_in_unit_interval(self, b, tau, alpha):
        assert 0.0 <= token_utility(b, tau, alpha) <= 1.0

    @given(b1=occupancy, b2=occupancy, length=output_lens)
    def test_effective_weight_monotone_nonincreasing(self, b1, b2, length):
        low, high = min(b1, b2), max(b1, b2)
        assert effective_token_weight(low, length) >= effective_token_weight(high, length)

    @given(b=occupancy, length=output_lens)
    def test_effective_weight_in_unit_interval(self, b, length):
        assert 0.0 <= effective_token_weight(b, length) <= 1.0

    @given(
        occupancies=st.lists(occupancy, max_size=50),
        length=output_lens,
        ttft=st.floats(0.0, 100.0),
        rebuffer=st.floats(0.0, 100.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_qos_term_bounded_by_token_count(self, occupancies, length, ttft, rebuffer):
        params = QoSParams()
        term = request_qos_terms(occupancies, length, ttft, rebuffer, params)
        assert term <= len(occupancies)

    @given(
        occupancies=st.lists(occupancy, max_size=30),
        length=output_lens,
        ttft=st.floats(0.0, 50.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_qos_monotone_in_rebuffer(self, occupancies, length, ttft):
        params = QoSParams()
        clean = request_qos_terms(occupancies, length, ttft, 0.0, params)
        stalled = request_qos_terms(occupancies, length, ttft, 10.0, params)
        assert clean >= stalled


class TestPriorityProperties:
    @given(b=st.floats(0.0, 1000.0))
    def test_stall_risk_in_unit_interval(self, b):
        params = UtilityParams()
        assert 0.0 < stall_risk(b, params) <= 1.0

    @given(b1=st.floats(0.0, 100.0), b2=st.floats(0.0, 100.0))
    def test_stall_risk_monotone(self, b1, b2):
        params = UtilityParams()
        low, high = min(b1, b2), max(b1, b2)
        assert stall_risk(low, params) >= stall_risk(high, params)

    @given(
        occupancy_tokens=st.floats(0.0, 5000.0),
        buffer_s=st.floats(0.0, 500.0),
        length=output_lens,
        t_eff=st.floats(0.0, 2.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_priority_nonnegative_and_bounded(self, occupancy_tokens, buffer_s, length, t_eff):
        params = UtilityParams()
        priority = request_priority(occupancy_tokens, buffer_s, length, t_eff, params)
        assert 0.0 <= priority <= t_eff + params.gamma

    @given(
        buffer_s=st.floats(0.0, 100.0),
        length=output_lens,
        t_eff=st.floats(0.0, 2.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_priority_monotone_in_starvation(self, buffer_s, length, t_eff):
        """Less buffer (same everything else) never lowers priority."""
        params = UtilityParams()
        starved = request_priority(0.0, 0.0, length, t_eff, params)
        relaxed = request_priority(0.0, buffer_s, length, t_eff, params)
        assert starved >= relaxed
