"""Tests for structured event tracing."""

import json

import pytest

from repro.baselines import SGLangScheduler
from repro.serving.config import ServingConfig
from repro.serving.server import ServingSystem
from repro.sim.trace import TraceRecorder
from repro.workload.request import Request


class TestRecorder:
    def test_records_events(self):
        tracer = TraceRecorder()
        tracer.record(1.0, "a", "x", value=1)
        tracer.record(2.0, "b", "y")
        assert len(tracer) == 2
        assert tracer.records[0].fields == {"value": 1}

    def test_category_filter(self):
        tracer = TraceRecorder(categories=["keep"])
        tracer.record(0.0, "keep", "x")
        tracer.record(0.0, "drop", "y")
        assert len(tracer) == 1
        assert not tracer.wants("drop")

    def test_capacity_ring_buffer(self):
        tracer = TraceRecorder(capacity=2)
        for idx in range(5):
            tracer.record(float(idx), "c", "e")
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert tracer.records[0].time == 3.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)

    def test_queries(self):
        tracer = TraceRecorder()
        tracer.record(1.0, "a", "x")
        tracer.record(2.0, "a", "y")
        tracer.record(3.0, "b", "x")
        assert len(tracer.by_category("a")) == 2
        assert len(tracer.by_event("x")) == 2
        assert len(tracer.between(1.5, 3.5)) == 2
        assert tracer.counts()[("a", "x")] == 1

    def test_jsonl_export(self, tmp_path):
        tracer = TraceRecorder()
        tracer.record(1.0, "a", "x", req_id=7)
        path = tracer.to_jsonl(tmp_path / "trace.jsonl")
        record = json.loads(path.read_text().strip())
        assert record == {"time": 1.0, "category": "a", "event": "x", "req_id": 7}


class TestServingIntegration:
    def test_serving_run_emits_lifecycle_and_executor_events(self):
        tracer = TraceRecorder()
        config = ServingConfig(hardware="h200", model="llama3-8b",
                               mem_frac=0.02, max_batch=4)
        system = ServingSystem(config, SGLangScheduler(), tracer=tracer)
        system.submit([
            Request(req_id=i, arrival_time=0.0, prompt_len=64,
                    output_len=16, rate=10.0)
            for i in range(3)
        ])
        system.run(until=1_000.0)
        counts = tracer.counts()
        assert counts[("request", "arrive")] == 3
        assert counts[("request", "finish")] == 3
        assert counts.get(("executor", "prefill_start"), 0) >= 1
        assert counts.get(("executor", "decode_start"), 0) >= 1

    def test_cancel_traced(self):
        tracer = TraceRecorder(categories=["request"])
        config = ServingConfig(hardware="h200", model="llama3-8b",
                               mem_frac=0.02, max_batch=4)
        system = ServingSystem(config, SGLangScheduler(), tracer=tracer)
        system.submit([Request(req_id=0, arrival_time=0.0, prompt_len=64,
                               output_len=2000, rate=10.0)])
        system.cancel_at(0, when=1.0)
        system.run(until=100.0)
        assert tracer.counts().get(("request", "cancel")) == 1

    def test_no_tracer_path_unaffected(self):
        config = ServingConfig(hardware="h200", model="llama3-8b",
                               mem_frac=0.02, max_batch=4)
        system = ServingSystem(config, SGLangScheduler())
        system.submit([Request(req_id=0, arrival_time=0.0, prompt_len=64,
                               output_len=8, rate=10.0)])
        system.run(until=100.0)
        assert system.unfinished == 0
