"""Fast-lane parity tests for the vectorised batch plane.

The vectorised decode core (``vectorize_decode=True``, the default)
must reproduce the scalar per-request delivery path: every RunReport
metric to rel 1e-9 and the utilisation timeline exactly.  This module
is the CI fast lane's subset — a handful of registry cells covering
memory pressure, consumer heterogeneity, clustering, and session
callbacks; the exhaustive sweep lives in ``test_property_vectorize.py``
(slow lane).
"""

import dataclasses

import pytest

from repro.core.tracker import RequestTracker
from repro.scenarios import build_run, get_scenario
from repro.serving.batchstate import deliver_batch

SINGLE_NODE_METRICS = (
    "n_requests", "n_finished", "makespan", "total_tokens", "throughput",
    "effective_tokens", "effective_throughput", "qos", "ttft_mean",
    "ttft_p50", "ttft_p99", "stall_total", "stall_mean", "preemptions",
)
CLUSTER_METRICS = (
    "n_requests", "n_finished", "total_tokens", "throughput",
    "effective_throughput", "qos", "ttft_mean", "ttft_p50", "ttft_p99",
    "stall_total", "preemptions",
)

# One cell per workload family, scaled for the fast lane: Table 1
# burst cells on both hardware targets, a multi-replica cluster
# (routing + per-node vectorisation), and multi-turn sessions (finish
# callbacks fire mid-run).
FAST_PARITY_SCENARIOS = [
    ("table1-h200-a", 0.10),
    ("table1-rtx4090-c", 0.25),
    ("cluster-burst-4x", 0.25),
    ("bursty-sessions", 0.25),
]


def _execute(spec):
    run = build_run(spec)
    return run.target, run.execute()


@pytest.mark.parametrize("name,scale", FAST_PARITY_SCENARIOS)
def test_fast_parity(name, scale):
    spec_on = get_scenario(name, scale=scale, seed=0)
    spec_off = spec_on.with_overrides(vectorize_decode=False)
    _, report_off = _execute(spec_off)
    _, report_on = _execute(spec_on)
    keys = CLUSTER_METRICS if spec_on.replicas > 1 else SINGLE_NODE_METRICS
    for key in keys:
        off, on = getattr(report_off, key), getattr(report_on, key)
        assert on == pytest.approx(off, rel=1e-9, abs=1e-9), (name, key)
    if spec_on.replicas == 1:
        assert report_on.timeline == report_off.timeline
        s_off, s_on = report_off.executor_stats, report_on.executor_stats
        for key in ("prefill_iterations", "decode_iterations",
                    "prefill_tokens", "decode_tokens", "fused_windows"):
            assert s_on[key] == s_off[key], (name, key)


def test_default_is_vectorized():
    spec = get_scenario("table1-h200-a", scale=0.1)
    assert spec.vectorize_decode is True
    run = build_run(spec)
    assert run.target.config.vectorize_decode is True


def test_vectorize_off_is_scalar_path():
    """``vectorize_decode=False`` runs today's scalar machinery:
    identical reports on repeat runs and no bulk PCIe accounting."""
    spec = get_scenario("table1-h200-a", scale=0.1,
                        vectorize_decode=False)
    run = build_run(spec)
    assert run.target.config.vectorize_decode is False
    assert run.target.kv.bulk_pcie_accounting is False
    report_a = run.execute()
    report_b = build_run(spec).execute()
    assert dataclasses.asdict(
        dataclasses.replace(report_a, stream_stats=None)
    ) == dataclasses.asdict(dataclasses.replace(report_b, stream_stats=None))


class TestDeliverBatchEdges:
    """deliver_batch degenerate shapes, checked against the scalar
    tracker path on identical twins."""

    def _tracked(self, rates):
        # record_traces=False: per-token traces force the scalar
        # fallback row-by-row; the kernel requires compact buffers.
        tracker = RequestTracker(record_traces=False)
        from repro.workload.request import Request
        requests = []
        for i, rate in enumerate(rates):
            request = Request(req_id=i, arrival_time=0.0, prompt_len=4,
                              output_len=64, rate=rate)
            tracker.register(request)
            requests.append(request)
        return tracker, requests

    def test_empty_times_is_noop(self):
        tracker, requests = self._tracked([10.0, 20.0])
        deliver_batch(tracker, requests, [])
        for request in requests:
            assert request.generated == 0
            assert tracker.get(request.req_id).buffer.delivered == 0

    def test_empty_requests_is_noop(self):
        tracker, _ = self._tracked([10.0])
        deliver_batch(tracker, [], [1.0, 2.0])

    @pytest.mark.parametrize("times", [[0.5], [0.5, 0.7, 1.4]])
    def test_matches_scalar_deliver_tokens(self, times):
        rates = [5.0, 10.0, 40.0]
        tracker_v, requests_v = self._tracked(rates)
        tracker_s, requests_s = self._tracked(rates)
        # A warm-up token puts every buffer on the fast path
        # (_last_consume set); a second round exercises carried state.
        for tracker, requests in ((tracker_v, requests_v),
                                  (tracker_s, requests_s)):
            for request in requests:
                tracker.deliver_tokens(request.req_id, [0.1])
        deliver_batch(tracker_v, requests_v, times)
        for request in requests_s:
            tracker_s.deliver_tokens(request.req_id, times)
        later = [t + times[-1] for t in times]
        deliver_batch(tracker_v, requests_v, later)
        for request in requests_s:
            tracker_s.deliver_tokens(request.req_id, later)
        for request_v, request_s in zip(requests_v, requests_s):
            assert request_v.generated == request_s.generated
            assert request_v.token_times == request_s.token_times
            buf_v = tracker_v.get(request_v.req_id).buffer
            buf_s = tracker_s.get(request_s.req_id).buffer
            assert buf_v.occupancy_histogram == buf_s.occupancy_histogram
            assert buf_v.stall_time == buf_s.stall_time
            assert buf_v.delivered == buf_s.delivered
            assert (buf_v.final_consumption_time()
                    == buf_s.final_consumption_time())
            for probe in (0.2, times[-1], 2 * times[-1], 100.0):
                assert buf_v.occupancy(probe) == buf_s.occupancy(probe)

    def test_decreasing_times_raise_via_scalar_fallback(self):
        tracker, requests = self._tracked([10.0])
        tracker.deliver_tokens(requests[0].req_id, [0.1])
        with pytest.raises(ValueError):
            deliver_batch(tracker, requests, [0.5, 0.4])

    def test_equal_times_route_to_scalar_and_succeed(self):
        # Ties are legal deliveries (non-decreasing); the kernel
        # requires strict increase, so it must hand ties to the
        # scalar path, not reject them.
        tracker_v, requests_v = self._tracked([10.0])
        tracker_s, requests_s = self._tracked([10.0])
        deliver_batch(tracker_v, requests_v, [0.5, 0.5])
        tracker_s.deliver_tokens(requests_s[0].req_id, [0.5, 0.5])
        buf_v = tracker_v.get(0).buffer
        buf_s = tracker_s.get(0).buffer
        assert requests_v[0].generated == requests_s[0].generated == 2
        assert buf_v.occupancy_histogram == buf_s.occupancy_histogram
        assert buf_v.occupancy(1.0) == buf_s.occupancy(1.0)

    def test_overflow_raises_before_mutation(self):
        tracker, requests = self._tracked([10.0])
        request = requests[0]
        request.generated = request.output_len - 1
        with pytest.raises(RuntimeError):
            deliver_batch(tracker, requests, [0.1, 0.2])
