"""Unit + integration tests for the multi-instance cluster (§8)."""

import pytest

from repro.core.scheduler import TokenFlowScheduler
from repro.serving.cluster import DISPATCH_POLICIES, ServingCluster
from repro.serving.routers import (
    ROUTERS,
    BufferAwareRouter,
    Router,
    SessionAffinityRouter,
    make_router,
    register_router,
)
from repro.workload.request import Request


def burst(n, prompt=64, output=32, rate=10.0, start=0.0, id_base=0,
          session_id=None):
    return [
        Request(req_id=id_base + i, arrival_time=start, prompt_len=prompt,
                output_len=output, rate=rate, session_id=session_id)
        for i in range(n)
    ]


def make_cluster(n=2, dispatch="least_loaded"):
    return ServingCluster.homogeneous(
        n, TokenFlowScheduler, dispatch=dispatch,
        hardware="h200", model="llama3-8b", mem_frac=0.01, max_batch=8,
    )


class TestConstruction:
    def test_homogeneous_builds_instances(self):
        cluster = make_cluster(3)
        assert len(cluster.instances) == 3
        # All instances schedule onto one shared engine (one timeline)
        # through per-instance scoped views, so each plans fusion
        # windows against only its own events + the dispatch horizon.
        assert all(
            inst.engine.base is cluster.engine for inst in cluster.instances
        )
        assert all(
            inst.engine.external_horizon == cluster._next_dispatch_time
            for inst in cluster.instances
        )

    def test_invalid_dispatch_rejected(self):
        with pytest.raises(ValueError):
            make_cluster(2, dispatch="random")

    def test_zero_instances_rejected(self):
        with pytest.raises(ValueError):
            ServingCluster.homogeneous(0, TokenFlowScheduler)

    def test_policies_enumerated(self):
        assert set(DISPATCH_POLICIES) == {"round_robin", "least_loaded", "least_queued"}

    def test_registry_includes_core_and_new_routers(self):
        assert set(DISPATCH_POLICIES) <= set(ROUTERS)
        assert {"buffer_aware", "session_affinity"} <= set(ROUTERS)

    def test_router_instance_accepted(self):
        cluster = ServingCluster.homogeneous(
            2, TokenFlowScheduler, router=BufferAwareRouter(target_buffer_s=0.5),
            hardware="h200", model="llama3-8b", mem_frac=0.01, max_batch=8,
        )
        assert cluster.dispatch == "buffer_aware"
        assert cluster.router.target_buffer_s == 0.5

    def test_make_router_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_router("warp_drive")


class TestDispatch:
    def test_round_robin_stripes_evenly(self):
        cluster = make_cluster(2, dispatch="round_robin")
        cluster.submit(burst(8))
        cluster.run(until=10_000.0)
        assert cluster.placement_counts() == [4, 4]

    def test_least_loaded_balances(self):
        cluster = make_cluster(2, dispatch="least_loaded")
        cluster.submit(burst(10))
        cluster.run(until=10_000.0)
        counts = cluster.placement_counts()
        assert abs(counts[0] - counts[1]) <= 2

    def test_staggered_arrivals_follow_load(self):
        cluster = make_cluster(2, dispatch="least_loaded")
        # Pin 4 long requests first; the later short ones should land
        # mostly on the other instance.
        cluster.submit(burst(4, output=512))
        cluster.submit(burst(4, output=32, start=0.5, id_base=100))
        cluster.run(until=10_000.0)
        late = [cluster.placements[100 + i] for i in range(4)]
        assert len(set(late)) >= 1  # dispatched; balance checked below
        assert cluster.unfinished == 0

    def test_past_arrival_rejected(self):
        cluster = make_cluster(1)
        cluster.run(until=1.0)
        with pytest.raises(ValueError):
            cluster.submit(burst(1, start=0.5))


class TestRouters:
    def test_buffer_aware_prefers_idle_instance(self):
        cluster = make_cluster(2, dispatch="buffer_aware")
        # Load instance 0 with long-running requests first.
        cluster.submit(burst(6, output=512))
        cluster.submit(burst(6, output=32, start=0.5, id_base=100))
        cluster.run(until=10_000.0)
        assert cluster.unfinished == 0
        counts = cluster.placement_counts()
        assert all(count > 0 for count in counts)

    def test_buffer_aware_deficit_counts_pending_work(self):
        cluster = make_cluster(2, dispatch="buffer_aware")
        router = cluster.router
        # Queue work on instance 0 only (pre-arrival: nothing running).
        cluster.instances[0].submit(burst(4, start=0.0))
        cluster.run(until=0.0)
        assert router.instance_deficit(cluster.instances[0]) > \
            router.instance_deficit(cluster.instances[1])

    def test_session_affinity_sticks_turns_together(self):
        cluster = make_cluster(3, dispatch="session_affinity")
        for session in range(6):
            cluster.submit(burst(
                3, output=16, start=float(session) * 0.1,
                id_base=session * 1000, session_id=session,
            ))
        cluster.run(until=10_000.0)
        assert cluster.unfinished == 0
        for session in range(6):
            nodes = {
                cluster.placements[session * 1000 + turn] for turn in range(3)
            }
            assert len(nodes) == 1

    def test_session_affinity_standalone_requests_use_base_policy(self):
        cluster = make_cluster(2, dispatch="session_affinity")
        cluster.submit(burst(8, output=16))  # session_id=None
        cluster.run(until=10_000.0)
        counts = cluster.placement_counts()
        # Sessionless requests spread via least_loaded, not one node.
        assert all(count > 0 for count in counts)

    def test_custom_router_can_register(self):
        @register_router
        class AlwaysZero(Router):
            name = "always_zero_test"

            def select(self, instances, request) -> int:
                return 0

        try:
            cluster = make_cluster(2, dispatch="always_zero_test")
            cluster.submit(burst(4, output=16))
            cluster.run(until=10_000.0)
            assert cluster.placement_counts() == [4, 0]
        finally:
            ROUTERS.pop("always_zero_test", None)

    def test_sticky_map_records_sessions(self):
        router = SessionAffinityRouter()
        cluster = ServingCluster.homogeneous(
            2, TokenFlowScheduler, router=router,
            hardware="h200", model="llama3-8b", mem_frac=0.01, max_batch=8,
        )
        cluster.submit(burst(2, session_id=7, id_base=7000))
        cluster.run(until=10_000.0)
        assert 7 in router.assignments


class TestEndToEnd:
    def test_all_requests_finish(self):
        cluster = make_cluster(3)
        cluster.submit(burst(18, output=64))
        cluster.run(until=10_000.0)
        assert cluster.unfinished == 0
        report = cluster.report()
        assert report.n_finished == report.n_requests == 18

    def test_cluster_report_aggregates(self):
        cluster = make_cluster(2)
        cluster.submit(burst(8, output=32))
        cluster.run(until=10_000.0)
        report = cluster.report()
        assert report.total_tokens == 8 * 32
        assert report.throughput > 0
        assert report.ttft_mean > 0
        assert report.ttft_p99 >= report.ttft_mean
        assert len(report.per_instance) == 2

    def test_two_nodes_beat_one_on_burst_ttft(self):
        """Scaling out absorbs a burst: P99 TTFT drops."""
        def run(n_instances):
            cluster = ServingCluster.homogeneous(
                n_instances, TokenFlowScheduler,
                hardware="h200", model="llama3-8b",
                mem_frac=0.005, max_batch=8,
            )
            cluster.submit(burst(24, prompt=256, output=128))
            cluster.run(until=10_000.0)
            assert cluster.unfinished == 0
            return cluster.report()

        single, double = run(1), run(2)
        assert double.ttft_p99 < single.ttft_p99
        assert double.throughput > single.throughput
