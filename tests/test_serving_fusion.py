"""Macro-step decode fusion: parity and behaviour tests (fast lane).

The fusion plane must be *observationally equivalent* to the
per-iteration decode path: every RunReport metric equal to rel 1e-9
(identical in practice — float summation order in a few reporting
aggregates is the only permitted difference), identical timelines and
preemption counts, while processing strictly fewer engine events.
``fuse_decode=False`` must run exactly today's one-event-per-iteration
path.
"""

import pytest

from repro.experiments.systems import build_system
from repro.workload.request import Request, clone_requests

METRIC_KEYS = (
    "n_requests", "n_finished", "makespan", "total_tokens", "throughput",
    "effective_tokens", "effective_throughput", "qos", "ttft_mean",
    "ttft_p50", "ttft_p99", "stall_total", "stall_mean", "preemptions",
)


def burst(n, prompt=64, output=96, rate=10.0, start=0.0):
    return [
        Request(req_id=i, arrival_time=start, prompt_len=prompt,
                output_len=output, rate=rate)
        for i in range(n)
    ]


def run_system(name, requests, fuse, horizon=10_000.0, **kwargs):
    system = build_system(name, fuse_decode=fuse, **kwargs)
    system.submit(clone_requests(requests))
    system.run(until=horizon)
    return system


def assert_parity(report_off, report_on):
    for key in METRIC_KEYS:
        off, on = getattr(report_off, key), getattr(report_on, key)
        assert on == pytest.approx(off, rel=1e-9, abs=1e-9), key
    assert report_on.timeline == report_off.timeline


class TestWindowFormation:
    def test_windows_form_and_events_drop(self):
        requests = burst(8, output=192)
        kwargs = dict(hardware="h200", model="llama3-8b",
                      mem_frac=0.1, max_batch=16)
        off = run_system("tokenflow", requests, fuse=False, **kwargs)
        on = run_system("tokenflow", requests, fuse=True, **kwargs)
        stats = on.report().executor_stats
        assert stats["fused_windows"] > 0
        assert stats["fused_iterations"] > stats["fused_windows"]
        assert on.engine.events_processed < off.engine.events_processed
        assert_parity(off.report(), on.report())

    def test_off_switch_stays_per_iteration(self):
        requests = burst(4)
        system = run_system("tokenflow", requests, fuse=False,
                            hardware="h200", mem_frac=0.1, max_batch=8)
        stats = system.report().executor_stats
        assert stats["fused_windows"] == 0
        assert stats["fused_iterations"] == 0

    def test_iteration_accounting_matches(self):
        requests = burst(6, output=128)
        kwargs = dict(hardware="h200", mem_frac=0.1, max_batch=8)
        off = run_system("tokenflow", requests, fuse=False, **kwargs)
        on = run_system("tokenflow", requests, fuse=True, **kwargs)
        s_off, s_on = off.report().executor_stats, on.report().executor_stats
        for key in ("prefill_iterations", "decode_iterations",
                    "prefill_tokens", "decode_tokens"):
            assert s_on[key] == s_off[key], key
        assert s_on["fused_iterations"] <= s_on["decode_iterations"]


class TestParityAcrossSystems:
    @pytest.mark.parametrize(
        "name", ["sglang", "sglang-chunked", "andes", "mlfq", "tokenflow"]
    )
    def test_memory_pressure_parity(self, name):
        # The golden scenario's shape: a burst that forces admission
        # control, preemption, and resumption under a tiny KV pool.
        requests = burst(16, prompt=96, output=64)
        kwargs = dict(hardware="h200", model="llama3-8b",
                      mem_frac=0.01, max_batch=8)
        off = run_system(name, requests, fuse=False, **kwargs)
        on = run_system(name, requests, fuse=True, **kwargs)
        assert_parity(off.report(), on.report())

    @pytest.mark.parametrize(
        "name",
        ["tokenflow-no-offload", "tokenflow-no-writethrough",
         "tokenflow-no-overlap"],
    )
    def test_ablation_parity(self, name):
        requests = burst(12, prompt=96, output=64)
        kwargs = dict(hardware="h200", mem_frac=0.01, max_batch=8)
        off = run_system(name, requests, fuse=False, **kwargs)
        on = run_system(name, requests, fuse=True, **kwargs)
        assert_parity(off.report(), on.report())


class TestParityEdgeCases:
    def test_token_traces_bit_identical(self):
        requests = burst(4, output=64)
        kwargs = dict(hardware="h200", mem_frac=0.1, max_batch=8,
                      record_token_traces=True)
        off = run_system("tokenflow", requests, fuse=False, **kwargs)
        on = run_system("tokenflow", requests, fuse=True, **kwargs)
        for req_id in range(4):
            b_off = off.tracker.get(req_id).buffer
            b_on = on.tracker.get(req_id).buffer
            assert b_on.generation_times == b_off.generation_times
            assert b_on.consumption_times == b_off.consumption_times
            assert b_on.occupancy_at_generation == b_off.occupancy_at_generation
            r_off = off.tracker.get(req_id).request
            r_on = on.tracker.get(req_id).request
            assert r_on.token_times == r_off.token_times

    def test_cancellation_parity(self):
        # Cancels are pre-scheduled engine events, so the fusion
        # horizon must stop windows strictly before them.
        requests = burst(6, output=256)
        kwargs = dict(hardware="h200", mem_frac=0.1, max_batch=8)

        def run(fuse):
            system = build_system("tokenflow", fuse_decode=fuse, **kwargs)
            system.submit(clone_requests(requests))
            system.cancel_at(2, 0.45)
            system.cancel_at(5, 0.731)
            system.run(until=10_000.0)
            return system

        off, on = run(False), run(True)
        r_off, r_on = off.report(), on.report()
        assert r_on.total_tokens == r_off.total_tokens
        for key in ("throughput", "qos", "stall_total", "preemptions"):
            assert getattr(r_on, key) == pytest.approx(
                getattr(r_off, key), rel=1e-9, abs=1e-9
            ), key
        cancelled = on.tracker.get(2).request
        assert cancelled.generated == off.tracker.get(2).request.generated

    def test_in_flight_transfer_blocks_fusion(self):
        # A d2h transfer occupying the link past the window (an
        # eviction in flight) must bypass fusion even when the dirty
        # backlog is empty: the per-iteration drains inside such a
        # window find zero idle budget and sync *nothing*, so
        # replicating uniform drains would diverge cpu-side KV state
        # (host copies advancing that the real path leaves dirty) and
        # the write-through accounting.  The run is stepped so the
        # divergence would be visible mid-busy-window, not only in the
        # end-of-run totals (which reconverge once the link frees).
        requests = burst(4, output=192)
        kwargs = dict(hardware="h200", mem_frac=0.1, max_batch=8)

        def run(fuse):
            system = build_system("tokenflow", fuse_decode=fuse, **kwargs)
            kv = system.kv
            orig_drain = kv.drain_writes
            state = {"done": False}

            def drain_then_inject(now, horizon, priority=None):
                synced = orig_drain(now, horizon, priority=priority)
                # Deterministic trigger, identical in both runs: the
                # first fully-synced drain past t=0.3 is followed by a
                # long eviction-style transfer (completion scheduled as
                # an event, like HierarchicalKVManager.preempt does).
                if not state["done"] and now > 0.3 and not kv._dirty:
                    state["done"] = True
                    job = kv.link.d2h.submit(20e9, now)
                    system.engine.call_at(
                        job.end, lambda: None, label="evict-done:test"
                    )
                return synced

            kv.drain_writes = drain_then_inject
            system.submit(clone_requests(requests))
            cpu_series = []
            t = 0.0
            while system.unfinished and t < 10_000.0:
                t += 0.05
                system.run(until=t)
                cpu_series.append(
                    sorted(
                        (rid, kv.record(rid).cpu_tokens)
                        for rid in kv.resident_requests()
                    )
                )
            system.run(until=10_000.0)
            assert state["done"], "injection never triggered"
            return system, cpu_series

        (off, series_off), (on, series_on) = run(False), run(True)
        # Host-copy state must match at every sampled instant — with
        # the in-flight-transfer gate missing, the fused run's cpu
        # copies advance through the busy window while the real drains
        # sync nothing.
        assert series_on == series_off
        r_off, r_on = off.report(), on.report()
        assert_parity(r_off, r_on)
        assert r_on.kv_stats["write_through_bytes"] == pytest.approx(
            r_off.kv_stats["write_through_bytes"], rel=1e-9
        )

    def test_external_cancel_while_window_pending(self):
        # ServingSystem.cancel() is a public synchronous call: between
        # stepped run() invocations it can remove a batch member while
        # a fused window's completion event is still pending (no
        # unfused analogue exists — the window is committed).  The
        # completion must skip the departed request like
        # complete_decode does, not crash on its released KV record,
        # and the cancelled request must receive no further tokens.
        from repro.workload.request import RequestState

        def drive(fuse):
            requests = burst(4, output=128)
            system = build_system("sglang", hardware="h200", mem_frac=0.1,
                                  max_batch=8, fuse_decode=fuse)
            system.submit(clone_requests(requests))
            cancelled_at = None
            for _ in range(200_000):
                system.run(until=10_000.0, max_events=1)
                if cancelled_at is None and 2 in system.tracker:
                    req = system.tracker.get(2).request
                    if (system._busy and req.state is RequestState.RUNNING
                            and req.generated >= 1):
                        system.cancel(2)
                        cancelled_at = req.generated
                if not system.unfinished:
                    break
            return system, cancelled_at

        for fuse in (False, True):
            system, cancelled_at = drive(fuse)
            assert cancelled_at is not None, "cancel never triggered"
            assert system.unfinished == 0
            report = system.report()
            assert report.n_finished == 3
            # Tokens already streamed stay; nothing lands after cancel.
            assert system.tracker.get(2).request.generated == cancelled_at
            survivors = [system.tracker.get(rid).request for rid in (0, 1, 3)]
            assert all(r.generated == r.output_len for r in survivors)

    def test_until_stepping_parity(self):
        # Driving the engine in run(until=...) increments must match a
        # single drain: windows cap at the run bound so no iteration
        # completing after `until` is applied early.
        requests = burst(6, output=128)
        kwargs = dict(hardware="h200", mem_frac=0.1, max_batch=8)

        one_shot = run_system("tokenflow", requests, fuse=True, **kwargs)

        stepped = build_system("tokenflow", fuse_decode=True, **kwargs)
        stepped.submit(clone_requests(requests))
        t = 0.0
        while stepped.unfinished and t < 10_000.0:
            t += 0.37
            stepped.run(until=t)
        stepped.run(until=10_000.0)

        unfused = run_system("tokenflow", requests, fuse=False, **kwargs)
        assert_parity(unfused.report(), one_shot.report())
        assert_parity(unfused.report(), stepped.report())
