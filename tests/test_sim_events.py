"""Unit tests for the event queue."""

from repro.sim.events import EventQueue


class TestEventQueue:
    def test_pop_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, lambda: order.append("b"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(3.0, lambda: order.append("c"))
        while queue:
            queue.pop().action()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        order = []
        for name in ("first", "second", "third"):
            queue.push(1.0, lambda n=name: order.append(n))
        while queue:
            queue.pop().action()
        assert order == ["first", "second", "third"]

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, lambda: fired.append(1))
        queue.push(2.0, lambda: fired.append(2))
        event.cancel()
        while queue:
            queue.pop().action()
        assert fired == [2]

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(4.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.peek_time() == 2.0

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        early = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        early.cancel()
        assert queue.peek_time() == 5.0

    def test_len_counts_live_events(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        first.cancel()
        queue.pop()
        assert len(queue) == 0

    def test_cancel_corrects_count_immediately(self):
        """Regression: `_live` used to be decremented only when the
        cancelled entry was popped, so pending()/__bool__ overcounted
        between cancel and pop."""
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        # The stale heap entry has not been popped yet, but the live
        # count must already exclude it.
        assert len(queue) == 1
        only = queue.push(3.0, lambda: None)
        only.cancel()
        queue.pop()  # pops the live 2.0 event (skipping the stale 1.0)
        assert len(queue) == 0
        assert not queue

    def test_double_cancel_is_idempotent(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert len(queue) == 1

    def test_cancel_after_pop_does_not_underflow(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        popped = queue.pop()
        assert popped is event
        event.cancel()  # already popped: must not touch the count
        assert len(queue) == 1

    def test_bool_reflects_liveness(self):
        queue = EventQueue()
        assert not queue
        queue.push(1.0, lambda: None)
        assert queue

    def test_bool_false_when_only_cancelled_remain(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        event.cancel()
        assert not queue
        assert queue.pop() is None


class TestHeapCompaction:
    """The queue rebuilds its heap when >50% of entries are cancelled."""

    def test_compaction_drops_dead_entries(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(128)]
        # Cancel until the dead fraction crosses 1/2: the heap shrinks
        # to exactly the live entries.
        for event in events[: 128 // 2 + 1]:
            event.cancel()
        assert len(queue._heap) == len(queue)
        assert all(not e.cancelled for e in queue._heap)

    def test_small_heaps_are_not_compacted(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(8)]
        for event in events:
            event.cancel()
        # Below the size floor the stale entries stay until popped.
        assert len(queue._heap) == 8
        assert len(queue) == 0

    def test_order_preserved_across_compaction(self):
        queue = EventQueue()
        order = []
        events = []
        for i in range(200):
            events.append(queue.push(float(i % 7), lambda i=i: order.append(i)))
        cancelled = {i for i in range(200) if i % 3 == 0}
        for i in cancelled:
            events[i].cancel()
        while queue:
            queue.pop().action()
        survivors = [i for i in range(200) if i not in cancelled]
        expected = sorted(survivors, key=lambda i: (float(i % 7), i))
        assert order == expected

    def test_live_count_and_peek_after_compaction(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(100)]
        for event in events[:70]:
            event.cancel()
        assert len(queue) == 30
        assert queue.peek_time() == 70.0
        popped = queue.pop()
        assert popped is events[70]

    def test_push_after_compaction_keeps_sequencing(self):
        queue = EventQueue()
        events = [queue.push(1.0, lambda: None) for _ in range(80)]
        for event in events[:60]:
            event.cancel()
        late = queue.push(1.0, lambda: None)
        # Same timestamp: survivors keep insertion precedence over the
        # post-compaction push.
        assert queue.pop() is events[60]
        order = []
        while queue:
            order.append(queue.pop())
        assert order[-1] is late
