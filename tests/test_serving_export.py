"""Unit tests for run-report serialization."""

import json

import pytest

from repro.baselines import SGLangScheduler
from repro.serving.config import ServingConfig
from repro.serving.export import (
    load_report_json,
    report_to_dict,
    save_report_json,
    save_token_trace_jsonl,
)
from repro.serving.server import ServingSystem
from repro.workload.request import Request


@pytest.fixture(scope="module")
def finished_system():
    config = ServingConfig(hardware="h200", model="llama3-8b",
                           mem_frac=0.02, max_batch=4,
                           record_token_traces=True)
    system = ServingSystem(config, SGLangScheduler())
    system.submit([
        Request(req_id=i, arrival_time=0.0, prompt_len=64,
                output_len=16, rate=10.0)
        for i in range(3)
    ])
    system.run(until=1_000.0)
    return system


class TestReportDict:
    def test_roundtrips_through_json(self, finished_system):
        payload = report_to_dict(finished_system.report())
        encoded = json.dumps(payload)
        decoded = json.loads(encoded)
        assert decoded["n_finished"] == 3
        assert decoded["system"] == "sglang"
        assert len(decoded["per_request"]) == 3

    def test_requests_optional(self, finished_system):
        payload = report_to_dict(finished_system.report(), include_requests=False)
        assert "per_request" not in payload

    def test_nested_stats_jsonable(self, finished_system):
        payload = report_to_dict(finished_system.report())
        assert isinstance(payload["kv_stats"]["pcie_utilisation"], dict)


class TestFiles:
    def test_save_and_load_report(self, finished_system, tmp_path):
        target = tmp_path / "out" / "report.json"
        saved = save_report_json(finished_system.report(), target)
        assert saved.exists()
        loaded = load_report_json(saved)
        assert loaded["total_tokens"] == 48

    def test_token_trace_jsonl(self, finished_system, tmp_path):
        target = tmp_path / "trace.jsonl"
        save_token_trace_jsonl(finished_system.tracker, target)
        lines = target.read_text().strip().split("\n")
        assert len(lines) == 3
        record = json.loads(lines[0])
        assert len(record["generation_times"]) == 16
        assert len(record["consumption_times"]) == 16
        assert record["stall_time"] >= 0.0
