"""Smoke tests: every example script runs end to end."""

import runpy
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow  # full tier-1 lane only (see scripts/ci.sh)

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, monkeypatch, capsys):
    # Shrink the CLI-style arg so the heavier examples stay quick.
    monkeypatch.setattr(sys, "argv", [str(script), "40"])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # every example prints its results


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "burst_comparison", "multirate_streaming",
            "trace_replay", "agent_clients", "chat_sessions"} <= names
