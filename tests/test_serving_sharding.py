"""Sharded cluster simulation vs the single-process cluster.

The contract under test: :class:`~repro.serving.shard.ShardedServingCluster`
partitions a replica cluster across shard workers that each advance to a
conservative horizon (the router's next dispatch time), yet the final
:class:`~repro.serving.cluster.ClusterReport` is **bit-identical** to the
classic shared-engine :class:`~repro.serving.cluster.ServingCluster` — for
every built-in router, any shard count, both workload intake paths
(``submit`` and ``feed``), and both transports (in-process ``inline`` and
``process`` workers).

Fingerprints are compared through ``repr`` rather than tuple equality:
instances that routed zero requests report NaN latency fields, and
``nan != nan`` under ``==`` while ``repr`` renders both as ``'nan'``.
"""

from __future__ import annotations

import pickle

import pytest

from repro.experiments.systems import SchedulerRecipe
from repro.scenarios.build import build_run
from repro.scenarios.registry import get_scenario
from repro.serving.cluster import ServingCluster
from repro.serving.metrics import report_fingerprint
from repro.serving.routers import ROUTERS, Router
from repro.serving.shard import ShardedServingCluster
from repro.workload.request import Request

# Registry cluster scenarios with a scale that keeps each run small
# enough for an exhaustive sweep (the soak scenario runs 64 replicas,
# so it gets the tiniest workload slice).
CLUSTER_SCENARIOS = {
    "cluster-burst-4x": 0.25,
    "bursty-sessions": 0.25,
    "cluster-soak-64x": 0.02,
}

ALL_ROUTERS = sorted(ROUTERS)


# --- fingerprint helpers -----------------------------------------------------

def deep_fp(target, report) -> str:
    """Everything observable from one cluster run, NaN-tolerant.

    Covers the aggregate fingerprint, each instance's full fingerprint
    plus executor/kv/scheduler stats, timeline and preemptions, and the
    routing record (placements + per-instance counts).
    """
    per = [
        (
            report_fingerprint(r),
            sorted(r.executor_stats.items()),
            sorted(r.kv_stats.items()),
            sorted(r.scheduler_stats.items()),
            r.timeline,
            r.preemptions,
        )
        for r in report.per_instance
    ]
    return repr(
        (
            report_fingerprint(report.aggregate),
            per,
            sorted(target.placements.items()),
            target.placement_counts(),
        )
    )


def run_registry(name, *, scale, seed, router=None, shards=1,
                 transport=None, streamed=False):
    """Build and execute one registry scenario; return (target, fingerprint)."""
    overrides = {"shards": shards}
    if router is not None:
        overrides["router"] = router
    spec = get_scenario(name, scale=scale, seed=seed, **overrides)
    run = build_run(spec)
    if transport is not None and isinstance(run.target, ShardedServingCluster):
        run.target.transport = transport
    report = run.execute(streamed=streamed)
    return run.target, deep_fp(run.target, report)


# --- direct-API helpers ------------------------------------------------------

def _requests(n=48):
    """Deterministic synthetic arrivals (already ordered for ``feed``)."""
    return [
        Request(
            req_id=i,
            arrival_time=0.03 * i,
            prompt_len=64 + (i * 13) % 96,
            output_len=32 + (i * 7) % 64,
            rate=20.0,
            session_id=i % 5,
        )
        for i in range(n)
    ]


def _classic(n=4, router="least_loaded"):
    return ServingCluster.homogeneous(
        n, SchedulerRecipe("tokenflow"), router=router,
        mem_frac=0.02, max_batch=16,
    )


def _sharded(n=4, router="least_loaded", shards=2, transport="inline"):
    return ShardedServingCluster.homogeneous(
        n, SchedulerRecipe("tokenflow"), router=router,
        shards=shards, transport=transport,
        mem_frac=0.02, max_batch=16,
    )


def _classic_fp(router="least_loaded", until=None):
    cluster = _classic(router=router)
    cluster.submit(_requests())
    cluster.run(until=until)
    return deep_fp(cluster, cluster.report())


def _sharded_fp(router="least_loaded", shards=2, transport="inline",
                until=None, via_feed=False):
    cluster = _sharded(router=router, shards=shards, transport=transport)
    if via_feed:
        cluster.feed(iter(_requests()))
    else:
        cluster.submit(_requests())
    cluster.run(until=until)
    return deep_fp(cluster, cluster.report())


# --- fast lane: direct API ---------------------------------------------------

@pytest.mark.parametrize("router", ALL_ROUTERS)
def test_inline_parity_every_router(router):
    """K=2 inline shards reproduce the shared-engine run bit-for-bit."""
    assert _sharded_fp(router=router, shards=2) == _classic_fp(router=router)


def test_shard_count_invariance():
    """K ∈ {1, 2, 4} all reproduce the same run (4 replicas)."""
    baseline = _classic_fp(router="least_loaded")
    for shards in (1, 2, 4):
        assert _sharded_fp(router="least_loaded", shards=shards) == baseline


def test_process_transport_parity():
    """Real worker processes: state crosses pickling boundaries intact."""
    baseline = _classic_fp(router="least_loaded")
    assert _sharded_fp(router="least_loaded", shards=2,
                       transport="process") == baseline


def test_process_transport_stateless_router():
    """round_robin exercises the buffered (non-pausing) fast path."""
    baseline = _classic_fp(router="round_robin")
    assert _sharded_fp(router="round_robin", shards=2,
                       transport="process") == baseline


def test_feed_matches_submit():
    baseline = _classic_fp(router="least_queued")
    assert _sharded_fp(router="least_queued", via_feed=True) == baseline
    assert _sharded_fp(router="least_queued", via_feed=False) == baseline


def test_horizon_truncation_matches_classic():
    """Requests past the horizon stay pending on both implementations."""
    horizon = 0.03 * 24  # strands roughly half the synthetic arrivals
    classic = _classic(router="least_loaded")
    classic.submit(_requests())
    classic.run(until=horizon)
    sharded = _sharded(router="least_loaded", shards=2)
    sharded.submit(_requests())
    sharded.run(until=horizon)
    assert sharded.unfinished == classic.unfinished
    assert deep_fp(sharded, sharded.report()) == deep_fp(
        classic, classic.report()
    )


def test_shards_clamped_to_replicas():
    cluster = _sharded(n=4, shards=16)
    assert cluster.shards == 4


def test_non_shardable_router_rejected():
    class OpaqueRouter(Router):
        name = "opaque"

        def select(self, instances, request):
            return 0

    with pytest.raises(ValueError, match="shardable"):
        ShardedServingCluster.homogeneous(
            2, SchedulerRecipe("tokenflow"), router=OpaqueRouter(),
            mem_frac=0.02, max_batch=16,
        )


def test_env_switch_selects_inline_transport(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_INLINE", "1")
    assert _sharded(transport=None).transport == "inline"
    monkeypatch.delenv("REPRO_SHARD_INLINE")
    assert _sharded(transport=None).transport == "process"


def test_run_twice_raises():
    cluster = _sharded()
    cluster.submit(_requests(8))
    cluster.run()
    with pytest.raises(RuntimeError, match="already ran"):
        cluster.run()
    with pytest.raises(RuntimeError, match="already ran"):
        cluster.submit(_requests(1))


def test_report_before_run_raises():
    with pytest.raises(RuntimeError, match="before report"):
        _sharded().report()


def test_scheduler_recipe_pickles():
    recipe = pickle.loads(pickle.dumps(SchedulerRecipe("tokenflow")))
    assert recipe().name == "tokenflow"


# --- fast lane: scenario/CLI plumbing ---------------------------------------

def test_build_run_shards_one_uses_classic_cluster():
    spec = get_scenario("cluster-burst-4x", scale=0.1, shards=1)
    run = build_run(spec)
    assert isinstance(run.target, ServingCluster)
    spec = get_scenario("cluster-burst-4x", scale=0.1, shards=2)
    run = build_run(spec)
    assert isinstance(run.target, ShardedServingCluster)
    assert run.target.shards == 2


def test_sharded_cells_inside_matrix_workers():
    """Sharded cells run (and exit) cleanly inside pool workers.

    A nested warm pool inside a matrix worker deadlocks worker
    shutdown (multiprocessing joins the worker's children before the
    nested executor's atexit shutdown runs), so the sharded cluster
    must fall back to the inline transport off the main process —
    with identical results.
    """
    from repro.orchestration import MatrixSpec, run_matrix

    spec = MatrixSpec.from_axes(
        scenarios=["cluster-burst-4x"], shards=[1, 2], seeds=[0], scale=0.05
    )
    report = run_matrix(spec, jobs=2, cache=False)
    cells = report.cells
    assert all(cell.ok for cell in cells), [cell.status for cell in cells]
    assert repr(report_fingerprint(cells[0].report)) == repr(
        report_fingerprint(cells[1].report)
    )


def test_registry_parity_process_transport():
    """One registry scenario end-to-end through real worker processes."""
    _, baseline = run_registry("cluster-burst-4x", scale=0.1, seed=0)
    _, sharded = run_registry(
        "cluster-burst-4x", scale=0.1, seed=0, shards=2, transport="process"
    )
    assert sharded == baseline


# --- slow lane: exhaustive registry sweep ------------------------------------

@pytest.mark.slow
@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("router", ALL_ROUTERS)
@pytest.mark.parametrize("name", sorted(CLUSTER_SCENARIOS))
def test_registry_sweep_bit_identical(name, router, seed):
    """Scenarios × routers × seeds × {submit, feed}: sharded == classic."""
    scale = CLUSTER_SCENARIOS[name]
    for streamed in (False, True):
        _, baseline = run_registry(
            name, scale=scale, seed=seed, router=router, streamed=streamed
        )
        _, sharded = run_registry(
            name, scale=scale, seed=seed, router=router, shards=2,
            transport="inline", streamed=streamed,
        )
        assert sharded == baseline, (
            f"{name} router={router} seed={seed} streamed={streamed}"
        )


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(CLUSTER_SCENARIOS))
def test_registry_shard_count_invariance(name):
    """K ∈ {2, 4} reproduce the scenario's classic run exactly."""
    scale = CLUSTER_SCENARIOS[name]
    _, baseline = run_registry(name, scale=scale, seed=0)
    for shards in (2, 4):
        _, sharded = run_registry(
            name, scale=scale, seed=0, shards=shards, transport="inline"
        )
        assert sharded == baseline, f"{name} shards={shards}"


@pytest.mark.slow
def test_soak_process_transport_parity():
    """64 replicas over 4 real worker processes, round_robin fast path."""
    _, baseline = run_registry("cluster-soak-64x", scale=0.02, seed=0)
    _, sharded = run_registry(
        "cluster-soak-64x", scale=0.02, seed=0, shards=4, transport="process"
    )
    assert sharded == baseline


# --- speculative dispatch ----------------------------------------------------
#
# The trajectory-snapshot mirror (Router.speculative) must change
# nothing observable except the coordination counters: placements and
# reports stay bit-identical with speculation on, off, and across the
# classic cluster, while rounds collapse for stateful routers.

def _sharded_spec(router="least_loaded", shards=2, speculation=True,
                  n_requests=48):
    cluster = ShardedServingCluster.homogeneous(
        4, SchedulerRecipe("tokenflow"), router=router,
        shards=shards, transport="inline", speculation=speculation,
        mem_frac=0.02, max_batch=16,
    )
    cluster.submit(_requests(n_requests))
    cluster.run()
    return cluster


def test_speculation_off_matches_on_bit_for_bit():
    on = _sharded_spec(speculation=True)
    off = _sharded_spec(speculation=False)
    assert deep_fp(on, on.report()) == deep_fp(off, off.report())


def test_speculation_off_reproduces_pause_round_counts():
    """speculation=False pays one round per stateful dispatch — the
    pre-speculation protocol, exactly."""
    off = _sharded_spec(speculation=False)
    # least_loaded needs state for every arrival.
    assert off.coordination_rounds == len(_requests())
    assert off.speculation_hits == 0
    assert off.speculation_misses == 0


def test_speculation_cuts_rounds():
    on = _sharded_spec(speculation=True)
    off = _sharded_spec(speculation=False)
    assert on.coordination_rounds < off.coordination_rounds
    assert on.messages_sent < off.messages_sent
    # Every stateful dispatch except the very first (no mirror yet —
    # nothing to speculate against) is accounted: resolved
    # speculatively (hit), validated by a round (hit), or rolled back
    # (miss).
    assert (on.speculation_hits + on.speculation_misses
            == off.coordination_rounds - 1)


def test_speculation_counters_surface_in_cluster_report():
    on = _sharded_spec(speculation=True)
    report = on.report()
    assert report.coordination_rounds == on.coordination_rounds
    assert report.messages_sent == on.messages_sent
    assert report.speculation_hits == on.speculation_hits
    assert report.speculation_misses == on.speculation_misses
    assert report.speculation_hits > 0
    classic = _classic()
    classic.submit(_requests())
    classic.run()
    classic_report = classic.report()
    assert classic_report.coordination_rounds == 0
    assert classic_report.speculation_hits == 0


def test_speculation_non_speculative_router_unchanged():
    """buffer_aware opts out of snapshots: speculation on/off are the
    same protocol (every stateful dispatch pauses), same results."""
    on = _sharded_spec(router="buffer_aware", speculation=True)
    off = _sharded_spec(router="buffer_aware", speculation=False)
    assert on.coordination_rounds == off.coordination_rounds
    assert on.speculation_hits == 0
    assert deep_fp(on, on.report()) == deep_fp(off, off.report())


def test_speculation_process_transport_parity():
    """Snapshots pickle across the worker boundary intact."""
    baseline = _classic_fp(router="least_loaded")
    cluster = _sharded(router="least_loaded", shards=2, transport="process")
    cluster.submit(_requests())
    cluster.run()
    assert deep_fp(cluster, cluster.report()) == baseline
    assert cluster.speculation_hits > 0


def test_session_affinity_speculation_folds_sticky_hits():
    """Sticky (stateless) placements must fold into the mirror too —
    parity across on/off proves the folded trajectory stays exact."""
    on = _sharded_spec(router="session_affinity", speculation=True)
    off = _sharded_spec(router="session_affinity", speculation=False)
    assert deep_fp(on, on.report()) == deep_fp(off, off.report())
    assert on.coordination_rounds < off.coordination_rounds


def test_speculation_spec_plumbing():
    spec = get_scenario("cluster-burst-4x", scale=0.1, shards=2,
                        speculation=False)
    run = build_run(spec)
    assert run.target.speculation is False
    spec = get_scenario("cluster-burst-4x", scale=0.1, shards=2)
    run = build_run(spec)
    assert run.target.speculation is True


@pytest.mark.slow
def test_registry_speculation_off_parity_sweep():
    """speculation=off × routers × scenarios: same fingerprints as the
    default (speculation=on) sharded runs."""
    for name, scale in sorted(CLUSTER_SCENARIOS.items()):
        for router in ("least_loaded", "session_affinity"):
            _, on_fp = run_registry(
                name, scale=scale, seed=0, router=router, shards=2,
                transport="inline",
            )
            spec = get_scenario(name, scale=scale, seed=0, router=router,
                                shards=2, speculation=False)
            run = build_run(spec)
            run.target.transport = "inline"
            report = run.execute()
            assert deep_fp(run.target, report) == on_fp, (
                f"{name} router={router}"
            )


@pytest.mark.slow
def test_soak_least_loaded_speculation_process_parity():
    """The acceptance workload: 64 replicas, least_loaded, 4 real
    worker processes, speculation on — bit-identical to classic."""
    _, baseline = run_registry(
        "cluster-soak-64x", scale=0.02, seed=0, router="least_loaded"
    )
    target, sharded = run_registry(
        "cluster-soak-64x", scale=0.02, seed=0, router="least_loaded",
        shards=4, transport="process",
    )
    assert sharded == baseline
    assert target.speculation_hits > 0


# --- per-shard streaming telemetry (O(active) reports) -----------------------

def test_shard_workers_retire_finished_into_sketches():
    """Under feed with retain_per_request=False (the soak setting),
    shard workers retire finished requests into QuantileSketch-backed
    stats locally: the per-instance reports crossing the worker
    boundary carry sketches and no per-request rows."""
    spec = get_scenario("cluster-soak-64x", scale=0.02, seed=0,
                        shards=2)
    assert spec.retain_per_request is False
    run = build_run(spec)
    run.target.transport = "inline"
    report = run.execute()  # stream-native: drives the feed path
    assert report.n_finished > 0
    for node in report.per_instance:
        assert node.stream_stats is not None
        assert node.per_request == []
    # The placement map is the other O(total-requests) structure;
    # streaming soaks drop it and keep only per-instance counters.
    assert run.target.placements == {}
    assert sum(run.target.placement_counts()) == report.n_requests
