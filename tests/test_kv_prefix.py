"""Prefix-sharing KV allocator: unit behaviour + naive-mode parity.

Covers the :mod:`repro.memory.blocktable` lifecycle (reference reuse,
cache promotion, copy-on-write forks, refcount-aware eviction) through
the ``HierarchicalKVManager`` API, the identity plumbing on
``Request``, the counters surfaced through ``RunReport.kv_stats``, and
the bit-identity guarantee: the default ``kv_allocator="naive"`` runs
every existing registry scenario exactly as before (the full-registry
sweep is slow-marked; a representative subset runs in the fast lane).
"""

import pytest

from repro.memory.blocktable import SHARED_OWNER
from repro.memory.kv_manager import HierarchicalKVManager, KVManagerConfig
from repro.scenarios import build_run, get_scenario
from repro.scenarios.registry import scenario_names
from repro.serving.metrics import report_fingerprint
from repro.sim.engine import SimEngine
from repro.workload.request import Request, clone_requests


def make_kv(allocator="prefix_cow", capacity=64, **cfg):
    cfg.setdefault("cpu_capacity_blocks", 4096)
    config = KVManagerConfig(kv_allocator=allocator, **cfg)
    return HierarchicalKVManager(
        SimEngine(), capacity, kv_bytes_per_token=1000.0,
        pcie_bandwidth_bytes_per_s=1e9, config=config,
    )


def make_request(req_id, prompt, session=None, group=None, prefix_len=0):
    return Request(
        req_id=req_id, arrival_time=0.0, prompt_len=prompt, output_len=8,
        rate=10.0, session_id=session, prefix_group=group,
        prefix_len=prefix_len,
    )


class TestRequestIdentity:
    def test_affinity_key_is_session_id(self):
        assert make_request(0, 64, session=7).affinity_key == 7
        assert make_request(0, 64).affinity_key is None

    def test_sharing_identity_kinds(self):
        assert make_request(0, 64, session=3).sharing_identity() == (
            ("sess", 3), None
        )
        assert make_request(0, 64, group=5, prefix_len=48).sharing_identity() \
            == (("grp", 5), 48)
        assert make_request(0, 64).sharing_identity() is None

    def test_prefix_field_validation(self):
        with pytest.raises(ValueError, match="prefix_len"):
            make_request(0, 64, group=1)  # group without a length
        with pytest.raises(ValueError, match="exceeds prompt_len"):
            make_request(0, 64, group=1, prefix_len=65)
        with pytest.raises(ValueError, match="non-negative"):
            Request(req_id=0, arrival_time=0.0, prompt_len=8, output_len=1,
                    rate=1.0, prefix_len=-1)

    def test_clone_preserves_prefix_fields(self):
        original = make_request(4, 128, group=2, prefix_len=100)
        clone = clone_requests([original])[0]
        assert clone.prefix_group == 2 and clone.prefix_len == 100
        assert clone.sharing_identity() == original.sharing_identity()


class TestAllocatorConfig:
    def test_naive_default_has_no_table(self):
        kv = make_kv(allocator="naive")
        assert kv.prefix is None
        assert "prefix_lookups" not in kv.stats

    def test_prefix_cow_seeds_counters(self):
        kv = make_kv()
        assert kv.prefix is not None
        assert kv.stats["prefix_lookups"] == 0
        assert kv.stats["cow_forks"] == 0

    def test_unknown_allocator_rejected(self):
        with pytest.raises(ValueError, match="kv_allocator"):
            make_kv(allocator="buddy")
        with pytest.raises(ValueError, match="kv_allocator"):
            get_scenario("table1-h200-a").with_overrides(kv_allocator="buddy")

    def test_naive_ignores_identity(self):
        kv = make_kv(allocator="naive")
        kv.register(0, make_request(0, 160, session=1))
        kv.allocate_for_prefill(0, 160)
        kv.on_prefill_complete(0, 160)
        assert kv.record(0).shared_blocks == 0
        kv.check_invariants()


class TestSessionReuse:
    """Sequential session turns: donate at finish, reuse on the next."""

    def test_turn_two_maps_history_onto_cached_blocks(self):
        kv = make_kv()
        kv.register(0, make_request(0, 160, session=7))
        kv.allocate_for_prefill(0, 160)          # 10 blocks
        kv.on_prefill_complete(0, 160)
        for _ in range(8):
            kv.on_decode_token(0)                # context now 168
        kv.check_invariants()
        kv.release(0)
        # The whole 168-token chain (10 full + 1 partial) is donated.
        assert kv.prefix.evictable_blocks == 11
        assert kv.gpu_pool.used_by(SHARED_OWNER) == 11
        allocated_before = kv.gpu_pool.total_allocated

        # Turn 2 re-feeds the 168 tokens plus a fresh 12-token message.
        kv.register(1, make_request(1, 180, session=7))
        kv.allocate_for_prefill(1, 180)
        record = kv.record(1)
        assert record.shared_blocks == 10        # full blocks referenced
        assert kv.stats["cache_promotes"] == 1   # the partial tail taken over
        # 12 blocks cover 180 tokens; 10 shared + 1 promoted -> 1 fresh.
        assert kv.gpu_pool.total_allocated - allocated_before == 1
        kv.on_prefill_complete(1, 180)
        assert record.shared_blocks == 12        # newly published span
        kv.check_invariants()

    def test_savings_counters_track_reuse(self):
        kv = make_kv()
        kv.register(0, make_request(0, 160, session=7))
        kv.allocate_for_prefill(0, 160)
        kv.on_prefill_complete(0, 160)
        kv.release(0)
        kv.register(1, make_request(1, 200, session=7))
        kv.allocate_for_prefill(1, 200)
        stats = kv.stats
        assert stats["prefix_hits"] == 1
        assert stats["prefix_lookups"] == 2
        assert stats["prefix_tokens_reused"] == 160
        assert stats["prefix_blocks_saved"] == 10


class TestLiveSharingAndForks:
    """Concurrent namespace members: publish at prefill-complete."""

    def test_concurrent_group_member_forks_partial_tail(self):
        kv = make_kv()
        kv.register(0, make_request(0, 100, group=1, prefix_len=90))
        kv.allocate_for_prefill(0, 100)
        kv.on_prefill_complete(0, 100)           # publishes 5 full + fill-10 tail
        kv.register(1, make_request(1, 105, group=1, prefix_len=90))
        kv.allocate_for_prefill(1, 105)
        record = kv.record(1)
        assert record.shared_blocks == 5         # 80 tokens shared live
        assert kv.stats["cow_forks"] == 1        # the live partial was copied
        kv.on_prefill_complete(1, 105)
        kv.check_invariants()
        # Shared blocks free only when the *last* owner retires.
        kv.release(0)
        assert kv.gpu_pool.used_by(SHARED_OWNER) >= 5
        assert kv.prefix.index  # chain still referenced by request 1
        kv.release(1)
        kv.check_invariants()

    def test_sharing_is_limited_to_prefix_len(self):
        kv = make_kv()
        kv.register(0, make_request(0, 160, group=1, prefix_len=64))
        kv.allocate_for_prefill(0, 160)
        kv.on_prefill_complete(0, 160)
        # Only 4 blocks (64 tokens) are ever published for the group.
        assert kv.gpu_pool.used_by(SHARED_OWNER) == 4
        kv.register(1, make_request(1, 160, group=1, prefix_len=64))
        kv.allocate_for_prefill(1, 160)
        assert kv.record(1).shared_blocks == 4


class TestRefcountEviction:
    def test_cached_blocks_are_reclaimed_under_pressure(self):
        kv = make_kv(capacity=12)
        kv.register(0, make_request(0, 112, session=1))
        kv.allocate_for_prefill(0, 112)          # 7 blocks
        kv.on_prefill_complete(0, 112)
        kv.release(0)
        assert kv.prefix.evictable_blocks == 7
        assert kv.gpu_free_blocks() == 12        # cached counts as free
        # An unrelated request needs 7 blocks; only 5 are truly free.
        kv.register(1, make_request(1, 112))
        kv.allocate_for_prefill(1, 112)
        assert kv.stats["prefix_evictions"] == 2
        assert kv.prefix.evictable_blocks == 5
        kv.check_invariants()

    def test_referenced_blocks_are_never_reclaimed(self):
        kv = make_kv(capacity=16)
        kv.register(0, make_request(0, 112, session=1))
        kv.allocate_for_prefill(0, 112)
        kv.on_prefill_complete(0, 112)           # 7 published, all refs=1
        assert kv.prefix.evictable_blocks == 0
        assert kv.prefix.reclaim(100) == 0       # nothing evictable
        assert kv.gpu_pool.used_by(SHARED_OWNER) == 7

    def test_preempt_detaches_references(self):
        kv = make_kv()
        kv.register(0, make_request(0, 160, session=1))
        kv.allocate_for_prefill(0, 160)
        kv.on_prefill_complete(0, 160)
        kv.release(0)
        kv.register(1, make_request(1, 180, session=1))
        kv.allocate_for_prefill(1, 180)
        kv.on_prefill_complete(1, 180)
        assert kv.record(1).shared_blocks > 0
        kv.preempt(1, now=0.0)
        assert kv.record(1).shared_blocks == 0
        kv.engine.run(until=1e9)                 # flush deferred frees
        kv.check_invariants()
        # A recompute resume attaches (and hits) again.
        kv.prepare_recompute(1)
        kv.allocate_for_prefill(1, 180)
        assert kv.record(1).shared_blocks > 0
        kv.on_prefill_complete(1, 180)
        kv.check_invariants()


class TestScenarioCounters:
    def test_prefix_heavy_agents_reports_savings(self):
        report = build_run(get_scenario("prefix-heavy-agents", scale=0.25)).execute()
        stats = report.kv_stats
        assert stats["prefix_hits"] > 0
        saved = stats["prefix_blocks_saved"]
        ratio = saved / (saved + stats["gpu_blocks_allocated"])
        assert ratio >= 0.30, f"GPU-block savings {ratio:.1%} below 30%"

    def test_rag_replay_exercises_cow_forks(self):
        report = build_run(get_scenario("rag-replay", scale=0.25)).execute()
        assert report.kv_stats["cow_forks"] > 0
        assert report.kv_stats["prefix_hits"] > 0

    def test_naive_runs_omit_prefix_counters(self):
        report = build_run(get_scenario("table1-h200-a", scale=0.05)).execute()
        assert "prefix_hits" not in report.kv_stats
        assert report.kv_stats["gpu_blocks_allocated"] > 0
        assert report.kv_stats["gpu_peak_blocks"] > 0

    def test_prefix_cow_allocates_fewer_blocks(self):
        # Peak pool *residency* can be higher under prefix_cow (warm
        # cached blocks stay pool-owned until reclaimed), so the
        # savings claim is about fresh allocations, not peak.
        spec = get_scenario("prefix-heavy-agents", scale=0.25)
        prefix = build_run(spec).execute().kv_stats
        naive = build_run(spec.with_overrides(kv_allocator="naive")).execute().kv_stats
        assert prefix["gpu_blocks_allocated"] < naive["gpu_blocks_allocated"]


# --- naive-mode parity ---------------------------------------------------------

def _fingerprint(spec):
    report = build_run(spec).execute()
    if spec.replicas > 1:
        per_request = tuple(sorted(
            (m.req_id, m.ttft, m.finish_time, m.generated, m.stall_time,
             m.effective_tokens, m.preemptions)
            for instance in report.per_instance
            for m in instance.per_request
        ))
        return (report.n_requests, report.total_tokens, report.throughput,
                report.effective_throughput, report.qos, report.ttft_mean,
                report.ttft_p99, report.stall_total, report.preemptions,
                per_request)
    return report_fingerprint(report)


PARITY_CELLS_FAST = [
    ("table1-h200-a", 0.10),
    ("tab02-tokenflow", 0.10),
    ("cluster-burst-4x", 0.25),
]

_PARITY_SCALES = {
    "soak-steady": 0.002,
    "soak-diurnal": 0.002,
    "cluster-soak-64x": 0.02,
    "bursty-sessions": 0.25,
    "cluster-burst-4x": 0.25,
    "prefix-heavy-agents": 0.25,
    "rag-replay": 0.25,
}


@pytest.mark.parametrize("name,scale", PARITY_CELLS_FAST)
def test_naive_override_is_default(name, scale):
    """`kv_allocator="naive"` is the default: explicit override is a no-op."""
    spec = get_scenario(name, scale=scale)
    assert spec.kv_allocator == "naive"
    assert _fingerprint(spec) == _fingerprint(
        spec.with_overrides(kv_allocator="naive")
    )


@pytest.mark.parametrize("name,scale", [("table1-h200-a", 0.10),
                                        ("tab02-tokenflow", 0.10)])
def test_prefix_cow_is_bit_identical_without_identities(name, scale):
    """With no session/group identities nothing attaches, so the
    prefix allocator's arithmetic is an additive no-op — reports are
    bit-identical, not merely close."""
    spec = get_scenario(name, scale=scale)
    assert _fingerprint(spec) == _fingerprint(
        spec.with_overrides(kv_allocator="prefix_cow")
    )


@pytest.mark.slow
@pytest.mark.parametrize("name", scenario_names())
def test_registry_wide_naive_parity(name):
    """Every registry scenario is bit-identical under an explicit
    `kv_allocator="naive"` override (for the prefix-native scenarios
    the override *changes* the allocator, so those assert determinism
    of their own default instead)."""
    scale = _PARITY_SCALES.get(name, 0.10)
    spec = get_scenario(name, scale=scale)
    if spec.kv_allocator == "naive":
        assert _fingerprint(spec) == _fingerprint(
            spec.with_overrides(kv_allocator="naive")
        )
    else:
        assert _fingerprint(spec) == _fingerprint(spec)
        # The naive allocator must still run the workload to completion.
        build_run(spec.with_overrides(kv_allocator="naive")).execute()
