"""Unit tests for model specs."""

import pytest

from repro.gpu.models import MODEL_SPECS, ModelSpec, get_model


class TestSpecs:
    def test_all_paper_models_present(self):
        for name in ("llama3-8b", "qwen2-7b", "qwen2.5-7b", "qwen2.5-32b"):
            assert name in MODEL_SPECS

    def test_llama3_kv_bytes_per_token(self):
        # 2 (K+V) * 32 layers * 8 kv heads * 128 dim * 2 bytes = 128 KiB
        assert get_model("llama3-8b").kv_bytes_per_token == 131072

    def test_qwen32b_heavier_than_8b(self):
        small, big = get_model("llama3-8b"), get_model("qwen2.5-32b")
        assert big.weight_bytes > small.weight_bytes
        assert big.kv_bytes_per_token > small.kv_bytes_per_token

    def test_weight_bytes_fp16(self):
        assert get_model("llama3-8b").weight_bytes == 16e9

    def test_flops_per_token(self):
        assert get_model("llama3-8b").flops_per_token == 16e9


class TestLookup:
    def test_case_insensitive(self):
        assert get_model("Llama3-8B") is get_model("llama3-8b")

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_model("gpt-5")


class TestValidation:
    def test_kv_heads_cannot_exceed_heads(self):
        with pytest.raises(ValueError):
            ModelSpec("bad", 1e9, 16, 1024, 8, 16, 64)

    def test_positive_params_required(self):
        with pytest.raises(ValueError):
            ModelSpec("bad", 0, 16, 1024, 16, 8, 64)
