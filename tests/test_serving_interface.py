"""Tests for the scheduler <-> serving-loop contract."""

import pytest

from repro.baselines import SGLangScheduler
from repro.serving.config import ServingConfig
from repro.serving.interface import BaseScheduler, SchedulerDecision
from repro.serving.server import ServingSystem
from repro.workload.request import Request


def burst(n, prompt=64, output=64):
    return [
        Request(req_id=i, arrival_time=0.0, prompt_len=prompt,
                output_len=output, rate=10.0)
        for i in range(n)
    ]


class TestSchedulerDecision:
    def test_empty_by_default(self):
        decision = SchedulerDecision()
        assert decision.is_empty()

    def test_nonempty_detection(self):
        request = burst(1)[0]
        assert not SchedulerDecision(admit=[request]).is_empty()
        assert not SchedulerDecision(preempt=[request]).is_empty()
        assert not SchedulerDecision(resume_load=[request]).is_empty()
        assert not SchedulerDecision(resume_recompute=[request]).is_empty()

    def test_validate_accepts_distinct_requests(self):
        a, b = burst(2)
        SchedulerDecision(admit=[a], preempt=[b]).validate()

    def test_validate_rejects_duplicates_across_groups(self):
        request = burst(1)[0]
        with pytest.raises(ValueError):
            SchedulerDecision(admit=[request], preempt=[request]).validate()

    def test_validate_rejects_duplicates_within_group(self):
        request = burst(1)[0]
        with pytest.raises(ValueError):
            SchedulerDecision(admit=[request, request]).validate()


class TestBaseSchedulerDefaults:
    def test_abstract_boundary_required(self):
        with pytest.raises(TypeError):
            BaseScheduler()  # abstract

    def test_default_tick_is_noop(self):
        class Minimal(BaseScheduler):
            def on_iteration_boundary(self, view):
                return SchedulerDecision()

        scheduler = Minimal()
        assert scheduler.tick_interval is None
        assert scheduler.scheduling_cost_s() == 0.0

    def test_default_oom_victims_newest_first(self):
        """The default reactive policy mirrors vLLM: evict the most
        recently admitted requests first."""
        config = ServingConfig(hardware="h200", model="llama3-8b",
                               mem_frac=0.01, max_batch=8)
        system = ServingSystem(config, SGLangScheduler())
        system.submit(burst(4, output=128))
        system.run(until=2.0)
        view = system.view()
        if len(view.running) >= 2:
            victims = system.scheduler.select_oom_victims(view, 1)
            assert victims
            newest = max(view.running, key=lambda r: r.admitted_time or 0.0)
            assert victims[0] is newest

    def test_custom_scheduler_plugs_into_loop(self):
        """A minimal correct policy drives a run to completion."""

        class AdmitEverything(BaseScheduler):
            name = "admit-everything"

            def on_iteration_boundary(self, view):
                decision = SchedulerDecision()
                free = view.kv.gpu_free_blocks()
                for request in view.waiting:
                    needed = view.kv.blocks_for_tokens(request.prompt_len + 64)
                    if needed > free:
                        break
                    decision.admit.append(request)
                    free -= needed
                return decision

        config = ServingConfig(hardware="h200", model="llama3-8b",
                               mem_frac=0.02, max_batch=8)
        system = ServingSystem(config, AdmitEverything())
        system.submit(burst(5, output=32))
        system.run(until=10_000.0)
        assert system.unfinished == 0
