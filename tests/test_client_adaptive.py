"""Unit tests for adaptive reference-rate control (§8)."""

import pytest

from repro.client.adaptive import AdaptiveRateController, AdaptiveRateParams
from repro.client.buffer import ClientBuffer
from repro.core.scheduler import TokenFlowScheduler
from repro.serving.config import ServingConfig
from repro.serving.server import ServingSystem
from repro.workload.request import Request


class TestParams:
    def test_defaults_valid(self):
        params = AdaptiveRateParams()
        assert params.min_rate <= params.max_rate

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveRateParams(min_rate=10.0, max_rate=5.0)
        with pytest.raises(ValueError):
            AdaptiveRateParams(increase_step=0.0)
        with pytest.raises(ValueError):
            AdaptiveRateParams(decrease_factor=1.0)
        with pytest.raises(ValueError):
            AdaptiveRateParams(load_threshold=-1)


class TestAIMD:
    def test_additive_increase_when_idle(self):
        controller = AdaptiveRateController(AdaptiveRateParams(increase_step=3.0))
        assert controller.target_rate(10.0, loaded=False) == 13.0

    def test_capped_at_max(self):
        controller = AdaptiveRateController(AdaptiveRateParams(max_rate=12.0))
        assert controller.target_rate(11.0, loaded=False) == 12.0

    def test_multiplicative_backoff_when_loaded(self):
        controller = AdaptiveRateController(
            AdaptiveRateParams(decrease_factor=0.5)
        )
        assert controller.target_rate(20.0, loaded=True) == 10.0

    def test_floored_at_min(self):
        controller = AdaptiveRateController(AdaptiveRateParams(min_rate=8.0))
        assert controller.target_rate(9.0, loaded=True) == 8.0

    def test_load_signal(self):
        controller = AdaptiveRateController(AdaptiveRateParams(load_threshold=2))
        assert not controller.system_loaded(1, 1)
        assert controller.system_loaded(2, 1)


class TestBufferRateChange:
    def test_set_rate_affects_future_pacing(self):
        buffer = ClientBuffer(rate=10.0)
        buffer.deliver(0.0)           # consumed at 0.0
        buffer.deliver(0.01)          # consumed at 0.1 (old interval)
        buffer.set_rate(2.0)          # 0.5 s interval from now on
        buffer.deliver(0.02)          # consumed at 0.1 + 0.5
        assert buffer.consumption_times == pytest.approx([0.0, 0.1, 0.6])
        assert buffer.rate_changes == 1

    def test_same_rate_is_noop(self):
        buffer = ClientBuffer(rate=10.0)
        buffer.set_rate(10.0)
        assert buffer.rate_changes == 0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            ClientBuffer(rate=10.0).set_rate(0.0)


class TestEndToEnd:
    def _mixed_workload(self):
        agents = [
            Request(req_id=i, arrival_time=0.0, prompt_len=64,
                    output_len=1024, rate=5.0, is_agent=True)
            for i in range(3)
        ]
        users = [
            Request(req_id=100 + i, arrival_time=3.0, prompt_len=128,
                    output_len=128, rate=10.0)
            for i in range(8)
        ]
        return agents + users

    def _run(self, controller):
        config = ServingConfig(hardware="h200", model="llama3-8b",
                               mem_frac=0.01, max_batch=6)
        system = ServingSystem(config, TokenFlowScheduler(),
                               rate_controller=controller)
        system.submit(self._mixed_workload())
        system.run(until=10_000.0)
        assert system.unfinished == 0
        return system

    def test_controller_adjusts_agent_rates(self):
        controller = AdaptiveRateController()
        system = self._run(controller)
        assert controller.adjustments > 0
        # Only agents were touched: user rates are untouched.
        for entry in system.tracker.entries():
            if not entry.request.is_agent:
                assert entry.request.rate == 10.0

    def test_agent_rates_rise_when_idle(self):
        params = AdaptiveRateParams(min_rate=5.0, max_rate=30.0)
        controller = AdaptiveRateController(params)
        config = ServingConfig(hardware="h200", model="llama3-8b",
                               mem_frac=0.05, max_batch=8)
        system = ServingSystem(config, TokenFlowScheduler(),
                               rate_controller=controller)
        agents = [
            Request(req_id=i, arrival_time=0.0, prompt_len=64,
                    output_len=2048, rate=5.0, is_agent=True)
            for i in range(2)
        ]
        system.submit(agents)
        system.run(until=5.0)  # several ticks, no user load
        live = [e.request for e in system.tracker.entries()
                if not e.request.is_finished]
        if live:
            assert all(r.rate > 5.0 for r in live)

    def test_agent_stalls_excluded_from_qos(self):
        controller = AdaptiveRateController()
        system = self._run(controller)
        report = system.report()
        # QoS terms for agents never include a rebuffer penalty even if
        # their reference-rate "playback" fell behind.
        agents = [m for m in report.per_request if m.req_id < 100]
        assert agents  # sanity
