"""Property-based tests for the buffer balancer."""

import pytest

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.balancer import BufferBalancer, Candidate

pytestmark = pytest.mark.slow  # full tier-1 lane only (see scripts/ci.sh)


@st.composite
def candidate_sets(draw):
    n = draw(st.integers(min_value=0, max_value=20))
    candidates = []
    for req_id in range(n):
        resident = draw(st.booleans())
        pinned = resident and draw(st.booleans())
        candidates.append(
            Candidate(
                req_id=req_id,
                priority=draw(st.floats(0.0, 10.0)),
                blocks=draw(st.integers(0, 50)),
                resident=resident,
                pinned=pinned,
            )
        )
    return candidates


class TestBalancerProperties:
    @given(
        candidates=candidate_sets(),
        budget=st.integers(0, 200),
        max_batch=st.integers(1, 16),
    )
    @settings(max_examples=300, deadline=None)
    def test_selection_is_consistent_partition(self, candidates, budget, max_batch):
        result = BufferBalancer().balance(candidates, budget, max_batch)
        selected = set(result.selected)
        by_id = {c.req_id: c for c in candidates}
        # Diff lists are consistent with the selection.
        for rid in result.to_resume:
            assert rid in selected and not by_id[rid].resident
        for rid in result.to_preempt:
            assert rid not in selected and by_id[rid].resident
            assert not by_id[rid].pinned  # pinned never preempted
        # Batch cap respected (pinned overflow can exceed the budget,
        # but never the count cap).
        assert len(selected) <= max_batch

    @given(
        candidates=candidate_sets(),
        budget=st.integers(0, 200),
        max_batch=st.integers(1, 16),
    )
    @settings(max_examples=300, deadline=None)
    def test_budget_respected_for_unpinned(self, candidates, budget, max_batch):
        """Unpinned selections fit the budget (pinned keep their memory)."""
        result = BufferBalancer().balance(candidates, budget, max_batch)
        by_id = {c.req_id: c for c in candidates}
        unpinned_blocks = sum(
            by_id[rid].blocks for rid in result.selected if not by_id[rid].pinned
        )
        pinned_blocks = sum(
            by_id[rid].blocks for rid in result.selected if by_id[rid].pinned
        )
        assert unpinned_blocks <= max(0, budget) + pinned_blocks or unpinned_blocks == 0

    @given(
        candidates=candidate_sets(),
        budget=st.integers(0, 200),
        max_batch=st.integers(1, 16),
    )
    @settings(max_examples=200, deadline=None)
    def test_local_search_never_worse_than_greedy(self, candidates, budget, max_batch):
        greedy = BufferBalancer(local_search_passes=0).balance(
            candidates, budget, max_batch
        )
        refined = BufferBalancer(local_search_passes=3).balance(
            candidates, budget, max_batch
        )
        assert refined.total_priority >= greedy.total_priority - 1e-9
