"""Property tests: vectorised and scalar decode delivery are equivalent.

Sweeps scenario-registry cells plus hypothesis-randomised workloads,
asserting that ``vectorize_decode=True`` (the SoA numpy batch plane)
and ``vectorize_decode=False`` (the per-request scalar path) produce
equal RunReport metrics to rel 1e-9 with identical timelines and
executor accounting — including the interaction with the fusion plane
(``fuse_decode`` off forces every delivery through the K=1 branch)
and cancellation landing between a window's commit and completion.
"""

import pytest

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.experiments.systems import build_system
from repro.scenarios import build_run, get_scenario
from repro.workload.request import Request, RequestState, clone_requests

pytestmark = pytest.mark.slow  # full tier-1 lane only (see scripts/ci.sh)

SINGLE_NODE_METRICS = (
    "n_requests", "n_finished", "makespan", "total_tokens", "throughput",
    "effective_tokens", "effective_throughput", "qos", "ttft_mean",
    "ttft_p50", "ttft_p99", "stall_total", "stall_mean", "preemptions",
)
CLUSTER_METRICS = (
    "n_requests", "n_finished", "total_tokens", "throughput",
    "effective_throughput", "qos", "ttft_mean", "ttft_p50", "ttft_p99",
    "stall_total", "preemptions",
)

REGISTRY_CELLS = [
    ("table1-h200-a", 0.10),
    ("table1-rtx4090-a", 0.25),
    ("table1-h200-c", 0.25),
    ("tab02-tokenflow", 0.25),
    ("tab02-tokenflow-no-offload", 0.25),
    ("tab02-tokenflow-no-writethrough", 0.25),
    ("tab02-tokenflow-no-overlap", 0.25),
    ("bursty-sessions", 0.25),
]


def _execute(spec):
    run = build_run(spec)
    return run.target, run.execute()


def _assert_report_parity(report_off, report_on, keys, label=""):
    for key in keys:
        off, on = getattr(report_off, key), getattr(report_on, key)
        assert on == pytest.approx(off, rel=1e-9, abs=1e-9), (label, key)


@pytest.mark.parametrize("name,scale", REGISTRY_CELLS)
@pytest.mark.parametrize("seed", [0, 1])
def test_registry_cell_parity(name, scale, seed):
    spec_on = get_scenario(name, scale=scale, seed=seed)
    spec_off = spec_on.with_overrides(vectorize_decode=False)
    _, report_off = _execute(spec_off)
    _, report_on = _execute(spec_on)
    keys = CLUSTER_METRICS if spec_on.replicas > 1 else SINGLE_NODE_METRICS
    _assert_report_parity(report_off, report_on, keys, name)
    if spec_on.replicas == 1:
        assert report_on.timeline == report_off.timeline
        s_off, s_on = report_off.executor_stats, report_on.executor_stats
        for key in ("prefill_iterations", "decode_iterations",
                    "prefill_tokens", "decode_tokens", "fused_windows"):
            assert s_on[key] == s_off[key], (name, key)


@pytest.mark.parametrize("name", ["table1-h200-a", "tab02-tokenflow"])
def test_fusion_vectorize_grid(name):
    """All four (fuse_decode, vectorize_decode) combinations agree.

    fuse off + vectorize on is the K=1 branch: every token flows
    through the bulk KV advance + inlined per-request delivery, so the
    grid pins both halves of the vectorised plane against both
    scalar baselines.
    """
    reports = {}
    for fuse in (False, True):
        for vec in (False, True):
            spec = get_scenario(name, scale=0.1, fuse_decode=fuse,
                                vectorize_decode=vec)
            _, reports[(fuse, vec)] = _execute(spec)
    reference = reports[(False, False)]
    for combo, report in reports.items():
        _assert_report_parity(reference, report, SINGLE_NODE_METRICS,
                              str(combo))
    # Same fusion plane with vectorisation on or off.
    assert (reports[(True, True)].executor_stats["fused_windows"]
            == reports[(True, False)].executor_stats["fused_windows"])
    assert reports[(False, True)].executor_stats["fused_windows"] == 0


def burst(n, prompt=64, output=96, rate=10.0, start=0.0):
    return [
        Request(req_id=i, arrival_time=start, prompt_len=prompt,
                output_len=output, rate=rate)
        for i in range(n)
    ]


def test_cancellation_parity():
    """Pre-scheduled cancels land identically on both paths."""
    requests = burst(6, output=256)
    kwargs = dict(hardware="h200", mem_frac=0.1, max_batch=8)

    def run(vec):
        system = build_system("tokenflow", vectorize_decode=vec, **kwargs)
        system.submit(clone_requests(requests))
        system.cancel_at(2, 0.45)
        system.cancel_at(5, 0.731)
        system.run(until=10_000.0)
        return system

    off, on = run(False), run(True)
    r_off, r_on = off.report(), on.report()
    _assert_report_parity(r_off, r_on, SINGLE_NODE_METRICS)
    assert r_on.timeline == r_off.timeline
    assert (on.tracker.get(2).request.generated
            == off.tracker.get(2).request.generated)


def test_external_cancel_while_window_pending():
    """A synchronous cancel between stepped run() calls removes a
    batch member while a fused window is in flight; the vectorised
    completion must deliver to the survivors only."""

    def drive(vec):
        requests = burst(4, output=128)
        system = build_system("sglang", hardware="h200", mem_frac=0.1,
                              max_batch=8, vectorize_decode=vec)
        system.submit(clone_requests(requests))
        cancelled_at = None
        for _ in range(200_000):
            system.run(until=10_000.0, max_events=1)
            if cancelled_at is None and 2 in system.tracker:
                req = system.tracker.get(2).request
                if (system._busy and req.state is RequestState.RUNNING
                        and req.generated >= 1):
                    system.cancel(2)
                    cancelled_at = req.generated
            if not system.unfinished:
                break
        return system, cancelled_at

    results = {}
    for vec in (False, True):
        system, cancelled_at = drive(vec)
        assert cancelled_at is not None, "cancel never triggered"
        assert system.unfinished == 0
        report = system.report()
        assert report.n_finished == 3
        assert system.tracker.get(2).request.generated == cancelled_at
        survivors = [system.tracker.get(rid).request for rid in (0, 1, 3)]
        assert all(r.generated == r.output_len for r in survivors)
        results[vec] = (cancelled_at, report.total_tokens)
    assert results[True] == results[False]


@st.composite
def workloads(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    requests = []
    for req_id in range(n):
        requests.append(
            Request(
                req_id=req_id,
                arrival_time=draw(st.floats(0.0, 3.0)),
                prompt_len=draw(st.integers(8, 384)),
                output_len=draw(st.integers(4, 256)),
                rate=draw(st.sampled_from([5.0, 10.0, 20.0])),
            )
        )
    return requests


class TestRandomisedParity:
    @given(
        requests=workloads(),
        system_name=st.sampled_from(
            ("sglang", "andes", "mlfq", "tokenflow")
        ),
        mem_frac=st.sampled_from([0.002, 0.01, 0.1]),
        fuse=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_vectorized_equals_scalar(self, requests, system_name,
                                      mem_frac, fuse):
        reports = []
        for vec in (False, True):
            system = build_system(
                system_name, hardware="h200", model="llama3-8b",
                mem_frac=mem_frac, max_batch=6, fuse_decode=fuse,
                vectorize_decode=vec,
            )
            system.submit(clone_requests(requests))
            system.run(until=100_000.0)
            reports.append(system.report())
        report_off, report_on = reports
        _assert_report_parity(report_off, report_on, SINGLE_NODE_METRICS)
        assert report_on.timeline == report_off.timeline
