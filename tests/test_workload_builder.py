"""Unit tests for workload assembly."""

import numpy as np
import pytest

from repro.sim.rng import RngStreams
from repro.workload.builder import RateMixture, WorkloadBuilder, WorkloadSpec
from repro.workload.request import Request


class TestRateMixture:
    def test_fixed_rate(self):
        mixture = RateMixture.fixed(12.0)
        rng = np.random.default_rng(0)
        assert all(mixture.sample(rng) == 12.0 for _ in range(10))

    def test_mixture_proportions(self):
        mixture = RateMixture(rates=(10.0, 20.0), weights=(0.3, 0.7))
        rng = np.random.default_rng(1)
        samples = [mixture.sample(rng) for _ in range(3000)]
        frac_20 = sum(1 for s in samples if s == 20.0) / len(samples)
        assert abs(frac_20 - 0.7) < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            RateMixture(rates=(), weights=())
        with pytest.raises(ValueError):
            RateMixture(rates=(10.0,), weights=(1.0, 2.0))
        with pytest.raises(ValueError):
            RateMixture(rates=(-1.0,), weights=(1.0,))
        with pytest.raises(ValueError):
            RateMixture(rates=(1.0,), weights=(0.0,))


class TestSpec:
    def test_unknown_arrival_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(arrival="fractal")

    def test_burst_needs_count(self):
        with pytest.raises(ValueError):
            WorkloadSpec(arrival="burst", n_requests=None)


class TestBuilder:
    def test_burst_build(self):
        spec = WorkloadSpec(arrival="burst", n_requests=16, burst_spread=0.0)
        requests = WorkloadBuilder(spec, RngStreams(0)).build()
        assert len(requests) == 16
        assert all(isinstance(r, Request) for r in requests)
        assert all(r.arrival_time == 0.0 for r in requests)

    def test_req_ids_unique_and_ordered(self):
        spec = WorkloadSpec(arrival="poisson", n_requests=None,
                            poisson_rate=5.0, duration=20.0)
        requests = WorkloadBuilder(spec, RngStreams(1)).build()
        ids = [r.req_id for r in requests]
        assert ids == list(range(len(requests)))
        arrivals = [r.arrival_time for r in requests]
        assert arrivals == sorted(arrivals)

    def test_reproducible_from_seed(self):
        spec = WorkloadSpec(arrival="burstgpt", n_requests=None, duration=60.0)
        a = WorkloadBuilder(spec, RngStreams(7)).build()
        b = WorkloadBuilder(spec, RngStreams(7)).build()
        assert [(r.arrival_time, r.prompt_len, r.output_len) for r in a] == [
            (r.arrival_time, r.prompt_len, r.output_len) for r in b
        ]

    def test_different_seeds_differ(self):
        spec = WorkloadSpec(arrival="poisson", n_requests=None,
                            poisson_rate=5.0, duration=30.0)
        a = WorkloadBuilder(spec, RngStreams(1)).build()
        b = WorkloadBuilder(spec, RngStreams(2)).build()
        assert [r.arrival_time for r in a] != [r.arrival_time for r in b]

    def test_n_requests_caps_rate_driven(self):
        spec = WorkloadSpec(arrival="poisson", n_requests=5,
                            poisson_rate=10.0, duration=100.0)
        requests = WorkloadBuilder(spec, RngStreams(3)).build()
        assert len(requests) == 5

    def test_production_arrival_kind(self):
        spec = WorkloadSpec(arrival="production", n_requests=None, duration=120.0)
        requests = WorkloadBuilder(spec, RngStreams(4)).build()
        assert len(requests) > 0

    def test_rates_come_from_mixture(self):
        spec = WorkloadSpec(
            arrival="burst", n_requests=64,
            rates=RateMixture(rates=(15.0, 20.0), weights=(0.5, 0.5)),
        )
        requests = WorkloadBuilder(spec, RngStreams(5)).build()
        assert set(r.rate for r in requests) == {15.0, 20.0}


class TestPopulationMixture:
    def test_covers_all_fig1_cells(self):
        mixture = RateMixture.from_population("reading")
        assert len(mixture.rates) == 24  # 3 languages x 8 age groups

    def test_language_restriction(self):
        mixture = RateMixture.from_population("reading", languages=["english"])
        assert len(mixture.rates) == 8
        assert max(mixture.rates) < 8.0  # english reading tops out ~5.8

    def test_speed_multiplier(self):
        base = RateMixture.from_population("reading", languages=["english"])
        doubled = RateMixture.from_population(
            "reading", languages=["english"], speed_multiplier=2.0
        )
        assert max(doubled.rates) == pytest.approx(2 * max(base.rates))

    def test_listening_mode(self):
        mixture = RateMixture.from_population("listening")
        assert all(r < 5.0 for r in mixture.rates)

    def test_validation(self):
        with pytest.raises(ValueError):
            RateMixture.from_population("reading", speed_multiplier=0.0)
        with pytest.raises(ValueError):
            RateMixture.from_population("reading", languages=["klingon"])

    def test_end_to_end_sampling(self):
        spec = WorkloadSpec(
            arrival="burst", n_requests=32,
            rates=RateMixture.from_population("reading", speed_multiplier=2.0),
        )
        requests = WorkloadBuilder(spec, RngStreams(0)).build()
        assert len({r.rate for r in requests}) > 3  # genuinely mixed
