"""Unit tests for report comparison utilities."""

import pytest

from repro.analysis.compare import (
    Delta,
    compare_reports,
    improvement_matrix,
    render_comparison,
)
from repro.experiments.runner import run_comparison
from repro.sim.rng import RngStreams
from repro.workload.builder import RateMixture, WorkloadBuilder, WorkloadSpec


class TestDelta:
    def test_higher_better_gain(self):
        delta = Delta("x", candidate=120.0, baseline=100.0, lower_is_better=False)
        assert delta.improvement == pytest.approx(0.2)
        assert delta.improved

    def test_lower_better_reduction(self):
        delta = Delta("x", candidate=2.0, baseline=10.0, lower_is_better=True)
        assert delta.improvement == pytest.approx(0.8)
        assert delta.improved

    def test_regression_detected(self):
        delta = Delta("x", candidate=15.0, baseline=10.0, lower_is_better=True)
        assert delta.improvement == pytest.approx(-0.5)
        assert not delta.improved

    def test_zero_baseline(self):
        delta = Delta("x", candidate=5.0, baseline=0.0, lower_is_better=False)
        assert delta.ratio == float("inf")
        zero = Delta("x", candidate=0.0, baseline=0.0, lower_is_better=True)
        assert zero.ratio == 1.0


@pytest.fixture(scope="module")
def reports():
    spec = WorkloadSpec(arrival="burst", n_requests=24, burst_spread=0.25,
                        rates=RateMixture.fixed(10.0))
    requests = WorkloadBuilder(spec, RngStreams(0)).build()
    return run_comparison(("sglang", "tokenflow"), requests,
                          hardware="h200", model="llama3-8b",
                          mem_frac=0.01, max_batch=8)


class TestCompareReports:
    def test_headline_metrics_present(self, reports):
        deltas = compare_reports(reports["tokenflow"], reports["sglang"])
        assert set(deltas) == {
            "effective_throughput", "throughput", "ttft_mean",
            "ttft_p99", "stall_total", "qos",
        }

    def test_tokenflow_improves_ttft(self, reports):
        deltas = compare_reports(reports["tokenflow"], reports["sglang"])
        assert deltas["ttft_p99"].improved

    def test_matrix_excludes_baseline(self, reports):
        matrix = improvement_matrix(reports, "sglang")
        assert "sglang" not in matrix
        assert "tokenflow" in matrix

    def test_matrix_unknown_baseline(self, reports):
        with pytest.raises(KeyError):
            improvement_matrix(reports, "vllm")

    def test_render(self, reports):
        table = render_comparison(reports, "sglang")
        assert "tokenflow" in table
        assert "%" in table
