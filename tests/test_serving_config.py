"""Unit tests for the serving configuration."""

import pytest

from repro.gpu.hardware import get_hardware
from repro.gpu.models import get_model
from repro.memory.kv_manager import KVManagerConfig
from repro.serving.config import ServingConfig


class TestResolution:
    def test_names_resolve_to_specs(self):
        config = ServingConfig(hardware="h200", model="llama3-8b")
        assert config.hardware is get_hardware("h200")
        assert config.model is get_model("llama3-8b")

    def test_spec_objects_pass_through(self):
        hw, model = get_hardware("a6000"), get_model("qwen2-7b")
        config = ServingConfig(hardware=hw, model=model)
        assert config.hardware is hw and config.model is model


class TestMemFrac:
    def test_explicit_mem_frac(self):
        config = ServingConfig(hardware="h200", model="llama3-8b", mem_frac=0.3)
        assert config.resolved_mem_frac() == 0.3
        assert config.kv_pool_bytes() == pytest.approx(0.3 * 141e9)

    def test_derived_mem_frac_leaves_reserve(self):
        config = ServingConfig(hardware="h200", model="llama3-8b")
        # Weights are 16/141 of memory; 10% reserve on top.
        assert config.resolved_mem_frac() == pytest.approx(1 - 16 / 141 - 0.10)

    def test_model_too_big_rejected(self):
        with pytest.raises(ValueError):
            ServingConfig(hardware="rtx4090", model="qwen2.5-32b")

    def test_invalid_mem_frac_rejected(self):
        with pytest.raises(ValueError):
            ServingConfig(mem_frac=0.0)
        with pytest.raises(ValueError):
            ServingConfig(mem_frac=1.0)


class TestCapacity:
    def test_capacity_tokens(self):
        config = ServingConfig(hardware="h200", model="llama3-8b", mem_frac=0.3)
        expected = int(0.3 * 141e9 / 131072)
        assert config.kv_capacity_tokens() == expected

    def test_capacity_blocks(self):
        config = ServingConfig(
            hardware="h200", model="llama3-8b", mem_frac=0.3, block_size=16
        )
        assert config.kv_capacity_blocks() == config.kv_capacity_tokens() // 16

    def test_kv_block_size_synchronised(self):
        config = ServingConfig(block_size=32, kv=KVManagerConfig(block_size=16))
        assert config.kv.block_size == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            ServingConfig(block_size=0)
        with pytest.raises(ValueError):
            ServingConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServingConfig(max_prefill_tokens=0)
        with pytest.raises(ValueError):
            ServingConfig(prefill_chunk_size=0)
