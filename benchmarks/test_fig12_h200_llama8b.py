"""Figure 12: end-to-end metrics on H200 with Llama3-8B."""

from benchmarks.conftest import emit
from repro.experiments.endtoend import (
    improvement_summary,
    render_endtoend,
    run_endtoend,
)

SYSTEMS = ("sglang", "sglang-chunked", "andes", "tokenflow")


def test_fig12_h200_llama8b(benchmark):
    reports = benchmark.pedantic(
        lambda: run_endtoend(
            "h200-llama3-8b", trace="burstgpt", systems=SYSTEMS,
            duration=60.0, scale=1.0,
        ),
        rounds=1, iterations=1,
    )
    emit(render_endtoend("h200-llama3-8b", "burstgpt", reports))
    summary = improvement_summary(reports)
    emit(f"tokenflow vs sglang: {summary}")
    # Shape: TokenFlow improves effective throughput and TTFT while
    # keeping raw throughput comparable.
    assert summary["effective_throughput_gain"] > 0.0
    assert summary["ttft_mean_reduction"] > 0.0
    assert summary["throughput_ratio"] > 0.8
