"""Perf harness for the simulation core (macro + micro).

Pins the measured pre-optimisation baseline of the TABLE1 h200/(a)
400-request workload (seed commit, this container) and asserts that
the incremental-bookkeeping fast paths keep a >=3x wall-clock and
call-count advantage **without changing a single report metric**.

Also emits ``benchmarks/BENCH_simcore.json`` so the perf trajectory is
tracked across PRs — see benchmarks/README.md for how to read it.

Run just this harness with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_simcore.py -q -s
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from benchmarks.conftest import emit
from repro.client.buffer import ClientBuffer
from repro.experiments.controlled import TABLE1, build_workload, serving_kwargs
from repro.experiments.runner import run_comparison
from repro.sim.engine import SimEngine
from repro.sim.profiling import bare_run_rss_kb, profile_call

# --- pre-PR baseline --------------------------------------------------------
# Measured on the seed tree (commit 962222f) in this container:
# python 3.11, TABLE1 h200/(a), scale=1.0, seed=0, tokenflow only.
BASELINE = {
    "wall_s": 8.9726,
    "total_calls": 89_635_927,
    "peak_rss_kb": 117_376,
    "timeline_len": 10_012,
}

# RunReport metrics of that baseline run.  The optimised engine must
# reproduce every one of these (the perf work is pure bookkeeping — it
# may not move a number even in the 7th decimal).
BASELINE_METRICS = {
    "n_requests": 400,
    "n_finished": 400,
    "makespan": 123.21595269786333,
    "total_tokens": 825454,
    "throughput": 6699.246176540857,
    "effective_tokens": 255458.42838599955,
    "effective_throughput": 2073.257746197903,
    "qos": 1704.1687937975883,
    "ttft_mean": 4.102253012082434,
    "ttft_p50": 4.1125718318309925,
    "ttft_p99": 8.2196961278352,
    "stall_total": 1185.8223937783052,
    "stall_mean": 2.964555984445763,
    "preemptions": 1323,
}

# The deterministic, machine-independent gate: Python function calls.
MIN_CALL_SPEEDUP = 3.0
# Wall-clock gate.  The 3.2x measured on the baseline container is the
# demonstrated figure (recorded in BENCH_simcore.json / ROADMAP.md);
# the tier-1 assertion keeps a noise/hardware margin so a loaded CI
# runner cannot fail a bit-identical build.
MIN_WALL_SPEEDUP = 2.0

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_simcore.json"

# The baseline's 117 MiB peak_rss_kb was measured on a *bare* seed-tree
# run, so the comparable optimized figure must come from a bare run too
# (in-process ru_maxrss is a process-lifetime high-water mark — under
# pytest + cProfile it reports the suite's hungriest moment, which once
# made the artifact claim 310 MB for an 80 MB workload).  This code runs
# in a fresh interpreter; it must stay import-light and deterministic.
BARE_RSS_CODE = """\
from repro.experiments.controlled import TABLE1, build_workload, serving_kwargs
from repro.experiments.runner import run_comparison
setup = TABLE1[("h200", "a")]
requests = build_workload(setup, scale=1.0, seed=0)
run_comparison(("tokenflow",), requests, horizon=50_000.0,
               **serving_kwargs(setup, 1.0))
"""


def _metrics_of(report) -> dict:
    return {
        "n_requests": report.n_requests,
        "n_finished": report.n_finished,
        "makespan": report.makespan,
        "total_tokens": report.total_tokens,
        "throughput": report.throughput,
        "effective_tokens": report.effective_tokens,
        "effective_throughput": report.effective_throughput,
        "qos": report.qos,
        "ttft_mean": report.ttft_mean,
        "ttft_p50": report.ttft_p50,
        "ttft_p99": report.ttft_p99,
        "stall_total": report.stall_total,
        "stall_mean": report.stall_mean,
        "preemptions": report.preemptions,
    }


def _micro_event_queue(n_events: int = 200_000) -> float:
    """Events/second through the engine (schedule + drain)."""
    engine = SimEngine()
    sink = []
    append = sink.append
    for i in range(n_events):
        engine.call_at(float(i) * 1e-3, lambda: append(None))
    t0 = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - t0
    assert len(sink) == n_events
    return n_events / elapsed


def _micro_buffer(n_tokens: int = 200_000) -> float:
    """Deliver+occupancy operations/second on one client buffer."""
    buffer = ClientBuffer(rate=10.0, record_trace=False)
    deliver = buffer.deliver
    occupancy = buffer.occupancy
    t0 = time.perf_counter()
    t = 0.0
    for _ in range(n_tokens):
        t += 0.012
        deliver(t)
        occupancy(t)
    elapsed = time.perf_counter() - t0
    assert buffer.delivered == n_tokens
    return 2 * n_tokens / elapsed


def test_perf_simcore_table1_h200a(benchmark):
    setup = TABLE1[("h200", "a")]
    requests = build_workload(setup, scale=1.0, seed=0)
    assert len(requests) == 400
    kwargs = serving_kwargs(setup, 1.0)

    def run():
        return run_comparison(
            ("tokenflow",), requests, horizon=50_000.0, **kwargs
        )

    # Two unprofiled timing runs (best-of) + one profiled run for the
    # deterministic call count; the benchmark fixture records the
    # profiled pass so the suite-level tooling sees this test too.
    report = profile_call(run, top=15, wall_runs=2)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    run_report = report.result["tokenflow"]
    metrics = _metrics_of(run_report)

    # 1) Bit-parity with the pre-optimisation baseline (well beyond
    #    the 6-decimals bar; observed deviation is <= 1 ulp on qos).
    for key, expected in BASELINE_METRICS.items():
        assert metrics[key] == pytest.approx(expected, rel=1e-9, abs=1e-9), key

    # 2) Deterministic >=3x reduction in Python function calls.
    call_ratio = BASELINE["total_calls"] / report.total_calls
    assert call_ratio >= MIN_CALL_SPEEDUP, (
        f"call-count speedup regressed: {call_ratio:.2f}x "
        f"({report.total_calls:,} calls vs baseline {BASELINE['total_calls']:,})"
    )

    # 3) Wall-clock speedup against the recorded baseline (>=3.2x on
    #    the baseline container; asserted with a hardware/noise margin).
    #    On hardware much slower than the baseline container, disable
    #    the absolute-time gates with REPRO_PERF_NO_WALL_GATE=1 — the
    #    deterministic call-count gate still protects regressions.
    wall_gate = os.environ.get("REPRO_PERF_NO_WALL_GATE", "") != "1"
    wall_speedup = BASELINE["wall_s"] / report.wall_s
    if wall_gate:
        assert wall_speedup >= MIN_WALL_SPEEDUP, (
            f"wall-clock speedup regressed: {wall_speedup:.2f}x "
            f"({report.wall_s:.3f}s vs baseline {BASELINE['wall_s']:.3f}s)"
        )

    micro = {
        "event_queue_events_per_s": _micro_event_queue(),
        "client_buffer_ops_per_s": _micro_buffer(),
    }
    if wall_gate:
        # Loose sanity floors (~10x below measured on the baseline
        # container) — these only catch order-of-magnitude breaks.
        assert micro["event_queue_events_per_s"] > 25_000
        assert micro["client_buffer_ops_per_s"] > 300_000

    # Carry forward trajectory state from the tracked file: the best
    # call-count ratio ever recorded (the perf-trajectory guard in
    # tests/test_perf_trajectory.py fails a >10% regression against
    # it) and free-form notes other benches append (e.g. the matrix
    # orchestrator's measured parallel speedup).
    previous: dict = {}
    if BENCH_PATH.exists():
        try:
            previous = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            previous = {}
    best_calls = max(call_ratio, previous.get("best", {}).get("calls", 0.0))

    # Apples-to-apples RSS: a bare subprocess running just the workload
    # (see BARE_RSS_CODE).  Soft metric — on a subprocess failure (e.g.
    # a sandbox forbidding spawns) the previous recorded value is
    # carried forward, or the figure is marked unavailable, rather than
    # failing a bit-identical build; the trajectory guard keys off
    # peak_rss_source and only enforces measured values.
    bare_rss_kb = bare_run_rss_kb(BARE_RSS_CODE)
    if bare_rss_kb is not None:
        rss_source = "bare"
    else:
        prev_opt = previous.get("optimized", {})
        bare_rss_kb = prev_opt.get("peak_rss_kb", 0)
        rss_source = "carried" if bare_rss_kb else "unavailable"

    # Per-PR trajectory rows: each entry is one committed state of the
    # harness (wall, calls, bare RSS, free-form note).  A re-run inside
    # the same PR — detected by a call count within 1% of the last row
    # — replaces that row instead of appending, so the list stays one
    # row per landed change.  Set REPRO_BENCH_NOTE to label the row.
    history = list(previous.get("history", []))
    if not history and previous.get("optimized"):
        prev_opt = previous["optimized"]
        history.append({
            "wall_s": prev_opt.get("wall_s"),
            "total_calls": prev_opt.get("total_calls"),
            "peak_rss_kb": prev_opt.get("peak_rss_kb"),
            "calls_speedup": previous.get("speedup", {}).get("calls"),
            "notes": "pre-history artifact state (carried forward)",
        })
    row = {
        "wall_s": report.wall_s,
        "total_calls": report.total_calls,
        "peak_rss_kb": bare_rss_kb,
        "calls_speedup": call_ratio,
        "notes": os.environ.get("REPRO_BENCH_NOTE", ""),
    }
    if history and abs(
        (history[-1].get("total_calls") or 0) - row["total_calls"]
    ) <= 0.01 * row["total_calls"]:
        if not row["notes"]:
            row["notes"] = history[-1].get("notes", "")
        history[-1] = row
    else:
        history.append(row)

    payload = {
        "workload": "TABLE1 h200/(a) scale=1.0 seed=0, tokenflow",
        "baseline": BASELINE | {"metrics": BASELINE_METRICS},
        "optimized": {
            "wall_s": report.wall_s,
            "profiled_s": report.profiled_s,
            "total_calls": report.total_calls,
            # Bare-run figure, comparable to baseline.peak_rss_kb (the
            # in-process high-water mark under pytest+cProfile is kept
            # separately for trend-tracking only).
            "peak_rss_kb": bare_rss_kb,
            "peak_rss_source": rss_source,
            "peak_rss_suite_kb": report.peak_rss_kb,
            "metrics": metrics,
        },
        "speedup": {
            "wall": wall_speedup,
            "calls": call_ratio,
        },
        "best": {"calls": best_calls},
        "history": history,
        "micro": micro,
        "notes": previous.get("notes", {}),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    emit(
        f"perf simcore · h200/(a) 400 requests\n"
        f"  wall   {report.wall_s:.3f} s  ({wall_speedup:.2f}x vs baseline "
        f"{BASELINE['wall_s']:.2f} s)\n"
        f"  calls  {report.total_calls:,}  ({call_ratio:.2f}x fewer)\n"
        f"  rss    {bare_rss_kb / 1024:.1f} MiB bare (baseline "
        f"{BASELINE['peak_rss_kb'] / 1024:.1f} MiB; suite high-water "
        f"{report.peak_rss_kb / 1024:.1f} MiB)\n"
        f"  events/s {micro['event_queue_events_per_s']:,.0f} · "
        f"buffer ops/s {micro['client_buffer_ops_per_s']:,.0f}\n"
        f"  artifact -> {BENCH_PATH.name}"
    )
