"""Figure 19: multi-rate request scheduling (40% @15, 60% @20 tok/s)."""

from benchmarks.conftest import emit
from repro.experiments.multirate import render_multirate, run_multirate


def test_fig19_multirate(benchmark):
    stats = benchmark.pedantic(
        lambda: run_multirate(rates=(15.0, 20.0), weights=(0.4, 0.6),
                              n_requests=48),
        rounds=1, iterations=1,
    )
    emit(render_multirate(stats))
    # Shape: each class automatically holds its own target rate within
    # tolerance, with no manual per-class configuration.
    for rate, cls in stats.items():
        assert cls.n_requests > 0
        assert abs(cls.delivery_rate_mean - rate) / rate < 0.15
        assert cls.stall_mean < 1.0
