"""Figure 17: performance metrics during Poisson workloads.

Runs Table 1 setups (c) and (d) on both GPUs across all four systems.
Setup (c) is moderate load, (d) heavy load; TokenFlow's advantages
concentrate where queueing pressure exists (the paper's "under heavy
load" observation).
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.controlled import render_controlled, run_controlled

SYSTEMS = ("sglang", "sglang-chunked", "andes", "tokenflow")
SETUPS = [("rtx4090", "c"), ("rtx4090", "d"), ("h200", "c"), ("h200", "d")]
SCALE = {"rtx4090": 0.5, "h200": 0.5}


@pytest.mark.parametrize("gpu,key", SETUPS)
def test_fig17_poisson_workloads(benchmark, gpu, key):
    reports = benchmark.pedantic(
        lambda: run_controlled(gpu, key, systems=SYSTEMS, scale=SCALE[gpu]),
        rounds=1, iterations=1,
    )
    emit(render_controlled(gpu, key, reports))
    tokenflow, sglang = reports["tokenflow"], reports["sglang"]
    assert tokenflow.throughput > 0.75 * sglang.throughput
    if sglang.ttft_p99 > 1.5:
        # Queueing regime: TokenFlow must deliver both latency and
        # effective-throughput wins (paper: +82.5% eff, -53.7% TTFT).
        assert tokenflow.ttft_p99 < 0.7 * sglang.ttft_p99
        assert tokenflow.effective_throughput > sglang.effective_throughput
    else:
        # Unpressured regime: FCFS is already fine; TokenFlow must not
        # regress anything materially.
        assert tokenflow.ttft_p99 < sglang.ttft_p99 + 1.0
        assert tokenflow.effective_throughput > 0.9 * sglang.effective_throughput
