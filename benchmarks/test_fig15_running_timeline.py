"""Figure 15: running (concurrent) requests over time."""

from benchmarks.conftest import emit
from repro.experiments.temporal import render_temporal, run_temporal

SYSTEMS = ("sglang", "andes", "tokenflow")


def test_fig15_running_timeline(benchmark):
    results = benchmark.pedantic(
        lambda: run_temporal(
            systems=SYSTEMS, duration=80.0, base_rate=2.0,
            bin_s=10.0, max_batch=32, seed=1,
        ),
        rounds=1, iterations=1,
    )
    emit(render_temporal(results, metric="running"))
    # Shape: TokenFlow sustains at least the baseline's concurrency
    # (higher parallelism under peak load is its design goal).
    assert (
        results["tokenflow"]["mean_running"]
        >= 0.9 * results["sglang"]["mean_running"]
    )
