"""Figure 1: token consumption speeds by age group and language."""

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.client.rates import rate_table_rows


def build_tables():
    reading = rate_table_rows("reading")
    listening = rate_table_rows("listening")
    return reading, listening


def test_fig01_consumption_rates(benchmark):
    reading, listening = benchmark.pedantic(build_tables, rounds=1, iterations=1)
    emit(render_table(["language", "age", "tokens/s"], reading,
                      title="Fig. 1 (left): reading consumption speeds"))
    emit(render_table(["language", "age", "tokens/s"], listening,
                      title="Fig. 1 (right): listening consumption speeds"))
    # Shape: consumption far below LLM generation speeds, peaking in
    # young adults for reading.
    assert max(rate for _, _, rate in reading) < 12.0
    english = {age: rate for lang, age, rate in reading if lang == "english"}
    assert english["18-25"] == max(english.values())
