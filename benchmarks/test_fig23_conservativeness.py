"""Figure 23: impact of buffer conservativeness (μ) on behaviour."""

from benchmarks.conftest import emit
from repro.experiments.sensitivity import (
    render_sensitivity,
    run_conservativeness_sweep,
)


def test_fig23_conservativeness(benchmark):
    # jobs=2 routes the sweep through the matrix orchestrator (results
    # are bit-identical to the serial path; see tests/test_orchestration.py).
    points = benchmark.pedantic(
        lambda: run_conservativeness_sweep(mus=(1.0, 20.0), n_requests=100,
                                           jobs=2),
        rounds=1, iterations=1,
    )
    emit(render_sensitivity(points, knob="mu"))
    aggressive, cautious = points
    # Shape (paper): high mu behaves cautiously, SGLang-like — fewer
    # preemption cycles; low mu adapts aggressively.
    assert cautious.preemptions <= aggressive.preemptions
    assert aggressive.effective_throughput > 0
