"""Figure 20: effective throughput across generation speeds."""

from benchmarks.conftest import emit
from repro.experiments.ratesweep import render_rate_sweep, run_rate_sweep


def test_fig20_speed_sweep(benchmark):
    # jobs=2 routes the sweep through the matrix orchestrator (results
    # are bit-identical to the serial path; see tests/test_orchestration.py).
    points = benchmark.pedantic(
        lambda: run_rate_sweep(rates=(20.0, 25.0, 30.0), n_requests=100,
                               jobs=2),
        rounds=1, iterations=1,
    )
    emit(render_rate_sweep(points))
    # Shape: TokenFlow gains clearly at every consumption speed
    # (paper: +53.7% / +48.7% / +52.9%).
    for point in points:
        assert point.gain > 0.15
