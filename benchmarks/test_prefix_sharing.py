"""Prefix-sharing savings harness for the block-table allocator.

Runs the two prefix-native scenarios — ``prefix-heavy-agents``
(sequential multi-turn sessions, cached-chain reuse + promotion) and
``rag-replay`` (concurrent fan-out over shared document prefixes,
live refs + copy-on-write forks) — once under ``prefix_cow`` and once
under the ``naive`` allocator on the identical workload, asserting

* **savings** — ``prefix_blocks_saved / (prefix_blocks_saved +
  gpu_blocks_allocated)`` is at least :data:`MIN_SAVINGS` (the
  ISSUE's >= 30% GPU-block gate) on both scenarios, and
* **reuse paths** — the agents scenario exercises cache promotion and
  the RAG scenario exercises copy-on-write forks, so both sharing
  mechanisms are demonstrably live, and
* **parity of demand** — the naive run on the same workload allocates
  strictly more fresh blocks than the prefix run.

Emits ``benchmarks/BENCH_prefix.json`` recording the counters and the
naive-vs-prefix allocation deltas.

Run just this harness with::

    PYTHONPATH=src python -m pytest benchmarks/test_prefix_sharing.py -q -s
"""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.conftest import emit
from repro.scenarios.build import build_run
from repro.scenarios.registry import get_scenario

SCALE = 0.5
SEED = 0
MIN_SAVINGS = 0.30

SCENARIOS = ("prefix-heavy-agents", "rag-replay")

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_prefix.json"

COUNTER_KEYS = (
    "prefix_lookups", "prefix_hits", "prefix_shared_blocks",
    "prefix_tokens_reused", "prefix_blocks_saved", "cache_promotes",
    "cow_forks", "prefix_evictions",
)


def _run(name, **overrides):
    spec = get_scenario(name, scale=SCALE, seed=SEED, **overrides)
    return build_run(spec).execute()


def test_prefix_sharing_savings():
    rows = []
    for name in SCENARIOS:
        prefix = _run(name)
        naive = _run(name, kv_allocator="naive")
        stats = prefix.kv_stats
        saved = stats["prefix_blocks_saved"]
        allocated = stats["gpu_blocks_allocated"]
        savings = saved / (saved + allocated)
        hit_rate = stats["prefix_hits"] / max(1, stats["prefix_lookups"])
        rows.append({
            "scenario": name,
            "n_requests": prefix.n_requests,
            "savings": round(savings, 4),
            "hit_rate": round(hit_rate, 4),
            "gpu_blocks_allocated": allocated,
            "gpu_blocks_allocated_naive": naive.kv_stats["gpu_blocks_allocated"],
            "gpu_peak_blocks": stats["gpu_peak_blocks"],
            "gpu_peak_blocks_naive": naive.kv_stats["gpu_peak_blocks"],
            "counters": {key: stats[key] for key in COUNTER_KEYS},
        })

    by_name = {row["scenario"]: row for row in rows}
    # Both sharing mechanisms must be live, not just one of them.
    assert by_name["prefix-heavy-agents"]["counters"]["cache_promotes"] > 0
    assert by_name["rag-replay"]["counters"]["cow_forks"] > 0

    payload = {
        "workload": {"scale": SCALE, "seed": SEED},
        "gate": f"GPU-block savings >= {MIN_SAVINGS:.0%} on every scenario",
        "scenarios": rows,
        "notes": (
            "savings = prefix_blocks_saved / (prefix_blocks_saved + "
            "gpu_blocks_allocated); naive columns re-run the identical "
            "workload with kv_allocator=naive"
        ),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [f"prefix sharing — scale={SCALE} seed={SEED}"]
    for row in rows:
        counters = row["counters"]
        lines.append(
            f"  {row['scenario']}: savings={row['savings']:.1%} "
            f"hit_rate={row['hit_rate']:.1%} "
            f"allocated={row['gpu_blocks_allocated']} "
            f"(naive {row['gpu_blocks_allocated_naive']}) "
            f"promotes={counters['cache_promotes']} "
            f"forks={counters['cow_forks']} "
            f"evictions={counters['prefix_evictions']}"
        )
    lines.append(f"  artifact -> {BENCH_PATH.name}")
    emit("\n".join(lines))

    for row in rows:
        assert row["savings"] >= MIN_SAVINGS, (
            f"{row['scenario']}: GPU-block savings {row['savings']:.1%} "
            f"below the {MIN_SAVINGS:.0%} gate"
        )
        assert row["gpu_blocks_allocated"] < row["gpu_blocks_allocated_naive"], (
            f"{row['scenario']}: prefix run allocated no fewer blocks than naive"
        )
