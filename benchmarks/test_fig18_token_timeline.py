"""Figure 18: token generation timelines, SGLang vs TokenFlow."""

import numpy as np

from benchmarks.conftest import emit
from repro.experiments.timeline import render_timelines, run_timelines


def test_fig18_token_timeline(benchmark):
    results = benchmark.pedantic(
        lambda: run_timelines(n_requests=10, max_batch=3),
        rounds=1, iterations=1,
    )
    emit(render_timelines(results))
    sglang = np.mean([v for v in results["sglang"].ttfts.values()])
    tokenflow = np.mean([v for v in results["tokenflow"].ttfts.values()])
    # Shape: TokenFlow starts every stream earlier (no head-of-line
    # blocking); later requests especially.
    assert tokenflow < sglang
    worst_sglang = max(results["sglang"].ttfts.values())
    worst_tokenflow = max(results["tokenflow"].ttfts.values())
    assert worst_tokenflow < worst_sglang
