"""Matrix orchestrator bench: solo-vs-matrix parity and parallel wall.

Runs 8 registered scenarios (plus one cluster cell) twice — solo
(the exact ``repro run`` code path, timed as the serial reference) and
as one ``--jobs 4`` process-parallel matrix — asserts every cell's
:class:`RunReport` is bit-identical between the two, and records the
measured wall-clock cut in ``BENCH_simcore.json``'s notes.

On a single-core container the parallel matrix cannot beat the serial
loop (the recorded note keeps the CPU count next to the ratio for
exactly that reason); with N idle cores the cut approaches N× because
the cells are embarrassingly parallel.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import emit
from benchmarks.test_perf_simcore import BENCH_PATH
from repro.orchestration import MatrixCell, run_matrix
from repro.orchestration.executor import _execute_cell
from repro.serving.metrics import report_fingerprint as _fingerprint

# Every registered scenario that completes at this reduced scale (the
# rtx4090-b-derived setups — tab02 included — need scale >= ~0.25 to
# drain and are covered by their own benches).
SCENARIOS = (
    "table1-h200-a",
    "table1-h200-b",
    "table1-h200-c",
    "table1-h200-d",
    "table1-rtx4090-a",
    "table1-rtx4090-c",
    "table1-rtx4090-d",
    "bursty-sessions",
    "cluster-burst-4x",
)
SCALE = 0.05
JOBS = 4


def test_matrix_orchestrator_parity_and_wall(benchmark):
    cells = [MatrixCell(scenario=name, seed=0, scale=SCALE)
             for name in SCENARIOS]

    # Solo reference: each cell through the exact single-run code path,
    # back to back (this is what a serial sweep costs).
    t0 = time.perf_counter()
    solo = [_execute_cell(cell)[0] for cell in cells]
    serial_s = time.perf_counter() - t0

    # The same cells as one process-parallel matrix.
    t0 = time.perf_counter()
    matrix = benchmark.pedantic(
        lambda: run_matrix(cells, jobs=JOBS), rounds=1, iterations=1
    )
    parallel_s = time.perf_counter() - t0

    assert matrix.succeeded, matrix.render_markdown()
    assert [c.cell_id for c in matrix.cells] == [c.cell_id for c in cells]
    for solo_report, cell in zip(solo, matrix.cells):
        assert _fingerprint(solo_report) == _fingerprint(cell.report), (
            f"matrix cell {cell.cell_id} diverged from its solo run"
        )

    speedup = serial_s / parallel_s if parallel_s > 0 else float("nan")
    cpus = os.cpu_count() or 1
    payload = json.loads(BENCH_PATH.read_text())
    notes = payload.setdefault("notes", {})
    notes["matrix"] = {
        "cells": len(cells),
        "jobs": JOBS,
        "cpus": cpus,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(speedup, 3),
        "comment": (
            "per-cell RunReports bit-identical solo vs matrix; wall cut "
            "scales with idle cores (a 1-CPU container pins speedup ~1x, "
            "bounded by fork/pickle overhead)"
        ),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    emit(
        f"matrix orchestrator · {len(cells)} cells · jobs={JOBS} on "
        f"{cpus} CPU(s)\n"
        f"  serial   {serial_s:.2f} s\n"
        f"  parallel {parallel_s:.2f} s  ({speedup:.2f}x)\n"
        f"  parity   all cells bit-identical to solo runs\n"
        f"  artifact -> {BENCH_PATH.name} (notes.matrix)"
    )
