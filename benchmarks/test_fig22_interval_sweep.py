"""Figure 22: impact of the rescheduling interval Δt."""

from benchmarks.conftest import emit
from repro.experiments.sensitivity import render_sensitivity, run_interval_sweep


def test_fig22_interval_sweep(benchmark):
    # jobs=2 routes the sweep through the matrix orchestrator (results
    # are bit-identical to the serial path; see tests/test_orchestration.py).
    points = benchmark.pedantic(
        lambda: run_interval_sweep(intervals=(0.5, 1.0, 1.5), n_requests=100,
                                   jobs=2),
        rounds=1, iterations=1,
    )
    emit(render_sensitivity(points, knob="dt(s)"))
    # Shape (paper): shorter intervals marginally improve effective
    # throughput / responsiveness; all settings remain functional.
    shortest, longest = points[0], points[-1]
    assert shortest.effective_throughput >= 0.9 * longest.effective_throughput
    assert all(p.ttft_p99 < 60.0 for p in points)
