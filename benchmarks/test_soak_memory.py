"""Soak-scale memory benchmark: O(active) RSS on the streaming plane.

The streaming workload plane's claim is that serving memory scales
with the *active* request set, not the total served: a run 100x the
TABLE1 h200/(a) crowd must not cost 100x the memory.  This bench pins
that with real processes:

* **baseline** — the 400-request table1-h200-a cell (the perf smoke's
  macro workload), retained telemetry, measured as peak RSS of a bare
  subprocess (``profiling.bare_run_rss_kb`` — in-suite ``ru_maxrss``
  would report the test session's high-water mark, not the run's).
* **soak** — ``soak-steady`` at scale 1: 40 000 requests (100x) fed
  through ``ServingSystem.feed`` with streaming telemetry
  (``retain_per_request=False``).

Gate: soak peak RSS ≤ 2x the baseline's.  (Measured on the reference
container: ~46 MiB soak vs ~80 MiB baseline — the soak run is actually
*smaller*, because nothing O(total) survives; the 2x bound leaves room
for interpreter/platform noise, not for a regression back to
O(total).)  Slow lane only (the soak run simulates ~2.5M tokens).

Results land in ``BENCH_soak.json`` next to the perf smoke's artifact.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.scenarios import get_scenario
from repro.scenarios.registry import SOAK_BASE_REQUESTS
from repro.sim.profiling import bare_run_rss_kb

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_soak.json"

BASELINE_CODE = """
from repro.scenarios import build_run, get_scenario
report = build_run(get_scenario("table1-h200-a", scale=1.0)).execute()
assert report.n_finished == report.n_requests > 0
"""

SOAK_CODE = """
from repro.scenarios import build_run, get_scenario
run = build_run(get_scenario("soak-steady", scale=1.0))
report = run.execute()
assert report.n_finished == report.n_requests == {n}
assert len(run.target.tracker) == 0           # everything retired
assert report.stream_stats is not None        # sketch-backed report
""".format(n=SOAK_BASE_REQUESTS)


def test_soak_rss_stays_near_baseline():
    base_requests = len(get_scenario("table1-h200-a", scale=1.0).build_workload())
    assert SOAK_BASE_REQUESTS >= 100 * base_requests  # the "100x" claim

    base_kb = bare_run_rss_kb(BASELINE_CODE, timeout_s=600.0)
    if base_kb is None:
        pytest.skip("cannot measure subprocess RSS on this platform")
    soak_kb = bare_run_rss_kb(SOAK_CODE, timeout_s=600.0)
    # The baseline subprocess worked, so a failed soak subprocess is a
    # real regression (crash/unfinished run), not an environment quirk.
    assert soak_kb is not None, "soak subprocess failed"

    print(
        f"\nsoak RSS: baseline ({base_requests} reqs) {base_kb / 1024:.1f} MiB, "
        f"soak ({SOAK_BASE_REQUESTS} reqs, {SOAK_BASE_REQUESTS // base_requests}x) "
        f"{soak_kb / 1024:.1f} MiB ({soak_kb / base_kb:.2f}x)\n"
    )
    BENCH_PATH.write_text(json.dumps({
        "baseline": {"scenario": "table1-h200-a", "scale": 1.0,
                     "n_requests": base_requests, "peak_rss_kb": base_kb},
        "soak": {"scenario": "soak-steady", "scale": 1.0,
                 "n_requests": SOAK_BASE_REQUESTS, "peak_rss_kb": soak_kb},
        "ratio": soak_kb / base_kb,
        "gate": "soak <= 2x baseline",
    }, indent=2) + "\n")

    assert soak_kb <= 2 * base_kb, (
        f"soak peak RSS {soak_kb} KiB exceeds 2x the {base_requests}-request "
        f"baseline ({base_kb} KiB) — something O(total-requests) is back"
    )
