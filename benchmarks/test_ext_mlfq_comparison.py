"""Extension: FastServe-style MLFQ vs the paper's systems.

Not a paper figure.  MLFQ is the classic streaming-agnostic preemptive
policy (FastServe, related work §9): it preempts aggressively to
favour short jobs but knows nothing about client buffers.  The
contrast sharpens the paper's thesis — preemption alone is not enough;
it must be buffer-aware.
"""

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.experiments.runner import run_comparison
from repro.serving.metrics import RunReport
from repro.sim.rng import RngStreams
from repro.workload.builder import RateMixture, WorkloadBuilder, WorkloadSpec
from repro.workload.lengths import NormalLengthSampler

SYSTEMS = ("sglang", "mlfq", "andes", "tokenflow")


def test_ext_mlfq_comparison(benchmark):
    spec = WorkloadSpec(
        arrival="burst", n_requests=100, burst_spread=0.25,
        lengths=NormalLengthSampler(),
        rates=RateMixture.fixed(10.0),
    )
    requests = WorkloadBuilder(spec, RngStreams(0)).build()
    reports = benchmark.pedantic(
        lambda: run_comparison(
            SYSTEMS, requests,
            hardware="h200", model="llama3-8b", mem_frac=0.1, max_batch=48,
        ),
        rounds=1, iterations=1,
    )
    emit(render_table(
        RunReport.summary_headers() + ["stall(s)", "preempts"],
        [
            report.summary_row() + [round(report.stall_total, 1),
                                    report.preemptions]
            for report in reports.values()
        ],
        title="Extension: buffer-aware vs buffer-agnostic preemption",
    ))
    tokenflow, mlfq = reports["tokenflow"], reports["mlfq"]
    # Shape: buffer-aware preemption dominates buffer-agnostic MLFQ on
    # effective throughput at comparable-or-better latency tails.
    assert tokenflow.effective_throughput > mlfq.effective_throughput
    assert tokenflow.throughput > mlfq.throughput
