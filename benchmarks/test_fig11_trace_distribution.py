"""Figure 11: distribution of the (synthesized) production trace."""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.sim.rng import RngStreams
from repro.workload.production import ProductionTraceGenerator


def build_distribution():
    generator = ProductionTraceGenerator(mean_rate=2.0, period=600.0)
    rng = RngStreams(0).stream("fig11")
    arrivals = generator.generate(600.0, rng)
    centres, rates = generator.rate_histogram(600.0, bins=20)
    counts, _ = np.histogram(arrivals, bins=20, range=(0.0, 600.0))
    return centres, rates, counts, arrivals


def test_fig11_trace_distribution(benchmark):
    centres, rates, counts, arrivals = benchmark.pedantic(
        build_distribution, rounds=1, iterations=1
    )
    rows = [
        [round(float(c), 0), round(float(r), 2), int(n)]
        for c, r, n in zip(centres, rates, counts)
    ]
    emit(render_table(["t(s)", "rate fn (req/s)", "arrivals/bin"], rows,
                      title="Fig. 11: production trace distribution"))
    # Shape: pronounced peaks — max bin well above the median bin.
    assert counts.max() > 2 * np.median(counts)
    # Empirical arrivals track the rate function (correlation).
    correlation = np.corrcoef(rates, counts)[0, 1]
    assert correlation > 0.5
