"""Table 2: memory-management ablation (completion times).

Runs the 4090 setup (b) workload across TokenFlow and its three
ablated variants.  The link is constrained to 2 GB/s so swap traffic
is a first-order cost, matching the paper's regime where the overlap
technique is measurable (at the nominal 25 GB/s our roofline leaves
PCIe <1% utilised and the overlap ablation is a no-op — recorded in
EXPERIMENTS.md).
"""

from benchmarks.conftest import emit
from repro.experiments.ablation import (
    completion_times,
    render_ablation,
    run_ablation,
)


def test_tab02_ablation(benchmark):
    reports = benchmark.pedantic(
        lambda: run_ablation(scale=0.5, pcie_gbps=2.0), rounds=1, iterations=1
    )
    emit(render_ablation(reports))
    times = completion_times(reports)
    # Shape (paper Table 2: 66.00 < 74.43 < 82.76 < 127.28 s): the full
    # system completes fastest; each removed technique costs time, with
    # dropping the offload hierarchy entirely costing the most.
    assert times["tokenflow"] < times["tokenflow-no-overlap"]
    assert times["tokenflow-no-overlap"] < times["tokenflow-no-writethrough"]
    assert times["tokenflow-no-writethrough"] < times["tokenflow-no-offload"]
