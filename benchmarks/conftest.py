"""Benchmark harness configuration.

Every bench regenerates one paper table/figure at a reduced scale (the
comparison shape is scale-invariant; see EXPERIMENTS.md) and prints
the same rows/series the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the rendered tables; without it they are captured but the
shape assertions still run.
"""

import pytest


def emit(text: str) -> None:
    """Print a rendered experiment table under the bench's name."""
    print("\n" + text + "\n")
