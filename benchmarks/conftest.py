"""Benchmark harness configuration.

Every bench regenerates one paper table/figure at a reduced scale (the
comparison shape is scale-invariant; see EXPERIMENTS.md) and prints
the same rows/series the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the rendered tables; without it they are captured but the
shape assertions still run.
"""

from pathlib import Path

import pytest

_BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    """Mark every bench ``slow``: the figure/table regenerations and the
    perf harness belong to the full tier-1 lane, not the fast CI lane
    (``-m "not slow"``; see scripts/ci.sh)."""
    for item in items:
        if Path(item.fspath).resolve().parent == _BENCH_DIR:
            item.add_marker(pytest.mark.slow)


def emit(text: str) -> None:
    """Print a rendered experiment table under the bench's name."""
    print("\n" + text + "\n")
