"""§8 extension: cluster scale-out under a flash crowd.

Not a paper figure — the paper's §8 sketches multi-node TokenFlow as
future work; this bench exercises our dispatcher-based implementation
and checks burst absorption scales with node count.
"""

from benchmarks.conftest import emit
from repro.experiments.scaling import render_scaling, run_cluster_scaling


def test_scaling_cluster(benchmark):
    points = benchmark.pedantic(
        lambda: run_cluster_scaling(node_counts=(1, 2, 4), n_requests=96),
        rounds=1, iterations=1,
    )
    emit(render_scaling(points))
    by_nodes = {p.n_instances: p for p in points}
    # Shape: more nodes absorb the burst better on every axis.
    assert by_nodes[2].ttft_p99 < by_nodes[1].ttft_p99
    assert by_nodes[4].ttft_p99 <= by_nodes[2].ttft_p99
    assert by_nodes[4].throughput > by_nodes[1].throughput
    # The dispatcher keeps placement roughly even.
    assert all(p.placement_spread < 2.0 for p in points)
