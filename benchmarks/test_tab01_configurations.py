"""Table 1: controlled request-distribution configurations."""

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.experiments.controlled import TABLE1, build_workload


def materialise():
    rows = []
    for (gpu, key), setup in sorted(TABLE1.items()):
        requests = build_workload(setup, scale=0.1, seed=0)
        rows.append(
            [
                gpu, key, setup.arrival,
                setup.burst_size or f"λ={setup.poisson_rate}",
                setup.length_regime,
                len(requests),
            ]
        )
    return rows


def test_tab01_configurations(benchmark):
    rows = benchmark.pedantic(materialise, rounds=1, iterations=1)
    emit(render_table(
        ["gpu", "setup", "arrival", "size", "lengths", "n@scale0.1"],
        rows, title="Table 1: controlled configurations",
    ))
    assert len(rows) == 8
    # The H200 burst (a) is the largest configured burst.
    h200_a = next(r for r in rows if r[0] == "h200" and r[1] == "a")
    assert h200_a[3] == 400
