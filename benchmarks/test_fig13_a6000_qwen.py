"""Figure 13: end-to-end metrics on A6000 with Qwen2.5-7B."""

from benchmarks.conftest import emit
from repro.experiments.endtoend import (
    improvement_summary,
    render_endtoend,
    run_endtoend,
)

SYSTEMS = ("sglang", "sglang-chunked", "andes", "tokenflow")


def test_fig13_a6000_qwen(benchmark):
    reports = benchmark.pedantic(
        lambda: run_endtoend(
            "a6000-qwen2.5-7b", trace="burstgpt", systems=SYSTEMS,
            duration=60.0, scale=1.0,
        ),
        rounds=1, iterations=1,
    )
    emit(render_endtoend("a6000-qwen2.5-7b", "burstgpt", reports))
    summary = improvement_summary(reports)
    emit(f"tokenflow vs sglang: {summary}")
    assert summary["effective_throughput_gain"] > 0.0
    assert summary["ttft_mean_reduction"] > 0.0
    assert summary["throughput_ratio"] > 0.8
