"""Figure 21: performance on Huawei Ascend 910B."""

from benchmarks.conftest import emit
from repro.experiments.endtoend import (
    improvement_summary,
    render_endtoend,
    run_endtoend,
)

SYSTEMS = ("sglang", "andes", "tokenflow")


def test_fig21_ascend(benchmark):
    reports = benchmark.pedantic(
        lambda: run_endtoend(
            "ascend910b-llama3-8b", trace="burstgpt", systems=SYSTEMS,
            duration=60.0, scale=1.0,
        ),
        rounds=1, iterations=1,
    )
    emit(render_endtoend("ascend910b-llama3-8b", "burstgpt", reports))
    summary = improvement_summary(reports)
    emit(f"tokenflow vs sglang on ascend-910b: {summary}")
    # Shape: the design carries to the different hardware point.
    assert summary["effective_throughput_gain"] > 0.0
    assert summary["ttft_mean_reduction"] > 0.0
