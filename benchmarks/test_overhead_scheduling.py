"""§7.6: scheduling-pass overhead quantification."""

from benchmarks.conftest import emit
from repro.experiments.overhead import measure_overhead, render_overhead


def test_overhead_scheduling(benchmark):
    results = benchmark.pedantic(
        lambda: measure_overhead(
            systems=("sglang", "andes", "tokenflow"), n_requests=120, repeats=30
        ),
        rounds=1, iterations=1,
    )
    emit(render_overhead(results))
    by_name = {r.system: r for r in results}
    # Shape (paper: ~0.07 ms SGLang, ~0.4 ms TokenFlow): TokenFlow's
    # pass costs more than FCFS but stays negligible next to a decode
    # iteration (several ms).
    assert by_name["tokenflow"].pass_ms_mean < 20.0
    assert by_name["sglang"].pass_ms_mean < by_name["tokenflow"].pass_ms_mean * 100
