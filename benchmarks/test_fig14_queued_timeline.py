"""Figure 14: queued requests over time under a stress trace."""

from benchmarks.conftest import emit
from repro.experiments.temporal import render_temporal, run_temporal

SYSTEMS = ("sglang", "andes", "tokenflow")


def test_fig14_queued_timeline(benchmark):
    results = benchmark.pedantic(
        lambda: run_temporal(
            systems=SYSTEMS, duration=80.0, base_rate=2.0,
            bin_s=10.0, max_batch=32,
        ),
        rounds=1, iterations=1,
    )
    emit(render_temporal(results, metric="queued"))
    # Shape: TokenFlow keeps fewer requests queued at peak than SGLang.
    assert results["sglang"]["peak_queued"] > 1.0
    assert results["tokenflow"]["peak_queued"] < results["sglang"]["peak_queued"]
