"""Figure 6: buffer-balancing toy example."""

from benchmarks.conftest import emit
from repro.experiments.toy import render_toy, run_toy_example


def test_fig06_toy_example(benchmark):
    result = benchmark.pedantic(run_toy_example, rounds=1, iterations=1)
    emit(render_toy(result))
    # Shape: R3 (arriving at t=2) is admitted via preemption and served
    # promptly; rotation balances buffers with no playback stalls.
    assert result.preemptions > 0
    assert result.stall_total < 0.5
    assert result.ttfts[2] < 1.5
