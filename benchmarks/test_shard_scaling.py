"""Shard-scaling harness for the sharded cluster simulation.

Runs the 64-replica ``cluster-soak-64x`` scenario once on the classic
shared-engine cluster and once per shard count K ∈ {1, 2, 4} on
:class:`~repro.serving.shard.ShardedServingCluster` (process
transport, warm worker pool), asserting

* **parity** — every sharded run reproduces the classic ClusterReport
  bit-for-bit (the NaN-tolerant deep fingerprint from the sharding
  test suite), and
* **overhead** — the best sharded wall clock stays within
  ``MAX_OVERHEAD`` of the single-process baseline.  This container
  has one CPU, so sharding cannot win by parallelism; the gate bounds
  what the coordination protocol (ladder messages, pickling, queue
  round-trips) costs.

Emits ``benchmarks/BENCH_shard.json`` so the trajectory guard in
``tests/test_perf_trajectory.py`` can watch the committed figure.

Run just this harness with::

    PYTHONPATH=src python -m pytest benchmarks/test_shard_scaling.py -q -s
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import emit
from repro.orchestration.pool import get_pool
from repro.scenarios.build import build_run
from repro.scenarios.registry import CLUSTER_SOAK_REPLICAS, get_scenario
from repro.serving.shard import ShardedServingCluster

from tests.test_serving_sharding import deep_fp

SCENARIO = "cluster-soak-64x"
SCALE = 0.25
SEED = 0
SHARD_COUNTS = (1, 2, 4)

# Coordination-overhead ceiling: best sharded wall / classic wall.
# The ISSUE's acceptance gate is <= 1.15 on this 1-CPU container; the
# measured figure here is *below* 1.0 (splitting one 64-replica event
# heap into K small ones more than pays for the round_robin ladder
# messages), so 1.15 leaves honest noise headroom.
MAX_OVERHEAD = 1.15

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_shard.json"


def _timed_run(shards=None):
    """Execute one soak run; ``shards=None`` is the classic baseline.

    ``build_run`` only builds a sharded target for ``spec.shards > 1``,
    so K=1 (the pure-protocol-overhead point) is rebuilt from the K=2
    target's own configs and picklable scheduler recipe.
    """
    spec = get_scenario(
        SCENARIO, scale=SCALE, seed=SEED,
        shards=1 if shards is None else max(shards, 2),
    )
    run = build_run(spec)
    if shards is not None:
        run.target = ShardedServingCluster(
            run.target.configs, run.target.scheduler_factory,
            router=spec.router, shards=shards, transport="process",
        )
    t0 = time.perf_counter()
    report = run.execute()
    wall = time.perf_counter() - t0
    return run.target, report, wall


def test_shard_scaling_soak64():
    # Warm the shared worker pool so cold fork/import cost does not
    # land inside any timed region (matrix cells amortise it the same
    # way via orchestration.pool).
    pool = get_pool(min_workers=max(SHARD_COUNTS))
    list(pool.map(abs, range(2 * max(SHARD_COUNTS))))

    classic_target, classic_report, classic_wall = _timed_run()
    baseline_fp = deep_fp(classic_target, classic_report)
    n_requests = classic_report.n_requests

    rows = []
    for shards in SHARD_COUNTS:
        target, report, wall = _timed_run(shards)
        assert deep_fp(target, report) == baseline_fp, (
            f"sharded K={shards} run diverged from the classic report"
        )
        rows.append({
            "shards": shards,
            "wall_s": round(wall, 4),
            "overhead": round(wall / classic_wall, 4),
            "coordination_rounds": target.coordination_rounds,
            "messages_sent": target.messages_sent,
            "shard_events": target.shard_events,
        })

    best = min(rows, key=lambda row: row["wall_s"])
    payload = {
        "workload": {
            "scenario": SCENARIO,
            "scale": SCALE,
            "seed": SEED,
            "replicas": CLUSTER_SOAK_REPLICAS,
            "n_requests": n_requests,
        },
        "baseline": {"wall_s": round(classic_wall, 4)},
        "shards": rows,
        "best": {"shards": best["shards"], "overhead": best["overhead"]},
        "gate": f"best sharded wall <= {MAX_OVERHEAD}x classic wall",
        "notes": (
            "process transport, warm pool, round_robin ladder; parity "
            "asserted bit-identical against the classic cluster"
        ),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"shard scaling — {SCENARIO} scale={SCALE} "
        f"({CLUSTER_SOAK_REPLICAS} replicas, {n_requests} requests)",
        f"  classic: {classic_wall:.2f}s",
    ]
    for row in rows:
        lines.append(
            f"  K={row['shards']}: {row['wall_s']:.2f}s "
            f"({row['overhead']:.2f}x) rounds={row['coordination_rounds']} "
            f"msgs={row['messages_sent']} events={row['shard_events']}"
        )
    lines.append(f"  artifact -> {BENCH_PATH.name}")
    emit("\n".join(lines))

    # Wall-clock gates are skippable on loaded/foreign machines; the
    # artifact above still records what this run measured.
    if os.environ.get("REPRO_PERF_NO_WALL_GATE", "") != "1":
        assert best["overhead"] <= MAX_OVERHEAD, (
            f"sharded coordination overhead {best['overhead']:.2f}x exceeds "
            f"the {MAX_OVERHEAD}x gate (classic {classic_wall:.2f}s, best "
            f"sharded {best['wall_s']:.2f}s at K={best['shards']})"
        )
