"""Shard-scaling harness for the sharded cluster simulation.

Runs the 64-replica ``cluster-soak-64x`` scenario once on the classic
shared-engine cluster and once per shard count K ∈ {1, 2, 4} on
:class:`~repro.serving.shard.ShardedServingCluster` (process
transport, warm worker pool), asserting

* **parity** — every sharded run reproduces the classic ClusterReport
  bit-for-bit (the NaN-tolerant deep fingerprint from the sharding
  test suite), and
* **overhead** — the best sharded wall clock stays within
  ``MAX_OVERHEAD`` of the single-process baseline.  This container
  has one CPU, so sharding cannot win by parallelism; the gate bounds
  what the coordination protocol (ladder messages, pickling, queue
  round-trips) costs.

A second block measures the **speculative dispatch** acceptance point:
``least_loaded`` over K=4 shards, speculation on vs off.  Off pays one
blocking pause round per stateful dispatch (the pre-speculation
protocol); on resolves arrivals against the trajectory-snapshot mirror
and must cut coordination rounds at least 5x with bit-identical
reports.  Both figures land in the artifact's ``speculation`` block
and append to its ``history`` trajectory.

Emits ``benchmarks/BENCH_shard.json`` so the trajectory guards in
``tests/test_perf_trajectory.py`` can watch the committed figures.

Run just this harness with::

    PYTHONPATH=src python -m pytest benchmarks/test_shard_scaling.py -q -s
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import emit
from repro.orchestration.pool import get_pool
from repro.scenarios.build import build_run
from repro.scenarios.registry import CLUSTER_SOAK_REPLICAS, get_scenario
from repro.serving.shard import ShardedServingCluster

from tests.test_serving_sharding import deep_fp

SCENARIO = "cluster-soak-64x"
SCALE = 0.25
SEED = 0
SHARD_COUNTS = (1, 2, 4)

# Coordination-overhead ceiling: best sharded wall / classic wall.
# The ISSUE's acceptance gate is <= 1.15 on this 1-CPU container; the
# measured figure here is *below* 1.0 (splitting one 64-replica event
# heap into K small ones more than pays for the round_robin ladder
# messages), so 1.15 leaves honest noise headroom.
MAX_OVERHEAD = 1.15

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_shard.json"


def _timed_run(shards=None, router=None, speculation=True):
    """Execute one soak run; ``shards=None`` is the classic baseline.

    ``build_run`` only builds a sharded target for ``spec.shards > 1``,
    so K=1 (the pure-protocol-overhead point) is rebuilt from the K=2
    target's own configs and picklable scheduler recipe.
    """
    overrides = {"shards": 1 if shards is None else max(shards, 2)}
    if router is not None:
        overrides["router"] = router
    spec = get_scenario(SCENARIO, scale=SCALE, seed=SEED, **overrides)
    run = build_run(spec)
    if shards is not None:
        run.target = ShardedServingCluster(
            run.target.configs, run.target.scheduler_factory,
            router=spec.router, shards=shards, transport="process",
            speculation=speculation,
        )
    t0 = time.perf_counter()
    report = run.execute()
    wall = time.perf_counter() - t0
    return run.target, report, wall


def _load_history():
    """Prior rounds/messages trajectory from the committed artifact.

    Artifacts written before speculative dispatch carry no history;
    their pause-round protocol point is reconstructed by the caller so
    the trajectory starts at the pre-speculation figure.
    """
    if not BENCH_PATH.exists():
        return []
    try:
        return list(json.loads(BENCH_PATH.read_text()).get("history", []))
    except (ValueError, OSError):
        return []


def test_shard_scaling_soak64():
    # Warm the shared worker pool so cold fork/import cost does not
    # land inside any timed region (matrix cells amortise it the same
    # way via orchestration.pool).
    pool = get_pool(min_workers=max(SHARD_COUNTS))
    list(pool.map(abs, range(2 * max(SHARD_COUNTS))))

    classic_target, classic_report, classic_wall = _timed_run()
    baseline_fp = deep_fp(classic_target, classic_report)
    n_requests = classic_report.n_requests

    rows = []
    for shards in SHARD_COUNTS:
        target, report, wall = _timed_run(shards)
        assert deep_fp(target, report) == baseline_fp, (
            f"sharded K={shards} run diverged from the classic report"
        )
        rows.append({
            "shards": shards,
            "wall_s": round(wall, 4),
            "overhead": round(wall / classic_wall, 4),
            "coordination_rounds": target.coordination_rounds,
            "messages_sent": target.messages_sent,
            "shard_events": target.shard_events,
        })

    # --- speculative dispatch: rounds/messages trajectory -------------
    # The stateful-router acceptance point: least_loaded over K=4
    # shards, speculation on vs off (off = the pause-round protocol,
    # one blocking gather per stateful dispatch).  Counts are
    # deterministic, so this gate never needs the wall-clock skip.
    classic_ll_target, classic_ll_report, _ = _timed_run(router="least_loaded")
    ll_baseline_fp = deep_fp(classic_ll_target, classic_ll_report)
    spec_on, spec_on_report, _ = _timed_run(
        shards=4, router="least_loaded", speculation=True
    )
    assert deep_fp(spec_on, spec_on_report) == ll_baseline_fp, (
        "speculative least_loaded K=4 run diverged from the classic report"
    )
    spec_off, spec_off_report, _ = _timed_run(
        shards=4, router="least_loaded", speculation=False
    )
    assert deep_fp(spec_off, spec_off_report) == ll_baseline_fp, (
        "speculation-off least_loaded K=4 run diverged from the classic report"
    )
    reduction = spec_off.coordination_rounds / max(spec_on.coordination_rounds, 1)
    assert reduction >= 5.0, (
        f"speculative dispatch cut rounds only {reduction:.1f}x "
        f"({spec_off.coordination_rounds} -> {spec_on.coordination_rounds}); "
        f"the acceptance gate is >= 5x"
    )

    history = _load_history()
    if not history:
        history.append({
            "coordination_rounds": spec_off.coordination_rounds,
            "messages_sent": spec_off.messages_sent,
            "speculation_hits": 0,
            "speculation_misses": 0,
            "reduction": 1.0,
            "notes": "pause-round protocol (pre-speculation, reconstructed)",
        })
    history.append({
        "coordination_rounds": spec_on.coordination_rounds,
        "messages_sent": spec_on.messages_sent,
        "speculation_hits": spec_on.speculation_hits,
        "speculation_misses": spec_on.speculation_misses,
        "reduction": round(reduction, 2),
        "notes": "speculative dispatch (trajectory-snapshot mirror)",
    })

    best = min(rows, key=lambda row: row["wall_s"])
    payload = {
        "workload": {
            "scenario": SCENARIO,
            "scale": SCALE,
            "seed": SEED,
            "replicas": CLUSTER_SOAK_REPLICAS,
            "n_requests": n_requests,
        },
        "baseline": {"wall_s": round(classic_wall, 4)},
        "shards": rows,
        "best": {"shards": best["shards"], "overhead": best["overhead"]},
        "gate": f"best sharded wall <= {MAX_OVERHEAD}x classic wall",
        "speculation": {
            "router": "least_loaded",
            "shards": 4,
            "stateful_dispatches": spec_off.coordination_rounds,
            "coordination_rounds": spec_on.coordination_rounds,
            "coordination_rounds_speculation_off": spec_off.coordination_rounds,
            "messages_sent": spec_on.messages_sent,
            "messages_sent_speculation_off": spec_off.messages_sent,
            "speculation_hits": spec_on.speculation_hits,
            "speculation_misses": spec_on.speculation_misses,
            "reduction": round(reduction, 2),
            "gate": "rounds reduced >= 5x vs the pause-round protocol",
        },
        "history": history,
        "notes": (
            "process transport, warm pool, round_robin ladder; parity "
            "asserted bit-identical against the classic cluster; "
            "speculation block: least_loaded K=4, trajectory-snapshot "
            "mirror vs pause-round protocol, both parity-asserted"
        ),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"shard scaling — {SCENARIO} scale={SCALE} "
        f"({CLUSTER_SOAK_REPLICAS} replicas, {n_requests} requests)",
        f"  classic: {classic_wall:.2f}s",
    ]
    for row in rows:
        lines.append(
            f"  K={row['shards']}: {row['wall_s']:.2f}s "
            f"({row['overhead']:.2f}x) rounds={row['coordination_rounds']} "
            f"msgs={row['messages_sent']} events={row['shard_events']}"
        )
    lines.append(
        f"  speculation (least_loaded, K=4): "
        f"rounds {spec_off.coordination_rounds} -> "
        f"{spec_on.coordination_rounds} ({reduction:.1f}x), "
        f"msgs {spec_off.messages_sent} -> {spec_on.messages_sent}, "
        f"hits={spec_on.speculation_hits} "
        f"misses={spec_on.speculation_misses}"
    )
    lines.append(f"  artifact -> {BENCH_PATH.name}")
    emit("\n".join(lines))

    # Wall-clock gates are skippable on loaded/foreign machines; the
    # artifact above still records what this run measured.
    if os.environ.get("REPRO_PERF_NO_WALL_GATE", "") != "1":
        assert best["overhead"] <= MAX_OVERHEAD, (
            f"sharded coordination overhead {best['overhead']:.2f}x exceeds "
            f"the {MAX_OVERHEAD}x gate (classic {classic_wall:.2f}s, best "
            f"sharded {best['wall_s']:.2f}s at K={best['shards']})"
        )
