"""Figure 2: SGLang burst micro-benchmark (TTFT and speed vs load)."""

from benchmarks.conftest import emit
from repro.experiments.micro import (
    READING_SPEED_2X,
    TTFT_TARGET_S,
    render_burst_sweep,
    run_burst_sweep,
)


def test_fig02_sglang_burst(benchmark):
    points = benchmark.pedantic(
        lambda: run_burst_sweep(loads=(0.25, 0.5, 0.75, 1.0), full_burst=120),
        rounds=1, iterations=1,
    )
    emit(render_burst_sweep(points))
    # Fig. 2 left: TTFT explodes past the 1.3 s threshold at full load.
    assert points[-1].ttft_p99 > TTFT_TARGET_S
    assert points[-1].ttft_p99 > points[0].ttft_p99
    # Fig. 2 right: generation speed stays far above reading speed.
    assert all(p.gen_speed_mean > READING_SPEED_2X for p in points)
