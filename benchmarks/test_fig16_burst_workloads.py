"""Figure 16: performance metrics during burst workloads.

Runs Table 1 setups (a) and (b) on both GPUs across all four systems
at a reduced scale and prints the four metric columns per setup.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.controlled import render_controlled, run_controlled

SYSTEMS = ("sglang", "sglang-chunked", "andes", "tokenflow")
SETUPS = [("rtx4090", "a"), ("rtx4090", "b"), ("h200", "a"), ("h200", "b")]
SCALE = {"rtx4090": 0.5, "h200": 0.25}


@pytest.mark.parametrize("gpu,key", SETUPS)
def test_fig16_burst_workloads(benchmark, gpu, key):
    reports = benchmark.pedantic(
        lambda: run_controlled(gpu, key, systems=SYSTEMS, scale=SCALE[gpu]),
        rounds=1, iterations=1,
    )
    emit(render_controlled(gpu, key, reports))
    tokenflow, sglang = reports["tokenflow"], reports["sglang"]
    # Shape (paper §7.3): TokenFlow wins effective throughput without
    # giving up raw throughput in every burst setup.
    assert tokenflow.effective_throughput > sglang.effective_throughput
    assert tokenflow.throughput > 0.75 * sglang.throughput
    # TTFT gains appear wherever the burst actually queues at arrival
    # (SGLang P99 beyond the 1.3 s engagement threshold); where prompts
    # all fit at admission time, TTFT stays comparable.
    if sglang.ttft_p99 > 1.5:
        assert tokenflow.ttft_p99 < 0.7 * sglang.ttft_p99
    else:
        assert tokenflow.ttft_p99 < sglang.ttft_p99 + 1.0
