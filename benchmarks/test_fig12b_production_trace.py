"""Figure 12 (production trace): H200 + Llama3-8B on the synthesized
production workload (the paper evaluates both BurstGPT and its
industrial trace; this bench covers the second trace category)."""

from benchmarks.conftest import emit
from repro.experiments.endtoend import (
    improvement_summary,
    render_endtoend,
    run_endtoend,
)

SYSTEMS = ("sglang", "andes", "tokenflow")


def test_fig12b_production_trace(benchmark):
    reports = benchmark.pedantic(
        lambda: run_endtoend(
            "h200-llama3-8b", trace="production", systems=SYSTEMS,
            duration=120.0, scale=2.5,
        ),
        rounds=1, iterations=1,
    )
    emit(render_endtoend("h200-llama3-8b", "production", reports))
    summary = improvement_summary(reports)
    emit(f"tokenflow vs sglang on the production trace: {summary}")
    # Shape: no regression on the diurnal trace; TTFT improves wherever
    # the peak episodes queue requests.
    assert summary["throughput_ratio"] > 0.85
    assert summary["ttft_p99_reduction"] > -0.1
    assert summary["effective_throughput_gain"] > -0.1
