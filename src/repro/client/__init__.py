"""Consumption-side substrate.

Models the client of a streaming request: a token buffer filled by the
server and drained by a user reading (or listening) at a fixed rate.
This is the paper's §3.2 consumption model, including stall/rebuffer
accounting and the per-token buffer occupancy used by both the QoS
metric and the buffer-aware scheduler.
"""

from repro.client.adaptive import AdaptiveRateController, AdaptiveRateParams
from repro.client.buffer import ClientBuffer
from repro.client.rates import (
    READING_RATES,
    LISTENING_RATES,
    reading_rate,
    listening_rate,
    rate_table_rows,
)

__all__ = [
    "AdaptiveRateController",
    "AdaptiveRateParams",
    "ClientBuffer",
    "READING_RATES",
    "LISTENING_RATES",
    "reading_rate",
    "listening_rate",
    "rate_table_rows",
]
