"""Token consumption rates by age group and language (paper Figure 1).

The paper derives these from NIH reading-speed measurements (Liu et
al., Scientific Reports 2017: reading speed rises through early
adulthood, declines with age) combined with OpenAI's tokens-per-word
guidance (English ~1.33 tokens/word; Chinese/Japanese more tokens per
written unit of meaning).  Values are tokens/second.

These tables drive (a) the Figure 1 reproduction bench and (b) rate
sampling for user-population workloads.
"""

from __future__ import annotations

AGE_GROUPS: tuple = ("<12", "12-13", "14-15", "16-17", "18-25", "26-45", "46-60", "60+")
LANGUAGES: tuple = ("english", "chinese", "japanese")

# Reading: words/min from the NIH age curve, converted at
# ~1.33 tok/word (en), ~1.7 (zh), ~2.1 (ja effective, incl. kana).
READING_RATES: dict = {
    "english": {
        "<12": 2.9, "12-13": 3.9, "14-15": 4.6, "16-17": 5.1,
        "18-25": 5.8, "26-45": 5.5, "46-60": 4.8, "60+": 3.9,
    },
    "chinese": {
        "<12": 3.4, "12-13": 4.6, "14-15": 5.5, "16-17": 6.1,
        "18-25": 7.0, "26-45": 6.6, "46-60": 5.7, "60+": 4.6,
    },
    "japanese": {
        "<12": 3.8, "12-13": 5.1, "14-15": 6.1, "16-17": 6.8,
        "18-25": 7.8, "26-45": 7.4, "46-60": 6.4, "60+": 5.2,
    },
}

# Listening: speech runs ~150 wpm for English and the TTS-paced
# equivalents for zh/ja; flatter across ages than reading.
LISTENING_RATES: dict = {
    "english": {
        "<12": 2.8, "12-13": 3.1, "14-15": 3.3, "16-17": 3.3,
        "18-25": 3.4, "26-45": 3.4, "46-60": 3.3, "60+": 3.1,
    },
    "chinese": {
        "<12": 3.3, "12-13": 3.7, "14-15": 3.9, "16-17": 4.0,
        "18-25": 4.1, "26-45": 4.1, "46-60": 3.9, "60+": 3.7,
    },
    "japanese": {
        "<12": 3.7, "12-13": 4.1, "14-15": 4.4, "16-17": 4.5,
        "18-25": 4.6, "26-45": 4.6, "46-60": 4.4, "60+": 4.1,
    },
}


def _lookup(table: dict, language: str, age_group: str) -> float:
    language = language.lower()
    if language not in table:
        known = ", ".join(sorted(table))
        raise KeyError(f"unknown language {language!r}; known: {known}")
    ages = table[language]
    if age_group not in ages:
        known = ", ".join(AGE_GROUPS)
        raise KeyError(f"unknown age group {age_group!r}; known: {known}")
    return ages[age_group]


def reading_rate(language: str, age_group: str) -> float:
    """Reading consumption rate in tokens/second."""
    return _lookup(READING_RATES, language, age_group)


def listening_rate(language: str, age_group: str) -> float:
    """Listening consumption rate in tokens/second."""
    return _lookup(LISTENING_RATES, language, age_group)


def rate_table_rows(mode: str = "reading") -> list:
    """Rows of (language, age_group, tokens/s) for the Fig. 1 bench."""
    if mode == "reading":
        table = READING_RATES
    elif mode == "listening":
        table = LISTENING_RATES
    else:
        raise ValueError(f"mode must be 'reading' or 'listening', got {mode!r}")
    rows = []
    for language in LANGUAGES:
        for age in AGE_GROUPS:
            rows.append((language, age, table[language][age]))
    return rows
