"""Adaptive reference-rate control for non-user clients (paper §8).

User-facing clients declare a hard consumption rate the server must
sustain. Non-user consumers (LLM agents, pipelines) instead carry a
*reference rate* that acts purely as a scheduling-priority signal: a
higher reference rate drains the virtual buffer faster and earns more
decode time. The paper's discussion section sketches the extension we
implement here: agents start at a low reference rate, accelerate when
resources permit, and are throttled again under heavy load — freeing
capacity for interactive users exactly when bursts hit.

The controller is a simple AIMD loop over the serving system's load
signals (waiting-queue depth and preempted-pool size), applied at each
scheduler tick.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AdaptiveRateParams:
    """AIMD knobs for agent reference rates.

    Attributes:
        min_rate: floor the reference rate never drops below.
        max_rate: ceiling reached when the system is idle.
        increase_step: additive tokens/s added per unloaded tick.
        decrease_factor: multiplicative backoff per loaded tick.
        load_threshold: waiting+preempted requests counting as "loaded".
    """

    min_rate: float = 5.0
    max_rate: float = 50.0
    increase_step: float = 2.0
    decrease_factor: float = 0.5
    load_threshold: int = 1

    def __post_init__(self) -> None:
        if not 0 < self.min_rate <= self.max_rate:
            raise ValueError("need 0 < min_rate <= max_rate")
        if self.increase_step <= 0:
            raise ValueError("increase_step must be positive")
        if not 0 < self.decrease_factor < 1:
            raise ValueError("decrease_factor must be in (0, 1)")
        if self.load_threshold < 0:
            raise ValueError("load_threshold must be non-negative")


class AdaptiveRateController:
    """AIMD controller over agent requests' reference rates."""

    def __init__(self, params: AdaptiveRateParams = None) -> None:
        self.params = params if params is not None else AdaptiveRateParams()
        self.adjustments = 0

    def system_loaded(self, n_waiting: int, n_preempted: int) -> bool:
        """Is interactive demand contending for the GPU right now?"""
        return n_waiting + n_preempted > self.params.load_threshold

    def target_rate(self, current: float, loaded: bool) -> float:
        """AIMD step: additive increase when idle, backoff when loaded."""
        params = self.params
        if loaded:
            return max(params.min_rate, current * params.decrease_factor)
        return min(params.max_rate, current + params.increase_step)

    def adjust(self, system) -> int:
        """Apply one control step to every live agent request.

        ``system`` is a :class:`repro.serving.server.ServingSystem`;
        returns the number of rates changed.
        """
        loaded = self.system_loaded(len(system.waiting), len(system.preempted))
        changed = 0
        for entry in system.tracker.entries():
            request = entry.request
            if not request.is_agent or request.is_finished:
                continue
            new_rate = self.target_rate(request.rate, loaded)
            if new_rate != request.rate:
                request.rate = new_rate
                entry.buffer.set_rate(new_rate)
                changed += 1
        self.adjustments += changed
        return changed
