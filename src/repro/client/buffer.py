"""Client-side token buffer with consumption and stall accounting.

The consumer model follows the paper (§3.2): the user starts reading
at the first token's arrival and wants one token every ``1/rate``
seconds thereafter.  Token ``j`` is *consumed* at

    c_j = max(c_{j-1} + 1/rate, g_j)

where ``g_j`` is its generation (delivery) time.  Whenever
``g_j > c_{j-1} + 1/rate`` the user wanted a token that did not exist
yet — the difference accrues as rebuffer (stall) time.

Everything is computed incrementally, O(1) per delivered token, and the
buffer also records ``B_{i,j}`` — the buffered-token count at the
moment token ``j`` was generated — which both the QoS metric (Eq. 1)
and the effective-throughput weight need.
"""

from __future__ import annotations

from typing import Optional


class ClientBuffer:
    """Token buffer for one streaming request."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate
        self._interval = 1.0 / rate
        self._rate_changes = 0
        self._delivered = 0
        self._gen_times: list = []
        self._consume_times: list = []
        self._stall_time = 0.0
        self._occupancy_at_gen: list = []
        # Pointer for lazy occupancy queries at non-decreasing times.
        self._consumed_ptr = 0

    def set_rate(self, rate: float) -> None:
        """Change the consumption rate from now on (adaptive clients, §8).

        Already-scheduled consumption times are unchanged; only the
        pacing of future tokens uses the new rate.
        """
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if rate != self.rate:
            self.rate = rate
            self._interval = 1.0 / rate
            self._rate_changes += 1

    @property
    def rate_changes(self) -> int:
        """Number of mid-stream rate adjustments applied."""
        return self._rate_changes

    # --- delivery --------------------------------------------------------
    def deliver(self, timestamp: float) -> None:
        """Record delivery of one token at ``timestamp``."""
        if self._gen_times and timestamp < self._gen_times[-1]:
            raise ValueError("deliveries must have non-decreasing timestamps")
        if self._consume_times:
            ideal = self._consume_times[-1] + self._interval
            consume = max(ideal, timestamp)
            if timestamp > ideal:
                self._stall_time += timestamp - ideal
        else:
            # First token: consumption starts when it arrives; startup
            # delay is charged via the TTFT penalty, not as a stall.
            consume = timestamp
        self._gen_times.append(timestamp)
        self._consume_times.append(consume)
        self._delivered += 1
        self._occupancy_at_gen.append(self.occupancy(timestamp))

    # --- queries ---------------------------------------------------------
    def consumed_count(self, now: float) -> int:
        """Number of tokens consumed by time ``now``.

        Queries must come with non-decreasing ``now`` (true for a
        simulation); this keeps the scan amortised O(1).
        """
        while (
            self._consumed_ptr < len(self._consume_times)
            and self._consume_times[self._consumed_ptr] <= now
        ):
            self._consumed_ptr += 1
        return self._consumed_ptr

    def occupancy(self, now: float) -> int:
        """Tokens delivered but not yet consumed at ``now`` (b_rem)."""
        return self._delivered - self.consumed_count(now)

    def drain_deadline(self, now: float) -> float:
        """Seconds until the buffer empties at the required rate.

        This is the slack a scheduler has before preempting this
        request would cause a stall.  Returns 0 for an empty buffer.
        """
        return self.occupancy(now) * self._interval

    @property
    def delivered(self) -> int:
        """Total tokens delivered so far."""
        return self._delivered

    @property
    def stall_time(self) -> float:
        """Accumulated rebuffer time (seconds), excluding startup delay."""
        return self._stall_time

    @property
    def generation_times(self) -> list:
        return list(self._gen_times)

    @property
    def consumption_times(self) -> list:
        return list(self._consume_times)

    @property
    def occupancy_at_generation(self) -> list:
        """B_{i,j}: buffered tokens at each token's generation instant."""
        return list(self._occupancy_at_gen)

    def final_consumption_time(self) -> Optional[float]:
        """When the user finishes the stream (None if nothing delivered)."""
        if not self._consume_times:
            return None
        return self._consume_times[-1]
