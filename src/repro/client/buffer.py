"""Client-side token buffer with consumption and stall accounting.

The consumer model follows the paper (§3.2): the user starts reading
at the first token's arrival and wants one token every ``1/rate``
seconds thereafter.  Token ``j`` is *consumed* at

    c_j = max(c_{j-1} + 1/rate, g_j)

where ``g_j`` is its generation (delivery) time.  Whenever
``g_j > c_{j-1} + 1/rate`` the user wanted a token that did not exist
yet — the difference accrues as rebuffer (stall) time.

Everything is computed incrementally, O(1) per delivered token.  The
consumption schedule is piecewise arithmetic: between *anchors* (a
stall, which re-bases consumption at the late token's arrival, or a
mid-stream rate change) consumption times advance by exactly one
``interval`` per token.  The buffer therefore keeps only the anchor
*segments* plus a cursor, giving closed-form O(1) occupancy queries —
``consumed_count`` replays the identical float additions the delivery
path performed, so results are bit-identical to a per-token scan.

The buffer also records ``B_{i,j}`` — the buffered-token count at the
moment token ``j`` was generated — which both the QoS metric (Eq. 1)
and the effective-throughput weight need.  It is kept as a compact
occupancy histogram; full per-token traces (generation/consumption
timestamps) are recorded only when ``record_trace`` is enabled, so
memory-lean simulations can switch them off without changing any
metric.
"""

from __future__ import annotations

from collections import deque
from typing import Optional


class ClientBuffer:
    """Token buffer for one streaming request."""

    def __init__(self, rate: float, record_trace: bool = True) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate
        # Public, read-only by convention: the current pacing interval
        # (1/rate).  A plain attribute (not a property) because the
        # scheduler reads it on every buffer-seconds query.
        self.interval = 1.0 / rate
        self._rate_changes = 0
        self._delivered = 0
        self._stall_time = 0.0
        self._last_gen: Optional[float] = None
        self._last_consume: Optional[float] = None
        # Pacing interval of the newest (tail) segment; a delivery whose
        # current interval differs starts a fresh segment.
        self._tail_interval: Optional[float] = None
        # Consumption cursor: `_consumed` tokens have consumption time
        # <= the latest query; `_next_consume` is the consumption time
        # of token index `_consumed` (None when everything delivered is
        # consumed); `_cursor_interval` advances the cursor within its
        # current segment; `_segments` holds (first_index,
        # first_consume_time, interval) for segments the cursor has not
        # reached yet.  Queries must come with non-decreasing ``now``
        # (true for a simulation), which keeps this O(1) amortised.
        self._consumed = 0
        self._next_consume: Optional[float] = None
        self._cursor_interval = 0.0
        self._segments: deque = deque()
        # Compact aggregate: occupancy-at-generation histogram
        # {occupancy -> token count}, enough for Eq. 1 / §7.1.3 weights.
        self._occ_hist: dict = {}
        # Unmerged histogram contributions from the vectorised batch
        # plane: (values, counts) numpy-array pairs, one per fused
        # window, folded into ``_occ_hist`` lazily on first read
        # (histogram addition commutes, so deferring is exact).
        self._occ_pending: list = []
        self._occ_max = 0
        # Optional unbounded per-token traces (plots, JSONL export).
        self._trace = record_trace
        self._gen_times: Optional[list] = [] if record_trace else None
        self._consume_times: Optional[list] = [] if record_trace else None
        self._occupancy_at_gen: Optional[list] = [] if record_trace else None

    def set_rate(self, rate: float) -> None:
        """Change the consumption rate from now on (adaptive clients, §8).

        Already-scheduled consumption times are unchanged; only the
        pacing of future tokens uses the new rate.
        """
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if rate != self.rate:
            self.rate = rate
            self.interval = 1.0 / rate
            self._rate_changes += 1

    @property
    def rate_changes(self) -> int:
        """Number of mid-stream rate adjustments applied."""
        return self._rate_changes

    @property
    def records_trace(self) -> bool:
        """Whether per-token timestamp traces are being kept."""
        return self._trace

    # --- delivery --------------------------------------------------------
    def deliver(self, timestamp: float) -> None:
        """Record delivery of one token at ``timestamp``.

        NOTE: :meth:`deliver_many` inlines this exact logic (and the
        cursor advance of :meth:`consumed_count`) for the fused decode
        path — any semantic or float-op change here must be mirrored
        there, or fused-vs-unfused bit-parity breaks.
        """
        if self._last_gen is not None and timestamp < self._last_gen:
            raise ValueError("deliveries must have non-decreasing timestamps")
        self._last_gen = timestamp
        interval = self.interval
        last_consume = self._last_consume
        if last_consume is not None:
            ideal = last_consume + interval
            if timestamp > ideal:
                # The consumer wanted this token before it existed:
                # rebuffer, then consumption re-bases at its arrival.
                self._stall_time += timestamp - ideal
                consume = timestamp
                fresh_segment = True
            else:
                consume = ideal
                fresh_segment = interval != self._tail_interval
        else:
            # First token: consumption starts when it arrives; startup
            # delay is charged via the TTFT penalty, not as a stall.
            consume = timestamp
            fresh_segment = True
        index = self._delivered
        if self._next_consume is None and self._consumed == index:
            # Cursor is parked at the end of the stream: point it at
            # this token directly (no segment record needed).
            self._next_consume = consume
            self._cursor_interval = interval
        elif fresh_segment:
            self._segments.append((index, consume, interval))
        if fresh_segment:
            self._tail_interval = interval
        self._last_consume = consume
        self._delivered = index + 1
        if self._trace:
            self._gen_times.append(timestamp)
            self._consume_times.append(consume)
        # Occupancy at generation; inline consumed_count's no-advance
        # early exit (the common case — consumption is mid-interval).
        nxt = self._next_consume
        if nxt is None or nxt > timestamp:
            occupancy = self._delivered - self._consumed
        else:
            occupancy = self._delivered - self.consumed_count(timestamp)
        count = self._occ_hist.get(occupancy)
        self._occ_hist[occupancy] = 1 if count is None else count + 1
        if occupancy > self._occ_max:
            self._occ_max = occupancy
        if self._trace:
            self._occupancy_at_gen.append(occupancy)

    def deliver_many(self, timestamps) -> None:
        """Record delivery of one token at each of ``timestamps``.

        Exactly equivalent to calling :meth:`deliver` once per
        timestamp, in order — the same float operations in the same
        order, so stall accounting, segment anchors, and the occupancy
        histogram are bit-identical — but the per-token work runs in
        one call frame.  This is the fused decode path's bulk token
        emission: a macro-step window delivers K tokens per request in
        one call instead of K.

        ``timestamps`` must be non-decreasing (a violation raises, as
        in :meth:`deliver`).  The pacing interval is read once: a rate
        change mid-call (e.g. from a generator driving ``timestamps``)
        raises RuntimeError — the serving loop cannot hit this, since
        rate changes land at scheduler ticks, between windows.  The
        vectorised batch plane (:mod:`repro.serving.batchstate`) bakes
        the same assumption into its array kernel, and reads/writes
        this buffer's private state directly under that contract.
        """
        interval = self.interval
        occ_hist = self._occ_hist
        trace = self._trace
        segments = self._segments
        delivered = self._delivered
        consumed = self._consumed
        nxt = self._next_consume
        cursor_interval = self._cursor_interval
        last_gen = self._last_gen
        last_consume = self._last_consume
        tail_interval = self._tail_interval
        stall_time = self._stall_time
        occ_max = self._occ_max
        for timestamp in timestamps:
            if self.interval != interval:
                raise RuntimeError(
                    "rate changed mid-delivery: set_rate must not run "
                    "while deliver_many is iterating its timestamps"
                )
            if last_gen is not None and timestamp < last_gen:
                raise ValueError("deliveries must have non-decreasing timestamps")
            last_gen = timestamp
            if last_consume is not None:
                ideal = last_consume + interval
                if timestamp > ideal:
                    stall_time += timestamp - ideal
                    consume = timestamp
                    fresh_segment = True
                else:
                    consume = ideal
                    fresh_segment = interval != tail_interval
            else:
                consume = timestamp
                fresh_segment = True
            index = delivered
            if nxt is None and consumed == index:
                nxt = consume
                cursor_interval = interval
            elif fresh_segment:
                segments.append((index, consume, interval))
            if fresh_segment:
                tail_interval = interval
            last_consume = consume
            delivered = index + 1
            if trace:
                self._gen_times.append(timestamp)
                self._consume_times.append(consume)
            # Advance the consumption cursor (consumed_count inlined,
            # with its early exit for mid-interval queries).
            while nxt is not None and nxt <= timestamp:
                consumed += 1
                if segments and segments[0][0] == consumed:
                    _, nxt, cursor_interval = segments.popleft()
                elif consumed < delivered:
                    nxt = nxt + cursor_interval
                else:
                    nxt = None
            occupancy = delivered - consumed
            count = occ_hist.get(occupancy)
            occ_hist[occupancy] = 1 if count is None else count + 1
            if occupancy > occ_max:
                occ_max = occupancy
            if trace:
                self._occupancy_at_gen.append(occupancy)
        self._delivered = delivered
        self._consumed = consumed
        self._next_consume = nxt
        self._cursor_interval = cursor_interval
        self._last_gen = last_gen
        self._last_consume = last_consume
        self._tail_interval = tail_interval
        self._stall_time = stall_time
        self._occ_max = occ_max

    # --- queries ---------------------------------------------------------
    def consumed_count(self, now: float) -> int:
        """Number of tokens consumed by time ``now``.

        Queries must come with non-decreasing ``now`` (true for a
        simulation); the cursor never moves backwards.
        """
        nxt = self._next_consume
        if nxt is None or nxt > now:
            return self._consumed
        consumed = self._consumed
        delivered = self._delivered
        interval = self._cursor_interval
        segments = self._segments
        while nxt is not None and nxt <= now:
            consumed += 1
            if segments and segments[0][0] == consumed:
                _, nxt, interval = segments.popleft()
            elif consumed < delivered:
                # Same arithmetic (and float rounding) as deliver():
                # one repeated addition per token within a segment.
                nxt = nxt + interval
            else:
                nxt = None
        self._consumed = consumed
        self._next_consume = nxt
        self._cursor_interval = interval
        return consumed

    def occupancy(self, now: float) -> int:
        """Tokens delivered but not yet consumed at ``now`` (b_rem)."""
        return self._delivered - self.consumed_count(now)

    def drain_deadline(self, now: float) -> float:
        """Seconds until the buffer empties at the required rate.

        This is the slack a scheduler has before preempting this
        request would cause a stall.  Returns 0 for an empty buffer.
        """
        return self.occupancy(now) * self.interval

    @property
    def delivered(self) -> int:
        """Total tokens delivered so far."""
        return self._delivered

    @property
    def stall_time(self) -> float:
        """Accumulated rebuffer time (seconds), excluding startup delay."""
        return self._stall_time

    def _flush_occ_pending(self) -> None:
        """Fold the batch plane's deferred histogram slices into the dict.

        The dict's own entries and every pending slice are merged with
        one dense ``np.bincount`` (occupancies are small non-negative
        ints) and the dict is rebuilt with C-level ``dict(zip(...))`` —
        no per-bucket Python loop.  Counts are integers, so the merge
        is exact regardless of grouping; keys come back sorted.
        """
        import numpy as np

        pending = self._occ_pending
        hist = self._occ_hist
        vals = [v for v, _ in pending]
        counts = [c for _, c in pending]
        if hist:
            n = len(hist)
            vals.append(np.fromiter(hist.keys(), np.int64, count=n))
            counts.append(np.fromiter(hist.values(), np.int64, count=n))
        total = np.bincount(
            np.concatenate(vals), weights=np.concatenate(counts)
        )
        nonzero = np.nonzero(total)[0]
        self._occ_hist = dict(
            zip(nonzero.tolist(), total[nonzero].astype(np.int64).tolist())
        )
        pending.clear()

    @property
    def occupancy_histogram(self) -> dict:
        """``{B -> count}`` over all delivered tokens (treat read-only).

        ``B`` is the buffered-token count at a token's generation
        instant — the compact aggregate behind Eq. 1 and the §7.1.3
        effective-throughput weights.
        """
        if self._occ_pending:
            self._flush_occ_pending()
        return self._occ_hist

    @property
    def max_occupancy(self) -> int:
        """Largest buffer occupancy observed at any generation instant."""
        return self._occ_max

    def _require_trace(self) -> None:
        if not self._trace:
            raise RuntimeError(
                "per-token traces are disabled for this buffer "
                "(construct ClientBuffer(..., record_trace=True))"
            )

    @property
    def generation_times(self) -> list:
        """Per-token delivery timestamps (single materialisation —
        callers must treat the returned list as read-only)."""
        self._require_trace()
        return self._gen_times

    @property
    def consumption_times(self) -> list:
        """Per-token consumption timestamps (read-only view)."""
        self._require_trace()
        return self._consume_times

    @property
    def occupancy_at_generation(self) -> list:
        """B_{i,j}: buffered tokens at each token's generation instant
        (read-only view)."""
        self._require_trace()
        return self._occupancy_at_gen

    def final_consumption_time(self) -> Optional[float]:
        """When the user finishes the stream (None if nothing delivered)."""
        return self._last_consume
