"""TokenFlow's buffer-aware two-step scheduler (paper §4).

Each tick (Δt, the paper's reschedule interval):

* **Stress gating** — scheduling work only happens under stress
  (pending requests, or a preempted request's buffer nearing
  depletion); otherwise the system keeps its prefill-first fast path
  (§4.2.1 "time-sliced mechanism").
* **Schedulability** — if the working set's combined required rates
  exceed the capacity estimate Γ, degrade to FCFS with memory-aware
  admission (§4.3): no preemption, no new admissions beyond memory.
* **Step 1, working-set determination** — admit waiting requests while
  the demand-adjusted working-set size (Eq. 5) has room and the swap
  is safe (free memory, or a resident victim whose buffer satisfies
  the μ·r·(τ_evict+τ_load+τ_sched) criterion).
* **Step 2, buffer balancing** — score every working-set member with
  the utility-derived priority, pin residents that could not survive
  a swap, and run greedy + local-search selection; the diff becomes
  preempt/resume actions.  Resumptions choose load vs recompute by
  comparing the live t_IO estimate with the sliding-window recompute
  estimate (§4.2.3), and in-flight I/O caps how many swaps are issued
  (I/O-aware preemption).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain
from typing import Optional

import numpy as np

from repro.core.balancer import BufferBalancer, Candidate
from repro.core.estimator import PrefillCostEstimator, QueueDelayEstimator
from repro.core.utility import UtilityParams, request_priority
from repro.core.working_set import WorkingSetParams, WorkingSetPolicy
from repro.serving.interface import BaseScheduler, SchedulerDecision, SystemView


@dataclass(frozen=True)
class TokenFlowParams:
    """All TokenFlow scheduling knobs in one place.

    Attributes:
        tick_interval: Δt, the reschedule interval (Fig. 22 sweep).
        utility: priority-function parameters.
        working_set: working-set sizing/admission parameters; its
            ``safety_factor`` is the buffer-conservativeness knob of
            Fig. 23.
        critical_buffer_s: T_critical — a preempted request whose
            buffer falls below this many seconds marks the system
            "stressed" and forces a scheduling pass.
        max_loads_per_tick: I/O-awareness cap on resume loads.
        max_preempts_per_tick: cap on evictions issued per tick.
        admission_watermark_frac: fraction of GPU blocks kept free
            when admitting new prefills (decode growth headroom).
        scheduling_cost_s: modelled wall-clock cost per pass (§7.6).
    """

    tick_interval: float = 0.5
    utility: UtilityParams = field(default_factory=UtilityParams)
    working_set: WorkingSetParams = field(default_factory=WorkingSetParams)
    critical_buffer_s: float = 1.5
    max_loads_per_tick: int = 32
    max_preempts_per_tick: int = 32
    admission_watermark_frac: float = 0.05
    scheduling_cost_s: float = 0.0004

    def __post_init__(self) -> None:
        if self.tick_interval <= 0:
            raise ValueError("tick_interval must be positive")
        if self.critical_buffer_s < 0:
            raise ValueError("critical_buffer_s must be non-negative")
        if self.max_loads_per_tick <= 0 or self.max_preempts_per_tick <= 0:
            raise ValueError("per-tick action caps must be positive")
        if not 0 <= self.admission_watermark_frac < 1:
            raise ValueError("admission_watermark_frac must be in [0, 1)")


class TokenFlowScheduler(BaseScheduler):
    """The buffer-aware preemptive scheduler."""

    name = "tokenflow"
    # The serving loop interleaves prefill/decode based on running
    # buffers for schedulers that opt in (§4.2.3).
    decode_priority_aware = True

    def __init__(self, params: Optional[TokenFlowParams] = None) -> None:
        self.params = params if params is not None else TokenFlowParams()
        self.tick_interval = self.params.tick_interval
        self.prefill_cost = PrefillCostEstimator()
        self.queue_delay = QueueDelayEstimator()
        self._balancer = BufferBalancer(local_search_passes=2)
        self._working_set: Optional[WorkingSetPolicy] = None
        # Profiled swap latencies (moving estimates for the admission rule).
        self._tau_evict = 0.05
        self._tau_load = 0.05
        self.fallback_ticks = 0
        self.scheduling_passes = 0
        # Passes that did real scheduling work (system was stressed);
        # the gap to scheduling_passes quantifies the §4.2.1 claim that
        # overhead scales with demand.
        self.active_passes = 0

    # --- wiring ------------------------------------------------------------
    def _policy(self, view: SystemView) -> WorkingSetPolicy:
        if self._working_set is None:
            capacity_tokens = view.kv.gpu_pool.capacity * view.kv.gpu_pool.block_size
            self._working_set = WorkingSetPolicy(capacity_tokens, self.params.working_set)
        return self._working_set

    def observe_prefill(self, n_tokens: int, duration: float) -> None:
        """Hook for the serving loop: completed prefill iterations."""
        self.prefill_cost.observe_prefill(n_tokens, duration)

    def observe_swap_latency(self, tau_evict: float, tau_load: float) -> None:
        """Hook: measured evict/load durations refine the swap budget."""
        blend = 0.3
        self._tau_evict = (1 - blend) * self._tau_evict + blend * max(0.0, tau_evict)
        self._tau_load = (1 - blend) * self._tau_load + blend * max(0.0, tau_load)

    def scheduling_cost_s(self) -> float:
        return self.params.scheduling_cost_s

    # --- fast path ------------------------------------------------------------
    def on_iteration_boundary(self, view: SystemView) -> SchedulerDecision:
        """Prefill-first admission + opportunistic resumption.

        Between ticks the GPU must never starve: if memory frees up
        (requests finished, evictions completed) we resume preempted
        requests — most-starved first — and admit waiting requests up
        to the working-set limit.
        """
        decision = SchedulerDecision()
        policy = self._policy(view)
        self._observe_contexts(view, policy)
        ws_size = self._working_set_size(view)
        w_limit = policy.w_scheduled(len(view.running))
        watermark = int(view.kv.gpu_pool.capacity * self.params.admission_watermark_frac)
        free = view.kv.gpu_free_blocks()
        # Opportunistic resume: fill idle decode slots from the
        # preempted pool (the balancer evicted them under pressure; if
        # the pressure is gone they should run again).  At most `slots`
        # resumes can land, so rank only that many; with no free slot the
        # ranking is skipped entirely — the common case under load.
        active = len(view.running) + len(view.loading) + len(view.prefill_queue)
        slots = view.max_batch - active
        if slots > 0 and view.preempted:
            # Stable smallest-k by buffer seconds: decorating with the
            # original index reproduces a key-stable nsmallest without
            # a per-element key callback.
            preempted = view.preempted
            seconds = view.buffer_state().buffer_seconds_many(preempted)
            decorated = sorted([(s, i) for i, s in enumerate(seconds)])[:slots]
            starved_first = [preempted[i] for _, i in decorated]
            for request in starved_first:
                needed = view.kv.blocks_for_tokens(request.context_len)
                if needed + watermark > free:
                    break
                self._route_resume(view, request, decision)
                free -= needed
        for request in view.waiting:
            if ws_size >= max(w_limit, 1):
                break
            needed = view.kv.blocks_for_tokens(request.prompt_len)
            if needed + watermark > free:
                break
            decision.admit.append(request)
            free -= needed
            ws_size += 1
        return decision

    # --- macro-step decode fusion ---------------------------------------------
    def can_fuse_decode(self, view: SystemView) -> bool:
        """Boundary calls are skippable when they provably cannot act.

        With nothing waiting and either no preempted requests or no
        idle decode slot (``active >= max_batch``; within a fused
        window the active count is frozen and free memory only
        shrinks), :meth:`on_iteration_boundary` can neither admit nor
        resume — its only side effect is the β footprint observation,
        which :meth:`on_fused_boundaries` replays exactly.
        """
        if view.waiting:
            return False
        if view.preempted:
            active = (
                len(view.running) + len(view.loading) + len(view.prefill_queue)
            )
            if active < view.max_batch:
                return False
        return True

    def on_fused_boundaries(self, running, n_iters: int) -> None:
        """Replay the β observations of the skipped boundary calls.

        Skipped boundary ``j`` (1-based) would have observed every
        running request at its then-current context length — ``j``
        tokens past the value at the window's first (real) boundary.
        """
        policy = self._working_set
        if policy is None or n_iters <= 0:
            return
        if not running:
            return
        # Outer-add the j offsets over the batch's context lengths in
        # one array op; ravel order (j-major) matches the skipped
        # per-boundary call order, and all values are exact small
        # integers, so the estimator sees bit-identical observations.
        base = np.array(
            [r.prompt_len + r.generated for r in running], dtype=np.float64
        )
        js = np.arange(1.0, n_iters + 1.0)
        policy.replay_footprints((base[None, :] + js[:, None]).ravel())

    def _route_resume(
        self, view: SystemView, request, decision: SchedulerDecision
    ) -> None:
        """§4.2.3 recompute-vs-load choice for one resumption."""
        t_io = view.kv.estimate_io_time(request.context_len, 0, view.now)
        t_rec = self.prefill_cost.estimate_recompute(request.context_len)
        if view.kv.can_resume_load(request.req_id) and t_io <= t_rec:
            decision.resume_load.append(request)
        else:
            decision.resume_recompute.append(request)

    # --- the two-step tick -------------------------------------------------------
    def on_tick(self, view: SystemView) -> SchedulerDecision:
        self.scheduling_passes += 1
        if not self._is_stressed(view):
            return SchedulerDecision()
        self.active_passes += 1
        if not self._is_schedulable(view):
            self.fallback_ticks += 1
            return self._fcfs_fallback(view)
        decision = SchedulerDecision()
        policy = self._policy(view)
        self._observe_contexts(view, policy)
        self._admit_into_working_set(view, policy, decision)
        self._balance_buffers(view, policy, decision)
        decision.validate()
        return decision

    # --- stress / schedulability ---------------------------------------------------
    def _is_stressed(self, view: SystemView) -> bool:
        """§4.2.1: pending demand or buffer-critical preempted requests."""
        if view.waiting or view.prefill_queue:
            return True
        # More residents than decode slots: buffer balancing must trim
        # the batch (otherwise residents rotate by starvation order and
        # preemption never reclaims their memory).
        if len(view.running) > view.max_batch:
            return True
        # Anticipate one tick ahead (the predicted-buffer refinement of
        # §3.3): a preempted request that will cross T_critical before
        # the next pass counts as critical now.
        threshold = self.params.critical_buffer_s + self.params.tick_interval
        preempted = view.preempted
        if preempted:
            seconds = view.buffer_state().buffer_seconds_many(preempted)
            if min(seconds) < threshold:
                return True
        return False

    def _working_set_members(self, view: SystemView) -> list:
        return list(view.prefill_queue) + list(view.running) + list(view.loading) + list(view.preempted)

    def _working_set_size(self, view: SystemView) -> int:
        return len(view.prefill_queue) + len(view.running) + len(view.loading) + len(view.preempted)

    def _is_schedulable(self, view: SystemView) -> bool:
        """§4.3: Σ r_i over the working set must not exceed Γ."""
        demand = sum(
            r.rate
            for r in chain(
                view.prefill_queue, view.running, view.loading, view.preempted
            )
        )
        return demand <= view.executor.capacity_estimate()

    def _fcfs_fallback(self, view: SystemView) -> SchedulerDecision:
        """Graceful degradation: FCFS with memory-aware admission only.

        No preemption; offloaded requests resume in arrival order when
        memory frees up; no new admissions while the working set is
        saturated.
        """
        decision = SchedulerDecision()
        free = view.kv.gpu_free_blocks()
        watermark = int(view.kv.gpu_pool.capacity * self.params.admission_watermark_frac)
        for request in sorted(view.preempted, key=lambda r: r.arrival_time):
            needed = view.kv.blocks_for_tokens(request.context_len)
            if needed + watermark > free:
                break
            if view.kv.can_resume_load(request.req_id):
                decision.resume_load.append(request)
            else:
                decision.resume_recompute.append(request)
            free -= needed
        return decision

    # --- step 1: working-set determination ---------------------------------------------
    def _observe_contexts(self, view: SystemView, policy: WorkingSetPolicy) -> None:
        policy.observe_footprints(view.running)

    def _swap_taus(self) -> tuple:
        return self._tau_evict, self._tau_load

    def _admit_into_working_set(
        self, view: SystemView, policy: WorkingSetPolicy, decision: SchedulerDecision
    ) -> None:
        ws_size = self._working_set_size(view)
        w_limit = policy.w_scheduled(len(view.running))
        tau_evict, tau_load = self._swap_taus()
        free = view.kv.gpu_free_blocks()
        for request in view.waiting:
            if ws_size >= w_limit:
                break
            needed = view.kv.blocks_for_tokens(request.prompt_len)
            has_memory = needed <= free
            has_victim = self._exists_safe_victim(view, policy, tau_evict, tau_load)
            if not (has_memory or has_victim):
                break
            decision.admit.append(request)
            ws_size += 1
            if has_memory:
                free -= needed

    def _exists_safe_victim(
        self,
        view: SystemView,
        policy: WorkingSetPolicy,
        tau_evict: float,
        tau_load: float,
    ) -> bool:
        buffers = view.buffer_state()
        for request in view.running:
            buffered = buffers.occupancy(request.req_id)
            if policy.is_preemption_safe(buffered, request.rate, tau_evict, tau_load):
                return True
        return False

    # --- step 2: buffer balancing --------------------------------------------------------
    def _balance_buffers(
        self, view: SystemView, policy: WorkingSetPolicy, decision: SchedulerDecision
    ) -> None:
        tau_evict, tau_load = self._swap_taus()
        candidates = []
        # Candidate construction doubles as the working-set id map —
        # balance() only ever names running/preempted members, so no
        # separate membership concatenation is needed.
        by_id = {}
        for request in view.running:
            candidates.append(
                self._candidate(view, request, resident=True, t_overhead=0.0,
                                policy=policy, tau_evict=tau_evict, tau_load=tau_load)
            )
            by_id[request.req_id] = request
        for request in view.preempted:
            t_io = view.kv.estimate_io_time(request.context_len, 0, view.now)
            t_rec = self.prefill_cost.estimate_recompute(request.context_len)
            t_overhead = min(t_io, t_rec)
            candidates.append(
                self._candidate(view, request, resident=False, t_overhead=t_overhead,
                                policy=policy, tau_evict=tau_evict, tau_load=tau_load)
            )
            by_id[request.req_id] = request
        if not candidates:
            return
        # Reserve headroom for admitted prefills plus decode growth.
        reserve = int(view.kv.gpu_pool.capacity * self.params.admission_watermark_frac)
        for request in chain(view.prefill_queue, decision.admit):
            reserve += view.kv.blocks_for_tokens(request.prompt_len)
        budget = max(0, view.kv.gpu_pool.capacity - reserve)
        result = self._balancer.balance(candidates, budget, view.max_batch)

        preempts = [by_id[rid] for rid in result.to_preempt][: self.params.max_preempts_per_tick]
        decision.preempt.extend(preempts)

        # Memory freed by this tick's preemptions is available to the
        # loads issued in the same decision (the offload manager
        # executes preempts first); with write-through nearly all of a
        # victim's blocks free instantly.
        freed = sum(view.kv.gpu_pool.used_by(r.req_id) for r in preempts)
        resumes = [by_id[rid] for rid in result.to_resume]
        # Resumes must not balloon the resident set past the decode
        # batch: only refill the slots this tick actually frees.  The
        # most-starved-first order established here is the invariant
        # _assign_resume_modes relies on — it must not re-sort.
        resident_after = len(view.running) + len(view.loading) - len(preempts)
        slots = max(0, view.max_batch - resident_after)
        seconds = view.buffer_state().buffer_seconds_many(resumes)
        resumes = [
            resumes[i]
            for _, i in sorted([(s, i) for i, s in enumerate(seconds)])[:slots]
        ]
        self._assign_resume_modes(view, resumes, decision, extra_free_blocks=freed)

    def _candidate(
        self,
        view: SystemView,
        request,
        resident: bool,
        t_overhead: float,
        policy: WorkingSetPolicy,
        tau_evict: float,
        tau_load: float,
    ) -> Candidate:
        buffers = view.buffer_state()
        occupancy = buffers.occupancy(request.req_id)
        buffer_s = buffers.buffer_seconds(request.req_id)
        t_eff = max(0.0, self.params.tick_interval - t_overhead)
        priority = request_priority(
            buffer_occupancy=occupancy,
            buffer_seconds=buffer_s,
            output_len=request.output_len,
            effective_time=t_eff,
            params=self.params.utility,
        )
        pinned = resident and not policy.is_preemption_safe(
            occupancy, request.rate, tau_evict, tau_load
        )
        blocks = view.kv.blocks_for_tokens(max(request.context_len, 1))
        return Candidate(
            req_id=request.req_id,
            priority=priority,
            blocks=blocks,
            resident=resident,
            pinned=pinned,
        )

    def _assign_resume_modes(
        self,
        view: SystemView,
        resumes: list,
        decision: SchedulerDecision,
        extra_free_blocks: int = 0,
    ) -> None:
        """§4.2.3: pick load vs recompute per resumed request.

        ``extra_free_blocks`` credits memory that this decision's
        preemptions will have freed by the time loads execute.

        Precondition: ``resumes`` is already ordered most-starved
        first (smallest buffer_seconds first) — the caller sorts once
        when trimming to the free slots, so re-sorting here would be
        pure duplicate work.
        """
        loads_left = self.params.max_loads_per_tick
        block_budget = view.kv.gpu_free_blocks() + extra_free_blocks
        for request in resumes:
            record = view.kv.record(request.req_id)
            needed = view.kv.blocks_for_tokens(max(1, record.cpu_tokens))
            t_io = view.kv.estimate_io_time(request.context_len, 0, view.now)
            t_rec = self.prefill_cost.estimate_recompute(request.context_len)
            # I/O-awareness: stop queueing loads once the h2d direction
            # is backed up beyond one scheduling interval.
            io_ok = view.kv.link.h2d.queueing_delay(view.now) < self.params.tick_interval
            can_load = (
                record.cpu_tokens > 0
                and view.kv.config.enable_offload
                and needed <= block_budget
                and loads_left > 0
                and io_ok
            )
            if can_load and t_io <= t_rec:
                decision.resume_load.append(request)
                loads_left -= 1
                block_budget -= needed
            else:
                decision.resume_recompute.append(request)

    # --- reactive OOM path ------------------------------------------------------------
    def select_oom_victims(self, view: SystemView, blocks_needed: int) -> list:
        """Evict the requests with the fattest buffers first (§4.1)."""
        buffers = view.buffer_state()
        ranked = sorted(
            view.running,
            key=lambda r: buffers.buffer_seconds(r.req_id),
            reverse=True,
        )
        victims: list = []
        freed = 0
        for request in ranked:
            if freed >= blocks_needed:
                break
            victims.append(request)
            freed += view.kv.gpu_pool.used_by(request.req_id)
        return victims
