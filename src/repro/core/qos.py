"""Streaming QoS metric (paper §3.2) and effective throughput (§7.1.3).

Two token-weighting schemes appear in the paper:

* **Eq. (1)** — token utility with an absolute buffer threshold τ and
  linear decay α, feeding the QoS score of Eq. (2):

      QoS = (1/T) Σ_i [ Σ_j w_ij  −  λ·TTFT_i  −  μ·Rebuffer_i ]

* **Effective throughput** (§7.1.3) — tokens weighted by buffer
  occupancy relative to the request's *total output length*: full
  weight below τ₁ = 10 %, linear decay to zero at τ₂ = 20 %, zero
  beyond.

Both operate on ``B_{i,j}`` — the client-buffer occupancy at the
moment token *j* of request *i* was generated — which
:class:`repro.client.buffer.ClientBuffer` records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

# Histograms at least this long take the array fold; below it the
# plain loop wins (numpy call overhead exceeds the per-item work).
_FOLD_VECTOR_MIN = 64


@dataclass(frozen=True)
class QoSParams:
    """Weights of the QoS score (Eq. 2) and the Eq. 1 decay.

    Attributes:
        tau: absolute buffer threshold (tokens) where utility decay
            starts; if None, τ is derived per request as
            ``tau_frac * output_len`` (the paper notes τ "is related
            to the total output length").
        tau_frac: fraction of the output length used when ``tau`` is None.
        alpha: linear decay factor beyond τ (per token).
        lam: λ — TTFT penalty weight (per second).
        mu: μ — rebuffer penalty weight (per second).
    """

    tau: Optional[float] = None
    tau_frac: float = 0.10
    alpha: float = 0.02
    lam: float = 0.1
    mu: float = 1.0

    def __post_init__(self) -> None:
        if self.tau is not None and self.tau < 0:
            raise ValueError("tau must be non-negative")
        if not 0 < self.tau_frac <= 1:
            raise ValueError("tau_frac must be in (0, 1]")
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.lam < 0 or self.mu < 0:
            raise ValueError("lam and mu must be non-negative")

    def resolve_tau(self, output_len: int) -> float:
        return self.tau if self.tau is not None else self.tau_frac * output_len


def token_utility(buffer_occupancy: float, tau: float, alpha: float) -> float:
    """Eq. (1): w = 1 below τ, else max(1 − α·(B − τ), 0)."""
    if buffer_occupancy <= tau:
        return 1.0
    return max(1.0 - alpha * (buffer_occupancy - tau), 0.0)


def effective_token_weight(
    buffer_occupancy: float,
    output_len: int,
    tau1_frac: float = 0.10,
    tau2_frac: float = 0.20,
) -> float:
    """§7.1.3 weight: 1 below τ₁·L, linear to 0 at τ₂·L, 0 beyond."""
    if output_len <= 0:
        raise ValueError("output_len must be positive")
    if not 0 < tau1_frac < tau2_frac:
        raise ValueError("need 0 < tau1_frac < tau2_frac")
    tau1 = tau1_frac * output_len
    tau2 = tau2_frac * output_len
    if buffer_occupancy <= tau1:
        return 1.0
    if buffer_occupancy >= tau2:
        return 0.0
    return (tau2 - buffer_occupancy) / (tau2 - tau1)


def effective_token_count(
    occupancies: Sequence,
    output_len: int,
    tau1_frac: float = 0.10,
    tau2_frac: float = 0.20,
) -> float:
    """Sum of effective-throughput weights over a request's tokens."""
    return sum(
        effective_token_weight(b, output_len, tau1_frac, tau2_frac) for b in occupancies
    )


def effective_token_count_hist(
    occupancy_hist: Mapping,
    output_len: int,
    tau1_frac: float = 0.10,
    tau2_frac: float = 0.20,
) -> float:
    """:func:`effective_token_count` from a ``{B -> count}`` histogram.

    Occupancies are small integers, so grouping by value evaluates the
    weight once per distinct B instead of once per token — the compact
    aggregate :class:`repro.client.buffer.ClientBuffer` maintains.
    The weight is inlined: ``sum()`` folds left-to-right from 0, so the
    loop below performs the identical float additions.
    """
    if output_len <= 0:
        raise ValueError("output_len must be positive")
    if not 0 < tau1_frac < tau2_frac:
        raise ValueError("need 0 < tau1_frac < tau2_frac")
    tau1 = tau1_frac * output_len
    tau2 = tau2_frac * output_len
    span = tau2 - tau1
    total = 0.0
    for b, count in occupancy_hist.items():
        if b <= tau1:
            total += count * 1.0
        elif b >= tau2:
            total += count * 0.0
        else:
            total += count * ((tau2 - b) / span)
    return total


def request_qos_terms(
    occupancies: Sequence,
    output_len: int,
    ttft: float,
    rebuffer: float,
    params: QoSParams,
) -> float:
    """Inner bracket of Eq. (2) for one request."""
    tau = params.resolve_tau(output_len)
    utility_sum = sum(token_utility(b, tau, params.alpha) for b in occupancies)
    return utility_sum - params.lam * ttft - params.mu * rebuffer


def request_qos_terms_hist(
    occupancy_hist: Mapping,
    output_len: int,
    ttft: float,
    rebuffer: float,
    params: QoSParams,
) -> float:
    """:func:`request_qos_terms` from a ``{B -> count}`` histogram."""
    utility_sum = _utility_fold(occupancy_hist, output_len, params)
    return utility_sum - params.lam * ttft - params.mu * rebuffer


def _utility_fold(occupancy_hist: Mapping, output_len: int, params: QoSParams) -> float:
    """Eq. (1) utility summed over a histogram, weight inlined.

    Same left-to-right fold (and therefore the same float results) as
    ``sum(count * token_utility(b, tau, alpha) for b, count in ...)``.
    """
    tau = params.resolve_tau(output_len)
    alpha = params.alpha
    total = 0.0
    for b, count in occupancy_hist.items():
        if b <= tau:
            total += count * 1.0
        else:
            u = 1.0 - alpha * (b - tau)
            total += count * (u if u > 0.0 else 0.0)
    return total


def fold_hist_metrics(
    occupancy_hist: Mapping,
    output_len: int,
    params: QoSParams,
    tau1_frac: float = 0.10,
    tau2_frac: float = 0.20,
) -> tuple:
    """Single pass over a ``{B -> count}`` histogram computing both
    token-weighting schemes: ``(effective_token_count, utility_sum)``.

    The reporting fold needs the §7.1.3 effective count *and* the
    Eq. (1) utility sum for every finished request; walking the
    histogram once halves the dominant per-request metric cost.  Each
    accumulator performs exactly the float operations of its
    standalone sibling (:func:`effective_token_count_hist`,
    :func:`request_qos_terms_hist`'s utility fold), so the pair is
    bit-identical to two separate calls.
    """
    if output_len <= 0:
        raise ValueError("output_len must be positive")
    if not 0 < tau1_frac < tau2_frac:
        raise ValueError("need 0 < tau1_frac < tau2_frac")
    tau1 = tau1_frac * output_len
    tau2 = tau2_frac * output_len
    span = tau2 - tau1
    tau = params.resolve_tau(output_len)
    alpha = params.alpha
    n = len(occupancy_hist)
    if n >= _FOLD_VECTOR_MIN:
        # Array fold, bit-identical to the loop below: the per-bucket
        # weights are the same elementwise IEEE operations, and the
        # accumulation uses np.cumsum — which is *sequential* (unlike
        # np.sum's pairwise tree) — so the partial sums replay the
        # loop's left-to-right additions exactly.
        b = np.fromiter(occupancy_hist.keys(), np.float64, count=n)
        counts = np.fromiter(occupancy_hist.values(), np.float64, count=n)
        w_eff = np.where(
            b <= tau1, 1.0, np.where(b >= tau2, 0.0, (tau2 - b) / span)
        )
        u = 1.0 - alpha * (b - tau)
        w_util = np.where(b <= tau, 1.0, np.where(u > 0.0, u, 0.0))
        effective = float(np.cumsum(counts * w_eff)[-1])
        utility = float(np.cumsum(counts * w_util)[-1])
        return effective, utility
    effective = 0.0
    utility = 0.0
    for b, count in occupancy_hist.items():
        if b <= tau1:
            effective += count * 1.0
        elif b >= tau2:
            effective += count * 0.0
        else:
            effective += count * ((tau2 - b) / span)
        if b <= tau:
            utility += count * 1.0
        else:
            u = 1.0 - alpha * (b - tau)
            utility += count * (u if u > 0.0 else 0.0)
    return effective, utility


def qos_score(per_request_terms: Iterable, total_time: float) -> float:
    """Eq. (2): sum of per-request terms normalised by process time T."""
    if total_time <= 0:
        raise ValueError("total_time must be positive")
    return sum(per_request_terms) / total_time
