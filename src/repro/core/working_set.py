"""Working-set determination and admission control (paper §4.2.1).

The working set is the group of requests the system actively serves —
possibly more than fit in GPU memory (overcommitment), with the excess
offloaded to the CPU pool.  Its size is bounded statically by hardware
(Eq. 4) and adjusted dynamically with demand (Eq. 5):

    W_static    = ⌊ M / β ⌋                                (Eq. 4)
    W_scheduled = W_static − λ·(W_static − N_running)      (Eq. 5)

where β is the estimated per-request memory footprint (learned online
from observed context lengths) and λ ∈ [0,1] controls how fast the
working set tracks demand.  Overcommitment multiplies the static bound
by ``overcommit_factor`` (the CPU pool absorbs the surplus).

Admission of a new request additionally requires that preempting an
existing request is *safe*: some running request must hold enough
buffered tokens to survive the swap —

    b_rem ≥ μ · r · (τ_evict + τ_load + τ_schedule)

with safety factor μ ≥ 1 ("buffer conservativeness", the Fig. 23
knob).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.estimator import SlidingWindowMean


@dataclass(frozen=True)
class WorkingSetParams:
    """Knobs for working-set sizing and admission.

    Attributes:
        overcommit_factor: how far the working set may exceed the
            GPU-resident capacity (CPU pool absorbs the rest).
        adjust_rate: λ of Eq. 5.
        safety_factor: μ — buffer conservativeness (Fig. 23).
        schedule_latency: τ_schedule, the scheduler interval share of
            the swap budget.
        beta_window: window of the per-request footprint estimator.
        initial_beta_tokens: footprint prior before observations.
    """

    overcommit_factor: float = 2.0
    adjust_rate: float = 0.5
    safety_factor: float = 2.0
    schedule_latency: float = 0.5
    beta_window: int = 64
    initial_beta_tokens: float = 1024.0

    def __post_init__(self) -> None:
        if self.overcommit_factor < 1.0:
            raise ValueError("overcommit_factor must be >= 1")
        if not 0.0 <= self.adjust_rate <= 1.0:
            raise ValueError("adjust_rate must be in [0, 1]")
        if self.safety_factor < 1.0:
            raise ValueError("safety_factor (mu) must be >= 1")
        if self.schedule_latency < 0:
            raise ValueError("schedule_latency must be non-negative")


class WorkingSetPolicy:
    """Sizing + admission logic for the scheduler's working set."""

    def __init__(
        self,
        gpu_capacity_tokens: float,
        params: Optional[WorkingSetParams] = None,
    ) -> None:
        if gpu_capacity_tokens <= 0:
            raise ValueError("gpu_capacity_tokens must be positive")
        self.params = params if params is not None else WorkingSetParams()
        self._capacity_tokens = float(gpu_capacity_tokens)
        self._beta = SlidingWindowMean(
            self.params.beta_window, initial=self.params.initial_beta_tokens
        )

    # --- footprint estimation (β) -------------------------------------------
    def observe_footprint(self, context_tokens: int) -> None:
        """Feed an observed request context length into the β estimate."""
        if context_tokens <= 0:
            raise ValueError("context_tokens must be positive")
        self._beta.observe(float(context_tokens))

    def observe_footprints(self, requests) -> None:
        """Bulk β update from a batch of requests' context lengths.

        Equivalent to calling :meth:`observe_footprint` for each
        request with a positive context, in order — the scheduler runs
        this once per iteration over the whole decode batch.  (Request
        validates ``prompt_len > 0``, so every context is positive and
        no filter is needed.)
        """
        self._beta.observe_many(
            [float(r.prompt_len + r.generated) for r in requests]
        )

    def replay_footprints(self, context_tokens: list) -> None:
        """Exact bulk replay of skipped :meth:`observe_footprints` calls.

        The fused decode path skips per-iteration scheduler boundaries
        whose only side effect is this β observation; it hands the
        full (ordered) observation sequence here so the estimator ends
        in the bit-identical state the per-iteration calls would have
        produced.
        """
        self._beta.observe_bulk(context_tokens)

    def beta(self) -> float:
        mean = self._beta.mean()
        assert mean is not None
        return max(1.0, mean)

    # --- sizing (Eq. 4 / Eq. 5) ------------------------------------------------
    def w_static(self) -> int:
        """Eq. 4: GPU-resident request capacity ⌊M/β⌋ (at least 1)."""
        return max(1, int(self._capacity_tokens // self.beta()))

    def w_max(self) -> int:
        """Overcommitted upper bound on the working-set size."""
        return max(1, int(self.w_static() * self.params.overcommit_factor))

    def w_scheduled(self, n_running: int) -> int:
        """Eq. 5: demand-adjusted working-set size.

        Scales down toward ``n_running`` when the system is
        under-utilised; pinned at ``w_max`` once demand saturates it.
        """
        if n_running < 0:
            raise ValueError("n_running must be non-negative")
        w_static = self.w_static()
        w_max = self.w_max()
        if n_running >= w_max:
            return w_max
        scheduled = w_static - self.params.adjust_rate * (w_static - n_running)
        # Overcommitment headroom grows with demand pressure.
        scheduled = max(scheduled, float(n_running))
        return max(1, min(w_max, int(round(scheduled + (w_max - w_static) * min(1.0, n_running / max(1, w_static))))))

    # --- admission (buffer criterion) --------------------------------------------
    def swap_budget(self, tau_evict: float, tau_load: float) -> float:
        """Total latency a preempted request must ride out on its buffer."""
        return tau_evict + tau_load + self.params.schedule_latency

    def admission_buffer_requirement(
        self, rate: float, tau_evict: float, tau_load: float
    ) -> float:
        """Minimum buffered tokens (b_rem) for a safe preemption.

        b_rem ≥ μ · r · (τ_evict + τ_load + τ_schedule).
        """
        if rate <= 0:
            raise ValueError("rate must be positive")
        return self.params.safety_factor * rate * self.swap_budget(tau_evict, tau_load)

    def is_preemption_safe(
        self,
        buffered_tokens: float,
        rate: float,
        tau_evict: float,
        tau_load: float,
    ) -> bool:
        """True if a request with this buffer survives a swap cycle."""
        return buffered_tokens >= self.admission_buffer_requirement(
            rate, tau_evict, tau_load
        )
