"""Per-request utility / priority function (paper Eq. 3, §4.2.2).

The scheduler scores each candidate with two ingredients:

* **Token value** ``v_i`` — how useful newly generated tokens would be
  right now.  The paper ties v to the unread-token count; we use the
  effective-throughput weight at the current occupancy (full value
  while the buffer is below 10 % of the output length, decaying to
  zero at 20 %), which is exactly the quantity the proxy objective
  maximises.
* **Stall risk** ``φ(b_rem)`` — the paper uses ``φ(b) = e^{−b}``.  A
  raw token count in the exponent underflows for any healthy buffer
  (e^-200 ≈ 0), so we measure the buffer in *seconds of playback*
  (``b_rem / r_i``) before exponentiating.  This keeps the intended
  shape — near-empty buffers spike, fat buffers vanish — and makes
  the scale consistent across requests with different rates.

Combined priority (higher = schedule first):

    P_i = v_i · t_eff + γ · φ(b_seconds)

Eq. 3 writes the objective as ``v·t − γ·φ``; because φ only matters
for requests at risk of stalling *if left unscheduled*, the heuristic
in §4.2.2 folds it in as a positive urgency boost ("requests with
nearly empty buffers receive higher priority"), which is the form we
implement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.qos import effective_token_weight


@dataclass(frozen=True)
class UtilityParams:
    """Knobs of the priority function.

    Attributes:
        gamma: γ — stall-risk weight.
        tau1_frac / tau2_frac: effective-token-value thresholds as
            fractions of the output length (§7.1.3).
        stall_scale: seconds of buffer at which the stall-risk term
            decays to 1/e.
    """

    gamma: float = 4.0
    tau1_frac: float = 0.10
    tau2_frac: float = 0.20
    stall_scale: float = 2.0

    def __post_init__(self) -> None:
        if self.gamma < 0:
            raise ValueError("gamma must be non-negative")
        if self.stall_scale <= 0:
            raise ValueError("stall_scale must be positive")
        if not 0 < self.tau1_frac < self.tau2_frac:
            raise ValueError("need 0 < tau1_frac < tau2_frac")


def stall_risk(buffer_seconds: float, params: UtilityParams) -> float:
    """φ: exponential stall-risk, 1 at empty buffer, →0 as it fattens."""
    if buffer_seconds < 0:
        raise ValueError("buffer_seconds must be non-negative")
    return math.exp(-buffer_seconds / params.stall_scale)


def token_value(
    buffer_occupancy: float, output_len: int, params: UtilityParams
) -> float:
    """v_i: marginal value of generating tokens at this occupancy."""
    return effective_token_weight(
        buffer_occupancy, output_len, params.tau1_frac, params.tau2_frac
    )


def request_priority(
    buffer_occupancy: float,
    buffer_seconds: float,
    output_len: int,
    effective_time: float,
    params: UtilityParams,
) -> float:
    """P_i = v_i · t_eff + γ · φ(b_seconds); higher runs first.

    Args:
        buffer_occupancy: unread tokens in the client buffer.
        buffer_seconds: the same buffer measured in playback seconds.
        output_len: request's total output length (scales v's decay).
        effective_time: t − t_overhead, the execution time this
            request would actually get in the scheduling interval.
    """
    if effective_time < 0:
        effective_time = 0.0
    value = token_value(buffer_occupancy, output_len, params)
    return value * effective_time + params.gamma * stall_risk(buffer_seconds, params)


def eq3_utility(
    token_value_v: float,
    effective_time: float,
    buffer_seconds: float,
    params: UtilityParams,
) -> float:
    """Literal Eq. 3 form, U = v·t − γ·φ(b), exposed for analysis."""
    return token_value_v * effective_time - params.gamma * stall_risk(
        buffer_seconds, params
    )
