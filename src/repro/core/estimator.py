"""Sliding-window runtime estimators (paper §3.3, §4.2.3).

The scheduler needs online estimates of quantities that are only known
after the fact:

* per-token prefill latency — to price recompute-based resumption
  (``t_recompute``);
* queueing delay ``t'`` — the utility function weights token value by
  expected time-to-service, approximated by a moving average;
* both feed the recompute-vs-load decision
  ``t_overhead = min(t_IO, t_recompute)``.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np


class SlidingWindowMean:
    """Mean of the last ``window`` observations, O(1) per update."""

    def __init__(self, window: int = 32, initial: Optional[float] = None) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self._window = window
        self._values: deque = deque(maxlen=window)
        self._sum = 0.0
        self._initial = initial

    def observe(self, value: float) -> None:
        if len(self._values) == self._window:
            self._sum -= self._values[0]
        self._values.append(value)
        self._sum += value

    def observe_many(self, values) -> None:
        """Observe each element in order (bulk form of :meth:`observe`
        — identical arithmetic, one call instead of one per sample)."""
        self.observe_bulk(list(values))

    def observe_bulk(self, values: list) -> None:
        """The single bulk implementation behind :meth:`observe_many`.

        Replays :meth:`observe`'s exact subtract-then-add float
        sequence over plain list indexing (the running ``_sum`` depends
        on the whole observation history, so it must be replayed, not
        recomputed) and lets the deque's ``maxlen`` evict in one
        ``extend`` — no per-sample method calls.  The fused decode path
        feeds skipped per-iteration footprint observations through
        here, so bulk-vs-sequential bit-parity is a contract
        (pinned by tests/test_core_estimator.py).

        An ``np.ndarray`` input takes an equally exact array path: the
        replayed fold is expressed as one running cumulative sum.
        ``x - a == x + (-a)`` for every float, and prepending the
        current ``_sum`` keeps the fold's grouping, so ``np.cumsum``
        (a sequential scan) performs the identical additions the loop
        would.
        """
        if isinstance(values, np.ndarray):
            self._observe_array(values)
            return
        window = self._window
        dq = self._values
        n_old = len(dq)
        combined = list(dq) + values
        total = self._sum
        for i in range(n_old, len(combined)):
            if i >= window:
                total -= combined[i - window]
            total += combined[i]
        self._sum = total
        dq.extend(values)

    def _observe_array(self, values: np.ndarray) -> None:
        window = self._window
        dq = self._values
        n_old = len(dq)
        n_new = values.size
        if n_new == 0:
            return
        n_total = n_old + n_new
        combined = np.empty(n_total)
        combined[:n_old] = dq
        combined[n_old:] = values
        # New entries landing at combined index < window add without
        # evicting; from index `window` on, each addition is preceded
        # by the eviction of the entry one full window earlier.
        m = min(max(window - n_old, 0), n_new)
        seq = np.empty(1 + m + 2 * (n_new - m))
        seq[0] = self._sum
        seq[1:1 + m] = combined[n_old:n_old + m]
        tail = seq[1 + m:]
        tail[0::2] = -combined[n_old + m - window:n_total - window]
        tail[1::2] = combined[n_old + m:]
        self._sum = float(np.cumsum(seq)[-1])
        dq.extend(values.tolist())

    def mean(self) -> Optional[float]:
        if not self._values:
            return self._initial
        return self._sum / len(self._values)

    @property
    def count(self) -> int:
        return len(self._values)


class PrefillCostEstimator:
    """Sliding-window-averaged per-token prefill latency (§4.2.3)."""

    def __init__(self, window: int = 32, initial_per_token: float = 50e-6) -> None:
        if initial_per_token <= 0:
            raise ValueError("initial_per_token must be positive")
        self._per_token = SlidingWindowMean(window, initial=initial_per_token)

    def observe_prefill(self, n_tokens: int, duration: float) -> None:
        """Record a completed prefill iteration."""
        if n_tokens <= 0:
            raise ValueError("n_tokens must be positive")
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self._per_token.observe(duration / n_tokens)

    def per_token(self) -> float:
        mean = self._per_token.mean()
        assert mean is not None  # initial value guarantees this
        return mean

    def estimate_recompute(self, context_tokens: int) -> float:
        """t_recompute for re-prefilling ``context_tokens``."""
        if context_tokens < 0:
            raise ValueError("context_tokens must be non-negative")
        return self.per_token() * context_tokens


class QueueDelayEstimator:
    """Moving-average queueing delay t' used by the utility function.

    The paper estimates t' "using a moving average instead of
    computing the exact queuing delay from dynamic scheduling"
    (§4.2.2).  We observe the gap between a request becoming runnable
    and its next decode step.
    """

    def __init__(self, window: int = 64, initial: float = 0.05) -> None:
        self._delay = SlidingWindowMean(window, initial=initial)

    def observe_delay(self, delay: float) -> None:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self._delay.observe(delay)

    def current(self) -> float:
        mean = self._delay.mean()
        assert mean is not None
        return mean
