"""Request Offload Manager (paper §3.1, third component).

Executes scheduler decisions by driving request-level memory
operations: evicting preempted requests through the KV manager's write
path, restoring resumed requests through the load path (or routing
them to the recompute/prefill queue), and keeping the request state
machine and the serving queues consistent.

It bridges high-level scheduling and low-level execution: the
scheduler never touches queues or the KV manager directly, and the KV
manager never sees scheduling intent except through this component.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.tracker import RequestTracker
from repro.memory.kv_manager import HierarchicalKVManager
from repro.serving.interface import SchedulerDecision
from repro.sim.engine import SimEngine
from repro.workload.request import Request, RequestState


class RequestOffloadManager:
    """Applies :class:`SchedulerDecision` objects to the serving state."""

    def __init__(
        self,
        engine: SimEngine,
        tracker: RequestTracker,
        kv: HierarchicalKVManager,
        waiting: list,
        prefill_queue: list,
        running: list,
        preempted: list,
        loading: list,
        on_state_change: Optional[Callable[[], None]] = None,
        on_swap_observed: Optional[Callable[[float, float], None]] = None,
        record_events: bool = True,
    ) -> None:
        self.engine = engine
        self.tracker = tracker
        self.kv = kv
        self.waiting = waiting
        self.prefill_queue = prefill_queue
        self.running = running
        self.preempted = preempted
        self.loading = loading
        self._on_state_change = on_state_change or (lambda: None)
        self._on_swap_observed = on_swap_observed or (lambda evict, load: None)
        self.stats = {"admissions": 0, "preemptions": 0, "loads": 0, "recomputes": 0}
        # (timestamp, event, req_id) trace of lifecycle transitions;
        # feeds the timeline analyses (paper Figs. 14/15/18).  Streaming
        # runs (record_events=False) keep only the counters above — one
        # tuple per transition would be the last O(total) log standing.
        self.record_events = record_events
        self.events: list = []

    def _record(self, timestamp: float, kind: str, req_id: int) -> None:
        if self.record_events:
            self.events.append((timestamp, kind, req_id))

    # --- decision execution ----------------------------------------------------
    def execute(self, decision: SchedulerDecision) -> None:
        """Apply a decision; order matters (preempt frees memory first)."""
        decision.validate()
        for request in decision.preempt:
            self.preempt(request)
        for request in decision.admit:
            self.admit(request)
        for request in decision.resume_recompute:
            self.resume_recompute(request)
        for request in decision.resume_load:
            self.resume_load(request)
        if not decision.is_empty():
            self._on_state_change()

    # --- individual operations ------------------------------------------------------
    def admit(self, request: Request) -> None:
        """QUEUED -> PREFILLING: move into the prefill queue."""
        if request.state is not RequestState.QUEUED:
            raise RuntimeError(f"cannot admit request {request.req_id} in {request.state}")
        self.waiting.remove(request)
        request.transition(RequestState.PREFILLING)
        request.admitted_time = self.engine.now()
        request.prefill_progress = 0
        self.prefill_queue.append(request)
        self.stats["admissions"] += 1
        self._record(self.engine.now(), "admit", request.req_id)

    def preempt(self, request: Request) -> None:
        """RUNNING -> PREEMPTED: offload (or drop) the KV cache."""
        if request.state is not RequestState.RUNNING:
            raise RuntimeError(
                f"cannot preempt request {request.req_id} in {request.state}"
            )
        now = self.engine.now()
        self.running.remove(request)
        request.transition(RequestState.PREEMPTED)
        request.preemption_count += 1
        done = self.kv.preempt(request.req_id, now)
        self.preempted.append(request)
        self.stats["preemptions"] += 1
        self._record(now, "preempt", request.req_id)
        self._on_swap_observed(max(0.0, done - now), 0.0)

    def resume_load(self, request: Request) -> None:
        """PREEMPTED -> LOADING -> (event) RUNNING.

        Falls back to recompute when the load is no longer possible
        (memory got claimed between decision and execution).
        """
        if request.state is not RequestState.PREEMPTED:
            raise RuntimeError(
                f"cannot load request {request.req_id} in {request.state}"
            )
        if not self.kv.can_resume_load(request.req_id):
            self.resume_recompute(request)
            return
        now = self.engine.now()
        self.preempted.remove(request)
        request.transition(RequestState.LOADING)
        done = self.kv.resume_load(request.req_id, now)
        self.loading.append(request)
        self.stats["loads"] += 1
        self._record(now, "load", request.req_id)
        self._on_swap_observed(0.0, max(0.0, done - now))
        self.engine.call_at(
            done, lambda: self._finish_load(request), label=f"load-done:{request.req_id}"
        )

    def _finish_load(self, request: Request) -> None:
        if request.state is not RequestState.LOADING:
            return  # finished or re-routed meanwhile
        self.loading.remove(request)
        request.transition(RequestState.RUNNING)
        self.running.append(request)
        self._on_state_change()

    def resume_recompute(self, request: Request) -> None:
        """PREEMPTED -> PREFILLING: re-prefill the full context."""
        if request.state is not RequestState.PREEMPTED:
            raise RuntimeError(
                f"cannot recompute request {request.req_id} in {request.state}"
            )
        self.preempted.remove(request)
        self.kv.prepare_recompute(request.req_id)
        request.transition(RequestState.PREFILLING)
        request.prefill_progress = 0
        self.prefill_queue.append(request)
        self.stats["recomputes"] += 1
        self._record(self.engine.now(), "recompute", request.req_id)
