"""Buffer balancing inside the working set (paper §4.2.2).

Given the working set (resident + offloaded requests), choose which
subset should occupy the GPU for the next interval:

1. sort candidates by the utility-derived priority;
2. pin resident requests whose buffers could *not* survive a swap
   (preempting them would stall playback);
3. greedily pack the highest-priority candidates into the memory and
   batch budget;
4. improve the greedy pick with an adjacent-swap local search — for
   each adjacent pair across the selection boundary, apply the swap if
   it raises total utility without violating the constraints.

The output is a diff against the current placement: requests to
preempt (resident but not selected) and requests to resume (selected
but offloaded).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class Candidate:
    """One working-set member considered for GPU residency.

    Attributes:
        req_id: request id.
        priority: utility-derived score (higher = keep on GPU).
        blocks: GPU blocks the request needs to be resident.
        resident: currently decodable on the GPU.
        pinned: must stay resident (buffer too thin to swap out).
    """

    req_id: int
    priority: float
    blocks: int
    resident: bool
    pinned: bool = False

    def __post_init__(self) -> None:
        if self.blocks < 0:
            raise ValueError("blocks must be non-negative")
        if self.pinned and not self.resident:
            raise ValueError("only resident requests can be pinned")


@dataclass
class BalanceResult:
    """Selected placement and the diff to reach it."""

    selected: list = field(default_factory=list)      # req_ids on GPU next
    to_preempt: list = field(default_factory=list)    # resident -> offload
    to_resume: list = field(default_factory=list)     # offloaded -> GPU
    total_priority: float = 0.0
    blocks_used: int = 0


class BufferBalancer:
    """Greedy + local-search subset selection under memory/batch caps."""

    def __init__(self, local_search_passes: int = 2) -> None:
        if local_search_passes < 0:
            raise ValueError("local_search_passes must be non-negative")
        self.local_search_passes = local_search_passes

    def balance(
        self,
        candidates: Sequence,
        block_budget: int,
        max_batch: int,
    ) -> BalanceResult:
        """Choose the GPU-resident subset.

        Args:
            candidates: :class:`Candidate` entries for the working set.
            block_budget: GPU blocks available for these requests.
            max_batch: maximum concurrent resident requests.
        """
        if block_budget < 0:
            raise ValueError("block_budget must be non-negative")
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        ids = [c.req_id for c in candidates]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate req_ids among candidates")

        order = sorted(candidates, key=lambda c: (not c.pinned, -c.priority, c.req_id))
        chosen = self._greedy(order, block_budget, max_batch)
        if self.local_search_passes > 0:
            chosen = self._local_search(order, chosen, block_budget, max_batch)
        return self._as_result(candidates, chosen)

    # --- internals ------------------------------------------------------------
    def _greedy(
        self, order: Sequence, block_budget: int, max_batch: int
    ) -> set:
        chosen: set = set()
        used_blocks = 0
        for candidate in order:
            if len(chosen) >= max_batch:
                break
            if used_blocks + candidate.blocks > block_budget and not candidate.pinned:
                continue
            if candidate.pinned and used_blocks + candidate.blocks > block_budget:
                # Pinned requests are already resident; they keep their
                # memory even if the nominal budget is exceeded.
                chosen.add(candidate.req_id)
                used_blocks += candidate.blocks
                continue
            chosen.add(candidate.req_id)
            used_blocks += candidate.blocks
        return chosen

    def _local_search(
        self,
        order: Sequence,
        chosen: set,
        block_budget: int,
        max_batch: int,
    ) -> set:
        """Adjacent-swap refinement over the priority ordering."""
        chosen = set(chosen)
        for _ in range(self.local_search_passes):
            improved = False
            for left, right in zip(order, order[1:]):
                inside, outside = None, None
                if left.req_id in chosen and right.req_id not in chosen:
                    inside, outside = left, right
                elif right.req_id in chosen and left.req_id not in chosen:
                    inside, outside = right, left
                if inside is None or outside is None or inside.pinned:
                    continue
                gain = outside.priority - inside.priority
                if gain <= 0:
                    continue
                used = sum(c.blocks for c in order if c.req_id in chosen)
                if used - inside.blocks + outside.blocks > block_budget:
                    continue
                chosen.discard(inside.req_id)
                chosen.add(outside.req_id)
                improved = True
            if not improved:
                break
        # max_batch can never be violated by 1-for-1 swaps.
        assert len(chosen) <= max_batch
        return chosen

    def _as_result(self, candidates: Sequence, chosen: set) -> BalanceResult:
        result = BalanceResult()
        for candidate in candidates:
            selected = candidate.req_id in chosen
            if selected:
                result.selected.append(candidate.req_id)
                result.total_priority += candidate.priority
                result.blocks_used += candidate.blocks
                if not candidate.resident:
                    result.to_resume.append(candidate.req_id)
            elif candidate.resident and not candidate.pinned:
                # Pinned residents outside the selection stay resident:
                # swapping them out would stall their playback, which
                # defeats the point of buffer balancing.
                result.to_preempt.append(candidate.req_id)
        return result
