"""Request Tracker (paper §3.1, first component).

Monitors each request's runtime status: buffer token counts, required
consumption rate, per-token generation timestamps, preemption history,
and resource usage.  Both the scheduler (buffer occupancy, drain
deadlines) and the metrics pipeline (QoS inputs) read from here.

The serving loop and the scheduler query the same (request, now)
pairs many times per iteration — the tracker therefore memoises
occupancy per simulation timestamp, so each request's buffer state is
computed at most once per instant no matter how many consumers ask.
:meth:`snapshot` exposes that shared memo as a bulk view both the
server and the scheduler can pass around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.client.buffer import ClientBuffer
from repro.workload.request import Request, RequestState


@dataclass
class TrackedRequest:
    """A request together with its client-side buffer."""

    request: Request
    buffer: ClientBuffer


class TrackerSnapshot:
    """Bulk buffer-state view at one instant, backed by the tracker memo.

    All consumers of the same snapshot (server planning, scheduler
    candidates, write priorities) share one occupancy computation per
    request; the memo is invalidated automatically when a token is
    delivered at the same instant.
    """

    __slots__ = ("_tracker", "now")

    def __init__(self, tracker: "RequestTracker", now: float) -> None:
        self._tracker = tracker
        self.now = now

    def occupancy(self, req_id: int) -> int:
        return self._tracker.occupancy(req_id, self.now)

    def buffer_seconds(self, req_id: int) -> float:
        return self._tracker.buffer_seconds(req_id, self.now)

    def buffer_seconds_many(self, requests: Sequence) -> list:
        """Bulk :meth:`buffer_seconds`, one float per request."""
        return self._tracker.buffer_seconds_many(requests, self.now)

    def min_buffer_seconds(self, requests: Sequence) -> float:
        """Smallest buffer (seconds) across ``requests`` (non-empty)."""
        return self._tracker.min_buffer_seconds(requests, self.now)


class RequestTracker:
    """Registry of all requests seen by the serving system.

    With ``retire_into`` set (streaming telemetry, see
    :class:`~repro.serving.metrics.StreamingRunStats`), a finished
    request is *retired* the moment :meth:`mark_finished` runs: its
    final metrics fold into the sink and its entry — request object,
    buffer, token timestamps — is dropped, so tracker memory is
    O(active requests) rather than O(total).  The aggregates report
    building needs across retirements (earliest arrival, latest
    activity) are maintained incrementally.
    """

    def __init__(self, record_traces: bool = True, retire_into=None) -> None:
        self._entries: dict[int, TrackedRequest] = {}
        self._finished_order: list = []
        self._record_traces = record_traces
        # Retirement sink: any object with observe(request, buffer).
        self._retire_sink = retire_into
        self._min_arrival: Optional[float] = None
        self._retired_last_activity: Optional[float] = None
        # Per-instant memo: {req_id -> (occupancy, buffer)} valid for
        # queries at `_memo_now`.  Caching the buffer alongside keeps
        # hits to plain dict/attribute access (the interval is read
        # live off the buffer, so mid-stream rate changes are seen
        # immediately even on a hit).
        self._memo_now: Optional[float] = None
        self._memo_occ: dict = {}

    # --- registration ------------------------------------------------------
    def register(self, request: Request) -> TrackedRequest:
        if request.req_id in self._entries:
            raise ValueError(f"request {request.req_id} already tracked")
        entry = TrackedRequest(
            request=request,
            buffer=ClientBuffer(rate=request.rate, record_trace=self._record_traces),
        )
        self._entries[request.req_id] = entry
        if self._min_arrival is None or request.arrival_time < self._min_arrival:
            self._min_arrival = request.arrival_time
        return entry

    @property
    def retire_sink(self):
        """The streaming-telemetry sink (None in retained mode)."""
        return self._retire_sink

    def get(self, req_id: int) -> TrackedRequest:
        if req_id not in self._entries:
            raise KeyError(f"request {req_id} is not tracked")
        return self._entries[req_id]

    def __contains__(self, req_id: int) -> bool:
        return req_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries_by_id(self) -> dict:
        """Live ``{req_id -> TrackedRequest}`` map (treat read-only).

        Exposed for the serving loop's token-emission hot path, which
        pairs each delivery with :meth:`invalidate_occupancy`.
        """
        return self._entries

    def invalidate_occupancy(self, req_id: int) -> None:
        """Drop the memoised occupancy for one request.

        Must be called whenever a buffer is mutated out-of-band (e.g.
        a token delivered directly through the entry) at the memoised
        instant; :meth:`deliver_token` does this automatically.
        """
        self._memo_occ.pop(req_id, None)

    @property
    def occupancy_invalidator(self):
        """Bound ``dict.pop`` implementing :meth:`invalidate_occupancy`
        without a wrapper call — invoke as ``invalidator(req_id, None)``.
        (The memo dict is cleared in place, never rebound, so the bound
        method stays valid for the tracker's lifetime.)"""
        return self._memo_occ.pop

    def invalidate_occupancy_all(self) -> None:
        """Drop every memoised occupancy in one call.

        The vectorised decode plane mutates a whole batch of buffers at
        once; clearing the memo outright is always semantically safe
        (it is a pure cache — misses recompute the identical value) and
        cheaper than one ``pop`` per batch member.
        """
        self._memo_occ.clear()

    # --- event hooks --------------------------------------------------------
    def deliver_token(self, req_id: int, timestamp: float) -> None:
        """Record one generated token flowing into the client buffer."""
        entry = self._entries.get(req_id)
        if entry is None:
            raise KeyError(f"request {req_id} is not tracked")
        entry.request.record_token(timestamp)
        entry.buffer.deliver(timestamp)
        # The buffer's occupancy at this very instant changed.
        self._memo_occ.pop(req_id, None)

    def deliver_tokens(self, req_id: int, timestamps: list) -> None:
        """Bulk :meth:`deliver_token`: one token at each instant.

        Equivalent to calling :meth:`deliver_token` once per timestamp
        in order, with the per-token request/buffer bookkeeping done in
        bulk (the fused decode path's per-request token application).
        """
        entry = self._entries.get(req_id)
        if entry is None:
            raise KeyError(f"request {req_id} is not tracked")
        request = entry.request
        n = len(timestamps)
        if request.generated + n > request.output_len:
            raise RuntimeError(
                f"request {req_id} would exceed its {request.output_len} tokens"
            )
        if request.ttft is None:
            first = timestamps[0]
            request.ttft = first - request.arrival_time
            request.first_token_time = first
        request.generated += n
        request.token_times.extend(timestamps)
        entry.buffer.deliver_many(timestamps)
        self._memo_occ.pop(req_id, None)

    def mark_finished(self, req_id: int, timestamp: float) -> None:
        entry = self.get(req_id)
        entry.request.finish_time = timestamp
        if self._retire_sink is not None:
            self._retire(req_id, entry, timestamp)
        else:
            self._finished_order.append(req_id)

    def _retire(self, req_id: int, entry: TrackedRequest, timestamp: float) -> None:
        """Fold a finished entry into the sink and drop it.

        The entry's contribution to :meth:`last_activity` — its final
        consumption time and finish time — is captured first, so the
        report-time makespan is unchanged by retirement.
        """
        self._retire_sink.observe(entry.request, entry.buffer)
        latest = self._retired_last_activity
        final = entry.buffer.final_consumption_time()
        for candidate in (final, timestamp):
            if candidate is not None and (latest is None or candidate > latest):
                latest = candidate
        self._retired_last_activity = latest
        del self._entries[req_id]
        self._memo_occ.pop(req_id, None)

    # --- scheduler queries -----------------------------------------------------
    def _memo_entry(self, req_id: int, now: float) -> tuple:
        """(occupancy, buffer) at ``now``, computed at most once per
        (request, now) — repeated queries at the same instant hit the
        memo."""
        if now != self._memo_now:
            self._memo_now = now
            self._memo_occ.clear()
            cached = None
        else:
            cached = self._memo_occ.get(req_id)
        if cached is None:
            buffer = self.get(req_id).buffer
            cached = (buffer.occupancy(now), buffer)
            self._memo_occ[req_id] = cached
        return cached

    def occupancy(self, req_id: int, now: float) -> int:
        """b_rem: unread tokens currently buffered for this request."""
        return self._memo_entry(req_id, now)[0]

    def drain_deadline(self, req_id: int, now: float) -> float:
        """Seconds until this request's buffer runs dry at rate r.

        Derived from the memoised occupancy and the buffer's *current*
        interval, so a mid-stream :meth:`ClientBuffer.set_rate` is
        reflected immediately even on a memo hit.
        """
        occ, buffer = self._memo_entry(req_id, now)
        return occ * buffer.interval

    def rate(self, req_id: int) -> float:
        return self.get(req_id).request.rate

    def buffer_seconds(self, req_id: int, now: float) -> float:
        """Buffer occupancy measured in seconds of consumption."""
        occ, buffer = self._memo_entry(req_id, now)
        return occ * buffer.interval

    def buffer_seconds_many(self, requests: Sequence, now: float) -> list:
        """:meth:`buffer_seconds` for each request, one flat pass.

        Same values as the per-request query (it fills the same
        per-instant memo); batched for the scheduler's ranking passes,
        which decorate-sort the result instead of paying a key
        callback per element.
        """
        if now != self._memo_now:
            self._memo_now = now
            self._memo_occ.clear()
        memo = self._memo_occ
        memo_get = memo.get
        entries = self._entries
        out = []
        append = out.append
        for request in requests:
            req_id = request.req_id
            cached = memo_get(req_id)
            if cached is None:
                buffer = entries[req_id].buffer
                cached = (buffer.occupancy(now), buffer)
                memo[req_id] = cached
            occ, buffer = cached
            append(occ * buffer.interval)
        return out

    def min_buffer_seconds(self, requests: Sequence, now: float) -> float:
        """Smallest ``buffer_seconds`` across ``requests`` (non-empty).

        One flat pass over the shared memo — the bulk query behind the
        serving loop's per-iteration min-buffer index.
        """
        if now != self._memo_now:
            self._memo_now = now
            self._memo_occ.clear()
        memo = self._memo_occ
        memo_get = memo.get
        entries = self._entries
        smallest: Optional[float] = None
        for request in requests:
            req_id = request.req_id
            cached = memo_get(req_id)
            if cached is None:
                buffer = entries[req_id].buffer
                cached = (buffer.occupancy(now), buffer)
                memo[req_id] = cached
            occ, buffer = cached
            seconds = occ * buffer.interval
            if smallest is None or seconds < smallest:
                smallest = seconds
        if smallest is None:
            raise ValueError("min_buffer_seconds needs a non-empty request set")
        return smallest

    def snapshot(self, now: float) -> TrackerSnapshot:
        """Bulk buffer-state view at ``now`` sharing the per-instant memo."""
        return TrackerSnapshot(self, now)

    # --- metric queries --------------------------------------------------------
    def entries(self) -> Iterable[TrackedRequest]:
        return self._entries.values()

    def finished_entries(self) -> list:
        return [
            self._entries[rid]
            for rid in self._finished_order
            if self._entries[rid].request.state is RequestState.FINISHED
        ]

    def all_requests(self) -> list:
        return [entry.request for entry in self._entries.values()]

    def first_arrival(self) -> Optional[float]:
        """Earliest arrival ever registered (tracked incrementally, so
        the answer survives retirement of the entry that set it)."""
        return self._min_arrival

    def last_activity(self) -> Optional[float]:
        """Latest token-generation or consumption timestamp observed."""
        latest: Optional[float] = self._retired_last_activity
        for entry in self._entries.values():
            final = entry.buffer.final_consumption_time()
            for candidate in (final, entry.request.finish_time):
                if candidate is not None and (latest is None or candidate > latest):
                    latest = candidate
        return latest
