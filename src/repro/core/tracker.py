"""Request Tracker (paper §3.1, first component).

Monitors each request's runtime status: buffer token counts, required
consumption rate, per-token generation timestamps, preemption history,
and resource usage.  Both the scheduler (buffer occupancy, drain
deadlines) and the metrics pipeline (QoS inputs) read from here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.client.buffer import ClientBuffer
from repro.workload.request import Request, RequestState


@dataclass
class TrackedRequest:
    """A request together with its client-side buffer."""

    request: Request
    buffer: ClientBuffer


class RequestTracker:
    """Registry of all requests seen by the serving system."""

    def __init__(self) -> None:
        self._entries: dict[int, TrackedRequest] = {}
        self._finished_order: list = []

    # --- registration ------------------------------------------------------
    def register(self, request: Request) -> TrackedRequest:
        if request.req_id in self._entries:
            raise ValueError(f"request {request.req_id} already tracked")
        entry = TrackedRequest(request=request, buffer=ClientBuffer(rate=request.rate))
        self._entries[request.req_id] = entry
        return entry

    def get(self, req_id: int) -> TrackedRequest:
        if req_id not in self._entries:
            raise KeyError(f"request {req_id} is not tracked")
        return self._entries[req_id]

    def __contains__(self, req_id: int) -> bool:
        return req_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # --- event hooks --------------------------------------------------------
    def deliver_token(self, req_id: int, timestamp: float) -> None:
        """Record one generated token flowing into the client buffer."""
        entry = self.get(req_id)
        entry.request.record_token(timestamp)
        entry.buffer.deliver(timestamp)

    def mark_finished(self, req_id: int, timestamp: float) -> None:
        entry = self.get(req_id)
        entry.request.finish_time = timestamp
        self._finished_order.append(req_id)

    # --- scheduler queries -----------------------------------------------------
    def occupancy(self, req_id: int, now: float) -> int:
        """b_rem: unread tokens currently buffered for this request."""
        return self.get(req_id).buffer.occupancy(now)

    def drain_deadline(self, req_id: int, now: float) -> float:
        """Seconds until this request's buffer runs dry at rate r."""
        return self.get(req_id).buffer.drain_deadline(now)

    def rate(self, req_id: int) -> float:
        return self.get(req_id).request.rate

    def buffer_seconds(self, req_id: int, now: float) -> float:
        """Buffer occupancy measured in seconds of consumption."""
        return self.drain_deadline(req_id, now)

    # --- metric queries --------------------------------------------------------
    def entries(self) -> Iterable[TrackedRequest]:
        return self._entries.values()

    def finished_entries(self) -> list:
        return [
            self._entries[rid]
            for rid in self._finished_order
            if self._entries[rid].request.state is RequestState.FINISHED
        ]

    def all_requests(self) -> list:
        return [entry.request for entry in self._entries.values()]

    def first_arrival(self) -> Optional[float]:
        if not self._entries:
            return None
        return min(entry.request.arrival_time for entry in self._entries.values())

    def last_activity(self) -> Optional[float]:
        """Latest token-generation or consumption timestamp observed."""
        latest: Optional[float] = None
        for entry in self._entries.values():
            final = entry.buffer.final_consumption_time()
            for candidate in (final, entry.request.finish_time):
                if candidate is not None and (latest is None or candidate > latest):
                    latest = candidate
        return latest
