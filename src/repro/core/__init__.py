"""TokenFlow's core contribution.

* :mod:`repro.core.qos` — the streaming QoS metric (paper Eq. 1–2) and
  the effective-throughput token weighting (§7.1.3).
* :mod:`repro.core.tracker` — the Request Tracker component.
* :mod:`repro.core.estimator` — sliding-window estimators for prefill
  cost, queueing delay, and the recompute-vs-load decision (§4.2.3).
* :mod:`repro.core.utility` — the per-request utility/priority
  function (Eq. 3, §4.2.2).
* :mod:`repro.core.working_set` — working-set sizing and admission
  control (§4.2.1, Eq. 4–5).
* :mod:`repro.core.balancer` — buffer balancing: greedy selection plus
  adjacent-swap local search (§4.2.2).
* :mod:`repro.core.scheduler` — the two-step buffer-aware scheduler
  with the FCFS fallback (§4.3).
* :mod:`repro.core.offload` — the Request Offload Manager bridging
  scheduler decisions to KV-manager operations.
"""

from repro.core.qos import (
    QoSParams,
    token_utility,
    effective_token_weight,
    request_qos_terms,
    qos_score,
    effective_token_count,
)
from repro.core.tracker import RequestTracker, TrackedRequest
from repro.core.estimator import SlidingWindowMean, PrefillCostEstimator, QueueDelayEstimator
from repro.core.utility import UtilityParams, stall_risk, token_value, request_priority
from repro.core.working_set import WorkingSetPolicy, WorkingSetParams
from repro.core.balancer import BufferBalancer, BalanceResult
from repro.core.scheduler import TokenFlowScheduler, TokenFlowParams
from repro.core.offload import RequestOffloadManager

__all__ = [
    "QoSParams",
    "token_utility",
    "effective_token_weight",
    "request_qos_terms",
    "qos_score",
    "effective_token_count",
    "RequestTracker",
    "TrackedRequest",
    "SlidingWindowMean",
    "PrefillCostEstimator",
    "QueueDelayEstimator",
    "UtilityParams",
    "stall_risk",
    "token_value",
    "request_priority",
    "WorkingSetPolicy",
    "WorkingSetParams",
    "BufferBalancer",
    "BalanceResult",
    "TokenFlowScheduler",
    "TokenFlowParams",
    "RequestOffloadManager",
]
