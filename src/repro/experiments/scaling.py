"""Cluster scale-out experiment (paper §8 extension).

The paper's discussion argues TokenFlow's single-node design composes
with a dispatch layer for multi-node serving.  This experiment runs
the same flash crowd against clusters of 1..N identical TokenFlow
nodes and reports how burst absorption scales — the cluster analogue
of Fig. 16's single-node metrics.

Runs route through the scenario pipeline: each node count is one
``cluster-burst`` :class:`~repro.scenarios.spec.ScenarioSpec` (same
workload, different ``replicas``), so the benchmark exercises exactly
the cluster wiring ``repro run`` builds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.tables import render_table
from repro.scenarios.build import build_run
from repro.scenarios.spec import ScenarioSpec
from repro.sim.rng import RngStreams
from repro.workload.builder import RateMixture, WorkloadBuilder, WorkloadSpec
from repro.workload.lengths import NormalLengthSampler


@dataclass(frozen=True)
class ScalingPoint:
    """Cluster metrics at one node count."""

    n_instances: int
    throughput: float
    effective_throughput: float
    ttft_mean: float
    ttft_p99: float
    stall_total: float
    placement_spread: float  # max/min requests per node (1.0 = even)


def run_cluster_scaling(
    node_counts: Sequence = (1, 2, 4),
    n_requests: int = 96,
    dispatch: str = "least_loaded",
    seed: int = 0,
    rate: float = 10.0,
    horizon: float = 50_000.0,
) -> list:
    """Run the burst against increasing cluster sizes."""
    spec = WorkloadSpec(
        arrival="burst",
        n_requests=n_requests,
        burst_spread=0.25,
        lengths=NormalLengthSampler(),
        rates=RateMixture.fixed(rate),
    )
    requests = WorkloadBuilder(spec, RngStreams(seed)).build()
    points: list = []
    for n_instances in node_counts:
        run = build_run(
            ScenarioSpec(
                name=f"cluster-burst-{n_instances}x",
                system="tokenflow",
                hardware="h200",
                model="llama3-8b",
                mem_frac=0.02,
                max_batch=16,
                replicas=n_instances,
                router=dispatch,
                seed=seed,
                horizon=horizon,
            ),
            requests=requests,
        )
        report = run.execute()
        if run.is_cluster:
            counts = run.target.placement_counts()
            spread = max(counts) / max(1, min(counts)) if counts else 1.0
        else:
            spread = 1.0  # single node: placement is trivially even
        points.append(
            ScalingPoint(
                n_instances=n_instances,
                throughput=report.throughput,
                effective_throughput=report.effective_throughput,
                ttft_mean=report.ttft_mean,
                ttft_p99=report.ttft_p99,
                stall_total=report.stall_total,
                placement_spread=spread,
            )
        )
    return points


def render_scaling(points: list) -> str:
    rows = [
        [
            p.n_instances,
            round(p.throughput, 1),
            round(p.effective_throughput, 1),
            round(p.ttft_mean, 2),
            round(p.ttft_p99, 2),
            round(p.stall_total, 1),
            round(p.placement_spread, 2),
        ]
        for p in points
    ]
    return render_table(
        ["nodes", "thpt", "eff_thpt", "mean_ttft(s)", "p99_ttft(s)",
         "stall(s)", "spread"],
        rows,
        title="§8 extension: TokenFlow cluster scale-out under one burst",
    )
