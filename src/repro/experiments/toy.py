"""Buffer-balancing toy example (paper Figure 6).

A miniature system — ~40 tokens/s of decode capacity, two concurrent
decode slots — serves three streaming requests: R1 and R2 arrive at
t=0, R3 at t=2.  TokenFlow admits R3 by preempting whichever active
request has accumulated enough buffered tokens, then rotates requests
so no buffer underflows: the mechanism the paper's Fig. 6 illustrates.

The experiment records each request's buffer-occupancy trajectory so
the bench can print (and tests can assert) the balancing behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.tables import render_table
from repro.core.scheduler import TokenFlowParams
from repro.core.utility import UtilityParams
from repro.core.working_set import WorkingSetParams
from repro.gpu.hardware import HardwareSpec
from repro.gpu.models import ModelSpec
from repro.scenarios.build import build_run
from repro.scenarios.spec import ScenarioSpec
from repro.workload.request import Request

# A tiny accelerator: decode step ~50 ms regardless of batch (weight
# streaming dominates), so two decode slots give ~40 tokens/s total.
TOY_HARDWARE = HardwareSpec(
    name="toy-gpu",
    fp16_tflops=20.0,
    mem_bandwidth_gbps=53.3,
    mem_capacity_gb=4.0,
    pcie_bandwidth_gbps=25.0,
    iteration_overhead_s=0.0,
)

TOY_MODEL = ModelSpec(
    name="toy-1b",
    n_params=1.0e9,
    n_layers=16,
    hidden_size=1024,
    n_heads=16,
    n_kv_heads=4,
    head_dim=64,
)


@dataclass(frozen=True)
class ToyResult:
    """Trajectories and summary of the toy run."""

    times: np.ndarray            # sample grid
    occupancy: dict              # req_id -> occupancy series
    preemptions: int
    stall_total: float
    ttfts: dict                  # req_id -> ttft


def occupancy_series(buffer, times: Sequence) -> np.ndarray:
    """Reconstruct buffer occupancy at arbitrary times post-run."""
    gen = np.asarray(buffer.generation_times)
    con = np.asarray(buffer.consumption_times)
    times = np.asarray(list(times), dtype=float)
    delivered = np.searchsorted(gen, times, side="right")
    consumed = np.searchsorted(con, times, side="right")
    return delivered - consumed


def run_toy_example(
    rates: Sequence = (10.0, 15.0, 12.0),
    third_arrival: float = 2.0,
    output_len: int = 120,
    prompt_len: int = 32,
    sample_dt: float = 0.25,
) -> ToyResult:
    """Run the three-request toy scenario under TokenFlow."""
    if len(rates) != 3:
        raise ValueError("the toy example uses exactly three requests")
    params = TokenFlowParams(
        tick_interval=0.25,
        critical_buffer_s=1.0,
        utility=UtilityParams(gamma=4.0, stall_scale=1.0),
        working_set=WorkingSetParams(
            safety_factor=1.5, schedule_latency=0.25, initial_beta_tokens=128.0
        ),
    )
    requests = [
        Request(req_id=0, arrival_time=0.0, prompt_len=prompt_len,
                output_len=output_len, rate=rates[0]),
        Request(req_id=1, arrival_time=0.0, prompt_len=prompt_len,
                output_len=output_len, rate=rates[1]),
        Request(req_id=2, arrival_time=third_arrival, prompt_len=prompt_len,
                output_len=output_len, rate=rates[2]),
    ]
    run = build_run(
        ScenarioSpec(
            name="fig06-toy",
            system="tokenflow",
            hardware=TOY_HARDWARE,
            model=TOY_MODEL,
            mem_frac=0.02,
            max_batch=2,
            tokenflow_params=params,
            # occupancy_series() reconstructs B(t) from the full traces.
            record_token_traces=True,
            horizon=5_000.0,
        ),
        requests=requests,
    )
    report = run.execute()
    system = run.target

    horizon = max(m.finish_time or 0.0 for m in report.per_request) + 1.0
    times = np.arange(0.0, horizon, sample_dt)
    occupancy = {
        entry.request.req_id: occupancy_series(entry.buffer, times)
        for entry in system.tracker.entries()
    }
    return ToyResult(
        times=times,
        occupancy=occupancy,
        preemptions=report.preemptions,
        stall_total=report.stall_total,
        ttfts={m.req_id: m.ttft for m in report.per_request},
    )


def render_toy(result: ToyResult, step: int = 4) -> str:
    """Fig. 6-style table: buffer levels over time for R1..R3."""
    rows = []
    for idx in range(0, len(result.times), step):
        rows.append(
            [round(float(result.times[idx]), 2)]
            + [int(result.occupancy[rid][idx]) for rid in sorted(result.occupancy)]
        )
    table = render_table(
        ["t(s)", "R1_buffer", "R2_buffer", "R3_buffer"],
        rows,
        title="Fig. 6 toy example: buffer balancing",
    )
    footer = (
        f"preemptions={result.preemptions}  stall_total={result.stall_total:.2f}s  "
        f"ttfts={ {k: round(v, 2) for k, v in result.ttfts.items()} }"
    )
    return table + "\n" + footer
