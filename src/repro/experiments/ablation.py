"""Memory-manager ablation (paper Table 2).

Uses the 4090 setup (b) from Table 1 (burst b=80, long lengths) and
reports workload completion time for TokenFlow and each ablated
variant:

* **w/o Offload** — preemption drops KV; every resume recomputes.
* **w/o Write-Through** — write-back: the full context transfers at
  preemption time.
* **w/o Evict-Load Overlap** — loads serialise behind pending
  evictions.

The paper's ordering (full < no-overlap < no-write-through <
no-offload) should reproduce.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.analysis.tables import render_table
from repro.experiments.controlled import TABLE1, build_workload, serving_kwargs
from repro.experiments.runner import run_comparison
from repro.experiments.systems import ABLATION_NAMES
from repro.gpu.hardware import get_hardware


def run_ablation(
    variants: Sequence = ABLATION_NAMES,
    scale: float = 1.0,
    seed: int = 0,
    rate: float = 10.0,
    horizon: float = 50_000.0,
    pcie_gbps: Optional[float] = None,
) -> dict:
    """Run the Table 2 ablation -> {variant: RunReport}.

    ``pcie_gbps`` overrides the host-link bandwidth.  At the 4090's
    nominal 25 GB/s our roofline leaves PCIe <1% utilised, so the
    overlap ablation is indistinguishable from the full system; a
    constrained link (emulating the paper's heavier swap traffic
    relative to link capacity) makes the §5.3 technique measurable —
    see EXPERIMENTS.md.
    """
    setup = TABLE1[("rtx4090", "b")]
    requests = build_workload(setup, scale=scale, seed=seed, rate=rate)
    kwargs = serving_kwargs(setup, scale)
    if pcie_gbps is not None:
        kwargs["hardware"] = dataclasses.replace(
            get_hardware(kwargs["hardware"]), pcie_bandwidth_gbps=pcie_gbps
        )
    return run_comparison(variants, requests, horizon=horizon, **kwargs)


def completion_times(reports: dict) -> dict:
    """Makespan (workload completion time) per variant, Table 2's metric."""
    return {name: report.makespan for name, report in reports.items()}


def render_ablation(reports: dict) -> str:
    rows = [
        [
            name,
            round(report.makespan, 2),
            round(report.effective_throughput, 1),
            round(report.ttft_mean, 2),
            round(report.stall_total, 1),
            report.preemptions,
        ]
        for name, report in reports.items()
    ]
    return render_table(
        ["variant", "completion(s)", "eff_thpt", "mean_ttft(s)", "stall(s)", "preempts"],
        rows,
        title="Table 2: hierarchical memory management ablation",
    )
