"""Scheduling-pass overhead quantification (paper §7.6).

Measures the wall-clock cost of one scheduling pass for each policy on
a loaded system snapshot.  The paper reports ~0.07 ms for SGLang's
pass and ~0.4 ms for TokenFlow's — both negligible next to iteration
compute and KV I/O.  Our absolute numbers depend on the host CPU; the
assertion that matters is that both stay far below an iteration time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.tables import render_table
from repro.scenarios.build import build_run
from repro.scenarios.spec import ScenarioSpec
from repro.sim.rng import RngStreams
from repro.workload.request import clone_requests
from repro.workload.builder import RateMixture, WorkloadBuilder, WorkloadSpec
from repro.workload.lengths import NormalLengthSampler


@dataclass(frozen=True)
class OverheadResult:
    """Measured per-pass scheduling cost."""

    system: str
    pass_ms_mean: float
    passes_timed: int
    working_set_size: int


def _loaded_system(name: str, n_requests: int, seed: int):
    """Build a system and drive it into the middle of a burst."""
    spec = WorkloadSpec(
        arrival="burst",
        n_requests=n_requests,
        burst_spread=0.25,
        lengths=NormalLengthSampler(),
        rates=RateMixture.fixed(10.0),
    )
    requests = WorkloadBuilder(spec, RngStreams(seed)).build()
    # Built through the scenario pipeline but driven only mid-burst
    # (the measurement wants a loaded snapshot, not a finished run).
    run = build_run(
        ScenarioSpec(name=name, system=name, hardware="h200",
                     model="llama3-8b", mem_frac=0.1, max_batch=48),
        requests=requests,
    )
    system = run.target
    system.submit(clone_requests(requests))
    system.run(until=8.0)  # mid-burst: queues and buffers populated
    return system


def measure_overhead(
    systems: Sequence = ("sglang", "andes", "tokenflow"),
    n_requests: int = 120,
    repeats: int = 50,
    seed: int = 0,
) -> list:
    """Time scheduling passes on mid-burst snapshots."""
    results: list = []
    for name in systems:
        system = _loaded_system(name, n_requests, seed)
        view = system.view()
        scheduler = system.scheduler
        # Warm up (estimator state, caches).
        if scheduler.tick_interval is not None:
            scheduler.on_tick(view)
        scheduler.on_iteration_boundary(view)
        start = time.perf_counter()
        for _ in range(repeats):
            if scheduler.tick_interval is not None:
                scheduler.on_tick(view)
            else:
                scheduler.on_iteration_boundary(view)
        elapsed = time.perf_counter() - start
        ws = (
            len(view.waiting) + len(view.prefill_queue) + len(view.running)
            + len(view.preempted) + len(view.loading)
        )
        results.append(
            OverheadResult(
                system=name,
                pass_ms_mean=elapsed / repeats * 1e3,
                passes_timed=repeats,
                working_set_size=ws,
            )
        )
    return results


def render_overhead(results: list) -> str:
    rows = [
        [r.system, round(r.pass_ms_mean, 4), r.passes_timed, r.working_set_size]
        for r in results
    ]
    return render_table(
        ["system", "pass_ms", "n_passes", "working_set"],
        rows,
        title="§7.6 scheduling-pass overhead",
    )
