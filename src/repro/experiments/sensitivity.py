"""Hyperparameter sensitivity (paper Figures 22 and 23).

* Fig. 22 — the reschedule interval Δt (0.5–1.5 s): shorter intervals
  marginally improve effective throughput and TTFT at higher
  scheduling overhead.
* Fig. 23 — buffer conservativeness μ: high values behave cautiously
  (SGLang-like, fewer preemptions); low values adapt aggressively at
  some stutter risk.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.analysis.tables import render_table
from repro.core.scheduler import TokenFlowParams
from repro.core.working_set import WorkingSetParams
from repro.experiments.runner import run_comparison
from repro.sim.rng import RngStreams
from repro.workload.builder import RateMixture, WorkloadBuilder, WorkloadSpec
from repro.workload.lengths import NormalLengthSampler


@dataclass(frozen=True)
class SensitivityPoint:
    """One knob setting's headline metrics."""

    setting: float
    effective_throughput: float
    ttft_mean: float
    ttft_p99: float
    stall_total: float
    preemptions: int


def _burst_workload(n_requests: int, rate: float, seed: int) -> list:
    spec = WorkloadSpec(
        arrival="burst",
        n_requests=n_requests,
        burst_spread=0.25,
        lengths=NormalLengthSampler(),
        rates=RateMixture.fixed(rate),
    )
    return WorkloadBuilder(spec, RngStreams(seed)).build()


def _run_tokenflow(params: TokenFlowParams, requests, serving_kwargs: dict):
    reports = run_comparison(
        ("tokenflow",), requests, tokenflow_params=params, **serving_kwargs
    )
    return reports["tokenflow"]


def _sweep_reports(
    settings_params: list, requests: list, serving: dict, jobs: int
) -> list:
    """One report per ``(setting, TokenFlowParams)``, in input order.

    ``jobs > 1`` runs every knob setting as one inline-cell matrix on
    worker processes — the sweep points are independent deterministic
    runs on copies of the same workload, so results match the serial
    loop bit-for-bit.
    """
    if jobs > 1 and len(settings_params) > 1:
        from repro.experiments.runner import run_comparison_cells
        from repro.scenarios.spec import ScenarioSpec

        specs = [
            ScenarioSpec(name=f"tokenflow@{setting:g}", system="tokenflow",
                         tokenflow_params=params, **serving)
            for setting, params in settings_params
        ]
        return run_comparison_cells(specs, requests, jobs=jobs)
    return [
        _run_tokenflow(params, requests, serving)
        for _setting, params in settings_params
    ]


DEFAULT_SERVING = {
    "hardware": "h200",
    "model": "llama3-8b",
    "mem_frac": 0.1,
    "max_batch": 48,
}


def run_interval_sweep(
    intervals: Sequence = (0.5, 1.0, 1.5),
    n_requests: int = 120,
    rate: float = 10.0,
    seed: int = 0,
    serving_kwargs: dict = None,
    jobs: int = 1,
) -> list:
    """Fig. 22: sweep the reschedule interval Δt."""
    serving = dict(DEFAULT_SERVING if serving_kwargs is None else serving_kwargs)
    requests = _burst_workload(n_requests, rate, seed)
    settings_params = [
        (float(interval), TokenFlowParams(tick_interval=float(interval)))
        for interval in intervals
    ]
    reports = _sweep_reports(settings_params, requests, serving, jobs)
    return [
        SensitivityPoint(
            setting=setting,
            effective_throughput=report.effective_throughput,
            ttft_mean=report.ttft_mean,
            ttft_p99=report.ttft_p99,
            stall_total=report.stall_total,
            preemptions=report.preemptions,
        )
        for (setting, _params), report in zip(settings_params, reports)
    ]


def run_conservativeness_sweep(
    mus: Sequence = (1.0, 20.0),
    n_requests: int = 120,
    rate: float = 10.0,
    seed: int = 0,
    serving_kwargs: dict = None,
    jobs: int = 1,
) -> list:
    """Fig. 23: sweep buffer conservativeness μ."""
    serving = dict(DEFAULT_SERVING if serving_kwargs is None else serving_kwargs)
    requests = _burst_workload(n_requests, rate, seed)
    settings_params = [
        (float(mu),
         TokenFlowParams(working_set=WorkingSetParams(safety_factor=float(mu))))
        for mu in mus
    ]
    reports = _sweep_reports(settings_params, requests, serving, jobs)
    return [
        SensitivityPoint(
            setting=setting,
            effective_throughput=report.effective_throughput,
            ttft_mean=report.ttft_mean,
            ttft_p99=report.ttft_p99,
            stall_total=report.stall_total,
            preemptions=report.preemptions,
        )
        for (setting, _params), report in zip(settings_params, reports)
    ]


def render_sensitivity(points: list, knob: str) -> str:
    rows = [
        [
            p.setting,
            round(p.effective_throughput, 1),
            round(p.ttft_mean, 2),
            round(p.ttft_p99, 2),
            round(p.stall_total, 1),
            p.preemptions,
        ]
        for p in points
    ]
    return render_table(
        [knob, "eff_thpt", "mean_ttft(s)", "p99_ttft(s)", "stall(s)", "preempts"],
        rows,
        title=f"Sensitivity to {knob}",
    )
