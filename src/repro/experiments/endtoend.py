"""End-to-end trace-driven comparisons (Figs. 12, 13, 21).

* Fig. 12 — H200 + Llama3-8B on BurstGPT-like and production traces.
* Fig. 13 — A6000 + Qwen2.5-7B on the same traces.
* Fig. 21 — Huawei Ascend 910B under a bursty workload.

We synthesize the traces (no network access to the released datasets;
DESIGN.md §2).  The BurstGPT-shaped workload is composed of a Poisson
baseline plus *pinned* burst episodes (flash crowds at fixed trace
positions): BurstGPT's published structure is "steady traffic + burst
periods", and pinning the episodes keeps every system comparison and
re-run on identical arrival pressure.  Lengths are ShareGPT-like
log-normal.

Memory note: our synthetic outputs are several times shorter than the
paper's (median ~512 vs means of 2-4k tokens), so the KV pools use a
proportionally smaller mem-frac to recreate the paper's *relative*
memory pressure — the regime where scheduling policy matters.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.tables import render_table
from repro.experiments.runner import run_comparison
from repro.experiments.systems import SYSTEM_NAMES
from repro.sim.rng import RngStreams
from repro.workload.arrivals import burst_arrivals, poisson_arrivals
from repro.workload.builder import RateMixture, WorkloadBuilder, WorkloadSpec
from repro.workload.lengths import LogNormalLengthSampler
from repro.workload.production import ProductionTraceGenerator
from repro.workload.request import Request

# Per-testbed serving settings (paper §7.2) plus trace pressure knobs.
TESTBEDS: dict = {
    "h200-llama3-8b": {
        "hardware": "h200", "model": "llama3-8b", "mem_frac": 0.10,
        "max_batch": 64, "base_rate": 2.0, "burst_size": 120,
    },
    "a6000-qwen2.5-7b": {
        "hardware": "a6000", "model": "qwen2.5-7b", "mem_frac": 0.10,
        "max_batch": 32, "base_rate": 0.5, "burst_size": 36,
    },
    "ascend910b-llama3-8b": {
        "hardware": "ascend910b", "model": "llama3-8b", "mem_frac": 0.10,
        "max_batch": 48, "base_rate": 1.2, "burst_size": 64,
    },
}

# Burst episodes hit at these fractions of the trace duration.
BURST_POSITIONS = (0.2, 0.6)

_TRACE_LENGTHS = LogNormalLengthSampler(
    prompt_median=256.0, prompt_sigma=0.8, output_median=512.0, output_sigma=0.7
)


def _settings(testbed: str) -> dict:
    if testbed not in TESTBEDS:
        raise KeyError(f"unknown testbed {testbed!r}; known: {sorted(TESTBEDS)}")
    return TESTBEDS[testbed]


def build_trace_workload(
    testbed: str,
    trace: str = "burstgpt",
    duration: float = 120.0,
    scale: float = 1.0,
    seed: int = 0,
    rate: float = 10.0,
) -> list:
    """Requests for one testbed/trace combination."""
    settings = _settings(testbed)
    if trace == "burstgpt":
        return _burst_trace(settings, duration, scale, seed, rate)
    if trace == "production":
        spec = WorkloadSpec(
            arrival="production",
            n_requests=None,
            duration=duration,
            lengths=_TRACE_LENGTHS,
            rates=RateMixture.fixed(rate),
            production=ProductionTraceGenerator(
                mean_rate=settings["base_rate"] * scale, period=duration
            ),
        )
        return WorkloadBuilder(spec, RngStreams(seed)).build()
    raise ValueError(f"trace must be 'burstgpt' or 'production', got {trace!r}")


def _burst_trace(
    settings: dict, duration: float, scale: float, seed: int, rate: float
) -> list:
    """Poisson baseline + pinned flash-crowd episodes."""
    streams = RngStreams(seed)
    arrival_rng = streams.stream("arrivals")
    base = poisson_arrivals(
        max(0.1, settings["base_rate"] * scale), duration, arrival_rng
    )
    bursts = [
        burst_arrivals(
            max(4, int(settings["burst_size"] * scale)),
            start=position * duration,
            spread=1.0,
            rng=arrival_rng,
        )
        for position in BURST_POSITIONS
    ]
    arrivals = np.sort(np.concatenate([base] + bursts))
    length_rng = streams.stream("lengths")
    requests = []
    for req_id, arrival in enumerate(arrivals):
        prompt_len, output_len = _TRACE_LENGTHS.sample(length_rng)
        requests.append(
            Request(
                req_id=req_id,
                arrival_time=float(arrival),
                prompt_len=prompt_len,
                output_len=output_len,
                rate=rate,
            )
        )
    return requests


def run_endtoend(
    testbed: str,
    trace: str = "burstgpt",
    systems: Sequence = SYSTEM_NAMES,
    duration: float = 120.0,
    scale: float = 1.0,
    seed: int = 0,
    horizon: float = 50_000.0,
) -> dict:
    """Run the end-to-end comparison -> {system: RunReport}."""
    requests = build_trace_workload(
        testbed, trace=trace, duration=duration, scale=scale, seed=seed
    )
    settings = _settings(testbed)
    return run_comparison(
        systems,
        requests,
        hardware=settings["hardware"],
        model=settings["model"],
        mem_frac=settings["mem_frac"],
        max_batch=settings["max_batch"],
        horizon=horizon,
    )


def render_endtoend(testbed: str, trace: str, reports: dict) -> str:
    """Fig. 12/13/21-style summary table."""
    rows = [report.summary_row() for report in reports.values()]
    first = next(iter(reports.values()))
    return render_table(
        type(first).summary_headers(), rows, title=f"{testbed} / {trace} trace"
    )


def improvement_summary(reports: dict, baseline: str = "sglang") -> dict:
    """TokenFlow-vs-baseline deltas (the paper's headline percentages)."""
    if baseline not in reports or "tokenflow" not in reports:
        raise KeyError("need both the baseline and tokenflow reports")
    base, tf = reports[baseline], reports["tokenflow"]
    return {
        "effective_throughput_gain": tf.effective_throughput / base.effective_throughput - 1.0,
        "throughput_ratio": tf.throughput / base.throughput,
        "ttft_mean_reduction": 1.0 - tf.ttft_mean / base.ttft_mean,
        "ttft_p99_reduction": 1.0 - tf.ttft_p99 / base.ttft_p99,
        "qos_gain": tf.qos / base.qos - 1.0 if base.qos > 0 else float("nan"),
    }
