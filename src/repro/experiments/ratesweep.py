"""Effective throughput across generation speeds (paper Figure 20).

Sweeps the required consumption rate (20/25/30 tokens/s in the paper)
and compares SGLang vs TokenFlow effective throughput; the paper
reports ~+49-54 % gains for TokenFlow at every speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.tables import render_table
from repro.experiments.runner import run_comparison
from repro.sim.rng import RngStreams
from repro.workload.builder import RateMixture, WorkloadBuilder, WorkloadSpec
from repro.workload.lengths import NormalLengthSampler


@dataclass(frozen=True)
class SweepPoint:
    """One generation-speed measurement."""

    rate: float
    baseline_eff: float
    tokenflow_eff: float

    @property
    def gain(self) -> float:
        if self.baseline_eff <= 0:
            return float("nan")
        return self.tokenflow_eff / self.baseline_eff - 1.0


def run_rate_sweep(
    rates: Sequence = (20.0, 25.0, 30.0),
    n_requests: int = 120,
    hardware: str = "h200",
    model: str = "llama3-8b",
    mem_frac: float = 0.1,
    max_batch: int = 48,
    baseline: str = "sglang",
    seed: int = 0,
    jobs: int = 1,
) -> list:
    """Sweep consumption rates -> list of :class:`SweepPoint`.

    ``jobs > 1`` runs the whole rate × system grid as one matrix on
    worker processes (results are bit-identical to the serial sweep).
    """
    def workload(rate: float) -> list:
        spec = WorkloadSpec(
            arrival="burst",
            n_requests=n_requests,
            burst_spread=0.25,
            lengths=NormalLengthSampler(),
            rates=RateMixture.fixed(rate),
        )
        return WorkloadBuilder(spec, RngStreams(seed)).build()

    serving = dict(hardware=hardware, model=model, mem_frac=mem_frac,
                   max_batch=max_batch)

    if jobs > 1:
        from repro.experiments.runner import run_spec_cells
        from repro.scenarios.spec import ScenarioSpec

        pairs = []
        for rate in rates:
            rate_requests = tuple(workload(rate))
            for system in (baseline, "tokenflow"):
                pairs.append((
                    ScenarioSpec(name=f"{system}@rate={rate:g}",
                                 system=system, **serving),
                    rate_requests,
                ))
        reports = run_spec_cells(pairs, jobs=jobs)
        return [
            SweepPoint(
                rate=rate,
                baseline_eff=reports[2 * i].effective_throughput,
                tokenflow_eff=reports[2 * i + 1].effective_throughput,
            )
            for i, rate in enumerate(rates)
        ]

    points: list = []
    for rate in rates:
        reports = run_comparison(
            (baseline, "tokenflow"), workload(rate), **serving
        )
        points.append(
            SweepPoint(
                rate=rate,
                baseline_eff=reports[baseline].effective_throughput,
                tokenflow_eff=reports["tokenflow"].effective_throughput,
            )
        )
    return points


def render_rate_sweep(points: list, baseline: str = "sglang") -> str:
    rows = [
        [
            p.rate,
            round(p.baseline_eff, 1),
            round(p.tokenflow_eff, 1),
            f"{p.gain * 100:+.1f}%",
        ]
        for p in points
    ]
    return render_table(
        ["speed(tok/s)", f"{baseline}_eff", "tokenflow_eff", "gain"],
        rows,
        title="Fig. 20: effective throughput across generation speeds",
    )
