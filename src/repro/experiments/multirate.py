"""Multi-rate request scheduling (paper Figure 19).

A mixed-rate burst — 40 % of requests at one consumption rate, 60 % at
another — served by TokenFlow.  The paper's point: each request class
automatically settles at its own target delivery rate, because
higher-rate requests drain their buffers faster and thereby gain
implicit priority.  No per-class configuration exists anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.tables import render_table
from repro.scenarios.build import build_run
from repro.scenarios.spec import ScenarioSpec
from repro.sim.rng import RngStreams
from repro.workload.builder import RateMixture, WorkloadBuilder, WorkloadSpec
from repro.workload.lengths import NormalLengthSampler


@dataclass(frozen=True)
class RateClassStats:
    """Delivery statistics for one consumption-rate class."""

    rate: float
    n_requests: int
    delivery_rate_mean: float    # achieved consumption tokens/s
    delivery_rate_std: float
    stall_mean: float


def run_multirate(
    rates: Sequence = (15.0, 20.0),
    weights: Sequence = (0.4, 0.6),
    n_requests: int = 60,
    hardware: str = "h200",
    model: str = "llama3-8b",
    mem_frac: float = 0.3,
    max_batch: int = 64,
    system: str = "tokenflow",
    seed: int = 0,
) -> dict:
    """Run the mixed-rate burst -> {rate: RateClassStats}."""
    spec = WorkloadSpec(
        arrival="burst",
        n_requests=n_requests,
        burst_spread=0.25,
        lengths=NormalLengthSampler(
            prompt_mean=512, prompt_std=128, output_mean=1024, output_std=192
        ),
        rates=RateMixture(rates=tuple(rates), weights=tuple(weights)),
    )
    requests = WorkloadBuilder(spec, RngStreams(seed)).build()
    # Per-token consumption timestamps feed the achieved-rate stats.
    run = build_run(
        ScenarioSpec(name=system, system=system, hardware=hardware,
                     model=model, mem_frac=mem_frac, max_batch=max_batch,
                     record_token_traces=True),
        requests=requests,
    )
    run.execute()
    instance = run.target

    by_rate: dict = {rate: [] for rate in rates}
    stalls: dict = {rate: [] for rate in rates}
    for entry in instance.tracker.entries():
        request, buffer = entry.request, entry.buffer
        consume = buffer.consumption_times
        if len(consume) > 1:
            achieved = (len(consume) - 1) / (consume[-1] - consume[0])
            by_rate[request.rate].append(achieved)
        stalls[request.rate].append(buffer.stall_time)
    stats: dict = {}
    for rate in rates:
        achieved = np.asarray(by_rate[rate])
        stats[rate] = RateClassStats(
            rate=rate,
            n_requests=len(achieved),
            delivery_rate_mean=float(achieved.mean()) if achieved.size else float("nan"),
            delivery_rate_std=float(achieved.std()) if achieved.size else float("nan"),
            stall_mean=float(np.mean(stalls[rate])) if stalls[rate] else 0.0,
        )
    return stats


def render_multirate(stats: dict) -> str:
    rows = [
        [
            cls.rate,
            cls.n_requests,
            round(cls.delivery_rate_mean, 2),
            round(cls.delivery_rate_std, 2),
            round(cls.stall_mean, 2),
        ]
        for cls in stats.values()
    ]
    return render_table(
        ["target(tok/s)", "n", "achieved(tok/s)", "std", "stall_mean(s)"],
        rows,
        title="Fig. 19: multi-rate scheduling (each class holds its target)",
    )
