"""Shared experiment driving: request cloning and A/B comparisons.

Every comparison in the paper runs each system on the *same* workload;
:func:`clone_requests` gives each system a fresh copy of the request
objects (runtime state is per-system), and :func:`run_comparison`
drives all systems to completion with a safety horizon.

Both helpers route through the scenario pipeline
(:func:`repro.scenarios.build.build_run`): a comparison is one ad-hoc
:class:`~repro.scenarios.spec.ScenarioSpec` per system, executed on an
identical workload copy.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.scenarios.build import ScenarioRun, build_run
from repro.scenarios.spec import ScenarioSpec
from repro.serving.metrics import RunReport
from repro.serving.server import ServingSystem
from repro.workload.request import clone_requests

__all__ = ["clone_requests", "run_single", "run_comparison"]


def run_single(
    system: ServingSystem,
    requests: Sequence,
    horizon: float = 50_000.0,
) -> RunReport:
    """Run one already-built system on one workload and return its report."""
    run = ScenarioRun(
        spec=ScenarioSpec(name=system.scheduler.name, horizon=horizon),
        target=system,
        requests=list(requests),
    )
    return run.execute()


def run_comparison(
    system_names: Sequence,
    requests: Sequence,
    hardware: str = "h200",
    model: str = "llama3-8b",
    mem_frac: Optional[float] = None,
    max_batch: int = 64,
    horizon: float = 50_000.0,
    tokenflow_params=None,
) -> dict:
    """Run each named system on identical workload copies.

    Returns ``{system_name: RunReport}`` in input order.
    """
    reports: dict = {}
    for name in system_names:
        spec = ScenarioSpec(
            name=name,
            system=name,
            hardware=hardware,
            model=model,
            mem_frac=mem_frac,
            max_batch=max_batch,
            horizon=horizon,
            tokenflow_params=tokenflow_params,
        )
        reports[name] = build_run(spec, requests=list(requests)).execute()
    return reports
