"""Shared experiment driving: request cloning and A/B comparisons.

Every comparison in the paper runs each system on the *same* workload;
:func:`clone_requests` gives each system a fresh copy of the request
objects (runtime state is per-system), and :func:`run_comparison`
drives all systems to completion with a safety horizon.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.systems import build_system
from repro.serving.metrics import RunReport
from repro.serving.server import ServingSystem
from repro.workload.request import Request


def clone_requests(requests: Sequence) -> list:
    """Fresh copies of the workload attributes of ``requests``."""
    return [
        Request(
            req_id=r.req_id,
            arrival_time=r.arrival_time,
            prompt_len=r.prompt_len,
            output_len=r.output_len,
            rate=r.rate,
            is_agent=r.is_agent,
        )
        for r in requests
    ]


def run_single(
    system: ServingSystem,
    requests: Sequence,
    horizon: float = 50_000.0,
) -> RunReport:
    """Run one system on one workload and return its report."""
    system.submit(clone_requests(requests))
    system.run(until=horizon)
    if system.unfinished:
        raise RuntimeError(
            f"{system.scheduler.name}: {system.unfinished} requests unfinished "
            f"at horizon {horizon}s — raise the horizon or shrink the workload"
        )
    return system.report()


def run_comparison(
    system_names: Sequence,
    requests: Sequence,
    hardware: str = "h200",
    model: str = "llama3-8b",
    mem_frac: Optional[float] = None,
    max_batch: int = 64,
    horizon: float = 50_000.0,
    tokenflow_params=None,
) -> dict:
    """Run each named system on identical workload copies.

    Returns ``{system_name: RunReport}`` in input order.
    """
    reports: dict = {}
    for name in system_names:
        system = build_system(
            name,
            hardware=hardware,
            model=model,
            mem_frac=mem_frac,
            max_batch=max_batch,
            tokenflow_params=tokenflow_params,
        )
        reports[name] = run_single(system, requests, horizon=horizon)
    return reports
