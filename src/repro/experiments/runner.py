"""Shared experiment driving: request cloning and A/B comparisons.

Every comparison in the paper runs each system on the *same* workload;
:func:`clone_requests` gives each system a fresh copy of the request
objects (runtime state is per-system), and :func:`run_comparison`
drives all systems to completion with a safety horizon.

Both helpers route through the scenario pipeline
(:func:`repro.scenarios.build.build_run`): a comparison is one ad-hoc
:class:`~repro.scenarios.spec.ScenarioSpec` per system, executed on an
identical workload copy.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.scenarios.build import ScenarioRun, build_run
from repro.scenarios.spec import ScenarioSpec
from repro.serving.metrics import RunReport
from repro.serving.server import ServingSystem
from repro.workload.request import clone_requests

__all__ = ["clone_requests", "run_single", "run_comparison",
           "run_comparison_cells", "run_spec_cells"]


def run_single(
    system: ServingSystem,
    requests: Sequence,
    horizon: float = 50_000.0,
) -> RunReport:
    """Run one already-built system on one workload and return its report."""
    run = ScenarioRun(
        spec=ScenarioSpec(name=system.scheduler.name, horizon=horizon),
        target=system,
        requests=list(requests),
    )
    return run.execute()


def run_comparison(
    system_names: Sequence,
    requests: Sequence,
    hardware: str = "h200",
    model: str = "llama3-8b",
    mem_frac: Optional[float] = None,
    max_batch: int = 64,
    horizon: float = 50_000.0,
    tokenflow_params=None,
    fuse_decode: bool = True,
    vectorize_decode: bool = True,
    jobs: int = 1,
) -> dict:
    """Run each named system on identical workload copies.

    Returns ``{system_name: RunReport}`` in input order.  ``jobs > 1``
    executes the systems as one inline matrix on worker processes (the
    per-system reports are bit-identical to the serial path — each
    system is an independent deterministic run on its own workload
    copy).
    """
    specs = [
        ScenarioSpec(
            name=name,
            system=name,
            hardware=hardware,
            model=model,
            mem_frac=mem_frac,
            max_batch=max_batch,
            horizon=horizon,
            tokenflow_params=tokenflow_params,
            fuse_decode=fuse_decode,
            vectorize_decode=vectorize_decode,
        )
        for name in system_names
    ]
    if jobs > 1 and len(specs) > 1:
        return dict(zip(
            [spec.name for spec in specs],
            run_comparison_cells(specs, requests, jobs=jobs),
        ))
    return {
        spec.name: build_run(spec, requests=list(requests)).execute()
        for spec in specs
    }


def run_spec_cells(pairs: Sequence, jobs: int = 1) -> list:
    """Run ``(spec, requests)`` pairs via the orchestrator.

    The parallel batch path behind :func:`run_comparison` and the
    figure sweeps: each workloadless spec becomes one
    :class:`~repro.orchestration.matrix.InlineCell` carrying its
    request list, executed across ``jobs`` worker processes.  Returns
    the per-spec :class:`RunReport` list in input order (the matrix
    report preserves expansion order regardless of completion order).

    Raises ``RuntimeError`` if any cell failed — callers expect every
    batch leg to finish, exactly like their serial loops.
    """
    # Lazy: the orchestrator imports the scenarios layer, which reaches
    # back into the experiment modules through the registry.
    from repro.orchestration import InlineCell, run_matrix

    cells = [
        InlineCell(spec=spec, requests=tuple(cell_requests),
                   label=spec.name or spec.system)
        for spec, cell_requests in pairs
    ]
    matrix = run_matrix(cells, jobs=jobs)
    failed = [cell for cell in matrix.cells if not cell.ok]
    if failed:
        details = "; ".join(f"{c.cell_id}: {c.error}" for c in failed)
        raise RuntimeError(f"{len(failed)} batch cell(s) failed: {details}")
    return [cell.report for cell in matrix.cells]


def run_comparison_cells(
    specs: Sequence,
    requests: Sequence,
    jobs: int = 1,
) -> list:
    """:func:`run_spec_cells` with one shared workload for every spec."""
    shared = tuple(requests)
    return run_spec_cells([(spec, shared) for spec in specs], jobs=jobs)
