"""Experiment runners: one per paper table/figure.

Each module exposes a ``run_*`` function returning structured results
plus a ``render_*`` helper producing the ASCII table/series the paper
reports.  The benchmark harness under ``benchmarks/`` is a thin layer
over these runners, so every experiment is also directly runnable from
Python (see ``examples/``).

Index (see DESIGN.md §4 for the full mapping):

================  ===========================================
Module            Paper content
================  ===========================================
``micro``         Fig. 2  — SGLang burst micro-benchmark
``toy``           Fig. 6  — buffer-balancing toy example
``endtoend``      Figs. 12/13/21 — end-to-end comparisons
``temporal``      Figs. 14/15 — queued/running timelines
``controlled``    Table 1 + Figs. 16/17 — controlled loads
``timeline``      Fig. 18 — token generation timelines
``multirate``     Fig. 19 — multi-rate scheduling
``ratesweep``     Fig. 20 — generation-speed sweep
``sensitivity``   Figs. 22/23 — Δt and conservativeness
``ablation``      Table 2 — memory-manager ablation
``overhead``      §7.6 — scheduling-pass overhead
================  ===========================================
"""

from repro.experiments.runner import clone_requests, run_comparison, run_single
from repro.experiments.systems import (
    ABLATION_NAMES,
    EXTRA_SYSTEM_NAMES,
    SYSTEM_NAMES,
    build_system,
    make_kv_config,
    make_scheduler,
)

__all__ = [
    "SYSTEM_NAMES",
    "EXTRA_SYSTEM_NAMES",
    "ABLATION_NAMES",
    "make_scheduler",
    "make_kv_config",
    "build_system",
    "clone_requests",
    "run_comparison",
    "run_single",
]
