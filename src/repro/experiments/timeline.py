"""Token-generation timelines (paper Figure 18).

Runs a small burst under SGLang and TokenFlow and extracts per-request
token trajectories.  SGLang shows head-of-line blocking — later
requests wait for earlier ones — while TokenFlow starts every stream
early and paces each near its required speed, with visible plateaus
where a request was preempted on its buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.tables import render_table
from repro.scenarios.build import build_run
from repro.scenarios.spec import ScenarioSpec
from repro.sim.rng import RngStreams
from repro.workload.builder import RateMixture, WorkloadBuilder, WorkloadSpec
from repro.workload.lengths import NormalLengthSampler


@dataclass(frozen=True)
class TimelineResult:
    """Per-system token trajectories."""

    system: str
    ttfts: dict              # req_id -> ttft
    token_times: dict        # req_id -> array of generation timestamps
    required_rates: dict     # req_id -> tokens/s


def run_timelines(
    systems: Sequence = ("sglang", "tokenflow"),
    n_requests: int = 12,
    rate: float = 10.0,
    hardware: str = "rtx4090",
    model: str = "llama3-8b",
    max_batch: int = 4,
    seed: int = 0,
) -> dict:
    """Run the burst under each system -> {name: TimelineResult}."""
    spec = WorkloadSpec(
        arrival="burst",
        n_requests=n_requests,
        burst_spread=0.1,
        lengths=NormalLengthSampler(
            prompt_mean=384, prompt_std=64, output_mean=512, output_std=96
        ),
        rates=RateMixture.fixed(rate),
    )
    requests = WorkloadBuilder(spec, RngStreams(seed)).build()
    results: dict = {}
    for name in systems:
        run = build_run(
            ScenarioSpec(name=name, system=name, hardware=hardware,
                         model=model, max_batch=max_batch),
            requests=requests,
        )
        run.execute()
        system = run.target
        token_times = {}
        ttfts = {}
        rates = {}
        for entry in system.tracker.entries():
            request = entry.request
            token_times[request.req_id] = np.asarray(request.token_times)
            ttfts[request.req_id] = request.ttft
            rates[request.req_id] = request.rate
        results[name] = TimelineResult(
            system=name, ttfts=ttfts, token_times=token_times, required_rates=rates
        )
    return results


def tokens_at(times: np.ndarray, grid: Sequence) -> np.ndarray:
    """Cumulative token count at each grid point."""
    return np.searchsorted(times, np.asarray(list(grid), dtype=float), side="right")


def render_timelines(results: dict, grid_step: float = 2.0, max_requests: int = 6) -> str:
    """Fig. 18-style table: cumulative tokens per request over time."""
    blocks = []
    for name, result in results.items():
        horizon = max(
            (float(t[-1]) for t in result.token_times.values() if len(t)), default=0.0
        )
        grid = np.arange(0.0, horizon + grid_step, grid_step)
        req_ids = sorted(result.token_times)[:max_requests]
        rows = []
        for t in grid:
            rows.append(
                [round(float(t), 1)]
                + [int(tokens_at(result.token_times[rid], [t])[0]) for rid in req_ids]
            )
        blocks.append(
            render_table(
                ["t(s)"] + [f"req{rid}" for rid in req_ids],
                rows,
                title=f"Fig. 18 token timeline — {name} "
                f"(mean TTFT {np.mean([v for v in result.ttfts.values() if v is not None]):.2f}s)",
            )
        )
    return "\n\n".join(blocks)
