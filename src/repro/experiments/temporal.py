"""Temporal queue dynamics (paper Figures 14 and 15).

Stress-tests Qwen2.5-32B on the H200 with a BurstGPT-like trace and
records the number of queued and running requests over time for each
system.  TokenFlow should show fewer queued requests and higher
concurrency at peaks than the baselines.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.tables import render_table
from repro.experiments.systems import SYSTEM_NAMES
from repro.scenarios.build import build_run
from repro.scenarios.spec import ScenarioSpec
from repro.sim.rng import RngStreams
from repro.workload.builder import RateMixture, WorkloadBuilder, WorkloadSpec
from repro.workload.burstgpt import BurstGPTTraceGenerator
from repro.workload.lengths import LogNormalLengthSampler


def build_stress_trace(
    duration: float = 240.0,
    base_rate: float = 0.5,
    seed: int = 0,
    rate: float = 10.0,
) -> list:
    """BurstGPT-like stress trace for the 32B model."""
    spec = WorkloadSpec(
        arrival="burstgpt",
        n_requests=None,
        duration=duration,
        lengths=LogNormalLengthSampler(
            prompt_median=256.0, prompt_sigma=0.8,
            output_median=512.0, output_sigma=0.7,
        ),
        rates=RateMixture.fixed(rate),
        burstgpt=BurstGPTTraceGenerator(
            base_rate=base_rate,
            burst_rate_multiplier=6.0,
            burst_duration=15.0,
            burst_frequency=1.0 / 60.0,
        ),
    )
    return WorkloadBuilder(spec, RngStreams(seed)).build()


def binned_timeline(timeline: list, bin_s: float, horizon: float) -> dict:
    """Average (queued, running) per time bin."""
    edges = np.arange(0.0, horizon + bin_s, bin_s)
    queued_sum = np.zeros(len(edges) - 1)
    running_sum = np.zeros(len(edges) - 1)
    counts = np.zeros(len(edges) - 1)
    for t, queued, running in timeline:
        idx = min(int(t // bin_s), len(edges) - 2)
        queued_sum[idx] += queued
        running_sum[idx] += running
        counts[idx] += 1
    with np.errstate(invalid="ignore"):
        queued = np.where(counts > 0, queued_sum / np.maximum(counts, 1), 0.0)
        running = np.where(counts > 0, running_sum / np.maximum(counts, 1), 0.0)
    centres = (edges[:-1] + edges[1:]) / 2.0
    return {"t": centres, "queued": queued, "running": running}


def run_temporal(
    systems: Sequence = SYSTEM_NAMES,
    duration: float = 240.0,
    base_rate: float = 0.5,
    bin_s: float = 10.0,
    seed: int = 0,
    hardware: str = "h200",
    model: str = "qwen2.5-32b",
    max_batch: int = 48,
    horizon: float = 50_000.0,
) -> dict:
    """Per-system binned queued/running series plus peak summaries."""
    requests = build_stress_trace(duration=duration, base_rate=base_rate, seed=seed)
    results: dict = {}
    for name in systems:
        run = build_run(
            ScenarioSpec(name=name, system=name, hardware=hardware,
                         model=model, max_batch=max_batch, horizon=horizon),
            requests=requests,
        )
        report = run.execute()
        series = binned_timeline(report.timeline, bin_s, report.makespan)
        series["peak_queued"] = float(np.max(series["queued"])) if len(series["queued"]) else 0.0
        series["mean_running"] = float(np.mean(series["running"])) if len(series["running"]) else 0.0
        results[name] = series
    return results


def render_temporal(results: dict, metric: str = "queued") -> str:
    """Fig. 14/15-style table: one column per system over time bins."""
    names = list(results)
    length = min(len(results[name]["t"]) for name in names)
    rows = []
    for idx in range(length):
        rows.append(
            [round(float(results[names[0]]["t"][idx]), 1)]
            + [round(float(results[name][metric][idx]), 1) for name in names]
        )
    return render_table(
        ["t(s)"] + names, rows, title=f"Fig. {'14' if metric == 'queued' else '15'}: "
        f"{metric} requests over time"
    )
