"""SGLang burst micro-benchmark (paper Figure 2).

Reproduces §2.3's motivation: sweep burst intensity against a plain
SGLang (FCFS, prefill-first) system and report (a) mean/P99 TTFT
against the 1.3 s engagement threshold and (b) the mean per-request
generation speed against 2x reading speed — showing TTFT explodes
while active requests generate far faster than users can read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.tables import render_table
from repro.scenarios.build import build_run
from repro.scenarios.spec import ScenarioSpec
from repro.sim.rng import RngStreams
from repro.workload.builder import RateMixture, WorkloadBuilder, WorkloadSpec
from repro.workload.lengths import NormalLengthSampler

TTFT_TARGET_S = 1.3          # user-engagement threshold (§2.2)
READING_SPEED_2X = 12.0      # 2x average reading speed (Fig. 2 right)


@dataclass(frozen=True)
class BurstPoint:
    """One burst-load measurement."""

    load: float
    burst_size: int
    ttft_mean: float
    ttft_p99: float
    gen_speed_mean: float


def generation_speed(report) -> float:
    """Mean per-request decode-phase speed (tokens/s after TTFT)."""
    speeds = []
    for metrics in report.per_request:
        if metrics.ttft is None or metrics.finish_time is None:
            continue
        streaming = metrics.finish_time - (metrics.arrival_time + metrics.ttft)
        if streaming > 0 and metrics.generated > 1:
            speeds.append((metrics.generated - 1) / streaming)
    return float(np.mean(speeds)) if speeds else float("nan")


def run_burst_sweep(
    loads: Sequence = (0.25, 0.5, 0.75, 1.0),
    full_burst: int = 200,
    system: str = "sglang",
    hardware: str = "h200",
    model: str = "llama3-8b",
    mem_frac: float = 0.3,
    rate: float = 10.0,
    seed: int = 0,
    horizon: float = 50_000.0,
) -> list:
    """Sweep burst intensity; returns :class:`BurstPoint` rows."""
    points: list = []
    for load in loads:
        burst = max(4, int(full_burst * load))
        spec = WorkloadSpec(
            arrival="burst",
            n_requests=burst,
            burst_spread=0.25,
            lengths=NormalLengthSampler(),
            rates=RateMixture.fixed(rate),
        )
        requests = WorkloadBuilder(spec, RngStreams(seed)).build()
        report = build_run(
            ScenarioSpec(name=system, system=system, hardware=hardware,
                         model=model, mem_frac=mem_frac, max_batch=64,
                         horizon=horizon),
            requests=requests,
        ).execute()
        points.append(
            BurstPoint(
                load=load,
                burst_size=burst,
                ttft_mean=report.ttft_mean,
                ttft_p99=report.ttft_p99,
                gen_speed_mean=generation_speed(report),
            )
        )
    return points


def render_burst_sweep(points: list) -> str:
    rows = [
        [p.load, p.burst_size, round(p.ttft_mean, 2), round(p.ttft_p99, 2),
         round(p.gen_speed_mean, 1)]
        for p in points
    ]
    return render_table(
        ["burst_load", "n_requests", "mean_ttft(s)", "p99_ttft(s)", "gen_speed(tok/s)"],
        rows,
        title=f"Fig. 2 micro-benchmark (targets: TTFT<{TTFT_TARGET_S}s, "
        f"speed~{READING_SPEED_2X}tok/s)",
    )
