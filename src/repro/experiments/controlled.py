"""Controlled request-distribution experiments (Table 1, Figs. 16/17).

Table 1 defines four setups per GPU:

=======  ==================  ==================
Setup    RTX 4090            H200
=======  ==================  ==================
(a)      Burst b=60, SL      Burst b=400, SL
(b)      Burst b=80, LL      Burst b=200, LL
(c)      Poisson λ=2, SL     Poisson λ=5, SL
(d)      Poisson λ=4, SL     Poisson λ=10, SL
=======  ==================  ==================

"S"/"L" are the short/long length regimes of §7.3: 512/1024-token mean
prompts and 1024/2048-token mean outputs on the RTX 4090, with H200
outputs scaled 2x.  ``scale`` shrinks request counts / rates
proportionally so the benchmark suite stays fast; the comparison shape
is scale-invariant (all systems see identical workloads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.tables import render_table
from repro.experiments.runner import run_comparison
from repro.experiments.systems import SYSTEM_NAMES
from repro.sim.rng import RngStreams
from repro.workload.builder import RateMixture, WorkloadBuilder, WorkloadSpec
from repro.workload.lengths import NormalLengthSampler

DEFAULT_RATE = 10.0  # tokens/s — roughly 2x fast reading speed (Fig. 2)


@dataclass(frozen=True)
class ControlledSetup:
    """One Table 1 cell.

    ``poisson_rate`` records the paper's λ; ``sim_poisson_rate`` is the
    λ actually driven through the simulator, calibrated so that
    demand/capacity matches the paper's testbed regime (the paper's
    H200 sustains far higher absolute decode throughput than our
    conservative roofline, so replaying the paper's absolute λ would
    turn a heavy-load experiment into a pathological overload).
    """

    gpu: str
    key: str              # "a".."d"
    arrival: str          # "burst" | "poisson"
    burst_size: int = 0
    poisson_rate: float = 0.0
    sim_poisson_rate: float = 0.0
    length_regime: str = "S"   # "S" | "L"
    duration: float = 60.0     # horizon for Poisson arrivals

    def label(self) -> str:
        if self.arrival == "burst":
            return f"{self.gpu} ({self.key}) burst b={self.burst_size}, {self.length_regime}L"
        return f"{self.gpu} ({self.key}) poisson λ={self.poisson_rate}, {self.length_regime}L"


TABLE1: dict = {
    ("rtx4090", "a"): ControlledSetup("rtx4090", "a", "burst", burst_size=60, length_regime="S"),
    ("rtx4090", "b"): ControlledSetup("rtx4090", "b", "burst", burst_size=80, length_regime="L"),
    ("rtx4090", "c"): ControlledSetup("rtx4090", "c", "poisson", poisson_rate=2.0,
                                      sim_poisson_rate=0.85, length_regime="S"),
    ("rtx4090", "d"): ControlledSetup("rtx4090", "d", "poisson", poisson_rate=4.0,
                                      sim_poisson_rate=1.1, length_regime="S"),
    ("h200", "a"): ControlledSetup("h200", "a", "burst", burst_size=400, length_regime="S"),
    ("h200", "b"): ControlledSetup("h200", "b", "burst", burst_size=200, length_regime="L"),
    ("h200", "c"): ControlledSetup("h200", "c", "poisson", poisson_rate=5.0,
                                   sim_poisson_rate=3.8, length_regime="S"),
    ("h200", "d"): ControlledSetup("h200", "d", "poisson", poisson_rate=10.0,
                                   sim_poisson_rate=4.5, length_regime="S"),
}


def length_sampler(setup: ControlledSetup) -> NormalLengthSampler:
    """§7.3 length regime for a setup (H200 outputs scaled 2x)."""
    if setup.length_regime == "S":
        prompt_mean, output_mean = 512.0, 1024.0
    else:
        prompt_mean, output_mean = 1024.0, 2048.0
    if setup.gpu == "h200":
        output_mean *= 2.0
    return NormalLengthSampler(
        prompt_mean=prompt_mean,
        prompt_std=prompt_mean / 4.0,
        output_mean=output_mean,
        output_std=output_mean / 4.0,
    )


def build_workload(
    setup: ControlledSetup,
    scale: float = 1.0,
    seed: int = 0,
    rate: float = DEFAULT_RATE,
) -> list:
    """Materialise a setup's request list at a given scale."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    if setup.arrival == "burst":
        # Burst setups scale the crowd size (memory pressure is kept by
        # scaling the KV pool alongside; see serving_kwargs).
        spec = WorkloadSpec(
            arrival="burst",
            n_requests=max(4, int(setup.burst_size * scale)),
            burst_spread=0.25,
            lengths=length_sampler(setup),
            rates=RateMixture.fixed(rate),
        )
    else:
        # Poisson setups keep the calibrated arrival rate (pressure is
        # rate-vs-capacity) and shrink the horizon instead.
        spec = WorkloadSpec(
            arrival="poisson",
            n_requests=None,
            poisson_rate=setup.sim_poisson_rate or setup.poisson_rate,
            duration=max(10.0, setup.duration * scale),
            lengths=length_sampler(setup),
            rates=RateMixture.fixed(rate),
        )
    return WorkloadBuilder(spec, RngStreams(seed)).build()


def serving_kwargs(setup: ControlledSetup, scale: float = 1.0) -> dict:
    """Hardware/model/memory settings for a setup.

    Both GPUs serve Llama3-8B; the H200 starts at mem-frac 0.3 (§7.3),
    the RTX 4090 uses whatever its 24 GB leaves after weights.  For
    *burst* setups run at reduced scale, the KV pool shrinks with the
    crowd so the burst-size/memory pressure ratio of the full-scale
    experiment is preserved.
    """
    base_frac = 0.30 if setup.gpu == "h200" else 0.23
    if setup.arrival == "burst" and scale < 1.0:
        mem_frac = max(0.01, base_frac * scale)
    else:
        mem_frac = base_frac
    if setup.gpu == "h200":
        return {"hardware": "h200", "model": "llama3-8b", "mem_frac": mem_frac,
                "max_batch": 96}
    return {"hardware": "rtx4090", "model": "llama3-8b", "mem_frac": mem_frac,
            "max_batch": 24}


def run_controlled(
    gpu: str,
    key: str,
    systems: Sequence = SYSTEM_NAMES,
    scale: float = 1.0,
    seed: int = 0,
    rate: float = DEFAULT_RATE,
    horizon: float = 50_000.0,
) -> dict:
    """Run one Table 1 cell across systems -> {name: RunReport}."""
    setup = TABLE1[(gpu, key)]
    requests = build_workload(setup, scale=scale, seed=seed, rate=rate)
    return run_comparison(
        systems, requests, horizon=horizon, **serving_kwargs(setup, scale)
    )


def render_controlled(gpu: str, key: str, reports: dict) -> str:
    """Fig. 16/17-style metric rows for one setup."""
    setup = TABLE1[(gpu, key)]
    rows = [report.summary_row() for report in reports.values()]
    return render_table(
        type(next(iter(reports.values()))).summary_headers(),
        rows,
        title=setup.label(),
    )
