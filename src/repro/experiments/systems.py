"""System factory: scheduler + KV configuration per evaluated system.

The paper compares four systems (§7.1.4) plus three TokenFlow
ablations (Table 2); this module is the single place their wiring is
defined, so every experiment builds identical systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines import (
    AndesScheduler,
    MLFQScheduler,
    SGLangChunkedScheduler,
    SGLangScheduler,
)
from repro.core.scheduler import TokenFlowParams, TokenFlowScheduler
from repro.memory.kv_manager import KVManagerConfig
from repro.serving.config import ServingConfig
from repro.serving.interface import BaseScheduler
from repro.serving.server import ServingSystem

SYSTEM_NAMES = ("sglang", "sglang-chunked", "andes", "tokenflow")
# Extension comparators beyond the paper's §7.1.4 set.
EXTRA_SYSTEM_NAMES = ("mlfq",)
ABLATION_NAMES = (
    "tokenflow",
    "tokenflow-no-offload",
    "tokenflow-no-writethrough",
    "tokenflow-no-overlap",
)


def make_scheduler(name: str, tokenflow_params: Optional[TokenFlowParams] = None) -> BaseScheduler:
    """Instantiate the scheduler for a system name."""
    if name == "sglang":
        return SGLangScheduler()
    if name == "sglang-chunked":
        return SGLangChunkedScheduler()
    if name == "andes":
        return AndesScheduler()
    if name == "mlfq":
        return MLFQScheduler()
    if name.startswith("tokenflow"):
        return TokenFlowScheduler(tokenflow_params)
    raise KeyError(f"unknown system {name!r}; known: {SYSTEM_NAMES + ABLATION_NAMES[1:]}")


@dataclass(frozen=True)
class SchedulerRecipe:
    """Picklable scheduler factory for a named system.

    Cluster builds need a *factory* (each instance gets its own
    scheduler), and the sharded cluster needs that factory to cross a
    process boundary — a closure over the spec cannot.  Calling the
    recipe is exactly the classic cluster factory: instantiate the
    system's scheduler and stamp the experiment's system name on it
    (ablation variants share the TokenFlow scheduler class).
    """

    system: str
    tokenflow_params: Optional[TokenFlowParams] = None

    def __call__(self) -> BaseScheduler:
        scheduler = make_scheduler(self.system, self.tokenflow_params)
        scheduler.name = self.system
        return scheduler


def make_kv_config(
    name: str, block_size: int = 16, kv_allocator: str = "naive"
) -> KVManagerConfig:
    """KV-manager switches per system.

    Baselines have no hierarchical offload (SGLang/Andes preempt by
    dropping KV and recomputing); TokenFlow enables the full memory
    co-design, minus one technique per ablation variant.
    ``kv_allocator`` is orthogonal to the system: any of them can run
    on the naive count-only allocator or the prefix-sharing table.
    """
    if name in ("sglang", "sglang-chunked", "andes", "mlfq"):
        return KVManagerConfig(
            block_size=block_size, enable_offload=False, kv_allocator=kv_allocator
        )
    if name == "tokenflow":
        return KVManagerConfig(block_size=block_size, kv_allocator=kv_allocator)
    if name == "tokenflow-no-offload":
        return KVManagerConfig(
            block_size=block_size, enable_offload=False, kv_allocator=kv_allocator
        )
    if name == "tokenflow-no-writethrough":
        return KVManagerConfig(
            block_size=block_size, write_through=False, kv_allocator=kv_allocator
        )
    if name == "tokenflow-no-overlap":
        return KVManagerConfig(
            block_size=block_size, load_evict_overlap=False, kv_allocator=kv_allocator
        )
    raise KeyError(f"unknown system {name!r}")


def build_system(
    name: str,
    hardware: str = "h200",
    model: str = "llama3-8b",
    mem_frac: Optional[float] = None,
    max_batch: int = 64,
    block_size: int = 16,
    tokenflow_params: Optional[TokenFlowParams] = None,
    fuse_decode: bool = True,
    vectorize_decode: bool = True,
    kv_allocator: str = "naive",
    retain_per_request: bool = True,
    record_token_traces: bool = False,
) -> ServingSystem:
    """Assemble one serving instance for a named system.

    ``record_token_traces`` opts into per-token timestamp traces
    (needed by occupancy-series plots and JSONL trace export; the
    RunReport metrics do not need them).  ``retain_per_request=False``
    switches the instance to streaming telemetry (O(active) memory,
    sketch-backed percentiles — see ServingConfig).
    """
    scheduler = make_scheduler(name, tokenflow_params)
    config = ServingConfig(
        hardware=hardware,
        model=model,
        mem_frac=mem_frac,
        max_batch=max_batch,
        block_size=block_size,
        kv=make_kv_config(name, block_size, kv_allocator),
        fuse_decode=fuse_decode,
        vectorize_decode=vectorize_decode,
        retain_per_request=retain_per_request,
        record_token_traces=record_token_traces,
    )
    system = ServingSystem(config, scheduler)
    # Label the report with the experiment's system name (the ablation
    # variants share the TokenFlow scheduler class).
    scheduler.name = name
    return system
