"""Multi-instance serving cluster (paper §8, "Scaling TokenFlow").

The paper argues TokenFlow's single-node scheduling generalises to
multi-node serving by adding a dispatch layer above per-node
schedulers.  This module implements that layer: N independent
:class:`~repro.serving.server.ServingSystem` instances share one
discrete-event engine, and a dispatcher routes each arriving request
to an instance.  Each node then runs its own buffer-aware scheduler
and hierarchical KV manager exactly as in the single-node system.

Dispatch policies:

* ``round_robin`` — arrival order striping.
* ``least_loaded`` — fewest unfinished requests (default).
* ``least_queued`` — shortest waiting+prefill queue at arrival.

The inter-node KV layer the paper sketches (migrating offloaded
context between nodes over RDMA) is intentionally out of scope: the
dispatcher never moves a request after placement, which matches
today's deployed LLM routers (e.g. Llumnix-style rebalancing is
future work).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.serving.config import ServingConfig
from repro.serving.metrics import RunReport, build_report
from repro.serving.server import ServingSystem
from repro.sim.engine import SimEngine

DISPATCH_POLICIES = ("round_robin", "least_loaded", "least_queued")


@dataclass
class ClusterReport:
    """Aggregate results across cluster instances."""

    per_instance: list = field(default_factory=list)  # RunReport each
    n_requests: int = 0
    n_finished: int = 0
    total_tokens: int = 0
    throughput: float = 0.0
    effective_throughput: float = 0.0
    ttft_mean: float = 0.0
    ttft_p99: float = 0.0
    stall_total: float = 0.0
    preemptions: int = 0


class ServingCluster:
    """N serving instances + an arrival dispatcher on one engine."""

    def __init__(
        self,
        configs: Sequence,
        scheduler_factory: Callable[[], object],
        dispatch: str = "least_loaded",
        engine: Optional[SimEngine] = None,
    ) -> None:
        if not configs:
            raise ValueError("need at least one instance config")
        if dispatch not in DISPATCH_POLICIES:
            raise ValueError(
                f"dispatch must be one of {DISPATCH_POLICIES}, got {dispatch!r}"
            )
        self.engine = engine if engine is not None else SimEngine()
        self.dispatch = dispatch
        self.instances = [
            ServingSystem(config, scheduler_factory(), engine=self.engine)
            for config in configs
        ]
        self._rr_next = 0
        self.placements: dict = {}   # req_id -> instance index

    @classmethod
    def homogeneous(
        cls,
        n_instances: int,
        scheduler_factory: Callable[[], object],
        dispatch: str = "least_loaded",
        **config_kwargs,
    ) -> "ServingCluster":
        """Build ``n_instances`` identical nodes."""
        if n_instances <= 0:
            raise ValueError("n_instances must be positive")
        configs = [ServingConfig(**config_kwargs) for _ in range(n_instances)]
        return cls(configs, scheduler_factory, dispatch=dispatch)

    # --- dispatch -------------------------------------------------------------
    def _pick_instance(self) -> int:
        if self.dispatch == "round_robin":
            idx = self._rr_next
            self._rr_next = (self._rr_next + 1) % len(self.instances)
            return idx
        if self.dispatch == "least_loaded":
            return min(
                range(len(self.instances)),
                key=lambda i: self.instances[i].unfinished,
            )
        # least_queued
        return min(
            range(len(self.instances)),
            key=lambda i: len(self.instances[i].waiting)
            + len(self.instances[i].prefill_queue),
        )

    def submit(self, requests: Sequence) -> None:
        """Register arrivals; each is dispatched at its arrival time."""
        for request in requests:
            if request.arrival_time < self.engine.now():
                raise ValueError(
                    f"request {request.req_id} arrives in the past"
                )
            self.engine.call_at(
                request.arrival_time,
                lambda r=request: self._dispatch(r),
                label=f"dispatch:{request.req_id}",
            )

    def _dispatch(self, request) -> None:
        idx = self._pick_instance()
        self.placements[request.req_id] = idx
        self.instances[idx].submit([request])

    # --- running / reporting -----------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        return self.engine.run(until=until)

    @property
    def unfinished(self) -> int:
        return sum(instance.unfinished for instance in self.instances)

    def report(self) -> ClusterReport:
        """Aggregate per-instance reports into cluster totals."""
        reports = [instance.report() for instance in self.instances]
        cluster = ClusterReport(per_instance=reports)
        ttfts: list = []
        makespan = max((r.makespan for r in reports if r.n_requests), default=1e-9)
        for report in reports:
            cluster.n_requests += report.n_requests
            cluster.n_finished += report.n_finished
            cluster.total_tokens += report.total_tokens
            cluster.effective_throughput += report.effective_tokens / makespan
            cluster.stall_total += report.stall_total
            cluster.preemptions += report.preemptions
            ttfts.extend(
                m.ttft for m in report.per_request if m.ttft is not None
            )
        cluster.throughput = cluster.total_tokens / makespan
        if ttfts:
            ttfts.sort()
            cluster.ttft_mean = sum(ttfts) / len(ttfts)
            idx = min(len(ttfts) - 1, int(round(0.99 * (len(ttfts) - 1))))
            cluster.ttft_p99 = ttfts[idx]
        return cluster

    def placement_counts(self) -> list:
        """Requests routed to each instance (load-balance check)."""
        counts = [0] * len(self.instances)
        for idx in self.placements.values():
            counts[idx] += 1
        return counts
