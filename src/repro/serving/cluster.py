"""Multi-instance serving cluster (paper §8, "Scaling TokenFlow").

The paper argues TokenFlow's single-node scheduling generalises to
multi-node serving by adding a dispatch layer above per-node
schedulers.  This module implements that layer: N independent
:class:`~repro.serving.server.ServingSystem` instances share one
discrete-event engine, and a pluggable :class:`~repro.serving.routers.Router`
places each arriving request on an instance.  Each node then runs its
own buffer-aware scheduler and hierarchical KV manager exactly as in
the single-node system.

Routing policies live in :mod:`repro.serving.routers` (``round_robin``,
``least_loaded``, ``least_queued``, ``buffer_aware``,
``session_affinity``); cluster-level metrics reuse the single-node
report aggregation from :func:`repro.serving.metrics.aggregate_reports`.

The inter-node KV layer the paper sketches (migrating offloaded
context between nodes over RDMA) is intentionally out of scope: the
router never moves a request after placement, which matches today's
deployed LLM routers (e.g. Llumnix-style rebalancing is future work).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from repro.serving.config import ServingConfig
from repro.serving.metrics import RunReport, aggregate_reports
from repro.serving.routers import Router, make_router
from repro.serving.server import ServingSystem
from repro.serving.stages import feed_stream_arrivals
from repro.sim.engine import ScopedEngine, SimEngine

# The pre-router dispatch policies, kept as the stable "core" set
# (``repro.serving.routers.ROUTERS`` is the full registry).
DISPATCH_POLICIES = ("round_robin", "least_loaded", "least_queued")


@dataclass
class ClusterReport:
    """Aggregate results across cluster instances."""

    per_instance: list = field(default_factory=list)  # RunReport each
    # The full folded RunReport the scalar fields below are drawn from
    # (kept so consumers never re-aggregate the per-instance rows).
    aggregate: Optional[RunReport] = None
    n_requests: int = 0
    n_finished: int = 0
    total_tokens: int = 0
    throughput: float = 0.0
    effective_throughput: float = 0.0
    qos: float = 0.0
    ttft_mean: float = 0.0
    ttft_p50: float = 0.0
    ttft_p99: float = 0.0
    stall_total: float = 0.0
    preemptions: int = 0
    # Sharded-plane coordination accounting (zero for the classic
    # shared-engine cluster, which has no coordination to count):
    # blocking metric-gather rounds, protocol messages, and speculative
    # dispatch outcomes (see serving/shard.py).  Deliberately excluded
    # from parity fingerprints — they describe the *execution*, not the
    # simulated system, and legitimately vary across shard counts.
    coordination_rounds: int = 0
    messages_sent: int = 0
    speculation_hits: int = 0
    speculation_misses: int = 0


class ServingCluster:
    """N serving instances + an arrival router on one engine."""

    def __init__(
        self,
        configs: Sequence,
        scheduler_factory: Callable[[], object],
        dispatch: Union[str, Router] = "least_loaded",
        engine: Optional[SimEngine] = None,
        router: Optional[Union[str, Router]] = None,
    ) -> None:
        if not configs:
            raise ValueError("need at least one instance config")
        # ``router`` is the primary spelling; ``dispatch`` is kept for
        # the original three-policy API and older call sites.
        self.router = make_router(router if router is not None else dispatch)
        self.dispatch = self.router.name
        self.engine = engine if engine is not None else SimEngine()
        # Upcoming dispatch instants (arrival times of routed-but-not-
        # yet-dispatched requests).  Instances see this heap's head as
        # their *external* decision horizon: an instance's fusion plane
        # must never advance past the next dispatch, because the router
        # reads instance state there — but sibling instances' internal
        # events are NOT horizons, so each instance plans decode
        # windows against only its own events plus this heap.  That
        # makes window formation partition-invariant: the same windows
        # form whether siblings share the process or live in another
        # shard (serving/shard.py relies on this for bit-identity).
        self._dispatch_times: list = []
        self.instances = [
            ServingSystem(
                config,
                scheduler_factory(),
                engine=ScopedEngine(self.engine, self._next_dispatch_time),
            )
            for config in configs
        ]
        self.placements: dict = {}   # req_id -> instance index
        # With streaming telemetry on every instance the per-request
        # placement map would be the last O(total-requests) structure
        # left in a soak run; keep only the per-instance counters then.
        self._retain_placements = any(
            instance.stream_stats is None for instance in self.instances
        )
        self._placement_counts = [0] * len(self.instances)
        # Requests scheduled for dispatch but not yet routed — counted
        # so a run truncated at its horizon reports them as unfinished
        # instead of silently dropping the tail (instances only start
        # counting a request once it is dispatched to them).
        self._pending_dispatch = 0

    @classmethod
    def homogeneous(
        cls,
        n_instances: int,
        scheduler_factory: Callable[[], object],
        dispatch: Union[str, Router] = "least_loaded",
        router: Optional[Union[str, Router]] = None,
        **config_kwargs,
    ) -> "ServingCluster":
        """Build ``n_instances`` identical nodes."""
        if n_instances <= 0:
            raise ValueError("n_instances must be positive")
        configs = [ServingConfig(**config_kwargs) for _ in range(n_instances)]
        return cls(configs, scheduler_factory, dispatch=dispatch, router=router)

    # --- dispatch -------------------------------------------------------------
    def _next_dispatch_time(self) -> Optional[float]:
        """Earliest upcoming dispatch instant (instances' external horizon).

        Entries at or before the clock are spent — their dispatch event
        has already fired this instant (all dispatches at time *t* run
        before any instance event at *t*, because instance work at a
        dispatch time is scheduled *by* the dispatch) — so they are
        lazily dropped here rather than eagerly in :meth:`_dispatch`.
        """
        times = self._dispatch_times
        now = self.engine.now()
        while times and times[0] <= now:
            heapq.heappop(times)
        return times[0] if times else None

    def submit(self, requests: Sequence) -> None:
        """Register arrivals; each is routed at its arrival time."""
        for request in requests:
            if request.arrival_time < self.engine.now():
                raise ValueError(
                    f"request {request.req_id} arrives in the past"
                )
            self._pending_dispatch += 1
            heapq.heappush(self._dispatch_times, request.arrival_time)
            self.engine.call_at(
                request.arrival_time,
                lambda r=request: self._dispatch(r),
                label=f"dispatch:{request.req_id}",
            )

    def feed(self, stream, lookahead: int = 1) -> None:
        """Drive cluster arrivals from a lazy workload stream.

        Mirrors :meth:`ServingSystem.feed` through the shared
        :func:`~repro.serving.stages.feed_stream_arrivals` chain: only
        ``lookahead`` future requests exist in memory, and router
        placement happens at pop (arrival) time with the same instance
        state the materialised :meth:`submit` path sees — streamed and
        submitted cluster runs place identically.
        """
        def on_pop(request) -> None:
            self._pending_dispatch += 1
            heapq.heappush(self._dispatch_times, request.arrival_time)

        feed_stream_arrivals(
            self.engine, stream, lookahead, on_pop, self._dispatch, "dispatch"
        )

    def _dispatch(self, request) -> None:
        self._pending_dispatch -= 1
        idx = self.router.select(self.instances, request)
        if self._retain_placements:
            self.placements[request.req_id] = idx
        self._placement_counts[idx] += 1
        self.instances[idx].submit([request])

    # --- running / reporting --------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        return self.engine.run(until=until)

    @property
    def unfinished(self) -> int:
        return self._pending_dispatch + sum(
            instance.unfinished for instance in self.instances
        )

    def report(self) -> ClusterReport:
        """Aggregate per-instance reports into cluster totals.

        Aggregation reuses the single-node report builder
        (:func:`repro.serving.metrics.aggregate_reports`), so the
        cluster's TTFT percentiles, throughput, stalls, and QoS follow
        exactly the single-node definitions.
        """
        reports = [instance.report() for instance in self.instances]
        total = aggregate_reports(reports)
        return ClusterReport(
            per_instance=reports,
            aggregate=total,
            n_requests=total.n_requests,
            n_finished=total.n_finished,
            total_tokens=total.total_tokens,
            throughput=total.throughput,
            effective_throughput=total.effective_throughput,
            qos=total.qos,
            ttft_mean=total.ttft_mean,
            ttft_p50=total.ttft_p50,
            ttft_p99=total.ttft_p99,
            stall_total=total.stall_total,
            preemptions=total.preemptions,
        )

    def placement_counts(self) -> list:
        """Requests routed to each instance (load-balance check)."""
        return list(self._placement_counts)
