"""Composable serving-loop stages.

The serving loop is four cooperating stages coordinated by the slim
:class:`~repro.serving.server.ServingSystem` shell:

* :class:`AdmissionStage` — arrivals into the tracker/KV/waiting queue
  plus the scheduler tick clock;
* :class:`BatchComposer` — plans each iteration (prefill entries or a
  decode batch, including the §4.2.3 buffer-aware interleaving);
* :class:`MemoryPressureStage` — resolves decode-time KV deficits via
  scheduler-selected victims and orders chunked KV writes (§5.2);
* :class:`DecodeStream` — executes iterations and streams generated
  tokens into per-request client buffers.

The shell owns the shared state (queues, engine, KV manager, tracker,
executor) so schedulers, the offload manager, and tests keep their
existing view; each stage binds the hot references once at
construction so the split adds no per-token indirection.

Event ordering is *identical* to the pre-split monolith: the shell
invokes the stages in the exact sequence the old ``ServingSystem``
executed inline, so golden metrics and the perf-parity harness hold
bit-for-bit.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Optional

from repro.memory.blocks import OutOfMemory
from repro.workload.request import Request, RequestState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.server import ServingSystem


class AdmissionStage:
    """Arrivals -> tracker/KV registration -> waiting queue, plus the
    scheduler tick clock (the paper's Δt)."""

    def __init__(self, system: "ServingSystem") -> None:
        self.system = system
        self.engine = system.engine
        self.scheduler = system.scheduler
        self.tracker = system.tracker
        self.kv = system.kv
        self.waiting = system.waiting
        # Tick state: a tick is *scheduled* on the engine and becomes
        # *due* when it fires; the decision is applied at the next
        # iteration boundary (real systems never preempt mid-kernel).
        self.tick_due = False
        self._tick_scheduled = False

    def submit(self, requests: list) -> None:
        """Register future arrivals with the event engine."""
        system = self.system
        engine = self.engine
        for request in requests:
            if request.arrival_time < engine.now():
                raise ValueError(
                    f"request {request.req_id} arrives in the past "
                    f"({request.arrival_time} < {engine.now()})"
                )
            system._unfinished += 1
            engine.call_at(
                request.arrival_time,
                lambda r=request: self.on_arrival(r),
                label=f"arrival:{request.req_id}",
            )

    def on_arrival(self, request: Request) -> None:
        system = self.system
        if system.tracer is not None:
            system.tracer.record(self.engine.now(), "request", "arrive",
                                 req_id=request.req_id)
        self.tracker.register(request)
        self.kv.register(request.req_id)
        self.waiting.append(request)
        self.ensure_tick_scheduled()
        system._kick()

    def ensure_tick_scheduled(self) -> None:
        interval = self.scheduler.tick_interval
        if interval is None or self._tick_scheduled or self.system._unfinished == 0:
            return
        self._tick_scheduled = True
        self.engine.call_after(interval, self._on_tick_event, label="sched-tick")

    def _on_tick_event(self) -> None:
        self._tick_scheduled = False
        self.tick_due = True
        self.system._kick()
        self.ensure_tick_scheduled()


class BatchComposer:
    """Plans one iteration: a prefill batch or the decode batch.

    Holds the per-iteration planning state (shared min-buffer memo,
    prefill-defer progress counter, dynamic prefill budget) and the
    §4.2.3 buffer-aware prefill/decode interleaving.
    """

    def __init__(self, system: "ServingSystem", memory: "MemoryPressureStage") -> None:
        self.system = system
        self.memory = memory
        self.engine = system.engine
        self.scheduler = system.scheduler
        self.tracker = system.tracker
        self.kv = system.kv
        self.executor = system.executor
        self.config = system.config
        self.running = system.running
        self.prefill_queue = system.prefill_queue
        self.chunked = system.config.chunked_prefill or getattr(
            system.scheduler, "wants_chunked_prefill", False
        )
        # Per-iteration cache (reset by the shell at iteration start).
        self.iter_min_buffer: Optional[float] = None
        self.decodes_since_prefill = 0
        self.prefill_defer_cap = 16       # progress guarantee for prefill
        self.prefill_defer_margin = 0.05  # seconds of buffer slack required
        # Amortised per-token prefill cost, for dynamic partitioning.
        self.per_token_prefill_s = system.latency.prefill_time([2048]) / 2048.0

    def min_running_buffer(self) -> float:
        """Smallest running-request buffer (seconds) at the current
        instant, computed once per iteration and shared between the
        prefill budget and the defer decision."""
        cached = self.iter_min_buffer
        if cached is None:
            cached = self.tracker.min_buffer_seconds(
                self.running, self.engine.now()
            )
            self.iter_min_buffer = cached
        return cached

    def prefill_token_budget(self) -> int:
        """Per-iteration prefill budget, dynamically partitioned (§4.2.3).

        For buffer-aware schedulers the budget shrinks so the prefill
        iteration fits inside the running batch's smallest buffer —
        prefills then never stall an active stream.  A floor keeps
        prefill progressing even when every buffer is thin (the defer
        cap bounds how often that floor is exercised).
        """
        budget = self.config.max_prefill_tokens
        if not getattr(self.scheduler, "decode_priority_aware", False) or not self.running:
            return budget
        slack = self.min_running_buffer() - self.prefill_defer_margin
        dyn = int(slack / self.per_token_prefill_s) if slack > 0 else 0
        floor = min(256, budget)
        return max(floor, min(budget, dyn))

    def should_defer_prefill(self, entries: list) -> bool:
        """Buffer-aware prefill/decode interleaving (§4.2.3).

        Schedulers that opt in (``decode_priority_aware``) defer a
        prefill iteration when some running request's buffer would
        drain during it — latency-sensitive decodes bypass the prefill
        batch.  A progress cap guarantees prefill is never starved.
        """
        if not getattr(self.scheduler, "decode_priority_aware", False):
            return False
        if not self.running:
            return False
        if self.decodes_since_prefill >= self.prefill_defer_cap:
            return False
        plan = self.executor.plan_prefill(
            [(request.req_id, chunk) for request, chunk in entries]
        )
        return self.min_running_buffer() < plan.duration + self.prefill_defer_margin

    def plan_prefill(self) -> list:
        """Pick (request, chunk_tokens) pairs for the next prefill.

        Fresh requests reserve prompt+1 tokens (room for the first
        output token); recompute resumes reserve their full context.
        FCFS within the prefill queue; head-of-line blocks on memory,
        which is exactly the SGLang behaviour TokenFlow's admission
        control avoids triggering.
        """
        entries: list = []
        queue = self.prefill_queue
        if not queue:
            # Nothing to prefill: skip the budget computation (and its
            # min-buffer pass) entirely — the steady-decode common case.
            return entries
        budget = self.prefill_token_budget()
        if budget <= 0:
            return entries
        if len(queue) > 1 and getattr(self.scheduler, "decode_priority_aware", False):
            # Recompute-resumes have live consumers draining a buffer;
            # they bypass fresh admissions (§4.2.3 latency-sensitive
            # bypass).  Fresh requests keep FCFS order among themselves.
            queue = sorted(
                queue, key=lambda r: (r.generated == 0, r.arrival_time)
            )
        for request in queue:
            if budget <= 0:
                break
            target = request.context_len
            if request.prefill_progress == 0:
                reserve = target + (1 if request.generated == 0 else 0)
                try:
                    self.kv.allocate_for_prefill(request.req_id, reserve)
                except OutOfMemory:
                    break
            remaining = target - request.prefill_progress
            if remaining <= 0:
                continue
            chunk = min(remaining, budget)
            if self.chunked:
                chunk = min(chunk, self.config.prefill_chunk_size)
            entries.append((request, chunk))
            budget -= chunk
            if self.chunked:
                break  # one chunk per iteration keeps decode interleaved
        return entries

    def plan_decode(self) -> list:
        """Assemble the decode batch, resolving memory pressure first."""
        if not self.running:
            return []
        if len(self.running) > self.config.max_batch and getattr(
            self.scheduler, "decode_priority_aware", False
        ):
            # More residents than decode slots: serve the most starved.
            # nsmallest == sorted(...)[:max_batch] (it is stable), but
            # only does O(n log k) work.
            now = self.engine.now()
            tracker = self.tracker
            batch = heapq.nsmallest(
                self.config.max_batch,
                self.running,
                key=lambda r: tracker.buffer_seconds(r.req_id, now),
            )
        else:
            batch = list(self.running[: self.config.max_batch])
        # Growth blocks are a function of each request's own KV record,
        # so one computation serves both the deficit check and the
        # batch-fitting pass (preempting a victim never changes another
        # request's growth).
        growth_of = self.kv.decode_growth_blocks
        growth = {r.req_id: growth_of(r.req_id) for r in batch}
        batch = self.memory.resolve_deficit(batch, growth)
        # Greedily keep the prefix of the batch that fits.
        fitted: list = []
        free = self.kv.gpu_free_blocks()
        for request in batch:
            need = growth[request.req_id]
            if need > free:
                continue
            free -= need
            fitted.append(request)
        return fitted


class MemoryPressureStage:
    """KV-pressure handling: decode-time deficit resolution and the
    buffer-ordered chunked write drain (§5.2)."""

    def __init__(self, system: "ServingSystem") -> None:
        self.system = system
        self.scheduler = system.scheduler
        self.tracker = system.tracker
        self.kv = system.kv

    def resolve_deficit(self, batch: list, growth: dict) -> list:
        """Preempt scheduler-selected victims until ``batch`` can grow.

        Returns the batch filtered to still-RUNNING members; the
        caller's greedy fitting pass handles any residual shortfall.
        """
        deficit = max(0, sum(growth.values()) - self.kv.gpu_free_blocks())
        if deficit > 0:
            system = self.system
            victims = self.scheduler.select_oom_victims(system.view(), deficit)
            running = system.running
            for victim in victims:
                if victim in running and victim.state is RequestState.RUNNING:
                    system.offload.preempt(victim)
            batch = [r for r in batch if r.state is RequestState.RUNNING]
        return batch

    def write_priority_at(self, now: float):
        """Chunked-write ordering: fatter buffers sync first (§5.2).

        Returns a one-instant priority callable (binds ``now`` once so
        the per-record calls stay flat dictionary work)."""
        buffer_seconds = self.tracker.buffer_seconds
        return lambda req_id: buffer_seconds(req_id, now)

    def observe_swap(self, tau_evict: float, tau_load: float) -> None:
        if hasattr(self.scheduler, "observe_swap_latency"):
            self.scheduler.observe_swap_latency(tau_evict, tau_load)


class DecodeStream:
    """Runs planned iterations on the executor and streams generated
    tokens into client buffers (the per-token hot path)."""

    def __init__(self, system: "ServingSystem", memory: MemoryPressureStage) -> None:
        self.system = system
        self.memory = memory
        self.engine = system.engine
        self.scheduler = system.scheduler
        self.tracker = system.tracker
        self.kv = system.kv
        self.executor = system.executor
        self.running = system.running
        self.prefill_queue = system.prefill_queue
        self.finished = system.finished
        self.last_token_time = 0.0

    # --- prefill path -------------------------------------------------
    def run_prefill(self, entries: list, overhead: float) -> None:
        system = self.system
        result = self.executor.plan_prefill(
            [(request.req_id, chunk) for request, chunk in entries]
        )
        duration = result.duration + overhead
        now = self.engine.now()
        self.kv.drain_writes(now, now + duration,
                             priority=self.memory.write_priority_at(now))
        if system.tracer is not None:
            system.tracer.record(now, "executor", "prefill_start",
                                 tokens=result.tokens, batch=len(entries),
                                 duration=duration)
        system._busy = True
        self.engine.call_at(
            now + duration,
            lambda: self.complete_prefill(result, entries, duration),
            label="prefill-done",
        )

    def complete_prefill(self, result, entries: list, duration: float) -> None:
        system = self.system
        now = self.engine.now()
        for request, chunk in entries:
            if request.state is not RequestState.PREFILLING:
                continue
            request.prefill_progress += chunk
            target = request.context_len
            if request.prefill_progress >= target:
                self.kv.on_prefill_complete(request.req_id, target)
                self.prefill_queue.remove(request)
                request.transition(RequestState.RUNNING)
                self.running.append(request)
                if request.generated == 0:
                    # Prefill produces the first output token.
                    self.emit_token(request, now)
        if hasattr(self.scheduler, "observe_prefill"):
            self.scheduler.observe_prefill(result.tokens, duration)
        self.executor.commit(result)
        system._sample_timeline()
        system._busy = False
        system._kick()

    # --- decode path --------------------------------------------------
    def run_decode(self, batch: list, overhead: float) -> None:
        system = self.system
        result = self.executor.plan_decode(
            # context_len inlined (prompt + generated): this comprehension
            # runs once per batch member per iteration.
            [(request.req_id, request.prompt_len + request.generated)
             for request in batch]
        )
        duration = result.duration + overhead
        now = self.engine.now()
        self.kv.drain_writes(now, now + duration,
                             priority=self.memory.write_priority_at(now))
        if system.tracer is not None:
            system.tracer.record(now, "executor", "decode_start",
                                 batch=len(batch), duration=duration)
        system._busy = True
        self.engine.call_at(
            now + duration,
            lambda: self.complete_decode(result, batch),
            label="decode-done",
        )

    def complete_decode(self, result, batch: list) -> None:
        # The per-token fast path: this loop runs once per generated
        # token across the whole simulation, so emit_token /
        # deliver_token are inlined (same operations, same order).
        system = self.system
        now = self.engine.now()
        on_decode_token = self.kv.on_decode_token
        entries = self.tracker.entries_by_id
        invalidate = self.tracker.occupancy_invalidator
        running = RequestState.RUNNING
        for request in batch:
            if request.state is not running:
                continue
            req_id = request.req_id
            on_decode_token(req_id)
            request.record_token(now)
            entries[req_id].buffer.deliver(now)
            invalidate(req_id, None)
            if now > self.last_token_time:
                self.last_token_time = now
            if request.generated >= request.output_len:
                self.finish(request, now)
        self.executor.commit(result)
        system._sample_timeline()
        system._busy = False
        system._kick()

    # --- token delivery / completion ----------------------------------
    def emit_token(self, request: Request, now: float) -> None:
        # NOTE: complete_decode inlines this exact sequence (delivery,
        # last-token-time update, finish check) for the per-token hot
        # loop — any semantic change here must be mirrored there.
        self.tracker.deliver_token(request.req_id, now)
        if now > self.last_token_time:
            self.last_token_time = now
        if request.generated >= request.output_len:
            self.finish(request, now)

    def finish(self, request: Request, now: float) -> None:
        system = self.system
        if system.tracer is not None:
            system.tracer.record(now, "request", "finish",
                                 req_id=request.req_id)
        request.transition(RequestState.FINISHED)
        if request in self.running:
            self.running.remove(request)
        self.kv.release(request.req_id)
        self.tracker.mark_finished(request.req_id, now)
        self.finished.append(request)
        system._unfinished -= 1
        if system.on_request_finished is not None:
            system.on_request_finished(request)
