"""Composable serving-loop stages.

The serving loop is four cooperating stages coordinated by the slim
:class:`~repro.serving.server.ServingSystem` shell:

* :class:`AdmissionStage` — arrivals into the tracker/KV/waiting queue
  plus the scheduler tick clock (also where a request's sharing
  identity reaches the KV manager, for the ``prefix_cow`` allocator);
* :class:`BatchComposer` — plans each iteration (prefill entries or a
  decode batch, including the §4.2.3 buffer-aware interleaving);
* :class:`MemoryPressureStage` — resolves decode-time KV deficits via
  scheduler-selected victims and orders chunked KV writes (§5.2);
* :class:`DecodeStream` — executes iterations and streams generated
  tokens into per-request client buffers.

The shell owns the shared state (queues, engine, KV manager, tracker,
executor) so schedulers, the offload manager, and tests keep their
existing view; each stage binds the hot references once at
construction so the split adds no per-token indirection.

Event ordering is *identical* to the pre-split monolith: the shell
invokes the stages in the exact sequence the old ``ServingSystem``
executed inline, so golden metrics and the perf-parity harness hold
bit-for-bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.memory.blocks import OutOfMemory
from repro.serving.batchstate import deliver_batch
from repro.workload.request import Request, RequestState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.server import ServingSystem


def feed_stream_arrivals(engine, stream, lookahead, on_pop, on_request, label):
    """Schedule a lazy request stream as a self-refilling event chain.

    The one streaming-admission implementation, shared by
    :meth:`AdmissionStage.feed` (single instance; ``on_request``
    admits) and :meth:`ServingCluster.feed <repro.serving.cluster.ServingCluster.feed>`
    (``on_request`` routes).  Each scheduled arrival pops its successor
    off the stream *before* processing its own request, so

    * at most ``lookahead`` future requests exist in memory, and
    * the engine's pending-event horizon always contains the next
      arrival at the instant any work is planned — the fusion plane
      therefore sizes exactly the windows the materialised submit path
      produces (streamed and submitted runs are event-for-event
      identical).

    ``on_pop`` runs once per request at schedule time — both callers
    use it for their pending-work accounting, so a run truncated at the
    horizon still reports scheduled-but-unserved requests as
    unfinished.
    """
    if lookahead <= 0:
        raise ValueError(f"lookahead must be positive, got {lookahead}")
    iterator = iter(stream)

    def schedule_next() -> bool:
        request = next(iterator, None)
        if request is None:
            return False
        if request.arrival_time < engine.now():
            raise ValueError(
                f"request {request.req_id} arrives in the past "
                f"({request.arrival_time} < {engine.now()}) — workload "
                f"streams must be ordered by arrival time"
            )
        on_pop(request)
        engine.call_at(
            request.arrival_time,
            lambda r=request: fire(r),
            label=f"{label}:{request.req_id}",
        )
        return True

    def fire(request: Request) -> None:
        # Refill before processing: planning triggered by this request
        # must already see the successor arrival on the event horizon.
        schedule_next()
        on_request(request)

    for _ in range(lookahead):
        if not schedule_next():
            break


class AdmissionStage:
    """Arrivals -> tracker/KV registration -> waiting queue, plus the
    scheduler tick clock (the paper's Δt)."""

    def __init__(self, system: "ServingSystem") -> None:
        self.system = system
        self.engine = system.engine
        self.scheduler = system.scheduler
        self.tracker = system.tracker
        self.kv = system.kv
        self.waiting = system.waiting
        # Tick state: a tick is *scheduled* on the engine and becomes
        # *due* when it fires; the decision is applied at the next
        # iteration boundary (real systems never preempt mid-kernel).
        self.tick_due = False
        self._tick_scheduled = False

    def submit(self, requests: list) -> None:
        """Register future arrivals with the event engine."""
        system = self.system
        engine = self.engine
        for request in requests:
            if request.arrival_time < engine.now():
                raise ValueError(
                    f"request {request.req_id} arrives in the past "
                    f"({request.arrival_time} < {engine.now()})"
                )
            system._unfinished += 1
            engine.call_at(
                request.arrival_time,
                lambda r=request: self.on_arrival(r),
                label=f"arrival:{request.req_id}",
            )

    # --- streaming admission ---------------------------------------------
    def feed(self, stream, lookahead: int = 1) -> None:
        """Drive arrivals from a lazy request stream.

        See :func:`feed_stream_arrivals` for the self-refilling chain
        and its parity guarantees.  ``lookahead`` > 1 simply primes
        that many arrivals up front; ordering is unchanged since
        arrival events fire in time order and same-instant arrivals
        keep stream order.
        """
        system = self.system

        def on_pop(_request: Request) -> None:
            system._unfinished += 1

        feed_stream_arrivals(
            self.engine, stream, lookahead, on_pop, self.on_arrival, "arrival"
        )

    def on_arrival(self, request: Request) -> None:
        system = self.system
        if system.tracer is not None:
            system.tracer.record(self.engine.now(), "request", "arrive",
                                 req_id=request.req_id)
        self.tracker.register(request)
        self.kv.register(request.req_id, request)
        self.waiting.append(request)
        self.ensure_tick_scheduled()
        system._kick()

    def ensure_tick_scheduled(self) -> None:
        interval = self.scheduler.tick_interval
        if interval is None or self._tick_scheduled or self.system._unfinished == 0:
            return
        self._tick_scheduled = True
        self.engine.call_after(interval, self._on_tick_event, label="sched-tick")

    def _on_tick_event(self) -> None:
        self._tick_scheduled = False
        self.tick_due = True
        self.system._kick()
        self.ensure_tick_scheduled()


class BatchComposer:
    """Plans one iteration: a prefill batch or the decode batch.

    Holds the per-iteration planning state (shared min-buffer memo,
    prefill-defer progress counter, dynamic prefill budget) and the
    §4.2.3 buffer-aware prefill/decode interleaving.
    """

    def __init__(self, system: "ServingSystem", memory: "MemoryPressureStage") -> None:
        self.system = system
        self.memory = memory
        self.engine = system.engine
        self.scheduler = system.scheduler
        self.tracker = system.tracker
        self.kv = system.kv
        self.executor = system.executor
        self.config = system.config
        self.running = system.running
        self.prefill_queue = system.prefill_queue
        self.chunked = system.config.chunked_prefill or getattr(
            system.scheduler, "wants_chunked_prefill", False
        )
        # Per-iteration cache (reset by the shell at iteration start).
        self.iter_min_buffer: Optional[float] = None
        self.decodes_since_prefill = 0
        self.prefill_defer_cap = 16       # progress guarantee for prefill
        self.prefill_defer_margin = 0.05  # seconds of buffer slack required
        # Amortised per-token prefill cost, for dynamic partitioning.
        self.per_token_prefill_s = system.latency.prefill_time([2048]) / 2048.0

    def min_running_buffer(self) -> float:
        """Smallest running-request buffer (seconds) at the current
        instant, computed once per iteration and shared between the
        prefill budget and the defer decision."""
        cached = self.iter_min_buffer
        if cached is None:
            cached = self.tracker.min_buffer_seconds(
                self.running, self.engine.now()
            )
            self.iter_min_buffer = cached
        return cached

    def prefill_token_budget(self) -> int:
        """Per-iteration prefill budget, dynamically partitioned (§4.2.3).

        For buffer-aware schedulers the budget shrinks so the prefill
        iteration fits inside the running batch's smallest buffer —
        prefills then never stall an active stream.  A floor keeps
        prefill progressing even when every buffer is thin (the defer
        cap bounds how often that floor is exercised).
        """
        budget = self.config.max_prefill_tokens
        if not getattr(self.scheduler, "decode_priority_aware", False) or not self.running:
            return budget
        slack = self.min_running_buffer() - self.prefill_defer_margin
        dyn = int(slack / self.per_token_prefill_s) if slack > 0 else 0
        floor = min(256, budget)
        return max(floor, min(budget, dyn))

    def should_defer_prefill(self, entries: list) -> bool:
        """Buffer-aware prefill/decode interleaving (§4.2.3).

        Schedulers that opt in (``decode_priority_aware``) defer a
        prefill iteration when some running request's buffer would
        drain during it — latency-sensitive decodes bypass the prefill
        batch.  A progress cap guarantees prefill is never starved.
        """
        if not getattr(self.scheduler, "decode_priority_aware", False):
            return False
        if not self.running:
            return False
        if self.decodes_since_prefill >= self.prefill_defer_cap:
            return False
        plan = self.executor.plan_prefill(
            [(request.req_id, chunk) for request, chunk in entries]
        )
        return self.min_running_buffer() < plan.duration + self.prefill_defer_margin

    def plan_prefill(self) -> list:
        """Pick (request, chunk_tokens) pairs for the next prefill.

        Fresh requests reserve prompt+1 tokens (room for the first
        output token); recompute resumes reserve their full context.
        FCFS within the prefill queue; head-of-line blocks on memory,
        which is exactly the SGLang behaviour TokenFlow's admission
        control avoids triggering.
        """
        entries: list = []
        queue = self.prefill_queue
        if not queue:
            # Nothing to prefill: skip the budget computation (and its
            # min-buffer pass) entirely — the steady-decode common case.
            return entries
        budget = self.prefill_token_budget()
        if budget <= 0:
            return entries
        if len(queue) > 1 and getattr(self.scheduler, "decode_priority_aware", False):
            # Recompute-resumes have live consumers draining a buffer;
            # they bypass fresh admissions (§4.2.3 latency-sensitive
            # bypass).  Fresh requests keep FCFS order among themselves.
            order = sorted(
                [((r.generated == 0, r.arrival_time), i)
                 for i, r in enumerate(queue)]
            )
            queue = [queue[i] for _, i in order]
        for request in queue:
            if budget <= 0:
                break
            target = request.context_len
            if request.prefill_progress == 0:
                reserve = target + (1 if request.generated == 0 else 0)
                try:
                    self.kv.allocate_for_prefill(request.req_id, reserve)
                except OutOfMemory:
                    break
            remaining = target - request.prefill_progress
            if remaining <= 0:
                continue
            chunk = min(remaining, budget)
            if self.chunked:
                chunk = min(chunk, self.config.prefill_chunk_size)
            entries.append((request, chunk))
            budget -= chunk
            if self.chunked:
                break  # one chunk per iteration keeps decode interleaved
        return entries

    def plan_decode(self) -> list:
        """Assemble the decode batch, resolving memory pressure first."""
        if not self.running:
            return []
        if len(self.running) > self.config.max_batch and getattr(
            self.scheduler, "decode_priority_aware", False
        ):
            # More residents than decode slots: serve the most starved.
            # Bulk seconds + decorate-sort == a stable nsmallest by
            # buffer seconds, without a key callback per element.
            now = self.engine.now()
            running = self.running
            seconds = self.tracker.buffer_seconds_many(running, now)
            order = sorted([(s, i) for i, s in enumerate(seconds)])
            batch = [running[i] for _, i in order[: self.config.max_batch]]
        else:
            batch = list(self.running[: self.config.max_batch])
        # Growth blocks are a function of each request's own KV record,
        # so one computation serves both the deficit check and the
        # batch-fitting pass (preempting a victim never changes another
        # request's growth).
        growth = self.kv.decode_growth_blocks_bulk(batch)
        batch = self.memory.resolve_deficit(batch, growth)
        # Greedily keep the prefix of the batch that fits.
        fitted: list = []
        free = self.kv.gpu_free_blocks()
        for request in batch:
            need = growth[request.req_id]
            if need > free:
                continue
            free -= need
            fitted.append(request)
        return fitted


class MemoryPressureStage:
    """KV-pressure handling: decode-time deficit resolution and the
    buffer-ordered chunked write drain (§5.2)."""

    def __init__(self, system: "ServingSystem") -> None:
        self.system = system
        self.scheduler = system.scheduler
        self.tracker = system.tracker
        self.kv = system.kv

    def resolve_deficit(self, batch: list, growth: dict) -> list:
        """Preempt scheduler-selected victims until ``batch`` can grow.

        Returns the batch filtered to still-RUNNING members; the
        caller's greedy fitting pass handles any residual shortfall.
        """
        deficit = max(0, sum(growth.values()) - self.kv.gpu_free_blocks())
        if deficit > 0:
            system = self.system
            victims = self.scheduler.select_oom_victims(system.view(), deficit)
            running = system.running
            for victim in victims:
                # Identity scan: req_ids are unique, so `victim in
                # running` could only ever match the same object — the
                # scan skips the dataclass field-by-field __eq__.
                for member in running:
                    if member is victim:
                        if victim.state is RequestState.RUNNING:
                            system.offload.preempt(victim)
                        break
            batch = [r for r in batch if r.state is RequestState.RUNNING]
        return batch

    def write_priority_at(self, now: float):
        """Chunked-write ordering: fatter buffers sync first (§5.2).

        Returns a one-instant priority callable (binds ``now`` once so
        the per-record calls stay flat dictionary work)."""
        buffer_seconds = self.tracker.buffer_seconds
        return lambda req_id: buffer_seconds(req_id, now)

    def observe_swap(self, tau_evict: float, tau_load: float) -> None:
        if hasattr(self.scheduler, "observe_swap_latency"):
            self.scheduler.observe_swap_latency(tau_evict, tau_load)


class DecodeStream:
    """Runs planned iterations on the executor and streams generated
    tokens into client buffers (the per-token hot path).

    The decode path has a *fusion plane*: when the batch provably
    cannot change before the next decision horizon — the earliest
    pending engine event (tick, arrival, cancel, transfer completion),
    the earliest request completion, GPU/host capacity exhaustion, or
    the per-iteration write-drain budget — it advances all K
    iterations up to that horizon in one event via closed-form bulk
    updates (see :meth:`_plan_fused` / :meth:`complete_fused` and the
    "Fusion plane" section of ARCHITECTURE.md).
    """

    def __init__(self, system: "ServingSystem", memory: MemoryPressureStage) -> None:
        self.system = system
        self.memory = memory
        self.engine = system.engine
        self.scheduler = system.scheduler
        self.tracker = system.tracker
        self.kv = system.kv
        self.executor = system.executor
        self.running = system.running
        self.prefill_queue = system.prefill_queue
        self.finished = system.finished
        # Streaming telemetry retires finished requests — the shell's
        # `finished` list must not pin every Request (and its token
        # timestamps) for the whole run in that mode.
        self.keep_finished = system.stream_stats is None
        self.composer = system.composer
        self.last_token_time = 0.0
        # The executor event currently in flight, as a picklable-free
        # descriptor ``(kind, end_time, payload)`` with kind one of
        # "prefill" (payload: the (request, chunk) entries),
        # "decode" (payload: the batch), or "fused" (payload:
        # (batch, k) for a k-iteration window).  Routers use it to
        # take *trajectory snapshots* for speculative dispatch in the
        # sharded plane (see Router.instance_snapshot): the descriptor
        # names exactly which requests can finish at the next
        # completion instant.  Only meaningful while ``system._busy``.
        self.inflight = None
        # Vectorised batch plane (serving/batchstate.py): deliver each
        # decode batch's tokens through array ops instead of the
        # per-request scalar state machine.  Same parity contract as
        # the fusion plane; `vectorize_decode=False` keeps the scalar
        # path bit-for-bit.
        self.vectorize = system.config.vectorize_decode
        # Fusion-plane counters (surfaced in RunReport.executor_stats).
        self.fused_windows = 0
        self.fused_iterations = 0

    # --- prefill path -------------------------------------------------
    def run_prefill(self, entries: list, overhead: float) -> None:
        system = self.system
        result = self.executor.plan_prefill(
            [(request.req_id, chunk) for request, chunk in entries]
        )
        duration = result.duration + overhead
        now = self.engine.now()
        self.kv.drain_writes(now, now + duration,
                             priority=self.memory.write_priority_at(now))
        if system.tracer is not None:
            system.tracer.record(now, "executor", "prefill_start",
                                 tokens=result.tokens, batch=len(entries),
                                 duration=duration)
        system._busy = True
        self.inflight = ("prefill", now + duration, entries)
        self.engine.call_at(
            now + duration,
            lambda: self.complete_prefill(result, entries, duration),
            label="prefill-done",
        )

    def complete_prefill(self, result, entries: list, duration: float) -> None:
        system = self.system
        now = self.engine.now()
        for request, chunk in entries:
            if request.state is not RequestState.PREFILLING:
                continue
            request.prefill_progress += chunk
            target = request.context_len
            if request.prefill_progress >= target:
                self.kv.on_prefill_complete(request.req_id, target)
                self.prefill_queue.remove(request)
                request.transition(RequestState.RUNNING)
                self.running.append(request)
                if request.generated == 0:
                    # Prefill produces the first output token.
                    self.emit_token(request, now)
        if hasattr(self.scheduler, "observe_prefill"):
            self.scheduler.observe_prefill(result.tokens, duration)
        self.executor.commit(result)
        system._sample_timeline()
        system._busy = False
        self.inflight = None
        system._kick()

    # --- decode path --------------------------------------------------
    def run_decode(self, batch: list, overhead: float) -> None:
        system = self.system
        result = self.executor.plan_decode(
            # context_len inlined (prompt + generated): this comprehension
            # runs once per batch member per iteration.
            [(request.req_id, request.prompt_len + request.generated)
             for request in batch]
        )
        duration = result.duration + overhead
        now = self.engine.now()
        self.kv.drain_writes(now, now + duration,
                             priority=self.memory.write_priority_at(now))
        if system.tracer is not None:
            system.tracer.record(now, "executor", "decode_start",
                                 batch=len(batch), duration=duration)
        system._busy = True
        if system.config.fuse_decode and system.tracer is None:
            fused = self._plan_fused(batch, result, overhead, now, duration)
            if fused is not None:
                times, steps, write_through = fused
                self.inflight = ("fused", times[-1], (batch, len(times)))
                self.engine.call_at(
                    times[-1],
                    lambda: self.complete_fused(
                        result, batch, times, steps, write_through
                    ),
                    label="decode-fused-done",
                )
                return
        self.inflight = ("decode", now + duration, batch)
        self.engine.call_at(
            now + duration,
            lambda: self.complete_decode(result, batch),
            label="decode-done",
        )

    # --- the fusion plane ---------------------------------------------
    def _plan_fused(self, batch: list, result, overhead: float,
                    now: float, duration: float):
        """Size a macro-step window starting with this iteration.

        Returns ``(times, steps, write_through)`` — per-iteration
        completion instants (bit-identical to the event times the
        per-iteration path would schedule), per-iteration executor
        step durations, and whether write drains must be replicated —
        or ``None`` when this iteration must run unfused.

        A window of K iterations is valid only when *nothing* else can
        observe or perturb state strictly before its last completion:

        * batch composition is frozen — whole running set fits (the
          composer found no deficit and no overflow), the prefill queue
          is empty, and the scheduler certifies its skipped boundaries
          are decision-free (:meth:`BaseScheduler.can_fuse_decode` —
          this covers the waiting queue: a policy may certify e.g. a
          memory-blocked FCFS head, which free blocks only shrinking
          keeps blocked for the whole window);
        * every completion instant precedes the earliest pending engine
          event (ticks, arrivals, cancels, transfer completions — the
          DES decision horizon) and the engine's ``run_until`` bound;
        * no request finishes before the window's last iteration
          (``k_cap`` from known ``output_len``);
        * KV growth fits GPU capacity for the whole window, and — with
          write-through on — the first drain fully synced, every
          intermediate drain's one-token-per-request write fits its
          iteration's d2h budget (checked with margin so fusion never
          rides a float knife-edge; too tight simply means no fusion),
          and the host pool keeps the uniform fast path's headroom.
        """
        system = self.system
        if system.prefill_queue:
            return None
        n_batch = len(batch)
        if n_batch != len(self.running):
            return None
        k_cap = min([r.output_len - r.generated for r in batch])
        if k_cap <= 1:
            return None
        engine = self.engine
        horizon = engine.next_event_time()
        t1 = now + duration
        if horizon is not None and t1 >= horizon:
            return None
        until = engine.run_until
        if until is not None and t1 > until:
            return None
        # The scheduler certificate last: for the stateless baselines
        # it re-evaluates the full admission boundary, so the cheap
        # arithmetic rejections above should filter first.
        view = system._iter_view
        if view is None or not self.scheduler.can_fuse_decode(view):
            return None
        kv = self.kv
        req_ids = result.req_ids
        k_cap = kv.max_fused_decode_iterations(req_ids, k_cap)
        if k_cap <= 1:
            return None
        kv_config = kv.config
        write_through = kv_config.write_through and kv_config.enable_offload
        need_bytes = d2h_bw = 0.0
        if write_through:
            if kv.write_backlog_tokens() != 0:
                # This iteration's drain left a dirty tail: subsequent
                # drains would not be uniform one-token syncs.
                return None
            if kv.link.d2h.busy_until() > t1:
                # d2h occupied past this iteration's completion: this
                # iteration's own drain is budget-bounded to finish by
                # t1, so this means an eviction transfer is in flight —
                # the per-iteration drains inside the window would find
                # zero idle budget and sync nothing, and replicating
                # uniform drains would diverge.  (The eviction's
                # completion is a pending event, so the link stays busy
                # for the whole candidate window.)
                return None
            if not kv_config.load_evict_overlap and kv.link.h2d.busy_until() > now:
                return None
            need_bytes = n_batch * kv.kv_bytes_per_token * 1.0625
            d2h_bw = kv.link.d2h.bandwidth
        # Walk per-iteration durations through the latency model's
        # single decode-roofline float sequence (constant batch shape;
        # context grows by n_batch per iteration) so every completion
        # instant is the float the per-iteration event chain would have
        # produced.  The first iteration keeps its caller-supplied
        # overhead (it may include an applied tick's scheduling cost);
        # later iterations pay the plain boundary cost — no tick can
        # fire inside a window.
        steady_overhead = 0.0 + self.scheduler.scheduling_cost_s()
        step_time = system.latency.decode_step_time_from_total
        total0 = 0
        for request in batch:
            total0 += request.prompt_len + request.generated
        times = [t1]
        steps = [result.duration]
        t = t1
        k = 1
        while k < k_cap:
            step = step_time(total0 + n_batch * k, n_batch)
            dur = step + steady_overhead
            if write_through and dur * d2h_bw < need_bytes:
                break
            t_next = t + dur
            if horizon is not None and t_next >= horizon:
                break
            if until is not None and t_next > until:
                break
            times.append(t_next)
            steps.append(step)
            t = t_next
            k += 1
        if k <= 1:
            return None
        if write_through and not kv.cpu_room_for_fused_drains(req_ids, k):
            return None
        return times, steps, write_through

    def complete_fused(self, result, batch: list, times: list,
                       steps: list, write_through: bool) -> None:
        """Apply a K-iteration macro-step at its final completion time.

        The window was sized so no event fires inside it, so deferring
        every mutation to this single callback is indistinguishable
        from the per-iteration event chain — and the per-token work
        collapses into bulk updates: one boundary-bookkeeping replay,
        one KV advance, one buffer delivery per request.
        """
        system = self.system
        now = times[-1]
        k = len(times)
        req_ids = result.req_ids
        running_state = RequestState.RUNNING
        if any([request.state is not running_state for request in batch]):
            # A batch member left RUNNING while this window's event was
            # pending.  No in-simulation event can do that (the window
            # is silent by construction) — only an external call
            # between stepped run() invocations, e.g. the public
            # ServingSystem.cancel().  Mirror complete_decode's
            # skip-departed behaviour: the window applies to the
            # survivors only (the departed request's KV record is
            # already released, and it must not receive tokens).
            batch = [r for r in batch if r.state is running_state]
            req_ids = tuple(r.req_id for r in batch)
        # Skipped-boundary bookkeeping first: it observes pre-window
        # generated counts, exactly like the elided calls would have.
        self.scheduler.on_fused_boundaries(self.running, k - 1)
        self.kv.fused_decode_advance(
            req_ids, k,
            drain_starts=times[:-1] if write_through else None,
        )
        if self.vectorize:
            deliver_batch(self.tracker, batch, times)
        else:
            deliver = self.tracker.deliver_tokens
            for request in batch:
                deliver(request.req_id, times)
        if now > self.last_token_time:
            self.last_token_time = now
        # Intermediate samples: queue/batch sizes are frozen inside the
        # window, so only the timestamps differ.
        system._sample_timeline_many(times[:-1])
        for request in batch:
            if request.generated >= request.output_len:
                self.finish(request, now)
        self.executor.commit_fused(result, steps)
        system._sample_timeline()
        self.composer.decodes_since_prefill += k - 1
        self.fused_windows += 1
        self.fused_iterations += k
        system._busy = False
        self.inflight = None
        system._kick()

    def complete_decode(self, result, batch: list) -> None:
        # The per-token fast path: this loop runs once per generated
        # token across the whole simulation, so emit_token /
        # deliver_token are inlined (same operations, same order).
        system = self.system
        now = self.engine.now()
        running = RequestState.RUNNING
        if self.vectorize and system.tracer is None:
            # Single-iteration advance with the KV growth bulked into
            # one call (bit-identical to per-request on_decode_token —
            # same allocations, same busy arithmetic).  Delivery stays
            # scalar here: with one token per request there is no K
            # dimension to vectorise, and the array kernel's per-row
            # gather/scatter overhead loses to the O(1) scalar step.
            # Reordering KV growth ahead of the deliveries is safe —
            # plan_decode's fitting pass guaranteed every allocation
            # fits, with or without blocks freed by batch members
            # finishing this iteration.
            live = [r for r in batch if r.state is running]
            if live:
                self.kv.fused_decode_advance(
                    tuple([r.req_id for r in live]), 1, None
                )
                entries = self.tracker.entries_by_id
                invalidate = self.tracker.occupancy_invalidator
                for request in live:
                    # Request.record_token inlined (the timestamp-order
                    # check is vacuous here: the engine's clock is
                    # monotone, so `now` never precedes a past token).
                    if request.generated >= request.output_len:
                        raise RuntimeError(
                            f"request {request.req_id} already generated "
                            f"all {request.output_len} tokens"
                        )
                    if request.ttft is None:
                        request.ttft = now - request.arrival_time
                        request.first_token_time = now
                    request.generated += 1
                    request.token_times.append(now)
                    entries[request.req_id].buffer.deliver(now)
                    if request.generated >= request.output_len:
                        # The finish hook may read this request's state
                        # at `now`; drop its memo entry first, exactly
                        # as the scalar path's per-delivery pop would.
                        invalidate(request.req_id, None)
                        self.finish(request, now)
                # One memo sweep instead of a pop per delivery; the
                # memo is a pure cache, so over-clearing only costs
                # recomputes at the next query.
                self.tracker.invalidate_occupancy_all()
                if now > self.last_token_time:
                    self.last_token_time = now
            self.executor.commit(result)
            system._sample_timeline()
            system._busy = False
            self.inflight = None
            system._kick()
            return
        on_decode_token = self.kv.on_decode_token
        entries = self.tracker.entries_by_id
        invalidate = self.tracker.occupancy_invalidator
        for request in batch:
            if request.state is not running:
                continue
            req_id = request.req_id
            on_decode_token(req_id)
            request.record_token(now)
            entries[req_id].buffer.deliver(now)
            invalidate(req_id, None)
            if now > self.last_token_time:
                self.last_token_time = now
            if request.generated >= request.output_len:
                self.finish(request, now)
        self.executor.commit(result)
        system._sample_timeline()
        system._busy = False
        self.inflight = None
        system._kick()

    # --- token delivery / completion ----------------------------------
    def emit_token(self, request: Request, now: float) -> None:
        # NOTE: complete_decode inlines this exact sequence (delivery,
        # last-token-time update, finish check) for the per-token hot
        # loop — any semantic change here must be mirrored there.
        self.tracker.deliver_token(request.req_id, now)
        if now > self.last_token_time:
            self.last_token_time = now
        if request.generated >= request.output_len:
            self.finish(request, now)

    def finish(self, request: Request, now: float) -> None:
        system = self.system
        if system.tracer is not None:
            system.tracer.record(now, "request", "finish",
                                 req_id=request.req_id)
        request.transition(RequestState.FINISHED)
        # Identity scan (not `in`/`remove`): req_ids are unique, so
        # only the same object can match — skip dataclass __eq__.
        running = self.running
        for i, member in enumerate(running):
            if member is request:
                del running[i]
                break
        self.kv.release(request.req_id)
        self.tracker.mark_finished(request.req_id, now)
        if self.keep_finished:
            self.finished.append(request)
        system._unfinished -= 1
        if system.on_request_finished is not None:
            system.on_request_finished(request)
