"""Sharded cluster simulation: conservative time-window parallelism.

A :class:`~repro.serving.cluster.ServingCluster` advances N replicas
on one event loop in one process.  This module splits the same
cluster across K shard workers, each owning a contiguous slice of the
replicas on its own :class:`~repro.sim.engine.SimEngine`, and drives
them with the conservative-window discipline of parallel discrete-event
simulation:

* Replicas never interact except **at dispatch instants**, where the
  router reads instance state.  Between consecutive dispatch times
  every replica's evolution is fully determined, so a shard may run
  ahead to the next dispatch instant without any risk of a causality
  violation — the dispatch "ladder" (the global sequence of arrival
  times) is each shard's lookahead bound, surfaced to the fusion
  plane through the same :class:`~repro.sim.engine.ScopedEngine`
  external horizon the single-process cluster uses.  Identical
  horizons mean identical fused decode windows, which is what makes
  the sharded run *bit-identical*, executor stats included.
* At a dispatch that needs instance state (``least_loaded``,
  ``least_queued``, ``buffer_aware``, sticky misses), the coordinator
  pauses every shard at that instant, gathers per-instance metrics in
  global instance order, and runs the router's pure
  ``select_from_metrics`` decision locally — the only place router
  state mutates, so placements replay exactly.
* Dispatches that need no state (``round_robin`` striping,
  ``session_affinity`` sticky hits) are decided immediately and
  buffered; whole stretches of them collapse into one ``apply``
  message per shard, which is what keeps coordination overhead small
  at soak scale.
* **Speculative dispatch** (``speculation=True``, the default) extends
  that cheapness to stateful routers that implement the trajectory
  snapshot protocol (``Router.speculative`` — ``least_loaded`` and
  ``session_affinity`` over it).  Pause replies piggyback per-instance
  *trajectory snapshots*: the metric's value, the one already-scheduled
  completion event that can change it, and a proven exactness horizon.
  The coordinator folds every confirmed placement into this mirrored
  metrics table and resolves whole epochs of arrivals against it — one
  gather, N selections replayed in arrival order — as long as every
  instance's horizon covers the arrival; the first arrival past any
  horizon takes a speculative pick from the stale mirror, then falls
  back to an authoritative round that validates it (a mismatch is
  rolled back by re-routing the still-undelivered request before any
  shard sees it, so shards only ever observe confirmed placements and
  bit-identity holds by construction).  See ARCHITECTURE.md ("Sharded
  cluster plane") for the exactness argument.

State crosses the process boundary as the picklable structures the
streaming/vectorised planes already produce: ``ServingConfig`` slices
and a :class:`~repro.experiments.systems.SchedulerRecipe` outbound,
per-instance ``RunReport`` (sketch-backed at soak scale) inbound.
Reports aggregate through :func:`repro.serving.metrics.aggregate_reports`
exactly as the single-process cluster's do.

Transports: ``process`` (default) runs each shard as a long-lived
task on the warm pool from :mod:`repro.orchestration.pool`, talking
over manager queues; ``inline`` runs the same :class:`ShardHost`
protocol in-process (set ``REPRO_SHARD_INLINE=1`` or pass
``transport="inline"``) for debugging and cheap exhaustive parity
sweeps — the two transports execute identical host code.
"""

from __future__ import annotations

import copy
import heapq
import multiprocessing
import os
import queue as queue_mod
import time
import traceback
from typing import Callable, List, Optional, Sequence, Union

from repro.serving.cluster import ClusterReport
from repro.serving.metrics import aggregate_reports
from repro.serving.routers import Router, make_router
from repro.serving.server import ServingSystem
from repro.sim.engine import ScopedEngine, SimEngine

# Stateless dispatches buffered between forced flushes: bounds
# coordinator memory on streamed soaks and keeps shard workers fed
# while the coordinator is still routing.
FLUSH_INTERVAL = 1024

# Wall-clock ceiling on waiting for shard replies before declaring the
# run wedged (simulation is deterministic; only a dead worker or a
# broken pool can stall a gather).
GATHER_TIMEOUT_S = 600.0


class ShardHost:
    """One shard: a slice of cluster replicas on a private engine.

    The same host runs inside a worker process (process transport) or
    in the coordinator's process (inline transport); all simulation
    semantics live here so the transports stay pure plumbing.
    """

    def __init__(
        self,
        shard_id: int,
        configs: Sequence,
        scheduler_factory: Callable[[], object],
        router: Router,
        horizon: Optional[float],
    ) -> None:
        self.shard_id = shard_id
        self.horizon = horizon
        self.engine = SimEngine()
        # The dispatch ladder: every global dispatch instant the
        # coordinator has discovered, this shard's external horizon.
        # Entries at or before the clock are spent and lazily dropped,
        # mirroring ServingCluster._next_dispatch_time exactly.
        self.upcoming: List[float] = []
        self.router = router  # used for instance_metrics only (pure)
        self.instances = [
            ServingSystem(
                config,
                scheduler_factory(),
                engine=ScopedEngine(self.engine, self._next_dispatch_time),
            )
            for config in configs
        ]

    def _next_dispatch_time(self) -> Optional[float]:
        times = self.upcoming
        now = self.engine.now()
        while times and times[0] <= now:
            heapq.heappop(times)
        return times[0] if times else None

    def push_ladder(self, times: Sequence[float]) -> None:
        for t in times:
            heapq.heappush(self.upcoming, t)

    def apply(self, entries: Sequence) -> None:
        """Replay routed dispatches: ``(time, local_index, request)``.

        ``run_before`` drains strictly past events and parks the clock
        at the dispatch instant, so the synchronous part of
        ``submit`` (unfinished accounting) lands before any
        same-instant instance event and the admission events it
        schedules land after them — the (time, seq) order the shared
        engine produces.
        """
        for t, local_idx, request in entries:
            self.engine.run_before(t, until=self.horizon)
            self.instances[local_idx].submit([request])

    def pause(self, t: float, request) -> list:
        """Advance to dispatch instant ``t``; measure every instance."""
        self.engine.run_before(t, until=self.horizon)
        return [
            self.router.instance_metrics(instance, request)
            for instance in self.instances
        ]

    def snap(self, t: float, request):
        """:meth:`pause` plus trajectory snapshots (speculation rounds).

        The snapshots ride back on the same reply the metrics use —
        the delta-metrics channel costs no extra messages.
        """
        self.engine.run_before(t, until=self.horizon)
        metrics = []
        snaps = []
        for instance in self.instances:
            metrics.append(self.router.instance_metrics(instance, request))
            snaps.append(self.router.instance_snapshot(instance, request))
        return metrics, snaps

    def finish(self):
        """Drain to the run horizon and hand the results back."""
        self.engine.run(until=self.horizon)
        reports = [instance.report() for instance in self.instances]
        unfinished = sum(instance.unfinished for instance in self.instances)
        return unfinished, reports, self.engine.events_processed


def _in_main_process() -> bool:
    """True unless running inside a forked worker process."""
    return multiprocessing.current_process().name == "MainProcess"


def _handle_message(host: ShardHost, msg: tuple):
    """Shared protocol step for both transports; returns the reply."""
    kind = msg[0]
    if kind == "ladder":
        host.push_ladder(msg[1])
        return None
    if kind == "apply":
        host.push_ladder(msg[2])
        host.apply(msg[1])
        return None
    if kind == "pause":
        host.push_ladder(msg[3])
        return ("metrics", host.shard_id, host.pause(msg[1], msg[2]))
    if kind == "snap":
        host.push_ladder(msg[3])
        metrics, snaps = host.snap(msg[1], msg[2])
        return ("metrics", host.shard_id, metrics, snaps)
    if kind == "finish":
        host.push_ladder(msg[1])
        unfinished, reports, events = host.finish()
        return ("done", host.shard_id, unfinished, reports, events)
    raise ValueError(f"unknown shard message {kind!r}")


def _shard_worker_main(
    inbox, outbox, shard_id, configs, scheduler_factory, router, horizon
) -> bool:
    """Long-lived shard loop run as one warm-pool task per run."""
    from repro.orchestration.pool import iter_messages

    try:
        host = ShardHost(shard_id, configs, scheduler_factory, router, horizon)
        while True:
            payload = inbox.get()
            for msg in iter_messages(payload):
                if msg[0] == "stop":
                    return True
                reply = _handle_message(host, msg)
                if reply is not None:
                    outbox.put(reply)
                if msg[0] == "finish":
                    return True
    except BaseException:
        try:
            outbox.put(("error", shard_id, traceback.format_exc()))
        except Exception:
            pass
        return False


class _InlineTransport:
    """Hosts in the coordinator's process; messages become calls."""

    def __init__(self, shard_configs, scheduler_factory, router, horizon):
        self.hosts = [
            ShardHost(s, configs, scheduler_factory, copy.deepcopy(router), horizon)
            for s, configs in enumerate(shard_configs)
        ]
        self._replies: list = []

    def send(self, shard_id: int, msg: tuple) -> None:
        reply = _handle_message(self.hosts[shard_id], msg)
        if reply is not None:
            self._replies.append(reply)

    def send_many(self, shard_id: int, msgs: list) -> None:
        for msg in msgs:
            self.send(shard_id, msg)

    def gather(self, n: int) -> list:
        if len(self._replies) < n:
            raise RuntimeError(
                f"shard protocol error: expected {n} replies, "
                f"got {len(self._replies)}"
            )
        replies = self._replies[:n]
        del self._replies[:n]
        return replies

    def close(self) -> None:
        pass


class _ProcessTransport:
    """Shard loops as warm-pool tasks, talking over manager queues."""

    def __init__(self, shard_configs, scheduler_factory, router, horizon):
        from repro.orchestration.pool import get_manager, get_pool

        n_shards = len(shard_configs)
        pool = get_pool(min_workers=n_shards)
        manager = get_manager()
        self.outbox = manager.Queue()
        self.inboxes = [manager.Queue() for _ in range(n_shards)]
        self.futures = [
            pool.submit(
                _shard_worker_main,
                self.inboxes[s],
                self.outbox,
                s,
                shard_configs[s],
                scheduler_factory,
                router,
                horizon,
            )
            for s in range(n_shards)
        ]

    def send(self, shard_id: int, msg: tuple) -> None:
        self.inboxes[shard_id].put(msg)

    def send_many(self, shard_id: int, msgs: list) -> None:
        # One envelope, one manager-queue round-trip per shard per
        # coordination round (see orchestration.pool message batching).
        from repro.orchestration.pool import pack_messages

        if msgs:
            self.inboxes[shard_id].put(pack_messages(msgs))

    def gather(self, n: int) -> list:
        replies: list = []
        deadline = time.monotonic() + GATHER_TIMEOUT_S
        while len(replies) < n:
            try:
                reply = self.outbox.get(timeout=0.25)
            except queue_mod.Empty:
                self._check_futures()
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"sharded run wedged: {n - len(replies)} shard "
                        f"replies missing after {GATHER_TIMEOUT_S:.0f}s"
                    )
                continue
            if reply[0] == "error":
                raise RuntimeError(
                    f"shard {reply[1]} failed:\n{reply[2]}"
                )
            replies.append(reply)
        return replies

    def _check_futures(self) -> None:
        for future in self.futures:
            if future.done() and future.exception() is not None:
                from repro.orchestration.pool import reset_pool

                # A hard worker death (OOM-kill, segfault) breaks the
                # whole pool; retire it so later runs re-fork cleanly.
                reset_pool()
                raise RuntimeError(
                    f"shard worker died: {future.exception()!r}"
                ) from future.exception()

    def close(self) -> None:
        # Workers exit after "finish"; the pool itself stays warm for
        # the next run (that reuse is the point of orchestration.pool).
        pass


class ShardedServingCluster:
    """Drop-in :class:`ServingCluster` that runs replicas in K shards.

    Same construction surface (``configs`` + ``scheduler_factory`` +
    ``router``), same run surface (``submit``/``feed`` then
    ``run(until)`` then ``report()``), same :class:`ClusterReport` —
    bit-identical to the single-process cluster for every shardable
    router and any shard count.  Unlike the classic cluster, arrivals
    are recorded at ``submit``/``feed`` time and all simulation
    happens inside the single ``run`` call (the coordination loop).

    ``scheduler_factory`` and the workload requests must be picklable
    for the process transport (use
    :class:`~repro.experiments.systems.SchedulerRecipe`); the inline
    transport has no such requirement.
    """

    def __init__(
        self,
        configs: Sequence,
        scheduler_factory: Callable[[], object],
        dispatch: Union[str, Router] = "least_loaded",
        router: Optional[Union[str, Router]] = None,
        shards: int = 2,
        transport: Optional[str] = None,
        speculation: bool = True,
    ) -> None:
        if not configs:
            raise ValueError("need at least one instance config")
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        self.router = make_router(router if router is not None else dispatch)
        if not self.router.shardable:
            raise ValueError(
                f"router {self.router.name!r} does not support sharded "
                f"execution: it must implement the metrics/selection "
                f"split (see Router.shardable)"
            )
        self.dispatch = self.router.name
        self.configs = list(configs)
        n = len(self.configs)
        # More shards than replicas would leave empty workers; clamp.
        self.shards = min(shards, n)
        sizes = [
            n // self.shards + (1 if s < n % self.shards else 0)
            for s in range(self.shards)
        ]
        starts = [sum(sizes[:s]) for s in range(self.shards)]
        self._shard_configs = [
            self.configs[starts[s]:starts[s] + sizes[s]]
            for s in range(self.shards)
        ]
        self._shard_start = starts
        self._shard_of = [
            s for s in range(self.shards) for _ in range(sizes[s])
        ]
        self.scheduler_factory = scheduler_factory
        if transport is None:
            transport = (
                "inline" if os.environ.get("REPRO_SHARD_INLINE") == "1"
                else "process"
            )
        if transport not in ("process", "inline"):
            raise ValueError(f"unknown shard transport {transport!r}")
        self.transport = transport
        self.placements: dict = {}
        self._retain_placements = any(
            config.retain_per_request for config in self.configs
        )
        self._placement_counts = [0] * n
        self._pending: list = []       # submitted, not yet run
        self._stream = None            # fed, not yet run
        self._pending_dispatch = 0     # left unrouted at the horizon
        self._ran = False
        self._instance_reports: Optional[list] = None
        self._unfinished_final = 0
        # Speculative dispatch (trajectory-snapshot mirror) — only
        # effective for routers that opt in via Router.speculative;
        # ``speculation=False`` reproduces the pre-speculation protocol
        # (every stateful dispatch pays a pause round) exactly.
        self.speculation = bool(speculation)
        # Coordination accounting (benchmarks read these after run()).
        self.coordination_rounds = 0
        self.messages_sent = 0
        self.speculation_hits = 0
        self.speculation_misses = 0
        self.shard_events: List[int] = []

    @classmethod
    def homogeneous(
        cls,
        n_instances: int,
        scheduler_factory: Callable[[], object],
        dispatch: Union[str, Router] = "least_loaded",
        router: Optional[Union[str, Router]] = None,
        shards: int = 2,
        transport: Optional[str] = None,
        speculation: bool = True,
        **config_kwargs,
    ) -> "ShardedServingCluster":
        from repro.serving.config import ServingConfig

        if n_instances <= 0:
            raise ValueError("n_instances must be positive")
        configs = [ServingConfig(**config_kwargs) for _ in range(n_instances)]
        return cls(
            configs, scheduler_factory, dispatch=dispatch, router=router,
            shards=shards, transport=transport, speculation=speculation,
        )

    # --- workload intake --------------------------------------------------
    def submit(self, requests: Sequence) -> None:
        """Record arrivals; routing happens inside :meth:`run`."""
        if self._ran:
            raise RuntimeError("sharded cluster already ran")
        for request in requests:
            if request.arrival_time < 0.0:
                raise ValueError(
                    f"request {request.req_id} arrives in the past"
                )
        self._pending.extend(requests)

    def feed(self, stream, lookahead: int = 1) -> None:
        """Record a lazy arrival stream; consumed inside :meth:`run`.

        The coordinator pops one request at a time (the streamed-run
        memory contract), validating arrival order exactly like
        :func:`~repro.serving.stages.feed_stream_arrivals`.
        """
        if self._ran:
            raise RuntimeError("sharded cluster already ran")
        if lookahead <= 0:
            raise ValueError(f"lookahead must be positive, got {lookahead}")
        if self._stream is not None:
            raise RuntimeError("cluster already has a pending stream")
        self._stream = iter(stream)

    def _iter_dispatches(self, until: Optional[float]):
        """Arrival-ordered dispatch sequence, truncated at the horizon.

        Mirrors the classic cluster's event semantics: a submitted
        request whose arrival falls past ``until`` counts as pending
        (its dispatch event would never fire); a streamed run stops at
        the first such pop without materialising the rest.
        """
        if self._stream is not None:
            last = None
            for request in self._stream:
                if last is not None and request.arrival_time < last:
                    raise ValueError(
                        f"request {request.req_id} arrives in the past "
                        f"({request.arrival_time} < {last}) — workload "
                        f"streams must be ordered by arrival time"
                    )
                last = request.arrival_time
                if until is not None and request.arrival_time > until:
                    self._pending_dispatch += 1
                    return
                yield request
            return
        # Stable sort: ties keep submission order, matching the shared
        # engine's (time, seq) dispatch-event order.
        for request in sorted(self._pending, key=lambda r: r.arrival_time):
            if until is not None and request.arrival_time > until:
                self._pending_dispatch += 1
                continue
            yield request

    # --- coordination loop ------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        if self._ran:
            raise RuntimeError("sharded cluster already ran")
        self._ran = True
        n = len(self.configs)
        n_shards = self.shards
        if self.transport == "inline" or not _in_main_process():
            # Inside a pool worker (e.g. a `repro matrix --jobs N`
            # cell) a nested warm pool deadlocks worker shutdown:
            # multiprocessing's _bootstrap joins all non-daemon
            # children via util._exit_function BEFORE the nested
            # executor's threading-atexit shutdown runs, so the
            # nested workers are never told to exit.  The inline
            # transport runs the identical host code in-process —
            # bit-identical results, and no jobs×shards process
            # oversubscription.
            transport = _InlineTransport(
                self._shard_configs, self.scheduler_factory, self.router, until
            )
        else:
            transport = _ProcessTransport(
                self._shard_configs, self.scheduler_factory, self.router, until
            )

        ladder: List[float] = []          # every discovered dispatch time
        sent = [0] * n_shards             # per-shard ladder watermark
        buffered: List[list] = [[] for _ in range(n_shards)]

        def ladder_delta(s: int) -> list:
            delta = ladder[sent[s]:]
            sent[s] = len(ladder)
            return delta

        def flush(s: int) -> None:
            if buffered[s]:
                transport.send(s, ("apply", buffered[s], ladder_delta(s)))
                self.messages_sent += 1
                buffered[s] = []

        router = self.router
        spec_on = self.speculation and router.speculative
        # The mirrored metrics table: one trajectory snapshot per
        # instance (global order), refreshed by every round's replies
        # and folded forward by every confirmed placement.
        mirror: Optional[list] = None

        since_flush = 0
        for request in self._iter_dispatches(until):
            t = request.arrival_time
            ladder.append(t)
            if not router.needs_state(request):
                idx = router.select_from_metrics(n, None, request)
            elif (
                mirror is not None
                and all(router.snapshot_fresh(m, t) for m in mirror)
            ):
                # Epoch-batched speculative resolution: every mirror
                # entry is provably exact at t, so this selection —
                # replayed against the folding table in arrival order —
                # is the single-process selection, with zero messages.
                metrics = [router.snapshot_metric(m, t) for m in mirror]
                idx = router.select_from_metrics(n, metrics, request)
                self.speculation_hits += 1
            else:
                # Stateful round: every shard advances to t and
                # reports metrics; selection happens here, in global
                # instance order, with the exact single-process code.
                # With speculation on, first take a speculative pick
                # from the (stale) mirror for the round to validate.
                spec_idx = None
                if mirror is not None:
                    preview = [router.snapshot_metric(m, t) for m in mirror]
                    spec_idx = router.peek_from_metrics(n, preview, request)
                kind = "snap" if spec_on else "pause"
                for s in range(n_shards):
                    msgs = []
                    if buffered[s]:
                        msgs.append(("apply", buffered[s], ladder_delta(s)))
                        buffered[s] = []
                        msgs.append((kind, t, request, []))
                    else:
                        msgs.append((kind, t, request, ladder_delta(s)))
                    transport.send_many(s, msgs)
                    self.messages_sent += len(msgs)
                replies = transport.gather(n_shards)
                self.coordination_rounds += 1
                by_shard = {}
                for reply in replies:
                    if reply[0] != "metrics":
                        raise RuntimeError(
                            f"shard protocol error: expected metrics, "
                            f"got {reply[0]!r}"
                        )
                    by_shard[reply[1]] = reply
                metrics = []
                snaps: list = []
                for s in range(n_shards):
                    metrics.extend(by_shard[s][2])
                    if spec_on:
                        snaps.extend(by_shard[s][3])
                if spec_on:
                    mirror = snaps
                idx = router.select_from_metrics(n, metrics, request)
                if spec_idx is not None:
                    # Validate the speculative pick against the
                    # authoritative selection.  A miss is repaired
                    # right here, before any shard-visible effect:
                    # the request has not been delivered, so the
                    # rollback is simply routing it to the
                    # authoritative index instead.
                    if spec_idx == idx:
                        self.speculation_hits += 1
                    else:
                        self.speculation_misses += 1
            # Every confirmed placement — speculative, round-resolved,
            # or stateless — folds into the mirrored table so later
            # speculative selections see it.
            if mirror is not None:
                router.fold_snapshot(mirror[idx], t, request)
            if self._retain_placements:
                self.placements[request.req_id] = idx
            self._placement_counts[idx] += 1
            s = self._shard_of[idx]
            buffered[s].append((t, idx - self._shard_start[s], request))
            since_flush += 1
            if since_flush >= FLUSH_INTERVAL:
                for s in range(n_shards):
                    flush(s)
                since_flush = 0

        for s in range(n_shards):
            flush(s)
            transport.send(s, ("finish", ladder_delta(s)))
            self.messages_sent += 1
        replies = transport.gather(n_shards)
        by_shard = {}
        for reply in replies:
            if reply[0] != "done":
                raise RuntimeError(
                    f"shard protocol error: expected done, got {reply[0]!r}"
                )
            by_shard[reply[1]] = reply
        reports: list = []
        unfinished = 0
        self.shard_events = []
        for s in range(n_shards):
            _, _, shard_unfinished, shard_reports, events = by_shard[s]
            unfinished += shard_unfinished
            reports.extend(shard_reports)
            self.shard_events.append(events)
        self._instance_reports = reports
        self._unfinished_final = unfinished + self._pending_dispatch
        self._pending = []
        self._stream = None
        transport.close()
        if until is not None:
            return until
        return max(
            (report.makespan for report in reports if report is not None),
            default=0.0,
        )

    # --- reporting --------------------------------------------------------
    @property
    def unfinished(self) -> int:
        if not self._ran:
            return len(self._pending)
        return self._unfinished_final

    def report(self) -> ClusterReport:
        if self._instance_reports is None:
            raise RuntimeError("run() the sharded cluster before report()")
        reports = self._instance_reports
        total = aggregate_reports(reports)
        return ClusterReport(
            per_instance=reports,
            aggregate=total,
            n_requests=total.n_requests,
            n_finished=total.n_finished,
            total_tokens=total.total_tokens,
            throughput=total.throughput,
            effective_throughput=total.effective_throughput,
            qos=total.qos,
            ttft_mean=total.ttft_mean,
            ttft_p50=total.ttft_p50,
            ttft_p99=total.ttft_p99,
            stall_total=total.stall_total,
            preemptions=total.preemptions,
            coordination_rounds=self.coordination_rounds,
            messages_sent=self.messages_sent,
            speculation_hits=self.speculation_hits,
            speculation_misses=self.speculation_misses,
        )

    def placement_counts(self) -> list:
        return list(self._placement_counts)
