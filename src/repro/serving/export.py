"""Run-report serialization: dicts, JSON, and JSONL token traces.

Downstream analysis (notebooks, plotting, regression tracking) wants
machine-readable run output; this module converts
:class:`~repro.serving.metrics.RunReport` objects and per-request
token traces to plain data structures and files.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Union

from repro.core.tracker import RequestTracker
from repro.serving.metrics import RunReport


def report_to_dict(report: RunReport, include_requests: bool = True) -> dict:
    """Convert a report to JSON-safe primitives."""
    payload = {
        "system": report.system,
        "n_requests": report.n_requests,
        "n_finished": report.n_finished,
        "makespan_s": report.makespan,
        "total_tokens": report.total_tokens,
        "throughput_tok_s": report.throughput,
        "effective_tokens": report.effective_tokens,
        "effective_throughput_tok_s": report.effective_throughput,
        "qos": report.qos,
        "ttft_mean_s": report.ttft_mean,
        "ttft_p50_s": report.ttft_p50,
        "ttft_p99_s": report.ttft_p99,
        "stall_total_s": report.stall_total,
        "stall_mean_s": report.stall_mean,
        "preemptions": report.preemptions,
        "executor_stats": dict(report.executor_stats),
        "kv_stats": _jsonable(report.kv_stats),
        "scheduler_stats": _jsonable(report.scheduler_stats),
    }
    if report.stream_stats is not None:
        # Sketch-backed (streaming-telemetry) report: no per-request
        # rows exist; record the mode and the sketch summaries so the
        # artifact documents its own percentile error envelope.
        payload["streaming_telemetry"] = True
        payload["ttft_sketch"] = report.stream_stats.ttft.to_dict()
        payload["stall_sketch"] = report.stream_stats.stall.to_dict()
    if include_requests:
        payload["per_request"] = [
            dataclasses.asdict(metrics) for metrics in report.per_request
        ]
    return payload


def _jsonable(value):
    """Recursively coerce stats containers to JSON-safe types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


def save_report_json(
    report: RunReport, path: Union[str, Path], include_requests: bool = True
) -> Path:
    """Write a report as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(report_to_dict(report, include_requests), handle, indent=2)
        handle.write("\n")
    return path


def save_token_trace_jsonl(tracker: RequestTracker, path: Union[str, Path]) -> Path:
    """Write one JSONL record per request with its full token timeline.

    Each record carries generation timestamps, consumption timestamps,
    and the buffer occupancy at each token's generation instant — the
    raw material behind Figs. 5/18 style plots.

    Requires the run to have kept per-token traces: construct the
    serving system with ``ServingConfig(record_token_traces=True)``
    (off by default — the aggregate report does not need them).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        for entry in tracker.entries():
            request, buffer = entry.request, entry.buffer
            record = {
                "req_id": request.req_id,
                "arrival_time": request.arrival_time,
                "prompt_len": request.prompt_len,
                "output_len": request.output_len,
                "rate": request.rate,
                "is_agent": request.is_agent,
                "ttft": request.ttft,
                "finish_time": request.finish_time,
                "preemptions": request.preemption_count,
                "generation_times": buffer.generation_times,
                "consumption_times": buffer.consumption_times,
                "occupancy_at_generation": buffer.occupancy_at_generation,
                "stall_time": buffer.stall_time,
            }
            handle.write(json.dumps(record) + "\n")
    return path


def load_report_json(path: Union[str, Path]) -> dict:
    """Read back a saved report dict."""
    with open(path) as handle:
        return json.load(handle)
