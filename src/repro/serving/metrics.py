"""Run metrics: per-request records, streaming accumulators, report.

Computes every metric the paper evaluates (§7.1.3): TTFT (mean / P50 /
P99), raw token throughput, *effective* throughput (tokens weighted by
buffer occupancy, τ₁ = 10 % / τ₂ = 20 % of output length), the QoS
score of Eq. 2, stall/rebuffer totals, and preemption/IO counters.

Two collection modes share these formulas:

* **Retained** (the default, ``ServingConfig.retain_per_request=True``)
  — every request keeps a :class:`RequestMetrics` record and the
  report is an exact fold over them, bit-identical to the historical
  pipeline (goldens pin this).
* **Streaming** (``retain_per_request=False``) — finished requests are
  *retired* into a :class:`StreamingRunStats` accumulator the moment
  they complete: counts and sums fold exactly; TTFT/stall percentiles
  come from a mergeable log-bucketed :class:`QuantileSketch` with
  bounded relative error.  Memory stays O(active requests) however
  many requests a run serves — the telemetry half of the streaming
  workload plane (ARCHITECTURE.md, "Streaming plane").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.stats import summarize
from repro.core.qos import QoSParams, fold_hist_metrics
from repro.core.tracker import RequestTracker


@dataclass(frozen=True)
class RequestMetrics:
    """Final per-request measurements."""

    req_id: int
    arrival_time: float
    ttft: Optional[float]
    finish_time: Optional[float]
    generated: int
    output_len: int
    rate: float
    stall_time: float
    effective_tokens: float
    preemptions: int
    qos_term: float


class QuantileSketch:
    """Mergeable log-bucketed quantile sketch (DDSketch-style).

    Values land in geometric buckets ``[γ^i, γ^(i+1))`` with
    ``γ = (1+α)/(1-α)``; reporting a bucket's midpoint bounds the
    relative error of any quantile estimate by ``α`` (default 1 %).
    Buckets are a sparse dict, so memory is O(distinct magnitudes) —
    tens of entries for latency-shaped data — independent of how many
    values are observed.  Sketches with equal ``rel_accuracy`` merge
    by bucket-count addition, which is what lets cluster and matrix
    aggregation fold per-instance streaming reports without per-request
    records.

    Exact count/sum/min/max ride along, so means are exact and the
    extreme quantiles clamp to true observations.
    """

    __slots__ = ("rel_accuracy", "_gamma_log", "count", "total",
                 "_buckets", "_zero_count", "minimum", "maximum")

    # Values below this are indistinguishable from zero for latency
    # metrics and would explode the log bucketing.
    _EPS = 1e-12

    def __init__(self, rel_accuracy: float = 0.01) -> None:
        if not 0 < rel_accuracy < 1:
            raise ValueError("rel_accuracy must be in (0, 1)")
        self.rel_accuracy = rel_accuracy
        self._gamma_log = math.log((1 + rel_accuracy) / (1 - rel_accuracy))
        self.count = 0
        self.total = 0.0
        self._buckets: dict = {}
        self._zero_count = 0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation (must be non-negative)."""
        if value < 0:
            raise ValueError(f"sketch values must be non-negative, got {value}")
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value <= self._EPS:
            self._zero_count += 1
            return
        key = math.ceil(math.log(value) / self._gamma_log)
        self._buckets[key] = self._buckets.get(key, 0) + 1

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into this sketch (same ``rel_accuracy``)."""
        if other.rel_accuracy != self.rel_accuracy:
            raise ValueError(
                f"cannot merge sketches with different accuracies "
                f"({self.rel_accuracy} vs {other.rel_accuracy})"
            )
        self.count += other.count
        self.total += other.total
        self._zero_count += other._zero_count
        for key, n in other._buckets.items():
            self._buckets[key] = self._buckets.get(key, 0) + n
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Approximate the ``q``-th percentile (``q`` in [0, 100]).

        Returns the midpoint of the bucket holding the order statistic
        at rank ``(count-1)·q/100`` — within ``rel_accuracy`` of the
        exact value — clamped to the observed min/max.  NaN when empty.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if self.count == 0:
            return float("nan")
        target = (self.count - 1) * q / 100.0
        cum = self._zero_count
        if cum > target:
            return 0.0
        gamma = math.exp(self._gamma_log)
        for key in sorted(self._buckets):
            cum += self._buckets[key]
            if cum > target:
                # Midpoint of [γ^(k-1), γ^k): 2·γ^k/(γ+1).
                estimate = 2.0 * math.exp(key * self._gamma_log) / (gamma + 1.0)
                return min(max(estimate, self.minimum), self.maximum)
        return self.maximum

    def copy(self) -> "QuantileSketch":
        clone = QuantileSketch(self.rel_accuracy)
        clone.count = self.count
        clone.total = self.total
        clone._buckets = dict(self._buckets)
        clone._zero_count = self._zero_count
        clone.minimum = self.minimum
        clone.maximum = self.maximum
        return clone

    def to_dict(self) -> dict:
        """JSON-safe summary (bucket detail elided)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.quantile(50),
            "p99": self.quantile(99),
            "rel_accuracy": self.rel_accuracy,
        }

    # Pickle support for __slots__ (reports cross process boundaries
    # in the matrix orchestrator).
    def __getstate__(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)


class StreamingRunStats:
    """Bounded-memory fold of per-request metrics.

    The telemetry sink of the streaming plane: the
    :class:`~repro.core.tracker.RequestTracker` retires each finished
    request into :meth:`observe` the moment it completes, after which
    the request's tracker entry (buffer, token timestamps) is dropped.
    Counts and sums fold exactly — throughput, effective throughput,
    QoS, total/mean stalls and TTFT *means* are exact; TTFT/stall
    *percentiles* come from :class:`QuantileSketch` within its
    ``rel_accuracy``.  Everything merges, so cluster/matrix
    aggregation works without per-request records.

    QoS bookkeeping: Eq. 2's per-request term is linear in its
    penalties, so requests without a TTFT (never started — the
    retained path substitutes the run makespan, only known at report
    time) accumulate their utility−rebuffer part in ``qos_pending``
    and the makespan penalty is applied once at :meth:`assemble`.
    """

    def __init__(
        self,
        qos_params: Optional[QoSParams] = None,
        rel_accuracy: float = 0.01,
    ) -> None:
        self.qos_params = qos_params if qos_params is not None else QoSParams()
        self.rel_accuracy = rel_accuracy
        self.n_requests = 0
        self.n_finished = 0
        self.total_tokens = 0
        self.effective_total = 0.0
        self.qos_sum = 0.0          # finalised per-request QoS terms
        self.qos_pending = 0.0      # utility − μ·rebuffer of TTFT-less requests
        self.n_no_ttft = 0
        self.stall_total = 0.0
        self.preemptions = 0
        self.ttft = QuantileSketch(rel_accuracy)
        self.stall = QuantileSketch(rel_accuracy)

    # --- folding ------------------------------------------------------
    def observe(self, request, buffer) -> None:
        """Retire one request: fold its final metrics and let the
        caller drop the per-request state."""
        params = self.qos_params
        occ_hist = buffer.occupancy_histogram
        effective, utility_sum = fold_hist_metrics(
            occ_hist, request.output_len, params
        )
        ttft = request.ttft
        rebuffer = 0.0 if request.is_agent else buffer.stall_time
        self.n_requests += 1
        self.total_tokens += request.generated
        self.effective_total += effective
        self.stall_total += buffer.stall_time
        self.stall.add(buffer.stall_time)
        self.preemptions += request.preemption_count
        if request.is_finished:
            self.n_finished += 1
        if ttft is not None:
            self.ttft.add(ttft)
            self.qos_sum += (
                utility_sum - params.lam * ttft - params.mu * rebuffer
            )
        else:
            self.qos_pending += (
                utility_sum - params.lam * 0.0 - params.mu * rebuffer
            )
            self.n_no_ttft += 1

    def observe_metrics(self, metrics: RequestMetrics) -> None:
        """Fold one retained :class:`RequestMetrics` record (mixed
        retained/streaming aggregation).  The record's ``qos_term`` is
        already final — its source report resolved any makespan
        substitution — so it lands in ``qos_sum`` directly."""
        self.n_requests += 1
        self.total_tokens += metrics.generated
        self.effective_total += metrics.effective_tokens
        self.qos_sum += metrics.qos_term
        self.stall_total += metrics.stall_time
        self.stall.add(metrics.stall_time)
        self.preemptions += metrics.preemptions
        if metrics.finish_time is not None:
            self.n_finished += 1
        if metrics.ttft is not None:
            self.ttft.add(metrics.ttft)

    def merge(self, other: "StreamingRunStats") -> None:
        """Fold ``other``'s accumulators into this one."""
        self.n_requests += other.n_requests
        self.n_finished += other.n_finished
        self.total_tokens += other.total_tokens
        self.effective_total += other.effective_total
        self.qos_sum += other.qos_sum
        self.qos_pending += other.qos_pending
        self.n_no_ttft += other.n_no_ttft
        self.stall_total += other.stall_total
        self.preemptions += other.preemptions
        self.ttft.merge(other.ttft)
        self.stall.merge(other.stall)

    def copy(self) -> "StreamingRunStats":
        clone = StreamingRunStats(self.qos_params, self.rel_accuracy)
        clone.n_requests = self.n_requests
        clone.n_finished = self.n_finished
        clone.total_tokens = self.total_tokens
        clone.effective_total = self.effective_total
        clone.qos_sum = self.qos_sum
        clone.qos_pending = self.qos_pending
        clone.n_no_ttft = self.n_no_ttft
        clone.stall_total = self.stall_total
        clone.preemptions = self.preemptions
        clone.ttft = self.ttft.copy()
        clone.stall = self.stall.copy()
        return clone

    # --- reporting ----------------------------------------------------
    def assemble(
        self,
        system: str,
        makespan: float,
        timeline: Optional[list] = None,
        executor_stats: Optional[dict] = None,
        kv_stats: Optional[dict] = None,
        scheduler_stats: Optional[dict] = None,
    ) -> "RunReport":
        """Build a sketch-backed :class:`RunReport` (``per_request`` is
        empty; the resolved stats ride on ``report.stream_stats`` so
        downstream aggregation can keep folding)."""
        makespan = max(makespan, 1e-9)
        resolved = self.copy()
        if resolved.n_no_ttft:
            # The retained path substitutes the makespan for a missing
            # TTFT; Eq. 2 is linear, so apply it in bulk here.
            resolved.qos_sum += (
                resolved.qos_pending
                - self.qos_params.lam * makespan * resolved.n_no_ttft
            )
            resolved.qos_pending = 0.0
            resolved.n_no_ttft = 0
        has_ttft = resolved.ttft.count > 0
        return RunReport(
            system=system,
            n_requests=resolved.n_requests,
            n_finished=resolved.n_finished,
            makespan=makespan,
            total_tokens=resolved.total_tokens,
            throughput=resolved.total_tokens / makespan,
            effective_tokens=resolved.effective_total,
            effective_throughput=resolved.effective_total / makespan,
            qos=resolved.qos_sum / makespan,
            ttft_mean=resolved.ttft.mean if has_ttft else float("nan"),
            ttft_p50=resolved.ttft.quantile(50) if has_ttft else float("nan"),
            ttft_p99=resolved.ttft.quantile(99) if has_ttft else float("nan"),
            stall_total=resolved.stall_total,
            stall_mean=resolved.stall_total / max(1, resolved.n_requests),
            preemptions=resolved.preemptions,
            per_request=[],
            timeline=timeline if timeline is not None else [],
            executor_stats=executor_stats if executor_stats is not None else {},
            kv_stats=kv_stats if kv_stats is not None else {},
            scheduler_stats=scheduler_stats if scheduler_stats is not None else {},
            stream_stats=resolved,
        )


@dataclass
class RunReport:
    """Aggregate results of one serving run."""

    system: str
    n_requests: int
    n_finished: int
    makespan: float
    total_tokens: int
    throughput: float
    effective_tokens: float
    effective_throughput: float
    qos: float
    ttft_mean: float
    ttft_p50: float
    ttft_p99: float
    stall_total: float
    stall_mean: float
    preemptions: int
    per_request: list = field(default_factory=list)
    timeline: list = field(default_factory=list)  # (t, queued, running)
    executor_stats: dict = field(default_factory=dict)
    kv_stats: dict = field(default_factory=dict)
    scheduler_stats: dict = field(default_factory=dict)
    # Streaming-mode runs carry their resolved accumulator here (and an
    # empty per_request); retained runs leave it None.
    stream_stats: Optional[StreamingRunStats] = None

    @property
    def is_streaming(self) -> bool:
        """True when this report is sketch-backed (no per-request rows)."""
        return self.stream_stats is not None

    def summary_row(self) -> list:
        """The four headline metrics as a table row."""
        return [
            self.system,
            round(self.effective_throughput, 1),
            round(self.throughput, 1),
            round(self.ttft_mean, 3),
            round(self.ttft_p99, 3),
        ]

    @staticmethod
    def summary_headers() -> list:
        return ["system", "eff_thpt(tok/s)", "thpt(tok/s)", "mean_ttft(s)", "p99_ttft(s)"]


def build_report(
    system: str,
    tracker: RequestTracker,
    makespan: float,
    qos_params: Optional[QoSParams] = None,
    timeline: Optional[list] = None,
    executor_stats: Optional[dict] = None,
    kv_stats: Optional[dict] = None,
    scheduler_stats: Optional[dict] = None,
    stream_stats: Optional[StreamingRunStats] = None,
) -> RunReport:
    """Assemble a :class:`RunReport` from tracker state.

    ``makespan`` is the overall request-process time T of Eq. 2 —
    first arrival to last activity.

    When ``stream_stats`` is given (streaming-telemetry runs), the
    report is assembled from that accumulator — already holding every
    retired request — plus a fold of whatever entries are still live
    in the tracker (unfinished or cancelled stragglers); the retained
    per-request walk below never runs.
    """
    if stream_stats is not None:
        stats = stream_stats.copy()
        for entry in tracker.entries():
            stats.observe(entry.request, entry.buffer)
        return stats.assemble(
            system=system,
            makespan=makespan,
            timeline=timeline,
            executor_stats=executor_stats,
            kv_stats=kv_stats,
            scheduler_stats=scheduler_stats,
        )
    params = qos_params if qos_params is not None else QoSParams()
    per_request: list = []
    total_tokens = 0
    effective_total = 0.0
    qos_terms: list = []
    ttfts: list = []
    stalls: list = []
    preemptions = 0
    n_finished = 0
    for entry in tracker.entries():
        request, buffer = entry.request, entry.buffer
        # The compact occupancy histogram stands in for the per-token
        # B_{i,j} list — it works whether or not the buffer keeps full
        # traces, and evaluates each weight once per distinct value.
        occ_hist = buffer.occupancy_histogram
        effective, utility_sum = fold_hist_metrics(
            occ_hist, request.output_len, params
        )
        ttft = request.ttft
        # Agent clients (§8) have no real-time consumer: their
        # reference rate is a priority signal, so "stalls" against it
        # carry no experience penalty.
        rebuffer = 0.0 if request.is_agent else buffer.stall_time
        qos_term = (
            utility_sum
            - params.lam * (ttft if ttft is not None else makespan)
            - params.mu * rebuffer
        )
        per_request.append(
            RequestMetrics(
                req_id=request.req_id,
                arrival_time=request.arrival_time,
                ttft=ttft,
                finish_time=request.finish_time,
                generated=request.generated,
                output_len=request.output_len,
                rate=request.rate,
                stall_time=buffer.stall_time,
                effective_tokens=effective,
                preemptions=request.preemption_count,
                qos_term=qos_term,
            )
        )
        total_tokens += request.generated
        effective_total += effective
        qos_terms.append(qos_term)
        preemptions += request.preemption_count
        if ttft is not None:
            ttfts.append(ttft)
        stalls.append(buffer.stall_time)
        if request.is_finished:
            n_finished += 1

    return _assemble_report(
        system=system,
        per_request=per_request,
        makespan=makespan,
        total_tokens=total_tokens,
        effective_total=effective_total,
        qos_terms=qos_terms,
        ttfts=ttfts,
        stalls=stalls,
        preemptions=preemptions,
        n_finished=n_finished,
        timeline=timeline,
        executor_stats=executor_stats,
        kv_stats=kv_stats,
        scheduler_stats=scheduler_stats,
    )


def _assemble_report(
    system: str,
    per_request: list,
    makespan: float,
    total_tokens: int,
    effective_total: float,
    qos_terms: list,
    ttfts: list,
    stalls: list,
    preemptions: int,
    n_finished: int,
    timeline: Optional[list] = None,
    executor_stats: Optional[dict] = None,
    kv_stats: Optional[dict] = None,
    scheduler_stats: Optional[dict] = None,
) -> RunReport:
    """Fold accumulated per-request terms into a :class:`RunReport`.

    Shared by the single-node :func:`build_report` and the cluster
    aggregation in :func:`aggregate_reports`, so cluster-level
    throughput/TTFT/stall numbers use exactly the single-node formulas
    (same percentile definition, same makespan flooring).
    """
    makespan = max(makespan, 1e-9)
    ttft_summary = summarize(ttfts) if ttfts else None
    return RunReport(
        system=system,
        n_requests=len(per_request),
        n_finished=n_finished,
        makespan=makespan,
        total_tokens=total_tokens,
        throughput=total_tokens / makespan,
        effective_tokens=effective_total,
        effective_throughput=effective_total / makespan,
        qos=sum(qos_terms) / makespan,
        ttft_mean=ttft_summary.mean if ttft_summary else float("nan"),
        ttft_p50=ttft_summary.p50 if ttft_summary else float("nan"),
        ttft_p99=ttft_summary.p99 if ttft_summary else float("nan"),
        stall_total=float(sum(stalls)),
        stall_mean=float(sum(stalls)) / max(1, len(stalls)),
        preemptions=preemptions,
        per_request=per_request,
        timeline=timeline if timeline is not None else [],
        executor_stats=executor_stats if executor_stats is not None else {},
        kv_stats=kv_stats if kv_stats is not None else {},
        scheduler_stats=scheduler_stats if scheduler_stats is not None else {},
    )


def report_fingerprint(report: RunReport) -> tuple:
    """Every aggregate number plus exact per-request detail, as one
    hashable value.

    The determinism-audit primitive: two runs of the same scenario are
    "bit-identical" iff their fingerprints compare equal (used by the
    orchestrator's matrix-vs-solo parity tests and available for ad-hoc
    reproducibility checks).  Floats are compared exactly — no
    tolerance — which is the point.
    """
    per_request = tuple(
        (m.req_id, m.ttft, m.finish_time, m.generated, m.stall_time,
         m.effective_tokens, m.qos_term, m.preemptions)
        for m in report.per_request
    )
    return (report.n_requests, report.n_finished, report.total_tokens,
            report.throughput, report.effective_throughput, report.qos,
            report.ttft_mean, report.ttft_p50, report.ttft_p99,
            report.stall_total, report.preemptions, per_request)


def aggregate_reports(reports: Sequence, system: str = "cluster") -> RunReport:
    """Fold per-instance :class:`RunReport` objects into one aggregate.

    Used by the cluster layer so cluster-level throughput, TTFT
    percentiles, stall totals and QoS come from the *same* formulas as
    the single-node report (no duplicated aggregation code).  The
    cluster makespan is the longest per-instance makespan among
    instances that served requests — every instance shares one engine
    clock, so this is the wall of the whole run.

    Sketch-backed reports (streaming telemetry) aggregate by merging
    their accumulators; a mix of retained and streaming reports is
    handled by folding the retained per-request rows into the merged
    accumulator, so the aggregate is sketch-backed whenever any input
    is.  All-retained inputs keep the exact historical fold.
    """
    makespan = max((r.makespan for r in reports if r.n_requests), default=1e-9)
    if any(r.stream_stats is not None for r in reports):
        merged: Optional[StreamingRunStats] = None
        retained: list = []
        for report in reports:
            if report.stream_stats is None:
                retained.append(report)
            elif merged is None:
                merged = report.stream_stats.copy()
            else:
                merged.merge(report.stream_stats)
        assert merged is not None
        for report in retained:
            for metrics in report.per_request:
                merged.observe_metrics(metrics)
        return merged.assemble(system=system, makespan=makespan)
    per_request = [m for report in reports for m in report.per_request]
    return _assemble_report(
        system=system,
        per_request=per_request,
        makespan=makespan,
        total_tokens=sum(r.total_tokens for r in reports),
        effective_total=sum(r.effective_tokens for r in reports),
        qos_terms=[m.qos_term for m in per_request],
        ttfts=[m.ttft for m in per_request if m.ttft is not None],
        stalls=[m.stall_time for m in per_request],
        preemptions=sum(r.preemptions for r in reports),
        n_finished=sum(r.n_finished for r in reports),
    )
