"""Run metrics: per-request records and aggregate report.

Computes every metric the paper evaluates (§7.1.3): TTFT (mean / P50 /
P99), raw token throughput, *effective* throughput (tokens weighted by
buffer occupancy, τ₁ = 10 % / τ₂ = 20 % of output length), the QoS
score of Eq. 2, stall/rebuffer totals, and preemption/IO counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.stats import summarize
from repro.core.qos import (
    QoSParams,
    effective_token_count_hist,
    request_qos_terms_hist,
)
from repro.core.tracker import RequestTracker


@dataclass(frozen=True)
class RequestMetrics:
    """Final per-request measurements."""

    req_id: int
    arrival_time: float
    ttft: Optional[float]
    finish_time: Optional[float]
    generated: int
    output_len: int
    rate: float
    stall_time: float
    effective_tokens: float
    preemptions: int
    qos_term: float


@dataclass
class RunReport:
    """Aggregate results of one serving run."""

    system: str
    n_requests: int
    n_finished: int
    makespan: float
    total_tokens: int
    throughput: float
    effective_tokens: float
    effective_throughput: float
    qos: float
    ttft_mean: float
    ttft_p50: float
    ttft_p99: float
    stall_total: float
    stall_mean: float
    preemptions: int
    per_request: list = field(default_factory=list)
    timeline: list = field(default_factory=list)  # (t, queued, running)
    executor_stats: dict = field(default_factory=dict)
    kv_stats: dict = field(default_factory=dict)
    scheduler_stats: dict = field(default_factory=dict)

    def summary_row(self) -> list:
        """The four headline metrics as a table row."""
        return [
            self.system,
            round(self.effective_throughput, 1),
            round(self.throughput, 1),
            round(self.ttft_mean, 3),
            round(self.ttft_p99, 3),
        ]

    @staticmethod
    def summary_headers() -> list:
        return ["system", "eff_thpt(tok/s)", "thpt(tok/s)", "mean_ttft(s)", "p99_ttft(s)"]


def build_report(
    system: str,
    tracker: RequestTracker,
    makespan: float,
    qos_params: Optional[QoSParams] = None,
    timeline: Optional[list] = None,
    executor_stats: Optional[dict] = None,
    kv_stats: Optional[dict] = None,
    scheduler_stats: Optional[dict] = None,
) -> RunReport:
    """Assemble a :class:`RunReport` from tracker state.

    ``makespan`` is the overall request-process time T of Eq. 2 —
    first arrival to last activity.
    """
    params = qos_params if qos_params is not None else QoSParams()
    per_request: list = []
    total_tokens = 0
    effective_total = 0.0
    qos_terms: list = []
    ttfts: list = []
    stalls: list = []
    preemptions = 0
    n_finished = 0
    for entry in tracker.entries():
        request, buffer = entry.request, entry.buffer
        # The compact occupancy histogram stands in for the per-token
        # B_{i,j} list — it works whether or not the buffer keeps full
        # traces, and evaluates each weight once per distinct value.
        occ_hist = buffer.occupancy_histogram
        effective = effective_token_count_hist(occ_hist, request.output_len)
        ttft = request.ttft
        # Agent clients (§8) have no real-time consumer: their
        # reference rate is a priority signal, so "stalls" against it
        # carry no experience penalty.
        rebuffer = 0.0 if request.is_agent else buffer.stall_time
        qos_term = request_qos_terms_hist(
            occ_hist,
            request.output_len,
            ttft if ttft is not None else makespan,
            rebuffer,
            params,
        )
        per_request.append(
            RequestMetrics(
                req_id=request.req_id,
                arrival_time=request.arrival_time,
                ttft=ttft,
                finish_time=request.finish_time,
                generated=request.generated,
                output_len=request.output_len,
                rate=request.rate,
                stall_time=buffer.stall_time,
                effective_tokens=effective,
                preemptions=request.preemption_count,
                qos_term=qos_term,
            )
        )
        total_tokens += request.generated
        effective_total += effective
        qos_terms.append(qos_term)
        preemptions += request.preemption_count
        if ttft is not None:
            ttfts.append(ttft)
        stalls.append(buffer.stall_time)
        if request.is_finished:
            n_finished += 1

    return _assemble_report(
        system=system,
        per_request=per_request,
        makespan=makespan,
        total_tokens=total_tokens,
        effective_total=effective_total,
        qos_terms=qos_terms,
        ttfts=ttfts,
        stalls=stalls,
        preemptions=preemptions,
        n_finished=n_finished,
        timeline=timeline,
        executor_stats=executor_stats,
        kv_stats=kv_stats,
        scheduler_stats=scheduler_stats,
    )


def _assemble_report(
    system: str,
    per_request: list,
    makespan: float,
    total_tokens: int,
    effective_total: float,
    qos_terms: list,
    ttfts: list,
    stalls: list,
    preemptions: int,
    n_finished: int,
    timeline: Optional[list] = None,
    executor_stats: Optional[dict] = None,
    kv_stats: Optional[dict] = None,
    scheduler_stats: Optional[dict] = None,
) -> RunReport:
    """Fold accumulated per-request terms into a :class:`RunReport`.

    Shared by the single-node :func:`build_report` and the cluster
    aggregation in :func:`aggregate_reports`, so cluster-level
    throughput/TTFT/stall numbers use exactly the single-node formulas
    (same percentile definition, same makespan flooring).
    """
    makespan = max(makespan, 1e-9)
    ttft_summary = summarize(ttfts) if ttfts else None
    return RunReport(
        system=system,
        n_requests=len(per_request),
        n_finished=n_finished,
        makespan=makespan,
        total_tokens=total_tokens,
        throughput=total_tokens / makespan,
        effective_tokens=effective_total,
        effective_throughput=effective_total / makespan,
        qos=sum(qos_terms) / makespan,
        ttft_mean=ttft_summary.mean if ttft_summary else float("nan"),
        ttft_p50=ttft_summary.p50 if ttft_summary else float("nan"),
        ttft_p99=ttft_summary.p99 if ttft_summary else float("nan"),
        stall_total=float(sum(stalls)),
        stall_mean=float(sum(stalls)) / max(1, len(stalls)),
        preemptions=preemptions,
        per_request=per_request,
        timeline=timeline if timeline is not None else [],
        executor_stats=executor_stats if executor_stats is not None else {},
        kv_stats=kv_stats if kv_stats is not None else {},
        scheduler_stats=scheduler_stats if scheduler_stats is not None else {},
    )


def report_fingerprint(report: RunReport) -> tuple:
    """Every aggregate number plus exact per-request detail, as one
    hashable value.

    The determinism-audit primitive: two runs of the same scenario are
    "bit-identical" iff their fingerprints compare equal (used by the
    orchestrator's matrix-vs-solo parity tests and available for ad-hoc
    reproducibility checks).  Floats are compared exactly — no
    tolerance — which is the point.
    """
    per_request = tuple(
        (m.req_id, m.ttft, m.finish_time, m.generated, m.stall_time,
         m.effective_tokens, m.qos_term, m.preemptions)
        for m in report.per_request
    )
    return (report.n_requests, report.n_finished, report.total_tokens,
            report.throughput, report.effective_throughput, report.qos,
            report.ttft_mean, report.ttft_p50, report.ttft_p99,
            report.stall_total, report.preemptions, per_request)


def aggregate_reports(reports: Sequence, system: str = "cluster") -> RunReport:
    """Fold per-instance :class:`RunReport` objects into one aggregate.

    Used by the cluster layer so cluster-level throughput, TTFT
    percentiles, stall totals and QoS come from the *same* formulas as
    the single-node report (no duplicated aggregation code).  The
    cluster makespan is the longest per-instance makespan among
    instances that served requests — every instance shares one engine
    clock, so this is the wall of the whole run.
    """
    per_request = [m for report in reports for m in report.per_request]
    makespan = max((r.makespan for r in reports if r.n_requests), default=1e-9)
    return _assemble_report(
        system=system,
        per_request=per_request,
        makespan=makespan,
        total_tokens=sum(r.total_tokens for r in reports),
        effective_total=sum(r.effective_tokens for r in reports),
        qos_terms=[m.qos_term for m in per_request],
        ttfts=[m.ttft for m in per_request if m.ttft is not None],
        stalls=[m.stall_time for m in per_request],
        preemptions=sum(r.preemptions for r in reports),
        n_finished=sum(r.n_finished for r in reports),
    )
