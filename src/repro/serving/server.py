"""The serving loop: arrivals -> scheduler -> executor -> KV -> clients.

Mirrors the paper's Figure 3/4 workflow on the discrete-event engine:

* requests arrive as events, register with the Request Tracker and the
  KV manager, and queue;
* the loop runs one iteration at a time (a prefill batch or one decode
  step); iteration durations come from the roofline latency model;
* scheduler *ticks* fire every ``tick_interval`` but their decisions
  are applied at iteration boundaries (real systems preempt between
  iterations, never mid-kernel);
* at the start of each iteration the chunked writer steals the
  estimated compute interval to replicate dirty KV (§5.2), ordered by
  buffer occupancy (fat buffers = likely preemption victims);
* generated tokens flow into per-request client buffers, which drain
  at each request's consumption rate and account stalls.

The loop never decodes "for" a policy: all admission, preemption and
resumption comes from the pluggable scheduler, so baselines and
TokenFlow run on identical machinery.
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.core.offload import RequestOffloadManager
from repro.core.qos import QoSParams
from repro.core.tracker import RequestTracker
from repro.gpu.executor import LLMExecutor
from repro.gpu.latency import LatencyModel
from repro.memory.blocks import OutOfMemory
from repro.memory.kv_manager import HierarchicalKVManager
from repro.serving.config import ServingConfig
from repro.serving.interface import BaseScheduler, SystemView
from repro.serving.metrics import RunReport, build_report
from repro.sim.engine import SimEngine
from repro.workload.request import Request, RequestState


class ServingSystem:
    """One simulated serving instance (hardware + model + scheduler)."""

    def __init__(
        self,
        config: ServingConfig,
        scheduler: BaseScheduler,
        engine: Optional[SimEngine] = None,
        qos_params: Optional[QoSParams] = None,
        rate_controller=None,
        tracer=None,
    ) -> None:
        self.config = config
        self.scheduler = scheduler
        # Optional §8 adaptive reference-rate controller for agent
        # clients; invoked once per scheduler tick.
        self.rate_controller = rate_controller
        # Optional structured trace sink (repro.sim.trace.TraceRecorder).
        self.tracer = tracer
        # Optional callback fired when a request finishes (multi-turn
        # session drivers use it to schedule follow-up turns).
        self.on_request_finished = None
        self.engine = engine if engine is not None else SimEngine()
        self.qos_params = qos_params if qos_params is not None else QoSParams()

        self.latency = LatencyModel(config.hardware, config.model)
        self.executor = LLMExecutor(self.latency, config.max_prefill_tokens)
        self.kv = HierarchicalKVManager(
            engine=self.engine,
            gpu_capacity_blocks=config.kv_capacity_blocks(),
            kv_bytes_per_token=config.model.kv_bytes_per_token,
            pcie_bandwidth_bytes_per_s=config.hardware.pcie_bytes_per_s,
            config=config.kv,
        )
        self.kv.on_memory_freed = self._kick
        self.tracker = RequestTracker(record_traces=config.record_token_traces)

        # Request queues (state-machine mirrors).
        self.waiting: list = []
        self.prefill_queue: list = []
        self.running: list = []
        self.preempted: list = []
        self.loading: list = []
        self.finished: list = []

        self.offload = RequestOffloadManager(
            engine=self.engine,
            tracker=self.tracker,
            kv=self.kv,
            waiting=self.waiting,
            prefill_queue=self.prefill_queue,
            running=self.running,
            preempted=self.preempted,
            loading=self.loading,
            on_state_change=self._kick,
            on_swap_observed=self._observe_swap,
        )

        self._chunked = config.chunked_prefill or getattr(
            scheduler, "wants_chunked_prefill", False
        )
        self._busy = False            # an iteration is in flight
        self._in_scheduler = False    # re-entrancy guard for _kick
        self._tick_due = False
        self._tick_scheduled = False
        self._unfinished = 0
        self.timeline: list = []      # (t, queued, running) samples
        # Timeline downsampling: once the sample list hits the cap it
        # is decimated 2:1 and the sampling stride doubles, so long
        # runs keep a bounded, evenly-thinned record.
        self._timeline_stride = 1
        self._timeline_pending = 0
        self._last_token_time = 0.0
        # Per-iteration caches (reset at each iteration start).
        self._iter_min_buffer: Optional[float] = None
        self._decodes_since_prefill = 0
        self._prefill_defer_cap = 16      # progress guarantee for prefill
        self._prefill_defer_margin = 0.05  # seconds of buffer slack required
        # Amortised per-token prefill cost, for dynamic partitioning.
        self._per_token_prefill_s = self.latency.prefill_time([2048]) / 2048.0

    # --- submission ------------------------------------------------------------
    def submit(self, requests: list) -> None:
        """Register future arrivals with the event engine."""
        for request in requests:
            if request.arrival_time < self.engine.now():
                raise ValueError(
                    f"request {request.req_id} arrives in the past "
                    f"({request.arrival_time} < {self.engine.now()})"
                )
            self._unfinished += 1
            self.engine.call_at(
                request.arrival_time,
                lambda r=request: self._on_arrival(r),
                label=f"arrival:{request.req_id}",
            )

    def _on_arrival(self, request: Request) -> None:
        if self.tracer is not None:
            self.tracer.record(self.engine.now(), "request", "arrive",
                               req_id=request.req_id)
        self.tracker.register(request)
        self.kv.register(request.req_id)
        self.waiting.append(request)
        self._ensure_tick_scheduled()
        self._kick()

    # --- scheduler ticks ----------------------------------------------------------
    def _ensure_tick_scheduled(self) -> None:
        interval = self.scheduler.tick_interval
        if interval is None or self._tick_scheduled or self._unfinished == 0:
            return
        self._tick_scheduled = True
        self.engine.call_after(interval, self._on_tick_event, label="sched-tick")

    def _on_tick_event(self) -> None:
        self._tick_scheduled = False
        self._tick_due = True
        self._kick()
        self._ensure_tick_scheduled()

    # --- the loop ----------------------------------------------------------------
    def _kick(self) -> None:
        """Try to start the next iteration (idempotent, re-entrancy safe)."""
        if self._busy or self._in_scheduler:
            return
        self._in_scheduler = True
        try:
            self._start_iteration()
        finally:
            self._in_scheduler = False

    def _start_iteration(self) -> None:
        overhead = 0.0
        if self._tick_due:
            self._tick_due = False
            if self.rate_controller is not None:
                self.rate_controller.adjust(self)
            decision = self.scheduler.on_tick(self.view())
            self.offload.execute(decision)
            overhead += self.scheduler.scheduling_cost_s()
        boundary = self.scheduler.on_iteration_boundary(self.view())
        self.offload.execute(boundary)
        overhead += self.scheduler.scheduling_cost_s()

        # Planning below shares one buffer snapshot: the min-buffer
        # pass and all tracker queries are computed at most once per
        # iteration for this instant.
        self._iter_min_buffer = None
        entries = self._plan_prefill()
        if entries and self._should_defer_prefill(entries):
            entries = []
        if entries:
            self._decodes_since_prefill = 0
            self._run_prefill(entries, overhead)
            return
        batch = self._plan_decode()
        if batch:
            self._decodes_since_prefill += 1
            self._run_decode(batch, overhead)
            return
        self._sample_timeline()

    def _min_running_buffer(self) -> float:
        """Smallest running-request buffer (seconds) at the current
        instant, computed once per iteration and shared between the
        prefill budget and the defer decision."""
        cached = self._iter_min_buffer
        if cached is None:
            cached = self.tracker.min_buffer_seconds(
                self.running, self.engine.now()
            )
            self._iter_min_buffer = cached
        return cached

    def _prefill_token_budget(self) -> int:
        """Per-iteration prefill budget, dynamically partitioned (§4.2.3).

        For buffer-aware schedulers the budget shrinks so the prefill
        iteration fits inside the running batch's smallest buffer —
        prefills then never stall an active stream.  A floor keeps
        prefill progressing even when every buffer is thin (the defer
        cap bounds how often that floor is exercised).
        """
        budget = self.config.max_prefill_tokens
        if not getattr(self.scheduler, "decode_priority_aware", False) or not self.running:
            return budget
        slack = self._min_running_buffer() - self._prefill_defer_margin
        dyn = int(slack / self._per_token_prefill_s) if slack > 0 else 0
        floor = min(256, budget)
        return max(floor, min(budget, dyn))

    def _should_defer_prefill(self, entries: list) -> bool:
        """Buffer-aware prefill/decode interleaving (§4.2.3).

        Schedulers that opt in (``decode_priority_aware``) defer a
        prefill iteration when some running request's buffer would
        drain during it — latency-sensitive decodes bypass the prefill
        batch.  A progress cap guarantees prefill is never starved.
        """
        if not getattr(self.scheduler, "decode_priority_aware", False):
            return False
        if not self.running:
            return False
        if self._decodes_since_prefill >= self._prefill_defer_cap:
            return False
        plan = self.executor.plan_prefill(
            [(request.req_id, chunk) for request, chunk in entries]
        )
        return self._min_running_buffer() < plan.duration + self._prefill_defer_margin

    # --- prefill path -----------------------------------------------------------
    def _plan_prefill(self) -> list:
        """Pick (request, chunk_tokens) pairs for the next prefill.

        Fresh requests reserve prompt+1 tokens (room for the first
        output token); recompute resumes reserve their full context.
        FCFS within the prefill queue; head-of-line blocks on memory,
        which is exactly the SGLang behaviour TokenFlow's admission
        control avoids triggering.
        """
        entries: list = []
        queue = self.prefill_queue
        if not queue:
            # Nothing to prefill: skip the budget computation (and its
            # min-buffer pass) entirely — the steady-decode common case.
            return entries
        budget = self._prefill_token_budget()
        if budget <= 0:
            return entries
        if len(queue) > 1 and getattr(self.scheduler, "decode_priority_aware", False):
            # Recompute-resumes have live consumers draining a buffer;
            # they bypass fresh admissions (§4.2.3 latency-sensitive
            # bypass).  Fresh requests keep FCFS order among themselves.
            queue = sorted(
                queue, key=lambda r: (r.generated == 0, r.arrival_time)
            )
        for request in queue:
            if budget <= 0:
                break
            target = request.context_len
            if request.prefill_progress == 0:
                reserve = target + (1 if request.generated == 0 else 0)
                try:
                    self.kv.allocate_for_prefill(request.req_id, reserve)
                except OutOfMemory:
                    break
            remaining = target - request.prefill_progress
            if remaining <= 0:
                continue
            chunk = min(remaining, budget)
            if self._chunked:
                chunk = min(chunk, self.config.prefill_chunk_size)
            entries.append((request, chunk))
            budget -= chunk
            if self._chunked:
                break  # one chunk per iteration keeps decode interleaved
        return entries

    def _run_prefill(self, entries: list, overhead: float) -> None:
        result = self.executor.plan_prefill(
            [(request.req_id, chunk) for request, chunk in entries]
        )
        duration = result.duration + overhead
        now = self.engine.now()
        self.kv.drain_writes(now, now + duration, priority=self._write_priority_at(now))
        if self.tracer is not None:
            self.tracer.record(now, "executor", "prefill_start",
                               tokens=result.tokens, batch=len(entries),
                               duration=duration)
        self._busy = True
        self.engine.call_at(
            now + duration,
            lambda: self._complete_prefill(result, entries, duration),
            label="prefill-done",
        )

    def _complete_prefill(self, result, entries: list, duration: float) -> None:
        now = self.engine.now()
        for request, chunk in entries:
            if request.state is not RequestState.PREFILLING:
                continue
            request.prefill_progress += chunk
            target = request.context_len
            if request.prefill_progress >= target:
                self.kv.on_prefill_complete(request.req_id, target)
                self.prefill_queue.remove(request)
                request.transition(RequestState.RUNNING)
                self.running.append(request)
                if request.generated == 0:
                    # Prefill produces the first output token.
                    self._emit_token(request, now)
        if hasattr(self.scheduler, "observe_prefill"):
            self.scheduler.observe_prefill(result.tokens, duration)
        self.executor.commit(result)
        self._sample_timeline()
        self._busy = False
        self._kick()

    # --- decode path ----------------------------------------------------------------
    def _plan_decode(self) -> list:
        """Assemble the decode batch, resolving memory pressure first."""
        if not self.running:
            return []
        if len(self.running) > self.config.max_batch and getattr(
            self.scheduler, "decode_priority_aware", False
        ):
            # More residents than decode slots: serve the most starved.
            # nsmallest == sorted(...)[:max_batch] (it is stable), but
            # only does O(n log k) work.
            now = self.engine.now()
            tracker = self.tracker
            batch = heapq.nsmallest(
                self.config.max_batch,
                self.running,
                key=lambda r: tracker.buffer_seconds(r.req_id, now),
            )
        else:
            batch = list(self.running[: self.config.max_batch])
        # Growth blocks are a function of each request's own KV record,
        # so one computation serves both the deficit check and the
        # batch-fitting pass (preempting a victim never changes another
        # request's growth).
        growth_of = self.kv.decode_growth_blocks
        growth = {r.req_id: growth_of(r.req_id) for r in batch}
        deficit = max(0, sum(growth.values()) - self.kv.gpu_free_blocks())
        if deficit > 0:
            victims = self.scheduler.select_oom_victims(self.view(), deficit)
            for victim in victims:
                if victim in self.running and victim.state is RequestState.RUNNING:
                    self.offload.preempt(victim)
            batch = [r for r in batch if r.state is RequestState.RUNNING]
        # Greedily keep the prefix of the batch that fits.
        fitted: list = []
        free = self.kv.gpu_free_blocks()
        for request in batch:
            need = growth[request.req_id]
            if need > free:
                continue
            free -= need
            fitted.append(request)
        return fitted

    def _run_decode(self, batch: list, overhead: float) -> None:
        result = self.executor.plan_decode(
            # context_len inlined (prompt + generated): this comprehension
            # runs once per batch member per iteration.
            [(request.req_id, request.prompt_len + request.generated)
             for request in batch]
        )
        duration = result.duration + overhead
        now = self.engine.now()
        self.kv.drain_writes(now, now + duration, priority=self._write_priority_at(now))
        if self.tracer is not None:
            self.tracer.record(now, "executor", "decode_start",
                               batch=len(batch), duration=duration)
        self._busy = True
        self.engine.call_at(
            now + duration,
            lambda: self._complete_decode(result, batch),
            label="decode-done",
        )

    def _complete_decode(self, result, batch: list) -> None:
        # The per-token fast path: this loop runs once per generated
        # token across the whole simulation, so _emit_token /
        # deliver_token are inlined (same operations, same order).
        now = self.engine.now()
        on_decode_token = self.kv.on_decode_token
        entries = self.tracker.entries_by_id
        invalidate = self.tracker.occupancy_invalidator
        running = RequestState.RUNNING
        for request in batch:
            if request.state is not running:
                continue
            req_id = request.req_id
            on_decode_token(req_id)
            request.record_token(now)
            entries[req_id].buffer.deliver(now)
            invalidate(req_id, None)
            if now > self._last_token_time:
                self._last_token_time = now
            if request.generated >= request.output_len:
                self._finish(request, now)
        self.executor.commit(result)
        self._sample_timeline()
        self._busy = False
        self._kick()

    # --- token delivery / completion ------------------------------------------------
    def _emit_token(self, request: Request, now: float) -> None:
        # NOTE: _complete_decode inlines this exact sequence (delivery,
        # last-token-time update, finish check) for the per-token hot
        # loop — any semantic change here must be mirrored there.
        self.tracker.deliver_token(request.req_id, now)
        if now > self._last_token_time:
            self._last_token_time = now
        if request.generated >= request.output_len:
            self._finish(request, now)

    def _finish(self, request: Request, now: float) -> None:
        if self.tracer is not None:
            self.tracer.record(now, "request", "finish", req_id=request.req_id)
        request.transition(RequestState.FINISHED)
        if request in self.running:
            self.running.remove(request)
        self.kv.release(request.req_id)
        self.tracker.mark_finished(request.req_id, now)
        self.finished.append(request)
        self._unfinished -= 1
        if self.on_request_finished is not None:
            self.on_request_finished(request)

    # --- cancellation -------------------------------------------------------------------
    def cancel(self, req_id: int) -> bool:
        """Abort a live request (client disconnect).

        Frees its GPU/CPU memory and removes it from whichever queue it
        occupies.  Tokens already generated stay in the metrics (they
        were streamed).  Returns False if the request is unknown or
        already terminal — cancelling twice is harmless.
        """
        if req_id not in self.tracker:
            return False
        request = self.tracker.get(req_id).request
        if request.state in (RequestState.FINISHED, RequestState.CANCELLED):
            return False
        for queue in (self.waiting, self.prefill_queue, self.running,
                      self.preempted, self.loading):
            if request in queue:
                queue.remove(request)
        if self.tracer is not None:
            self.tracer.record(self.engine.now(), "request", "cancel",
                               req_id=req_id)
        request.transition(RequestState.CANCELLED)
        self.kv.release(req_id)
        self._unfinished -= 1
        self._kick()
        return True

    def cancel_at(self, req_id: int, when: float) -> None:
        """Schedule a cancellation at a future simulation time."""
        self.engine.call_at(
            when, lambda: self.cancel(req_id), label=f"cancel:{req_id}"
        )

    # --- glue -------------------------------------------------------------------------
    def _write_priority_at(self, now: float):
        """Chunked-write ordering: fatter buffers sync first (§5.2).

        Returns a one-instant priority callable (binds ``now`` once so
        the per-record calls stay flat dictionary work)."""
        buffer_seconds = self.tracker.buffer_seconds
        return lambda req_id: buffer_seconds(req_id, now)

    def _observe_swap(self, tau_evict: float, tau_load: float) -> None:
        if hasattr(self.scheduler, "observe_swap_latency"):
            self.scheduler.observe_swap_latency(tau_evict, tau_load)

    def _sample_timeline(self) -> None:
        """Record a (t, queued, running) sample, downsampling over time.

        Long runs would otherwise grow the timeline without bound: when
        the sample list reaches ``config.timeline_cap`` it is decimated
        2:1 and the stride doubles, bounding memory at the cap while
        keeping an evenly-spaced record.  Runs shorter than the cap
        (every test/figure workload) are recorded exactly as before.
        """
        self._timeline_pending += 1
        if self._timeline_pending < self._timeline_stride:
            return
        self._timeline_pending = 0
        timeline = self.timeline
        timeline.append(
            (
                self.engine.now(),
                len(self.waiting) + len(self.prefill_queue),
                len(self.running),
            )
        )
        if len(timeline) >= self.config.timeline_cap:
            del timeline[1::2]
            self._timeline_stride *= 2

    def view(self) -> SystemView:
        """Snapshot for schedulers (lists are live; treat as read-only)."""
        now = self.engine.now()
        return SystemView(
            now=now,
            waiting=self.waiting,
            prefill_queue=self.prefill_queue,
            running=self.running,
            preempted=self.preempted,
            loading=self.loading,
            tracker=self.tracker,
            kv=self.kv,
            executor=self.executor,
            latency=self.latency,
            max_batch=self.config.max_batch,
            snapshot=self.tracker.snapshot(now),
        )

    # --- run + report ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event loop; returns the final simulation time."""
        return self.engine.run(until=until, max_events=max_events)

    @property
    def unfinished(self) -> int:
        return self._unfinished

    def makespan(self) -> float:
        first = self.tracker.first_arrival()
        if first is None:
            return 0.0
        return max(self._last_token_time - first, 1e-9)

    def report(self) -> RunReport:
        """Build the aggregate :class:`RunReport` for this run."""
        scheduler_stats = {
            "name": self.scheduler.name,
            "scheduling_cost_s": self.scheduler.scheduling_cost_s(),
        }
        for attr in ("fallback_ticks", "scheduling_passes"):
            if hasattr(self.scheduler, attr):
                scheduler_stats[attr] = getattr(self.scheduler, attr)
        scheduler_stats.update(self.offload.stats)
        kv_stats = dict(self.kv.stats)
        kv_stats["pcie_utilisation"] = self.kv.link.utilisation(
            max(self.makespan(), 1e-9)
        )
        return build_report(
            system=self.scheduler.name,
            tracker=self.tracker,
            makespan=self.makespan(),
            qos_params=self.qos_params,
            timeline=self.timeline,
            executor_stats={
                "prefill_iterations": self.executor.stats.prefill_iterations,
                "decode_iterations": self.executor.stats.decode_iterations,
                "prefill_tokens": self.executor.stats.prefill_tokens,
                "decode_tokens": self.executor.stats.decode_tokens,
                "busy_time": self.executor.stats.busy_time,
            },
            kv_stats=kv_stats,
            scheduler_stats=scheduler_stats,
        )
