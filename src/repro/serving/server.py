"""The serving loop: arrivals -> scheduler -> executor -> KV -> clients.

Mirrors the paper's Figure 3/4 workflow on the discrete-event engine:

* requests arrive as events, register with the Request Tracker and the
  KV manager, and queue;
* the loop runs one iteration at a time (a prefill batch or one decode
  step); iteration durations come from the roofline latency model;
* scheduler *ticks* fire every ``tick_interval`` but their decisions
  are applied at iteration boundaries (real systems preempt between
  iterations, never mid-kernel);
* at the start of each iteration the chunked writer steals the
  estimated compute interval to replicate dirty KV (§5.2), ordered by
  buffer occupancy (fat buffers = likely preemption victims);
* generated tokens flow into per-request client buffers, which drain
  at each request's consumption rate and account stalls.

The loop never decodes "for" a policy: all admission, preemption and
resumption comes from the pluggable scheduler, so baselines and
TokenFlow run on identical machinery.

:class:`ServingSystem` itself is a slim shell: the work is done by the
four stages in :mod:`repro.serving.stages` (admission, batch
composition, memory pressure, decode streaming), invoked here in the
exact sequence the pre-split monolith executed — see ARCHITECTURE.md.
"""

from __future__ import annotations

from typing import Optional

from repro.core.offload import RequestOffloadManager
from repro.core.qos import QoSParams
from repro.core.tracker import RequestTracker
from repro.gpu.executor import LLMExecutor
from repro.gpu.latency import LatencyModel
from repro.memory.kv_manager import HierarchicalKVManager
from repro.serving.config import ServingConfig
from repro.serving.interface import BaseScheduler, SystemView
from repro.serving.metrics import RunReport, StreamingRunStats, build_report
from repro.serving.stages import (
    AdmissionStage,
    BatchComposer,
    DecodeStream,
    MemoryPressureStage,
)
from repro.sim.engine import SimEngine
from repro.workload.request import RequestState


class ServingSystem:
    """One simulated serving instance (hardware + model + scheduler)."""

    def __init__(
        self,
        config: ServingConfig,
        scheduler: BaseScheduler,
        engine: Optional[SimEngine] = None,
        qos_params: Optional[QoSParams] = None,
        rate_controller=None,
        tracer=None,
    ) -> None:
        self.config = config
        self.scheduler = scheduler
        # Optional §8 adaptive reference-rate controller for agent
        # clients; invoked once per scheduler tick.
        self.rate_controller = rate_controller
        # Optional structured trace sink (repro.sim.trace.TraceRecorder).
        self.tracer = tracer
        # Optional callback fired when a request finishes (multi-turn
        # session drivers use it to schedule follow-up turns).
        self.on_request_finished = None
        self.engine = engine if engine is not None else SimEngine()
        self.qos_params = qos_params if qos_params is not None else QoSParams()

        self.latency = LatencyModel(config.hardware, config.model)
        self.executor = LLMExecutor(self.latency, config.max_prefill_tokens)
        self.kv = HierarchicalKVManager(
            engine=self.engine,
            gpu_capacity_blocks=config.kv_capacity_blocks(),
            kv_bytes_per_token=config.model.kv_bytes_per_token,
            pcie_bandwidth_bytes_per_s=config.hardware.pcie_bytes_per_s,
            config=config.kv,
        )
        self.kv.on_memory_freed = self._kick
        # Bulk PCIe accounting rides the same gate as the vectorised
        # decode plane: busy horizons are exact either way, but the
        # closed-form byte totals differ from N sequential additions
        # by summation order (vectorize_decode=False stays bit-exact).
        self.kv.bulk_pcie_accounting = config.vectorize_decode
        # Streaming telemetry (retain_per_request=False): finished
        # requests retire into this accumulator and their tracker
        # entries are dropped — memory stays O(active requests).
        self.stream_stats: Optional[StreamingRunStats] = (
            None if config.retain_per_request
            else StreamingRunStats(qos_params=self.qos_params)
        )
        self.tracker = RequestTracker(
            record_traces=config.record_token_traces,
            retire_into=self.stream_stats,
        )

        # Request queues (state-machine mirrors, shared with stages and
        # the offload manager).
        self.waiting: list = []
        self.prefill_queue: list = []
        self.running: list = []
        self.preempted: list = []
        self.loading: list = []
        self.finished: list = []

        self._busy = False            # an iteration is in flight
        self._in_scheduler = False    # re-entrancy guard for _kick
        self._unfinished = 0
        # The boundary-time SystemView of the iteration being planned;
        # the decode fusion plane consults it (lists are live).
        self._iter_view: Optional[SystemView] = None
        self.timeline: list = []      # (t, queued, running) samples
        # Timeline downsampling: once the sample list hits the cap it
        # is decimated 2:1 and the sampling stride doubles, so long
        # runs keep a bounded, evenly-thinned record.
        self._timeline_stride = 1
        self._timeline_pending = 0

        # Stages (see repro.serving.stages).  Order matters only for
        # construction dependencies; the loop sequence is fixed in
        # _start_iteration below.
        self.memory = MemoryPressureStage(self)
        self.composer = BatchComposer(self, self.memory)
        self.decode_stream = DecodeStream(self, self.memory)
        self.admission = AdmissionStage(self)

        self.offload = RequestOffloadManager(
            engine=self.engine,
            tracker=self.tracker,
            kv=self.kv,
            waiting=self.waiting,
            prefill_queue=self.prefill_queue,
            running=self.running,
            preempted=self.preempted,
            loading=self.loading,
            on_state_change=self._kick,
            on_swap_observed=self.memory.observe_swap,
            record_events=config.retain_per_request,
        )

    # --- submission -----------------------------------------------------------
    def submit(self, requests: list) -> None:
        """Register future arrivals with the event engine."""
        self.admission.submit(requests)

    def feed(self, stream, lookahead: int = 1) -> None:
        """Drive arrivals from a lazy workload stream.

        ``stream`` yields :class:`~repro.workload.request.Request`
        objects in non-decreasing arrival order; only ``lookahead``
        future requests are scheduled (hence in memory) at any time —
        each arrival event pops its successor before admitting, so the
        engine's decision horizon (the fusion plane's
        ``next_event_time``) always sees the next pending arrival
        exactly as the materialised :meth:`submit` path would.
        """
        self.admission.feed(stream, lookahead=lookahead)

    # --- the loop --------------------------------------------------------------
    def _kick(self) -> None:
        """Try to start the next iteration (idempotent, re-entrancy safe)."""
        if self._busy or self._in_scheduler:
            return
        self._in_scheduler = True
        try:
            self._start_iteration()
        finally:
            self._in_scheduler = False

    def _start_iteration(self) -> None:
        overhead = 0.0
        admission = self.admission
        if admission.tick_due:
            admission.tick_due = False
            if self.rate_controller is not None:
                self.rate_controller.adjust(self)
            decision = self.scheduler.on_tick(self.view())
            self.offload.execute(decision)
            overhead += self.scheduler.scheduling_cost_s()
        view = self.view()
        self._iter_view = view
        boundary = self.scheduler.on_iteration_boundary(view)
        self.offload.execute(boundary)
        overhead += self.scheduler.scheduling_cost_s()

        # Planning below shares one buffer snapshot: the min-buffer
        # pass and all tracker queries are computed at most once per
        # iteration for this instant.
        composer = self.composer
        composer.iter_min_buffer = None
        entries = composer.plan_prefill()
        if entries and composer.should_defer_prefill(entries):
            entries = []
        if entries:
            composer.decodes_since_prefill = 0
            self.decode_stream.run_prefill(entries, overhead)
            return
        batch = composer.plan_decode()
        if batch:
            composer.decodes_since_prefill += 1
            self.decode_stream.run_decode(batch, overhead)
            return
        self._sample_timeline()

    # --- cancellation ----------------------------------------------------------
    def cancel(self, req_id: int) -> bool:
        """Abort a live request (client disconnect).

        Frees its GPU/CPU memory and removes it from whichever queue it
        occupies.  Tokens already generated stay in the metrics (they
        were streamed).  Returns False if the request is unknown or
        already terminal — cancelling twice is harmless.
        """
        if req_id not in self.tracker:
            return False
        request = self.tracker.get(req_id).request
        if request.state in (RequestState.FINISHED, RequestState.CANCELLED):
            return False
        for queue in (self.waiting, self.prefill_queue, self.running,
                      self.preempted, self.loading):
            if request in queue:
                queue.remove(request)
        if self.tracer is not None:
            self.tracer.record(self.engine.now(), "request", "cancel",
                               req_id=req_id)
        request.transition(RequestState.CANCELLED)
        self.kv.release(req_id)
        self._unfinished -= 1
        self._kick()
        return True

    def cancel_at(self, req_id: int, when: float) -> None:
        """Schedule a cancellation at a future simulation time."""
        self.engine.call_at(
            when, lambda: self.cancel(req_id), label=f"cancel:{req_id}"
        )

    # --- glue ------------------------------------------------------------------
    def _sample_timeline(self) -> None:
        """Record a (t, queued, running) sample at the current instant."""
        self._sample_timeline_at(self.engine.now())

    def _sample_timeline_at(self, now: float) -> None:
        """Record a (t, queued, running) sample, downsampling over time.

        Long runs would otherwise grow the timeline without bound: when
        the sample list reaches ``config.timeline_cap`` it is decimated
        2:1 and the stride doubles, bounding memory at the cap while
        keeping an evenly-spaced record.  Runs shorter than the cap
        (every test/figure workload) are recorded exactly as before.

        ``now`` is a parameter (not read off the engine) because the
        fused decode path emits the samples of a whole macro-step
        window — at its historical iteration boundaries — from the
        window's final completion event.
        """
        self._timeline_pending += 1
        if self._timeline_pending < self._timeline_stride:
            return
        self._timeline_pending = 0
        timeline = self.timeline
        timeline.append(
            (
                now,
                len(self.waiting) + len(self.prefill_queue),
                len(self.running),
            )
        )
        if len(timeline) >= self.config.timeline_cap:
            del timeline[1::2]
            self._timeline_stride *= 2

    def _sample_timeline_many(self, instants) -> None:
        """:meth:`_sample_timeline_at` for a fused window's boundaries.

        Queue lengths are frozen across a fused window (no admission,
        completion, or preemption between its interior boundaries), so
        the lengths are read once and the stride/decimation bookkeeping
        runs in one pass — identical samples, one call per window.
        """
        stride = self._timeline_stride
        pending = self._timeline_pending
        timeline = self.timeline
        cap = self.config.timeline_cap
        queued = len(self.waiting) + len(self.prefill_queue)
        running = len(self.running)
        for now in instants:
            pending += 1
            if pending < stride:
                continue
            pending = 0
            timeline.append((now, queued, running))
            if len(timeline) >= cap:
                del timeline[1::2]
                stride *= 2
        self._timeline_stride = stride
        self._timeline_pending = pending

    def view(self) -> SystemView:
        """Snapshot for schedulers (lists are live; treat as read-only)."""
        now = self.engine.now()
        return SystemView(
            now=now,
            waiting=self.waiting,
            prefill_queue=self.prefill_queue,
            running=self.running,
            preempted=self.preempted,
            loading=self.loading,
            tracker=self.tracker,
            kv=self.kv,
            executor=self.executor,
            latency=self.latency,
            max_batch=self.config.max_batch,
            snapshot=self.tracker.snapshot(now),
        )

    # --- run + report ----------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event loop; returns the final simulation time."""
        return self.engine.run(until=until, max_events=max_events)

    @property
    def unfinished(self) -> int:
        return self._unfinished

    def makespan(self) -> float:
        first = self.tracker.first_arrival()
        if first is None:
            return 0.0
        return max(self.decode_stream.last_token_time - first, 1e-9)

    def report(self) -> RunReport:
        """Build the aggregate :class:`RunReport` for this run."""
        scheduler_stats = {
            "name": self.scheduler.name,
            "scheduling_cost_s": self.scheduler.scheduling_cost_s(),
        }
        for attr in ("fallback_ticks", "scheduling_passes"):
            if hasattr(self.scheduler, attr):
                scheduler_stats[attr] = getattr(self.scheduler, attr)
        scheduler_stats.update(self.offload.stats)
        kv_stats = dict(self.kv.stats)
        kv_stats["pcie_utilisation"] = self.kv.link.utilisation(
            max(self.makespan(), 1e-9)
        )
        # Lifetime GPU-pool demand: cumulative blocks allocated and the
        # high-water mark.  The prefix allocator's savings show up here
        # (reused blocks never hit allocate()), so naive-vs-prefix_cow
        # runs of one workload are directly comparable.
        kv_stats["gpu_blocks_allocated"] = self.kv.gpu_pool.total_allocated
        kv_stats["gpu_peak_blocks"] = self.kv.gpu_pool.peak
        return build_report(
            system=self.scheduler.name,
            tracker=self.tracker,
            makespan=self.makespan(),
            qos_params=self.qos_params,
            stream_stats=self.stream_stats,
            timeline=self.timeline,
            executor_stats={
                "prefill_iterations": self.executor.stats.prefill_iterations,
                "decode_iterations": self.executor.stats.decode_iterations,
                "prefill_tokens": self.executor.stats.prefill_tokens,
                "decode_tokens": self.executor.stats.decode_tokens,
                "busy_time": self.executor.stats.busy_time,
                "fused_windows": self.decode_stream.fused_windows,
                "fused_iterations": self.decode_stream.fused_iterations,
            },
            kv_stats=kv_stats,
            scheduler_stats=scheduler_stats,
        )
