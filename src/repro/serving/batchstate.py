"""Vectorised batch plane: struct-of-arrays decode-window delivery.

PR 4's macro-step fusion collapsed per-iteration *events*; the hot
path that remained is per-*request* Python work inside each fused
window — ``ClientBuffer.deliver_many`` walks its K timestamps
token-by-token for every batch member.  This module gathers the
active batch's buffer state into struct-of-arrays numpy form once per
window, advances every request with array ops, and scatters the
results back to the per-request objects at the window boundary.

The maths: with a shared strictly-increasing timestamp vector ``t``
(one entry per fused iteration) and per-row pacing interval ``iv``,
the consumption recurrence ``c_i = max(c_{i-1} + iv, t_i)`` is solved
for all rows at once through the classic transform ``d_i = c_i -
iv*i``::

    d_i = max(d_{i-1}, t_i - iv*i)      (a running maximum)
    c_i = d_i + iv*i,   re-based to exactly t_i at stalls

The first window column uses the untransformed scalar operations
(``lc + iv`` and its comparison), so single-iteration windows — the
vectorised *unfused* decode path — reproduce the scalar floats
exactly.  Deeper columns replace K repeated additions with one
multiply; together with the closed-form cursor advance below this is
the rel-1e-9 half of the parity contract (``vectorize_decode`` gates
it; ``ServingConfig`` docs).

Consumption counting is closed-form instead of cursor replay: tokens
delivered before the window sit on one arithmetic chain (the fast
path requires the segment deque to be empty), so the number consumed
by ``t_j`` is ``clip(floor((t_j - nxt0)/civ) + 1, 0, backlog)``;
within-window consumptions are counted by comparing the ``c`` matrix
against the thresholds.  Occupancy-at-generation, the stall
accumulator, the occupancy histogram (via one ``np.unique`` over
row-tagged keys), and the cursor/segment writeback all follow from
those counts.

Scatter converts every array through ``.tolist()`` first — per-row
reads then cost plain list indexing, and no ``np.float64`` leaks into
buffer state (the JSONL exports and fingerprint tests require native
floats).

Rows the kernel cannot represent fall back to the scalar
``RequestTracker.deliver_tokens`` path per request: pending segment
anchors (a stall the cursor has not reached), an empty buffer (no
``_last_consume`` yet), or per-token trace recording.
"""

from __future__ import annotations

import numpy as np

__all__ = ["deliver_batch"]


def deliver_batch(tracker, requests, times) -> None:
    """Deliver one token per instant in ``times`` to every request.

    Equivalent to ``tracker.deliver_tokens(r.req_id, times)`` for each
    request in order (same request bookkeeping, same buffer state
    machine), with the per-token buffer arithmetic batched across
    requests.  ``times`` must be strictly increasing; otherwise every
    row is routed through the scalar path, which raises exactly as
    ``ClientBuffer.deliver`` would.
    """
    k = len(times)
    if k == 0 or not requests:
        return
    entries = tracker.entries_by_id
    deliver_scalar = tracker.deliver_tokens

    prev = times[0]
    for instant in times[1:]:
        if instant <= prev:
            for request in requests:
                deliver_scalar(request.req_id, times)
            return
        prev = instant

    t_first = times[0]
    fast_rows = []
    for request in requests:
        entry = entries.get(request.req_id)
        buffer = entry.buffer if entry is not None else None
        if (
            buffer is None
            or buffer._segments
            or buffer._trace
            or buffer._last_consume is None
            or t_first < buffer._last_gen
        ):
            deliver_scalar(request.req_id, times)
        else:
            fast_rows.append((request, buffer))
    if not fast_rows:
        return

    # --- request bookkeeping (mirrors RequestTracker.deliver_tokens) --
    for request, _ in fast_rows:
        if request.generated + k > request.output_len:
            raise RuntimeError(
                f"request {request.req_id} would exceed its "
                f"{request.output_len} tokens"
            )
        if request.ttft is None:
            request.ttft = t_first - request.arrival_time
            request.first_token_time = t_first
        request.generated += k
        request.token_times.extend(times)

    # --- gather ------------------------------------------------------
    # One pass per row building a (B, 7) matrix; the integer columns
    # (delivered/consumed counts) round-trip through float64 exactly
    # (they are token counts, far below 2**53).
    t = np.asarray(times, dtype=np.float64)
    state = np.array(
        [
            (
                buf.interval,
                buf._last_consume,
                buf._tail_interval,
                buf._delivered,
                buf._consumed,
                 # Sentinel 0.0 for a parked cursor: those rows have an
                 # empty backlog (n_back == 0), which zeroes every term
                 # the sentinel feeds.
                nxt if (nxt := buf._next_consume) is not None else 0.0,
                buf._cursor_interval,
            )
            for _, buf in fast_rows
        ]
    )
    iv = state[:, 0]
    lc = state[:, 1]
    tail = state[:, 2]
    d0 = state[:, 3].astype(np.int64)
    con0 = state[:, 4].astype(np.int64)
    nxt0 = state[:, 5]
    civ = state[:, 6]
    n_back = d0 - con0  # rows with no cursor have an empty backlog

    # --- consumption times -------------------------------------------
    # Column 0 runs the untransformed scalar float ops (exact); deeper
    # columns use the running-max transform (drift <= a few ulp,
    # covered by the rel-1e-9 parity gate).
    ideal0 = lc + iv
    stall0 = t_first > ideal0
    c_first = np.where(stall0, t_first, ideal0)
    stall_amt0 = np.where(stall0, t_first - ideal0, 0.0)
    if k > 1:
        token_no = np.arange(2.0, k + 1.0)
        a = t[1:][None, :] - iv[:, None] * token_no[None, :]
        d = np.maximum.accumulate(
            np.concatenate([(c_first - iv)[:, None], a], axis=1), axis=1
        )
        stall_rest = a > d[:, :-1]
        c_rest = np.where(
            stall_rest, t[1:][None, :], d[:, 1:] + iv[:, None] * token_no[None, :]
        )
        c = np.concatenate([c_first[:, None], c_rest], axis=1)
        fresh = np.concatenate([stall0[:, None], stall_rest], axis=1)
        stall_add = stall_amt0 + ((a - d[:, :-1]) * stall_rest).sum(axis=1)
    else:
        c = c_first[:, None]
        fresh = stall0[:, None].copy()
        stall_add = stall_amt0

    # --- consumption counts / occupancy ------------------------------
    # Backlog tokens live on one arithmetic chain from the cursor;
    # count those consumed by each threshold in closed form.
    civ_safe = np.where(civ > 0.0, civ, 1.0)
    backlog_done = np.floor((t[None, :] - nxt0[:, None]) / civ_safe[:, None])
    backlog_done = backlog_done.astype(np.int64) + 1
    np.clip(backlog_done, 0, n_back[:, None], out=backlog_done)
    # Window tokens: each row's c is strictly increasing (c_i >=
    # c_{i-1} + iv), so counting entries <= each threshold is binary
    # search, done for all rows in two flat calls: pos[b, m] is the
    # first threshold index with t >= c[b, m] (token m counts toward
    # thresholds j >= pos), and offsetting each row by (k + 1) * b
    # keeps both flattened integer arrays sorted — one searchsorted
    # then counts every (row, threshold) pair at once, exactly.
    n_rows = len(fast_rows)
    pos = np.searchsorted(t, c.ravel(), side="left").reshape(n_rows, k)
    row_off = (k + 1) * np.arange(n_rows, dtype=np.int64)[:, None]
    window_done = np.searchsorted(
        (pos + row_off).ravel(),
        (np.arange(k, dtype=np.int64)[None, :] + row_off).ravel(),
        side="right",
    ).reshape(n_rows, k)
    window_done -= k * np.arange(n_rows, dtype=np.int64)[:, None]
    consumed = con0[:, None] + backlog_done + window_done
    token_idx = np.arange(1, k + 1, dtype=np.int64)
    occ = (d0[:, None] + token_idx[None, :]) - consumed

    # A token finding the cursor parked at the stream end re-points it
    # directly (no segment record): first column iff there was no
    # cursor, later columns iff everything delivered was consumed.
    parked = np.empty(occ.shape, dtype=bool)
    parked[:, 0] = n_back == 0
    if k > 1:
        parked[:, 1:] = occ[:, :-1] == 0
    # Fresh anchors: every stall; plus column 0 on a rate change since
    # the tail segment (afterwards the tail interval equals iv, so
    # within the window fresh == stall).
    fresh[:, 0] |= tail != iv

    # --- cursor writeback --------------------------------------------
    consumed_f = consumed[:, -1]
    all_done = consumed_f == d0 + k
    in_window = ~all_done & (consumed_f >= d0)
    col = np.clip(consumed_f - d0, 0, k - 1)
    cursor_c = np.take_along_axis(c, col[:, None], axis=1)[:, 0]
    # Cursor still in the backlog: the chain value in closed form.
    cursor_backlog = nxt0 + civ * (consumed_f - con0)

    # Fresh anchors the cursor has not consumed past become segment
    # records, exactly the ones the scalar state machine would retain.
    index = d0[:, None] + np.arange(0, k, dtype=np.int64)[None, :]
    survive = fresh & ~parked & (index > consumed_f[:, None])

    # Occupancy histogram: one np.unique over row-tagged keys; the
    # per-row slices go onto each buffer's pending list and merge into
    # its dict lazily at first read (ClientBuffer._flush_occ_pending).
    occ_span = int(occ.max()) + 1
    row_ids = np.arange(n_rows, dtype=np.int64)
    keys = occ + occ_span * row_ids[:, None]
    uniq, counts = np.unique(keys, return_counts=True)
    hist_vals = uniq % occ_span
    row_bounds = np.searchsorted(uniq, occ_span * (row_ids + 1)).tolist()

    # --- scatter ------------------------------------------------------
    t_last = times[-1]
    c_last = c[:, -1].tolist()
    stall_add_l = stall_add.tolist()
    occ_max_l = occ.max(axis=1).tolist()
    consumed_l = consumed_f.tolist()
    all_done_l = all_done.tolist()
    in_window_l = in_window.tolist()
    cursor_c_l = cursor_c.tolist()
    cursor_backlog_l = cursor_backlog.tolist()
    start = 0
    for b, (request, buffer) in enumerate(fast_rows):
        buffer._delivered += k
        buffer._last_gen = t_last
        buffer._last_consume = c_last[b]
        # After any delivery the newest segment's interval is the
        # current one (fresh anchors set it; non-fresh requires it).
        buffer._tail_interval = buffer.interval
        stall = stall_add_l[b]
        if stall != 0.0:
            buffer._stall_time += stall
        if occ_max_l[b] > buffer._occ_max:
            buffer._occ_max = occ_max_l[b]
        buffer._consumed = consumed_l[b]
        if all_done_l[b]:
            buffer._next_consume = None
            buffer._cursor_interval = buffer.interval
        elif in_window_l[b]:
            buffer._next_consume = cursor_c_l[b]
            buffer._cursor_interval = buffer.interval
        else:
            buffer._next_consume = cursor_backlog_l[b]
        stop = row_bounds[b]
        buffer._occ_pending.append((hist_vals[start:stop], counts[start:stop]))
        start = stop

    if survive.any():
        rows_cols = np.argwhere(survive)
        seg_c = c[rows_cols[:, 0], rows_cols[:, 1]].tolist()
        d0_l = d0.tolist()
        for (b, j), consume in zip(rows_cols.tolist(), seg_c):
            buffer = fast_rows[b][1]
            buffer._segments.append((d0_l[b] + j, consume, buffer.interval))

    tracker.invalidate_occupancy_all()
