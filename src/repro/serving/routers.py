"""Pluggable cluster routing policies (paper §8 dispatch layer).

A :class:`Router` places each arriving request on one of the cluster's
:class:`~repro.serving.server.ServingSystem` instances.  Policies are
registered by name in :data:`ROUTERS`, so experiments and scenarios
select them declaratively (``ScenarioSpec.router = "buffer_aware"``)
and new policies plug in without touching the cluster loop:

* ``round_robin`` — arrival-order striping.
* ``least_loaded`` — fewest unfinished requests (default).
* ``least_queued`` — shortest waiting+prefill queue at arrival.
* ``buffer_aware`` — smallest aggregate client-buffer deficit: the
  cluster-level analogue of the paper's buffer-aware scheduler.  Each
  running request contributes its shortfall against a target buffer;
  queued/preempted work counts a full target's worth (no buffer yet).
* ``session_affinity`` — sticky routing by conversation: turns of one
  session land on the instance that served its first turn (KV reuse /
  prefix-cache locality), with a fallback policy for fresh sessions.

Every policy is deterministic: ties break on the lowest instance
index, so identical scenario+seed runs place identically.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Type, Union

from repro.workload.request import RequestState

_INF = float("inf")


def _decode_floor(instance) -> float:
    """A hard lower bound on one decode iteration of ``instance``.

    Every decode step streams at least the full weight matrix and pays
    the per-iteration launch overhead
    (:meth:`~repro.gpu.latency.LatencyModel.decode_step_time_from_total`
    is ``max(mem_time, compute_time) + overhead`` with ``mem_time >=
    weights / bandwidth``), so no token — and therefore no request
    completion — can arrive faster than this per remaining token.
    """
    latency = instance.latency
    return (
        latency.model.weight_bytes / latency.hardware.effective_mem_bandwidth
        + latency.hardware.iteration_overhead_s
    )


def _decode_tokens_left(request) -> int:
    """Decode iterations still separating ``request`` from finishing.

    The *first* output token is emitted by prefill completion, not by a
    decode iteration, so a request that has not generated yet needs one
    fewer decode step than its remaining token count (zero for
    ``output_len == 1`` — such a request can finish on the heels of a
    prefill, faster than any decode-floor bound, and must contribute a
    zero-width quiet window).
    """
    remaining = request.output_len - request.generated
    if request.generated == 0:
        remaining -= 1
    return remaining


class Router(abc.ABC):
    """Dispatch policy: pick the instance index for each arrival.

    Routers may keep state (stripe counters, sticky maps); a fresh
    instance is built per run, so repeated runs of one scenario are
    independent and deterministic.

    Policies that can run against a *sharded* cluster — where instances
    live in other processes — additionally split :meth:`select` into a
    per-instance measurement (:meth:`instance_metrics`, computed where
    the instance lives, returning something picklable) and a pure
    decision over the gathered measurements
    (:meth:`select_from_metrics`, run on the coordinator).  The
    built-in policies implement :meth:`select` *via* that split, so the
    single-process and sharded paths execute the same comparison code
    on the same float values.  Subclasses that only override
    :meth:`select` keep working on single-process clusters; they must
    set :attr:`shardable` to ``True`` (and implement the split) to opt
    into sharded execution.
    """

    name: str = "base"

    #: Whether this policy supports the metrics/selection split that
    #: sharded execution requires.  Built-in policies set this True.
    shardable: bool = False

    #: Whether this policy additionally supports *speculative dispatch*
    #: in the sharded plane: trajectory snapshots
    #: (:meth:`instance_snapshot`) whose declared staleness horizon
    #: proves the mirrored metric exact, so the coordinator can resolve
    #: whole epochs of arrivals without a coordination round.  A policy
    #: whose metric can move on events the snapshot cannot bound (e.g.
    #: ``buffer_aware``'s continuous-time deficit, ``least_queued``'s
    #: prefill-completion decrements) must leave this False and stays
    #: on the always-correct pause-round path.
    speculative: bool = False

    @abc.abstractmethod
    def select(self, instances: Sequence, request) -> int:
        """Return the index in ``instances`` to place ``request`` on."""

    def needs_state(self, request) -> bool:
        """Whether placing ``request`` requires fresh instance metrics.

        Policies that decide without looking at the instances (stripe
        counters, sticky-map hits) return ``False``; the sharded
        coordinator then skips the metric-gathering round entirely —
        the lever that lets stateless policies batch arbitrarily many
        dispatches into one shard message.
        """
        return True

    def instance_metrics(self, instance, request):
        """Measure one instance for placing ``request`` (picklable)."""
        raise NotImplementedError(
            f"router {self.name!r} does not implement the sharded "
            f"metrics/selection split"
        )

    def select_from_metrics(self, n: int, metrics: Optional[List], request) -> int:
        """Pick an index in ``range(n)`` from gathered ``metrics``.

        ``metrics[i]`` is :meth:`instance_metrics` for instance ``i``
        (``None`` when :meth:`needs_state` said no state was needed).
        This is the only place a shardable policy may mutate its own
        state, so replaying the same dispatch sequence reproduces the
        same placements regardless of where metrics were computed.
        """
        raise NotImplementedError(
            f"router {self.name!r} does not implement the sharded "
            f"metrics/selection split"
        )

    def _select_via_metrics(self, instances: Sequence, request) -> int:
        """Shared :meth:`select` body for split-capable policies."""
        if self.needs_state(request):
            metrics = [self.instance_metrics(inst, request) for inst in instances]
        else:
            metrics = None
        return self.select_from_metrics(len(instances), metrics, request)

    # --- speculative dispatch (sharded plane) -----------------------------
    #
    # A *trajectory snapshot* is a small picklable record, taken where
    # the instance lives at a pause instant, that lets the coordinator
    # evolve the routing metric forward in simulated time without
    # talking to the shard again: the snapshot carries the metric's
    # current value, the one already-scheduled completion event that
    # can change it (time + how many requests finish there), and an
    # *exactness horizon* before which no other change is possible.
    # The coordinator folds every confirmed placement back into its
    # mirror (:meth:`fold_snapshot`), so arrivals inside the horizon
    # resolve against provably exact values — speculation that cannot
    # miss — while the first arrival past any horizon falls back to an
    # authoritative round that also refreshes the mirror.

    def instance_snapshot(self, instance, request):
        """Trajectory snapshot of one instance at the current instant.

        Returned records are opaque to the coordinator: only
        :meth:`snapshot_metric` / :meth:`snapshot_fresh` /
        :meth:`fold_snapshot` interpret them.  Must be picklable.
        """
        raise NotImplementedError(
            f"router {self.name!r} does not implement trajectory "
            f"snapshots (Router.speculative)"
        )

    def snapshot_metric(self, snap, t: float):
        """Evolve ``snap`` to instant ``t`` and return the metric.

        Only valid while ``snapshot_fresh(snap, t)`` holds; the value
        must then equal what :meth:`instance_metrics` would measure on
        the live instance at ``t``.
        """
        raise NotImplementedError

    def snapshot_fresh(self, snap, t: float) -> bool:
        """Whether ``snap`` is provably exact at instant ``t``."""
        raise NotImplementedError

    def fold_snapshot(self, snap, t: float, request) -> None:
        """Account a confirmed placement of ``request`` at ``t`` on
        the instance ``snap`` mirrors (metric bump + horizon clamp)."""
        raise NotImplementedError

    def peek_from_metrics(self, n: int, metrics: List, request) -> int:
        """Side-effect-free preview of :meth:`select_from_metrics`.

        Used on the stale-mirror path to form the speculative pick that
        the authoritative round then validates; it must not mutate
        router state (the real selection still runs afterwards).
        """
        raise NotImplementedError


ROUTERS: Dict[str, Type[Router]] = {}


def register_router(cls: Type[Router]) -> Type[Router]:
    """Class decorator: add a :class:`Router` subclass to the registry."""
    ROUTERS[cls.name] = cls
    return cls


def make_router(router: Union[str, Router]) -> Router:
    """Resolve a router name (or pass through an instance)."""
    if isinstance(router, Router):
        return router
    if router not in ROUTERS:
        raise ValueError(
            f"router must be one of {sorted(ROUTERS)}, got {router!r}"
        )
    return ROUTERS[router]()


@register_router
class RoundRobinRouter(Router):
    """Arrival-order striping across instances."""

    name = "round_robin"
    shardable = True

    def __init__(self) -> None:
        self._next = 0

    def needs_state(self, request) -> bool:
        return False

    def select_from_metrics(self, n: int, metrics: Optional[List], request) -> int:
        idx = self._next
        self._next = (idx + 1) % n
        return idx

    def select(self, instances: Sequence, request) -> int:
        return self._select_via_metrics(instances, request)


@register_router
class LeastLoadedRouter(Router):
    """Fewest unfinished requests (admitted or not).

    The ``unfinished`` metric moves on exactly two event kinds —
    dispatches (+1, which the coordinator itself confirms and folds)
    and request finishes (−1) — and every finish is attached to an
    executor completion event the instance has *already scheduled*.
    That makes the metric's short-term trajectory fully predictable,
    so this router implements the speculative-dispatch snapshot
    protocol: ``[value, next_completion, finishers, horizon, floor]``,
    where ``horizon`` is a proven lower bound on the first instant any
    *other* finish could land (every surviving resident still needs
    ``_decode_tokens_left`` iterations of at least ``_decode_floor``
    seconds each, serialized behind the in-flight event).
    """

    name = "least_loaded"
    shardable = True
    speculative = True

    def instance_metrics(self, instance, request) -> int:
        return instance.unfinished

    def select_from_metrics(self, n: int, metrics: Optional[List], request) -> int:
        return min(range(n), key=lambda i: metrics[i])

    def peek_from_metrics(self, n: int, metrics: List, request) -> int:
        return min(range(n), key=lambda i: metrics[i])

    def select(self, instances: Sequence, request) -> int:
        return self._select_via_metrics(instances, request)

    def instance_snapshot(self, instance, request):
        t = instance.engine.now()
        floor = _decode_floor(instance)
        value = instance.unfinished
        queues = (instance.running, instance.waiting, instance.prefill_queue,
                  instance.preempted, instance.loading)
        inflight = instance.decode_stream.inflight if instance._busy else None
        if inflight is None or inflight[1] < t:
            if instance._busy:
                # Busy without a usable descriptor: refuse to promise
                # anything (zero-width window, always stale).
                return [value, None, 0, t, floor]
            remaining = [_decode_tokens_left(r) for q in queues for r in q]
            horizon = t + min(remaining) * floor if remaining else _INF
            return [value, None, 0, horizon, floor]
        kind, end, payload = inflight
        finishers = 0
        survivors: list = []
        covered = set()
        if kind == "prefill":
            # Entries reaching their full context at ``end`` promote
            # and emit their first token there — which finishes them
            # outright when output_len == 1.
            for r, chunk in payload:
                if (r.state is RequestState.PREFILLING
                        and r.prefill_progress + chunk >= r.context_len):
                    covered.add(id(r))
                    if r.generated == 0 and r.output_len <= 1:
                        finishers += 1
                    else:
                        survivors.append(_decode_tokens_left(r))
        else:
            batch, k = (payload, 1) if kind == "decode" else payload
            # Each batch member gains k tokens by ``end``; the fusion
            # planner guarantees none finishes strictly earlier.
            for r in batch:
                covered.add(id(r))
                rem = r.output_len - r.generated
                if rem <= k:
                    finishers += 1
                else:
                    survivors.append(rem - k)
        for q in queues:
            for r in q:
                if id(r) not in covered:
                    survivors.append(_decode_tokens_left(r))
        horizon = end + min(survivors) * floor if survivors else _INF
        return [value, end, finishers, horizon, floor]

    def snapshot_metric(self, snap, t: float):
        if snap[1] is not None and snap[1] < t:
            # The known completion event has fired (strictly before t:
            # same-instant dispatches run ahead of instance events).
            snap[0] -= snap[2]
            snap[1] = None
        return snap[0]

    def snapshot_fresh(self, snap, t: float) -> bool:
        return t < snap[3]

    def fold_snapshot(self, snap, t: float, request) -> None:
        snap[0] += 1
        bound = t + _decode_tokens_left(request) * snap[4]
        if bound < snap[3]:
            snap[3] = bound


@register_router
class LeastQueuedRouter(Router):
    """Shortest waiting + prefill queue at arrival time."""

    name = "least_queued"
    shardable = True

    def instance_metrics(self, instance, request) -> int:
        return len(instance.waiting) + len(instance.prefill_queue)

    def select_from_metrics(self, n: int, metrics: Optional[List], request) -> int:
        return min(range(n), key=lambda i: metrics[i])

    def select(self, instances: Sequence, request) -> int:
        return self._select_via_metrics(instances, request)


@register_router
class BufferAwareRouter(Router):
    """Route to the instance with the smallest aggregate buffer deficit.

    The deficit of one instance is how many buffered seconds its
    resident requests are collectively short of ``target_buffer_s``,
    plus a full target's worth for every request that has no client
    buffer yet (waiting / prefilling / preempted / loading).  This is
    the dispatch-layer counterpart of the paper's buffer-aware
    scheduling objective: new load goes where client buffers are
    healthiest, so a node with thin buffers is not pushed into stalls.
    """

    name = "buffer_aware"
    shardable = True

    def __init__(self, target_buffer_s: float = 1.0) -> None:
        if target_buffer_s <= 0:
            raise ValueError("target_buffer_s must be positive")
        self.target_buffer_s = target_buffer_s

    def instance_deficit(self, instance) -> float:
        """Aggregate buffered-seconds shortfall of one instance.

        Requests that have no client buffer yet — waiting, prefilling,
        preempted, or dispatched-but-not-yet-arrived (``unfinished``
        minus the decode batch) — each count a full target: they are
        pure future demand.
        """
        target = self.target_buffer_s
        now = instance.engine.now()
        buffer_seconds = instance.tracker.buffer_seconds
        deficit = 0.0
        for request in instance.running:
            shortfall = target - buffer_seconds(request.req_id, now)
            if shortfall > 0.0:
                deficit += shortfall
        pending = instance.unfinished - len(instance.running)
        return deficit + target * pending

    def instance_metrics(self, instance, request):
        return (self.instance_deficit(instance), instance.unfinished)

    def select_from_metrics(self, n: int, metrics: Optional[List], request) -> int:
        # Deficit first; among equally-healthy nodes, least total load;
        # then lowest index (full determinism).
        return min(
            range(n),
            key=lambda i: (metrics[i][0], metrics[i][1], i),
        )

    def select(self, instances: Sequence, request) -> int:
        return self._select_via_metrics(instances, request)


@register_router
class SessionAffinityRouter(Router):
    """Sticky routing: all turns of a session go to one instance.

    Session identity is the request's ``session_id`` (set by the
    session drivers and session workload builders); standalone requests
    (``session_id is None``) are placed individually by the ``base``
    policy.  Fresh sessions are placed by the base policy too, and
    later turns reuse the recorded placement — modelling KV/prefix-cache
    locality for multi-turn conversations.
    """

    name = "session_affinity"
    shardable = True

    def __init__(self, base: Union[str, Router] = "least_loaded") -> None:
        self.base = make_router(base)
        # Sharded execution delegates the metric split to the base
        # policy, so stickiness is only shardable if the base is; the
        # same holds for the speculative-dispatch snapshot protocol
        # (sticky hits are stateless and simply fold into the mirror).
        self.shardable = self.base.shardable
        self.speculative = self.base.speculative
        self.assignments: Dict[int, int] = {}

    def needs_state(self, request) -> bool:
        # `Request.affinity_key` is the typed accessor shared with the
        # prefix-sharing lookup path — no defensive getattr: every
        # request defines it.
        session = request.affinity_key
        if session is not None and session in self.assignments:
            return False
        return self.base.needs_state(request)

    def instance_metrics(self, instance, request):
        return self.base.instance_metrics(instance, request)

    def select_from_metrics(self, n: int, metrics: Optional[List], request) -> int:
        session = request.affinity_key
        if session is None:
            return self.base.select_from_metrics(n, metrics, request)
        idx = self.assignments.get(session)
        if idx is None:
            idx = self.base.select_from_metrics(n, metrics, request)
            self.assignments[session] = idx
        return idx

    def peek_from_metrics(self, n: int, metrics: List, request) -> int:
        # Preview only: a fresh session must NOT be recorded here — the
        # authoritative selection that follows does the assignment.
        session = request.affinity_key
        if session is not None:
            idx = self.assignments.get(session)
            if idx is not None:
                return idx
        return self.base.peek_from_metrics(n, metrics, request)

    def instance_snapshot(self, instance, request):
        return self.base.instance_snapshot(instance, request)

    def snapshot_metric(self, snap, t: float):
        return self.base.snapshot_metric(snap, t)

    def snapshot_fresh(self, snap, t: float) -> bool:
        return self.base.snapshot_fresh(snap, t)

    def fold_snapshot(self, snap, t: float, request) -> None:
        self.base.fold_snapshot(snap, t, request)

    def select(self, instances: Sequence, request) -> int:
        return self._select_via_metrics(instances, request)
