"""Pluggable cluster routing policies (paper §8 dispatch layer).

A :class:`Router` places each arriving request on one of the cluster's
:class:`~repro.serving.server.ServingSystem` instances.  Policies are
registered by name in :data:`ROUTERS`, so experiments and scenarios
select them declaratively (``ScenarioSpec.router = "buffer_aware"``)
and new policies plug in without touching the cluster loop:

* ``round_robin`` — arrival-order striping.
* ``least_loaded`` — fewest unfinished requests (default).
* ``least_queued`` — shortest waiting+prefill queue at arrival.
* ``buffer_aware`` — smallest aggregate client-buffer deficit: the
  cluster-level analogue of the paper's buffer-aware scheduler.  Each
  running request contributes its shortfall against a target buffer;
  queued/preempted work counts a full target's worth (no buffer yet).
* ``session_affinity`` — sticky routing by conversation: turns of one
  session land on the instance that served its first turn (KV reuse /
  prefix-cache locality), with a fallback policy for fresh sessions.

Every policy is deterministic: ties break on the lowest instance
index, so identical scenario+seed runs place identically.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Type, Union


class Router(abc.ABC):
    """Dispatch policy: pick the instance index for each arrival.

    Routers may keep state (stripe counters, sticky maps); a fresh
    instance is built per run, so repeated runs of one scenario are
    independent and deterministic.

    Policies that can run against a *sharded* cluster — where instances
    live in other processes — additionally split :meth:`select` into a
    per-instance measurement (:meth:`instance_metrics`, computed where
    the instance lives, returning something picklable) and a pure
    decision over the gathered measurements
    (:meth:`select_from_metrics`, run on the coordinator).  The
    built-in policies implement :meth:`select` *via* that split, so the
    single-process and sharded paths execute the same comparison code
    on the same float values.  Subclasses that only override
    :meth:`select` keep working on single-process clusters; they must
    set :attr:`shardable` to ``True`` (and implement the split) to opt
    into sharded execution.
    """

    name: str = "base"

    #: Whether this policy supports the metrics/selection split that
    #: sharded execution requires.  Built-in policies set this True.
    shardable: bool = False

    @abc.abstractmethod
    def select(self, instances: Sequence, request) -> int:
        """Return the index in ``instances`` to place ``request`` on."""

    def needs_state(self, request) -> bool:
        """Whether placing ``request`` requires fresh instance metrics.

        Policies that decide without looking at the instances (stripe
        counters, sticky-map hits) return ``False``; the sharded
        coordinator then skips the metric-gathering round entirely —
        the lever that lets stateless policies batch arbitrarily many
        dispatches into one shard message.
        """
        return True

    def instance_metrics(self, instance, request):
        """Measure one instance for placing ``request`` (picklable)."""
        raise NotImplementedError(
            f"router {self.name!r} does not implement the sharded "
            f"metrics/selection split"
        )

    def select_from_metrics(self, n: int, metrics: Optional[List], request) -> int:
        """Pick an index in ``range(n)`` from gathered ``metrics``.

        ``metrics[i]`` is :meth:`instance_metrics` for instance ``i``
        (``None`` when :meth:`needs_state` said no state was needed).
        This is the only place a shardable policy may mutate its own
        state, so replaying the same dispatch sequence reproduces the
        same placements regardless of where metrics were computed.
        """
        raise NotImplementedError(
            f"router {self.name!r} does not implement the sharded "
            f"metrics/selection split"
        )

    def _select_via_metrics(self, instances: Sequence, request) -> int:
        """Shared :meth:`select` body for split-capable policies."""
        if self.needs_state(request):
            metrics = [self.instance_metrics(inst, request) for inst in instances]
        else:
            metrics = None
        return self.select_from_metrics(len(instances), metrics, request)


ROUTERS: Dict[str, Type[Router]] = {}


def register_router(cls: Type[Router]) -> Type[Router]:
    """Class decorator: add a :class:`Router` subclass to the registry."""
    ROUTERS[cls.name] = cls
    return cls


def make_router(router: Union[str, Router]) -> Router:
    """Resolve a router name (or pass through an instance)."""
    if isinstance(router, Router):
        return router
    if router not in ROUTERS:
        raise ValueError(
            f"router must be one of {sorted(ROUTERS)}, got {router!r}"
        )
    return ROUTERS[router]()


@register_router
class RoundRobinRouter(Router):
    """Arrival-order striping across instances."""

    name = "round_robin"
    shardable = True

    def __init__(self) -> None:
        self._next = 0

    def needs_state(self, request) -> bool:
        return False

    def select_from_metrics(self, n: int, metrics: Optional[List], request) -> int:
        idx = self._next
        self._next = (idx + 1) % n
        return idx

    def select(self, instances: Sequence, request) -> int:
        return self._select_via_metrics(instances, request)


@register_router
class LeastLoadedRouter(Router):
    """Fewest unfinished requests (admitted or not)."""

    name = "least_loaded"
    shardable = True

    def instance_metrics(self, instance, request) -> int:
        return instance.unfinished

    def select_from_metrics(self, n: int, metrics: Optional[List], request) -> int:
        return min(range(n), key=lambda i: metrics[i])

    def select(self, instances: Sequence, request) -> int:
        return self._select_via_metrics(instances, request)


@register_router
class LeastQueuedRouter(Router):
    """Shortest waiting + prefill queue at arrival time."""

    name = "least_queued"
    shardable = True

    def instance_metrics(self, instance, request) -> int:
        return len(instance.waiting) + len(instance.prefill_queue)

    def select_from_metrics(self, n: int, metrics: Optional[List], request) -> int:
        return min(range(n), key=lambda i: metrics[i])

    def select(self, instances: Sequence, request) -> int:
        return self._select_via_metrics(instances, request)


@register_router
class BufferAwareRouter(Router):
    """Route to the instance with the smallest aggregate buffer deficit.

    The deficit of one instance is how many buffered seconds its
    resident requests are collectively short of ``target_buffer_s``,
    plus a full target's worth for every request that has no client
    buffer yet (waiting / prefilling / preempted / loading).  This is
    the dispatch-layer counterpart of the paper's buffer-aware
    scheduling objective: new load goes where client buffers are
    healthiest, so a node with thin buffers is not pushed into stalls.
    """

    name = "buffer_aware"
    shardable = True

    def __init__(self, target_buffer_s: float = 1.0) -> None:
        if target_buffer_s <= 0:
            raise ValueError("target_buffer_s must be positive")
        self.target_buffer_s = target_buffer_s

    def instance_deficit(self, instance) -> float:
        """Aggregate buffered-seconds shortfall of one instance.

        Requests that have no client buffer yet — waiting, prefilling,
        preempted, or dispatched-but-not-yet-arrived (``unfinished``
        minus the decode batch) — each count a full target: they are
        pure future demand.
        """
        target = self.target_buffer_s
        now = instance.engine.now()
        buffer_seconds = instance.tracker.buffer_seconds
        deficit = 0.0
        for request in instance.running:
            shortfall = target - buffer_seconds(request.req_id, now)
            if shortfall > 0.0:
                deficit += shortfall
        pending = instance.unfinished - len(instance.running)
        return deficit + target * pending

    def instance_metrics(self, instance, request):
        return (self.instance_deficit(instance), instance.unfinished)

    def select_from_metrics(self, n: int, metrics: Optional[List], request) -> int:
        # Deficit first; among equally-healthy nodes, least total load;
        # then lowest index (full determinism).
        return min(
            range(n),
            key=lambda i: (metrics[i][0], metrics[i][1], i),
        )

    def select(self, instances: Sequence, request) -> int:
        return self._select_via_metrics(instances, request)


@register_router
class SessionAffinityRouter(Router):
    """Sticky routing: all turns of a session go to one instance.

    Session identity is the request's ``session_id`` (set by the
    session drivers and session workload builders); standalone requests
    (``session_id is None``) are placed individually by the ``base``
    policy.  Fresh sessions are placed by the base policy too, and
    later turns reuse the recorded placement — modelling KV/prefix-cache
    locality for multi-turn conversations.
    """

    name = "session_affinity"
    shardable = True

    def __init__(self, base: Union[str, Router] = "least_loaded") -> None:
        self.base = make_router(base)
        # Sharded execution delegates the metric split to the base
        # policy, so stickiness is only shardable if the base is.
        self.shardable = self.base.shardable
        self.assignments: Dict[int, int] = {}

    def needs_state(self, request) -> bool:
        # `Request.affinity_key` is the typed accessor shared with the
        # prefix-sharing lookup path — no defensive getattr: every
        # request defines it.
        session = request.affinity_key
        if session is not None and session in self.assignments:
            return False
        return self.base.needs_state(request)

    def instance_metrics(self, instance, request):
        return self.base.instance_metrics(instance, request)

    def select_from_metrics(self, n: int, metrics: Optional[List], request) -> int:
        session = request.affinity_key
        if session is None:
            return self.base.select_from_metrics(n, metrics, request)
        idx = self.assignments.get(session)
        if idx is None:
            idx = self.base.select_from_metrics(n, metrics, request)
            self.assignments[session] = idx
        return idx

    def select(self, instances: Sequence, request) -> int:
        return self._select_via_metrics(instances, request)
