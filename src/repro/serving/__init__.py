"""End-to-end serving system wiring.

:class:`~repro.serving.server.ServingSystem` connects arrivals, the
scheduler (TokenFlow or a baseline), the iteration-level executor, the
hierarchical KV manager, and per-request client buffers on one
discrete-event engine, and produces a :class:`~repro.serving.metrics.RunReport`.
"""

from repro.serving.cluster import ClusterReport, ServingCluster
from repro.serving.config import ServingConfig
from repro.serving.export import (
    load_report_json,
    report_to_dict,
    save_report_json,
    save_token_trace_jsonl,
)
from repro.serving.interface import BaseScheduler, SchedulerDecision, SystemView
from repro.serving.metrics import RequestMetrics, RunReport, build_report
from repro.serving.server import ServingSystem

__all__ = [
    "ClusterReport",
    "ServingCluster",
    "ServingConfig",
    "load_report_json",
    "report_to_dict",
    "save_report_json",
    "save_token_trace_jsonl",
    "BaseScheduler",
    "SchedulerDecision",
    "SystemView",
    "RequestMetrics",
    "RunReport",
    "build_report",
    "ServingSystem",
]
