"""End-to-end serving system wiring.

:class:`~repro.serving.server.ServingSystem` connects arrivals, the
scheduler (TokenFlow or a baseline), the iteration-level executor, the
hierarchical KV manager, and per-request client buffers on one
discrete-event engine, and produces a :class:`~repro.serving.metrics.RunReport`.
The loop itself is staged (see :mod:`repro.serving.stages`); clusters
route arrivals across instances via :mod:`repro.serving.routers`.
"""

from repro.serving.cluster import ClusterReport, ServingCluster
from repro.serving.config import ServingConfig
from repro.serving.export import (
    load_report_json,
    report_to_dict,
    save_report_json,
    save_token_trace_jsonl,
)
from repro.serving.interface import BaseScheduler, SchedulerDecision, SystemView
from repro.serving.metrics import (
    QuantileSketch,
    RequestMetrics,
    RunReport,
    StreamingRunStats,
    aggregate_reports,
    build_report,
)
from repro.serving.routers import ROUTERS, Router, make_router, register_router
from repro.serving.server import ServingSystem
from repro.serving.stages import (
    AdmissionStage,
    BatchComposer,
    DecodeStream,
    MemoryPressureStage,
)

__all__ = [
    "ClusterReport",
    "ServingCluster",
    "ServingConfig",
    "load_report_json",
    "report_to_dict",
    "save_report_json",
    "save_token_trace_jsonl",
    "BaseScheduler",
    "SchedulerDecision",
    "SystemView",
    "QuantileSketch",
    "RequestMetrics",
    "RunReport",
    "StreamingRunStats",
    "aggregate_reports",
    "build_report",
    "ROUTERS",
    "Router",
    "make_router",
    "register_router",
    "ServingSystem",
    "AdmissionStage",
    "BatchComposer",
    "DecodeStream",
    "MemoryPressureStage",
]
