"""Scheduler interface between the serving loop and scheduling policies.

The serving loop exposes a read-only :class:`SystemView` snapshot and
expects a :class:`SchedulerDecision` back.  All policies — TokenFlow
and the baselines — implement :class:`BaseScheduler`, so experiments
swap policies without touching the serving loop.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.tracker import RequestTracker, TrackerSnapshot
    from repro.gpu.executor import LLMExecutor
    from repro.gpu.latency import LatencyModel
    from repro.memory.kv_manager import HierarchicalKVManager
    from repro.workload.request import Request


@dataclass
class SchedulerDecision:
    """Actions for the serving loop to execute, in order.

    Attributes:
        admit: QUEUED requests to move into the prefill queue.
        preempt: RUNNING requests to evict (KV offloaded or dropped
            according to the KV manager's configuration).
        resume_load: PREEMPTED requests to reload via PCIe.
        resume_recompute: PREEMPTED requests to re-prefill instead.
    """

    admit: list = field(default_factory=list)
    preempt: list = field(default_factory=list)
    resume_load: list = field(default_factory=list)
    resume_recompute: list = field(default_factory=list)

    def is_empty(self) -> bool:
        return not (self.admit or self.preempt or self.resume_load or self.resume_recompute)

    def validate(self) -> None:
        """Reject decisions that name a request twice."""
        seen: set = set()
        for group in (self.admit, self.preempt, self.resume_load, self.resume_recompute):
            for request in group:
                if request.req_id in seen:
                    raise ValueError(
                        f"request {request.req_id} appears twice in one decision"
                    )
                seen.add(request.req_id)


@dataclass
class SystemView:
    """Read-only snapshot of serving state handed to schedulers.

    Attributes:
        now: current simulation time.
        waiting: QUEUED requests in arrival order.
        prefill_queue: admitted requests awaiting (re)prefill.
        running: the current decode batch.
        preempted: offloaded/dropped requests awaiting resumption.
        loading: requests whose KV load is in flight.
        tracker: per-request runtime state (buffers, rates).
        kv: the hierarchical KV manager (memory + I/O state).
        executor: iteration planner (capacity estimate Γ).
        latency: the latency model (recompute estimates).
        max_batch: hard cap on concurrent decode requests.
        snapshot: bulk buffer-state view at ``now`` backed by the
            tracker's per-instant memo — schedulers and the serving
            loop share one occupancy computation per request.
    """

    now: float
    waiting: Sequence
    prefill_queue: Sequence
    running: Sequence
    preempted: Sequence
    loading: Sequence
    tracker: "RequestTracker"
    kv: "HierarchicalKVManager"
    executor: "LLMExecutor"
    latency: "LatencyModel"
    max_batch: int
    snapshot: Optional["TrackerSnapshot"] = None

    def buffer_state(self) -> "TrackerSnapshot":
        """The shared buffer snapshot at ``now`` (created lazily for
        views built without one, e.g. in unit tests)."""
        if self.snapshot is None:
            self.snapshot = self.tracker.snapshot(self.now)
        return self.snapshot


class BaseScheduler(abc.ABC):
    """Scheduling policy plugged into the serving loop.

    ``tick_interval`` is the paper's Δt: the loop invokes
    :meth:`on_tick` at this period when it is not None.
    :meth:`on_iteration_boundary` runs before every iteration is
    planned — the cheap, admission-only path — while :meth:`on_tick`
    may issue preemptions and resumptions.
    """

    name: str = "base"
    tick_interval: Optional[float] = None

    @abc.abstractmethod
    def on_iteration_boundary(self, view: SystemView) -> SchedulerDecision:
        """Fast-path decision before each iteration (admissions)."""

    def on_tick(self, view: SystemView) -> SchedulerDecision:
        """Periodic decision (preemptions/resumptions); default: nothing."""
        return SchedulerDecision()

    # --- macro-step decode fusion protocol ---------------------------------
    def can_fuse_decode(self, view: SystemView) -> bool:
        """May the serving loop skip boundary calls during a fused window?

        The fused decode path advances multiple iterations in one
        event, calling :meth:`on_iteration_boundary` only for the
        first.  A scheduler returns True only when it can guarantee
        that, from this state, every skipped boundary call would have
        produced an *empty* decision for as long as the decode batch
        composition is frozen (no arrivals, ticks, completions, or
        memory events occur inside a window — GPU free blocks only
        shrink).  Schedulers with boundary side effects must replicate
        them in :meth:`on_fused_boundaries`.

        Default: ``False`` — unknown policies never fuse, which keeps
        third-party schedulers bit-for-bit on the per-iteration path.
        """
        return False

    def on_fused_boundaries(self, running: Sequence, n_iters: int) -> None:
        """Replicate the bookkeeping of ``n_iters`` skipped boundaries.

        Called once per fused window (before token state advances) in
        place of the ``n_iters`` :meth:`on_iteration_boundary` calls
        the window elided; the ``j``-th skipped boundary would have
        observed each running request with ``j`` extra generated
        tokens.  Default: no bookkeeping.
        """

    def select_oom_victims(self, view: SystemView, blocks_needed: int) -> list:
        """Pick RUNNING requests to evict when allocation fails.

        Default policy mirrors vLLM/SGLang: evict the most recently
        admitted request(s) first.
        """
        victims: list = []
        freed = 0
        for request in sorted(view.running, key=lambda r: r.admitted_time or 0.0, reverse=True):
            if freed >= blocks_needed:
                break
            victims.append(request)
            freed += view.kv.gpu_pool.used_by(request.req_id)
        return victims

    def scheduling_cost_s(self) -> float:
        """Modelled wall-clock cost of one scheduling pass (overhead §7.6)."""
        return 0.0
