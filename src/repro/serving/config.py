"""Serving-system configuration.

Pins the hardware, model, memory split, batching, and KV-manager
behaviour of one serving instance.  Schedulers are configured
separately and passed alongside the config, so the same
:class:`ServingConfig` can be reused across policies in a comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.gpu.hardware import HardwareSpec, get_hardware
from repro.gpu.models import ModelSpec, get_model
from repro.memory.kv_manager import KVManagerConfig


@dataclass
class ServingConfig:
    """Static configuration of one serving instance.

    Attributes:
        hardware: hardware spec or its name (e.g. "h200").
        model: model spec or its name (e.g. "llama3-8b").
        mem_frac: fraction of device memory given to the KV pool.
            ``None`` derives it from what is left after weights (with
            a 10 % reserve for activations/fragmentation).  The paper's
            H200 experiments start at 0.3 (§7.3).
        block_size: tokens per KV block.
        max_batch: hard cap on concurrent decode requests.
        max_prefill_tokens: per-iteration prefill token budget.
        chunked_prefill: split prompts into chunks (SGLang-chunked).
        prefill_chunk_size: chunk size when chunking is active.
        kv: KV-manager behaviour switches (Table 2 ablations).
        fuse_decode: enable macro-step decode fusion — when the decode
            batch provably cannot change before the next scheduler
            tick, arrival, completion, or memory event, the serving
            loop advances all iterations up to that horizon in one
            event via closed-form bulk updates.  Metrics stay within
            the rel-1e-9 envelope of the per-iteration path (float
            summation order of a few reporting aggregates is the only
            difference); switch off to debug with one event per decode
            iteration.
        vectorize_decode: advance the whole decode batch's client
            buffers with struct-of-arrays numpy kernels
            (:mod:`repro.serving.batchstate`) instead of per-request
            scalar loops, and switch the PCIe drain's per-request
            occupancy bookkeeping to one bulk call.  Busy horizons and
            all integer metrics are exact; a few float reporting
            aggregates differ in summation order, within the same
            rel-1e-9 envelope as ``fuse_decode``.  ``False`` preserves
            the scalar path bit-for-bit.
        retain_per_request: keep every finished request's tracker entry
            (and its :class:`~repro.serving.metrics.RequestMetrics`
            row) until report time — the exact historical pipeline,
            and the default.  ``False`` switches the run to streaming
            telemetry: finished requests retire into a
            :class:`~repro.serving.metrics.StreamingRunStats`
            accumulator (exact counts/sums, sketch-backed TTFT/stall
            percentiles) the moment they complete, so memory stays
            O(active requests) — the soak scenarios' mode.  Per-token
            trace export and per-request report rows need the default.
        record_token_traces: keep per-token generation/consumption
            timestamp lists on every client buffer.  Metrics and QoS
            need only the compact occupancy aggregates, so this is off
            by default (memory stays O(1) per request and the delivery
            hot path skips three list appends per token) without
            changing any :class:`~repro.serving.metrics.RunReport`
            number; JSONL token-trace export and occupancy-series
            plots need it on.
        timeline_cap: sample-count bound for the (t, queued, running)
            timeline; above it samples are decimated 2:1 and the
            sampling stride doubles (long runs stop growing without
            bound).
    """

    hardware: Union[str, HardwareSpec] = "h200"
    model: Union[str, ModelSpec] = "llama3-8b"
    mem_frac: Optional[float] = None
    block_size: int = 16
    max_batch: int = 128
    max_prefill_tokens: int = 8192
    chunked_prefill: bool = False
    prefill_chunk_size: int = 2048
    kv: KVManagerConfig = field(default_factory=KVManagerConfig)
    fuse_decode: bool = True
    vectorize_decode: bool = True
    retain_per_request: bool = True
    record_token_traces: bool = False
    timeline_cap: int = 65536

    def __post_init__(self) -> None:
        if isinstance(self.hardware, str):
            self.hardware = get_hardware(self.hardware)
        if isinstance(self.model, str):
            self.model = get_model(self.model)
        if self.mem_frac is not None and not 0 < self.mem_frac < 1:
            raise ValueError("mem_frac must be in (0, 1)")
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if self.max_prefill_tokens <= 0:
            raise ValueError("max_prefill_tokens must be positive")
        if self.prefill_chunk_size <= 0:
            raise ValueError("prefill_chunk_size must be positive")
        if self.timeline_cap < 2:
            raise ValueError("timeline_cap must be at least 2")
        if self.record_token_traces and not self.retain_per_request:
            raise ValueError(
                "record_token_traces needs retain_per_request: streaming "
                "telemetry drops each request's traces at retirement"
            )
        # Keep the KV config's block size consistent with ours.
        if self.kv.block_size != self.block_size:
            object.__setattr__(self.kv, "block_size", self.block_size)
        if self.resolved_mem_frac() <= 0:
            raise ValueError(
                f"model {self.model.name} weights do not leave KV room on "
                f"{self.hardware.name}"
            )

    def resolved_mem_frac(self) -> float:
        """The KV pool's share of device memory."""
        if self.mem_frac is not None:
            return self.mem_frac
        leftover = 1.0 - self.model.weight_bytes / self.hardware.mem_capacity_bytes
        return max(0.0, leftover - 0.10)

    def kv_pool_bytes(self) -> float:
        return self.hardware.mem_capacity_bytes * self.resolved_mem_frac()

    def kv_capacity_tokens(self) -> int:
        """Tokens of KV cache the GPU pool can hold."""
        return int(self.kv_pool_bytes() // self.model.kv_bytes_per_token)

    def kv_capacity_blocks(self) -> int:
        capacity = self.kv_capacity_tokens() // self.block_size
        if capacity <= 0:
            raise ValueError(
                f"KV pool too small: {self.kv_pool_bytes():.2e} bytes holds no "
                f"{self.block_size}-token block of {self.model.name}"
            )
        return capacity
