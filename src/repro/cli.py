"""Command-line interface for running experiments and comparisons.

Usage::

    python -m repro.cli list
    python -m repro.cli list-scenarios
    python -m repro.cli run table1-h200-a --replicas 4 --router buffer_aware
    python -m repro.cli experiment fig16 --scale 0.25
    python -m repro.cli compare --systems sglang tokenflow \
        --arrival burst --n-requests 120 --hardware h200 --mem-frac 0.1

``list`` enumerates the paper experiments; ``list-scenarios`` the
registered serving scenarios; ``run`` executes one scenario through
the :func:`~repro.scenarios.build.build_run` pipeline (optionally as a
multi-replica cluster behind a named router; ``--stream`` drives
arrivals through the streaming plane, ``--out`` writes the report as
a diffable JSON artifact with executor/KV/scheduler stats, mirroring
``repro profile --json``); ``experiment``
regenerates one table/figure (same runners the benchmark suite uses);
``compare`` runs an ad-hoc workload across schedulers; ``matrix``
expands scenarios × routers × replicas × seeds into independent jobs
and runs them across worker processes (``--list`` previews the cells);
``profile`` runs one Table 1 cell under cProfile and prints the
hot-spot report (wall seconds, function calls, peak RSS, tottime +
cumulative tables) so perf regressions in the simulation core are
measurable from the command line — ``--json PATH`` writes it as a
diffable CI artifact and ``--no-fuse`` disables macro-step decode
fusion so fusion wins/regressions can be diffed; ``selftest`` runs the
tier-1 CI flow (``scripts/ci.sh``; pass ``--fast`` for the not-slow
lane).
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from repro.analysis.tables import render_table
from repro.experiments import ablation, controlled, endtoend, micro, multirate
from repro.experiments import overhead as overhead_mod
from repro.experiments import ratesweep, sensitivity, temporal, timeline, toy
from repro.experiments.runner import run_comparison
from repro.experiments.systems import SYSTEM_NAMES
from repro.scenarios import build_run, get_scenario, list_scenarios
from repro.serving.metrics import RunReport
from repro.serving.routers import ROUTERS
from repro.sim.rng import RngStreams
from repro.workload.builder import RateMixture, WorkloadBuilder, WorkloadSpec

# experiment id -> (description, runner(scale) -> printable str)
EXPERIMENTS: dict = {
    "fig01": ("consumption-rate tables", None),
    "fig02": ("SGLang burst micro-benchmark", None),
    "fig06": ("buffer-balancing toy example", None),
    "fig12": ("end-to-end H200 + Llama3-8B", None),
    "fig13": ("end-to-end A6000 + Qwen2.5-7B", None),
    "fig14": ("queued requests over time", None),
    "fig16": ("burst workloads (Table 1 a/b)", None),
    "fig17": ("Poisson workloads (Table 1 c/d)", None),
    "fig18": ("token generation timelines", None),
    "fig19": ("multi-rate scheduling", None),
    "fig20": ("generation-speed sweep", None),
    "fig21": ("Ascend 910B", None),
    "fig22": ("reschedule-interval sweep", None),
    "fig23": ("buffer-conservativeness sweep", None),
    "tab02": ("memory-management ablation", None),
    "overhead": ("scheduling-pass overhead", None),
}


def _run_experiment(name: str, scale: float, jobs: int = 1) -> str:
    if name == "fig01":
        from repro.client.rates import rate_table_rows
        return render_table(["language", "age", "tokens/s"],
                            rate_table_rows("reading"),
                            title="Fig. 1: reading rates")
    if name == "fig02":
        return micro.render_burst_sweep(
            micro.run_burst_sweep(full_burst=max(8, int(200 * scale)))
        )
    if name == "fig06":
        return toy.render_toy(toy.run_toy_example())
    if name == "fig12":
        reports = endtoend.run_endtoend("h200-llama3-8b", duration=60.0, scale=scale)
        return endtoend.render_endtoend("h200-llama3-8b", "burstgpt", reports)
    if name == "fig13":
        reports = endtoend.run_endtoend("a6000-qwen2.5-7b", duration=60.0, scale=scale)
        return endtoend.render_endtoend("a6000-qwen2.5-7b", "burstgpt", reports)
    if name == "fig14":
        results = temporal.run_temporal(duration=80.0, base_rate=2.0 * scale,
                                        max_batch=32)
        return temporal.render_temporal(results, "queued")
    if name == "fig16":
        blocks = []
        for gpu, key in (("rtx4090", "a"), ("rtx4090", "b"),
                         ("h200", "a"), ("h200", "b")):
            reports = controlled.run_controlled(gpu, key, scale=scale)
            blocks.append(controlled.render_controlled(gpu, key, reports))
        return "\n\n".join(blocks)
    if name == "fig17":
        blocks = []
        for gpu, key in (("rtx4090", "c"), ("rtx4090", "d"),
                         ("h200", "c"), ("h200", "d")):
            reports = controlled.run_controlled(gpu, key, scale=scale)
            blocks.append(controlled.render_controlled(gpu, key, reports))
        return "\n\n".join(blocks)
    if name == "fig18":
        return timeline.render_timelines(timeline.run_timelines())
    if name == "fig19":
        return multirate.render_multirate(multirate.run_multirate())
    if name == "fig20":
        return ratesweep.render_rate_sweep(
            ratesweep.run_rate_sweep(n_requests=max(8, int(200 * scale)),
                                     jobs=jobs)
        )
    if name == "fig21":
        reports = endtoend.run_endtoend("ascend910b-llama3-8b",
                                        duration=60.0, scale=scale)
        return endtoend.render_endtoend("ascend910b-llama3-8b", "burstgpt", reports)
    if name == "fig22":
        return sensitivity.render_sensitivity(
            sensitivity.run_interval_sweep(n_requests=max(8, int(200 * scale)),
                                           jobs=jobs),
            "dt(s)",
        )
    if name == "fig23":
        return sensitivity.render_sensitivity(
            sensitivity.run_conservativeness_sweep(
                n_requests=max(8, int(200 * scale)), jobs=jobs
            ),
            "mu",
        )
    if name == "tab02":
        return ablation.render_ablation(
            ablation.run_ablation(scale=scale, pcie_gbps=2.0)
        )
    if name == "overhead":
        return overhead_mod.render_overhead(overhead_mod.measure_overhead())
    raise KeyError(name)


def cmd_list(_args) -> int:
    rows = [[name, desc] for name, (desc, _) in sorted(EXPERIMENTS.items())]
    print(render_table(["experiment", "description"], rows,
                       title="Available experiments"))
    return 0


def cmd_experiment(args) -> int:
    if args.name not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        print(f"unknown experiment {args.name!r}; known: {known}", file=sys.stderr)
        return 2
    print(_run_experiment(args.name, args.scale, jobs=args.jobs))
    return 0


def cmd_compare(args) -> int:
    spec = WorkloadSpec(
        arrival=args.arrival,
        n_requests=args.n_requests if args.arrival == "burst" else None,
        poisson_rate=args.poisson_rate,
        duration=args.duration,
        rates=RateMixture.fixed(args.rate),
    )
    requests = WorkloadBuilder(spec, RngStreams(args.seed)).build()
    reports = run_comparison(
        args.systems, requests,
        hardware=args.hardware, model=args.model,
        mem_frac=args.mem_frac, max_batch=args.max_batch,
    )
    print(render_table(
        RunReport.summary_headers() + ["stall(s)", "preempts"],
        [
            report.summary_row() + [round(report.stall_total, 1),
                                    report.preemptions]
            for report in reports.values()
        ],
        title=f"{args.arrival} workload on {args.hardware}/{args.model}",
    ))
    return 0


def cmd_list_scenarios(args) -> int:
    if not getattr(args, "long", False):
        rows = [[name, desc] for name, desc in list_scenarios()]
        print(render_table(["scenario", "description"], rows,
                           title="Registered scenarios (repro run <scenario>)"))
        return 0
    # Catalogue mode: resolve each entry at default scale/seed and
    # render its ScenarioSpec.doc paragraph plus the axes that matter.
    import textwrap

    for name, desc in list_scenarios():
        spec = get_scenario(name)
        axes = [f"system={spec.system}", f"replicas={spec.replicas}"]
        if spec.replicas > 1:
            axes.append(f"router={spec.router}")
        axes.append(f"kv_allocator={spec.kv_allocator}")
        if spec.is_stream_native:
            axes.append("stream-native")
        print(f"{name} — {desc}")
        print(f"    [{' · '.join(axes)}]")
        for line in textwrap.wrap(spec.doc or spec.description, width=72):
            print(f"    {line}")
        print()
    return 0


def _render_scenario_report(spec, run, report) -> str:
    """One table for a scenario run (cluster gets per-node rows)."""
    headers = RunReport.summary_headers() + ["stall(s)", "preempts"]
    if run.is_cluster:
        shard_note = (
            f" · {run.target.shards} shards"
            if getattr(run.target, "shards", 1) > 1 else ""
        )
        title = (f"{spec.name} · {spec.replicas} replicas{shard_note} · "
                 f"router={run.target.router.name} · seed={spec.seed}")
        rows = [
            ["cluster",
             round(report.effective_throughput, 1),
             round(report.throughput, 1),
             round(report.ttft_mean, 3),
             round(report.ttft_p99, 3),
             round(report.stall_total, 1),
             report.preemptions]
        ]
        placements = run.target.placement_counts()
        for idx, node_report in enumerate(report.per_instance):
            rows.append(
                [f"  node{idx} ({placements[idx]} reqs)"]
                + node_report.summary_row()[1:]
                + [round(node_report.stall_total, 1), node_report.preemptions]
            )
        headers = ["instance"] + headers[1:]
    else:
        title = f"{spec.name} · single instance · seed={spec.seed}"
        rows = [report.summary_row()
                + [round(report.stall_total, 1), report.preemptions]]
    return render_table(headers, rows, title=title)


def _report_json_payload(spec, run, report) -> dict:
    """A diffable JSON artifact for one scenario run (``run --out``).

    Carries the resolved scenario coordinates plus the full aggregate
    report — executor/KV/scheduler stats included — mirroring the
    ``repro profile --json`` artifact.  Cluster runs add per-instance
    reports and placement counts; per-request rows are elided (the
    artifact must stay diffable at soak scale).
    """
    from repro.serving.export import report_to_dict

    payload: dict = {
        "scenario": {
            "name": spec.name,
            "system": spec.system,
            "scale": spec.scale,
            "seed": spec.seed,
            "replicas": spec.replicas,
            "shards": spec.shards,
            "streaming_telemetry": not spec.retain_per_request,
        },
    }
    if run.is_cluster:
        payload["scenario"]["router"] = run.target.router.name
        payload["cluster"] = report_to_dict(
            report.aggregate, include_requests=False
        )
        if spec.shards > 1:
            # Sharded-plane coordination accounting: the observable
            # form of the speculative-dispatch win (rounds collapse,
            # hits climb) rather than something to infer from wall
            # clocks.
            payload["scenario"]["speculation"] = spec.speculation
            payload["coordination"] = {
                "coordination_rounds": report.coordination_rounds,
                "messages_sent": report.messages_sent,
                "speculation_hits": report.speculation_hits,
                "speculation_misses": report.speculation_misses,
            }
        payload["placement_counts"] = run.target.placement_counts()
        payload["per_instance"] = [
            report_to_dict(node, include_requests=False)
            for node in report.per_instance
        ]
    else:
        payload["report"] = report_to_dict(report, include_requests=False)
    return payload


def cmd_run(args) -> int:
    overrides: dict = {}
    if args.replicas is not None:
        overrides["replicas"] = args.replicas
    if args.router is not None:
        overrides["router"] = args.router
    if args.system is not None:
        overrides["system"] = args.system
    if args.shards is not None:
        overrides["shards"] = args.shards
    if args.speculation is not None:
        overrides["speculation"] = args.speculation == "on"
    if args.horizon is not None:
        overrides["horizon"] = args.horizon
    if args.kv_allocator is not None:
        overrides["kv_allocator"] = args.kv_allocator
    try:
        spec = get_scenario(args.name, scale=args.scale, seed=args.seed,
                            **overrides)
        run = build_run(spec)  # KeyError: unknown --system name
    except (KeyError, ValueError) as exc:
        print(str(exc.args[0] if exc.args else exc), file=sys.stderr)
        return 2
    report = run.execute(streamed=True if args.stream else None)
    print(_render_scenario_report(spec, run, report))
    if args.out:
        import json

        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = _report_json_payload(spec, run, report)
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {path}")
    return 0


def cmd_matrix(args) -> int:
    from repro.orchestration import MatrixSpec, run_matrix

    try:
        matrix = MatrixSpec.from_axes(
            scenarios=args.scenarios or None,
            routers=args.routers,
            replicas=args.replicas,
            seeds=args.seeds,
            systems=args.systems,
            shards=args.shards,
            scale=args.scale,
        )
    except (KeyError, ValueError) as exc:
        print(str(exc.args[0] if exc.args else exc), file=sys.stderr)
        return 2

    if args.list:
        rows = [[cell.cell_id] for cell in matrix.expand()]
        print(render_table(["cell"], rows,
                           title=f"Matrix cells ({matrix.n_cells} jobs)"))
        return 0

    try:
        report = run_matrix(
            matrix,
            jobs=args.jobs,
            timeout_s=args.timeout,
            retries=args.retries,
            cache=not args.no_cache,
        )
    except ValueError as exc:  # e.g. --jobs 0
        print(str(exc.args[0] if exc.args else exc), file=sys.stderr)
        return 2
    print(report.render_markdown())
    if args.out:
        for path in report.write(args.out):
            print(f"wrote {path}")
    return 0 if report.succeeded else 1


def cmd_selftest(args) -> int:
    script = Path(__file__).resolve().parents[2] / "scripts" / "ci.sh"
    if not script.exists():
        print(f"selftest script not found: {script}", file=sys.stderr)
        return 2
    argv = ["bash", str(script)]
    if args.fast:
        argv.append("--fast")
    # Propagate pytest's exit status verbatim — a red suite must fail
    # `repro selftest` (and anything shelling out to it) loudly.
    return subprocess.run(argv, check=False).returncode


def cmd_profile(args) -> int:
    import json

    from repro.experiments.controlled import TABLE1, build_workload, serving_kwargs
    from repro.sim.profiling import profile_call

    key = (args.gpu, args.setup)
    if key not in TABLE1:
        known = ", ".join(f"{g}/{k}" for g, k in sorted(TABLE1))
        print(f"unknown cell {args.gpu}/{args.setup}; known: {known}",
              file=sys.stderr)
        return 2
    setup = TABLE1[key]
    requests = build_workload(setup, scale=args.scale, seed=args.seed)
    fuse = not args.no_fuse
    vectorize = not args.no_vectorize

    def run():
        return run_comparison(
            (args.system,), requests, horizon=50_000.0, fuse_decode=fuse,
            vectorize_decode=vectorize,
            **serving_kwargs(setup, args.scale),
        )

    report = profile_call(run, top=args.top, wall_runs=1)
    run_report = report.result[args.system]
    print(f"{setup.label()} · {args.system} · {len(requests)} requests, "
          f"{run_report.total_tokens} tokens"
          + ("" if fuse else " · fuse_decode=off")
          + ("" if vectorize else " · vectorize_decode=off"))
    print(report.render(top=args.top))
    if args.by_subsystem:
        print()
        print(report.render_subsystems())
    if args.json:
        payload = report.to_dict(top=args.top)
        payload["workload"] = {
            "gpu": args.gpu, "setup": args.setup, "system": args.system,
            "scale": args.scale, "seed": args.seed,
            "n_requests": len(requests),
            "total_tokens": run_report.total_tokens,
            "fuse_decode": fuse,
        }
        payload["executor_stats"] = dict(run_report.executor_stats)
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="TokenFlow reproduction experiment runner"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        func=cmd_list
    )

    list_sc = sub.add_parser(
        "list-scenarios", help="list registered serving scenarios"
    )
    list_sc.add_argument("--long", action="store_true",
                         help="full catalogue: each scenario's doc "
                              "paragraph and axes (from ScenarioSpec.doc)")
    list_sc.set_defaults(func=cmd_list_scenarios)

    run_p = sub.add_parser(
        "run", help="run one scenario through the build_run pipeline"
    )
    run_p.add_argument("name", help="scenario name (see `list-scenarios`)")
    run_p.add_argument("--scale", type=float, default=0.25,
                       help="workload scale factor (default 0.25)")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--replicas", type=int, default=None,
                       help="override replica count (>1 builds a cluster)")
    run_p.add_argument("--router", choices=sorted(ROUTERS), default=None,
                       help="override the cluster routing policy")
    run_p.add_argument("--system", default=None,
                       help="override the evaluated system/scheduler")
    run_p.add_argument("--shards", type=int, default=None,
                       help="shard worker processes for cluster runs "
                            "(>1 partitions the replicas across shard "
                            "processes; reports stay bit-identical, "
                            "1 keeps the single-process path)")
    run_p.add_argument("--speculation", choices=("on", "off"), default=None,
                       help="speculative dispatch for sharded cluster "
                            "runs (default on; 'off' forces a pause "
                            "round per stateful dispatch — placements "
                            "and reports are bit-identical either way)")
    run_p.add_argument("--horizon", type=float, default=None,
                       help="override the simulation safety horizon (s)")
    run_p.add_argument("--kv-allocator", dest="kv_allocator",
                       choices=("naive", "prefix_cow"), default=None,
                       help="override the KV block allocator policy "
                            "(prefix_cow enables refcounted prefix "
                            "sharing with copy-on-write forks)")
    run_p.add_argument("--stream", action="store_true",
                       help="drive arrivals through the streaming plane "
                            "(feed(stream); event-for-event identical to "
                            "submission — stream-native scenarios like the "
                            "soaks use it automatically)")
    run_p.add_argument("--out", default=None, metavar="PATH",
                       help="also write the run report as diffable JSON "
                            "(aggregates + executor/kv/scheduler stats, "
                            "mirroring `repro profile --json`)")
    run_p.set_defaults(func=cmd_run)

    matrix_p = sub.add_parser(
        "matrix",
        help="run a scenario matrix (scenarios x routers x replicas x "
             "seeds) across worker processes",
    )
    matrix_p.add_argument(
        "scenarios", nargs="*",
        help="scenario names (default: every registered scenario)",
    )
    matrix_p.add_argument("--jobs", type=int, default=None,
                          help="worker processes (default: CPU count)")
    matrix_p.add_argument("--routers", nargs="+", choices=sorted(ROUTERS),
                          default=None,
                          help="router axis (default: scenario defaults)")
    matrix_p.add_argument("--replicas", type=int, nargs="+", default=None,
                          help="replica-count axis (default: scenario defaults)")
    matrix_p.add_argument("--seeds", type=int, nargs="+", default=None,
                          help="seed axis (default: 0)")
    matrix_p.add_argument("--systems", nargs="+", default=None,
                          help="system/scheduler axis (default: scenario "
                               "defaults)")
    matrix_p.add_argument("--shards", type=int, nargs="+", default=None,
                          help="shard-count axis for cluster cells "
                               "(default: scenario defaults, i.e. "
                               "single-process)")
    matrix_p.add_argument("--scale", type=float, default=0.25,
                          help="workload scale factor (default 0.25)")
    matrix_p.add_argument("--timeout", type=float, default=None,
                          help="per-job run-time deadline in seconds "
                               "(measured from job start; forces pool "
                               "execution)")
    matrix_p.add_argument("--retries", type=int, default=0,
                          help="resubmissions per failing job (default 0)")
    matrix_p.add_argument("--no-cache", action="store_true",
                          help="always re-run cells (skip the result cache)")
    matrix_p.add_argument("--out", default=None,
                          help="directory for matrix_report.{md,json}")
    matrix_p.add_argument("--list", action="store_true",
                          help="print the expanded cells without running")
    matrix_p.set_defaults(func=cmd_matrix)

    selftest_p = sub.add_parser(
        "selftest", help="run the tier-1 CI flow (scripts/ci.sh)"
    )
    selftest_p.add_argument("--fast", action="store_true",
                            help="fast lane: skip slow-marked suites")
    selftest_p.set_defaults(func=cmd_selftest)

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("name", help="experiment id (see `list`)")
    exp.add_argument("--scale", type=float, default=0.25,
                     help="workload scale factor (default 0.25)")
    exp.add_argument("--jobs", type=int, default=1,
                     help="worker processes for sweep experiments "
                          "(fig20/fig22/fig23)")
    exp.set_defaults(func=cmd_experiment)

    cmp_ = sub.add_parser("compare", help="run an ad-hoc comparison")
    cmp_.add_argument("--systems", nargs="+", default=list(SYSTEM_NAMES))
    cmp_.add_argument("--arrival", choices=("burst", "poisson"), default="burst")
    cmp_.add_argument("--n-requests", type=int, default=120)
    cmp_.add_argument("--poisson-rate", type=float, default=2.0)
    cmp_.add_argument("--duration", type=float, default=60.0)
    cmp_.add_argument("--rate", type=float, default=10.0)
    cmp_.add_argument("--hardware", default="h200")
    cmp_.add_argument("--model", default="llama3-8b")
    cmp_.add_argument("--mem-frac", type=float, default=0.1)
    cmp_.add_argument("--max-batch", type=int, default=48)
    cmp_.add_argument("--seed", type=int, default=0)
    cmp_.set_defaults(func=cmd_compare)

    prof = sub.add_parser(
        "profile", help="profile one Table 1 cell (hot-spot report)"
    )
    prof.add_argument("--gpu", default="h200", help="Table 1 GPU (h200/rtx4090)")
    prof.add_argument("--setup", default="a", help="Table 1 setup key (a-d)")
    prof.add_argument("--system", default="tokenflow")
    prof.add_argument("--scale", type=float, default=0.25,
                      help="workload scale factor (default 0.25)")
    prof.add_argument("--seed", type=int, default=0)
    prof.add_argument("--top", type=int, default=20,
                      help="hot spots to print (default 20)")
    prof.add_argument("--json", default=None, metavar="PATH",
                      help="also write the report (tottime + cumulative "
                           "tables) as JSON — a diffable CI artifact")
    prof.add_argument("--no-fuse", action="store_true",
                      help="disable macro-step decode fusion "
                           "(fuse_decode=False) to diff fusion wins")
    prof.add_argument("--no-vectorize", action="store_true",
                      help="disable the vectorised batch plane "
                           "(vectorize_decode=False) to diff its wins")
    prof.add_argument("--by-subsystem", action="store_true",
                      help="also print exclusive time per subsystem "
                           "(executor/buffer/tracker/kv/...)")
    prof.set_defaults(func=cmd_profile)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
