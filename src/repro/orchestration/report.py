"""Matrix results: per-cell bookkeeping and the aggregate report.

A :class:`MatrixReport` holds one :class:`CellResult` per expanded
cell, **in expansion order** (never completion order — parallel runs
must render identically to serial ones), plus an aggregate
:class:`~repro.serving.metrics.RunReport` folded through
:func:`repro.serving.metrics.aggregate_reports`, i.e. the same
formulas the cluster layer uses for per-node roll-ups.

Writers: ``render_markdown`` for humans / CI job summaries and
``to_json_dict`` / ``write`` for machine-readable artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.serving.export import report_to_dict
from repro.serving.metrics import RunReport, aggregate_reports

# Cell terminal states.
STATUS_OK = "ok"           # executed in this run
STATUS_CACHED = "cached"   # reused a stored result (same spec + code)
STATUS_ERROR = "error"     # raised after all retry attempts
STATUS_TIMEOUT = "timeout" # exceeded the per-job deadline


@dataclass
class CellResult:
    """Outcome of one matrix cell."""

    cell_id: str
    status: str
    report: Optional[RunReport] = None
    error: str = ""
    attempts: int = 1
    duration_s: float = 0.0
    cache_key: str = ""

    @property
    def ok(self) -> bool:
        return self.status in (STATUS_OK, STATUS_CACHED)


@dataclass
class MatrixReport:
    """All cell results of one matrix run, in expansion order."""

    cells: list = field(default_factory=list)  # [CellResult]
    jobs: int = 1
    wall_s: float = 0.0
    code_version: str = ""

    @property
    def n_ok(self) -> int:
        return sum(1 for c in self.cells if c.status == STATUS_OK)

    @property
    def n_cached(self) -> int:
        return sum(1 for c in self.cells if c.status == STATUS_CACHED)

    @property
    def n_failed(self) -> int:
        return sum(1 for c in self.cells if not c.ok)

    @property
    def succeeded(self) -> bool:
        return self.n_failed == 0

    def aggregate(self) -> RunReport:
        """All successful cells folded into one report (single-node
        aggregation formulas, see :func:`aggregate_reports`)."""
        return aggregate_reports(
            [c.report for c in self.cells if c.ok and c.report is not None],
            system="matrix",
        )

    # --- rendering ----------------------------------------------------------
    def render_markdown(self) -> str:
        lines = [
            "# Scenario matrix",
            "",
            f"{len(self.cells)} cells · jobs={self.jobs} · "
            f"wall {self.wall_s:.1f}s · {self.n_ok} ran · "
            f"{self.n_cached} cached · {self.n_failed} failed",
            "",
            "| cell | status | eff_thpt(tok/s) | thpt(tok/s) | mean_ttft(s) "
            "| p99_ttft(s) | stall(s) | preempts | attempts | time(s) |",
            "|---|---|---|---|---|---|---|---|---|---|",
        ]
        for cell in self.cells:
            if cell.report is not None:
                r = cell.report
                metrics = [
                    f"{r.effective_throughput:.1f}", f"{r.throughput:.1f}",
                    f"{r.ttft_mean:.3f}", f"{r.ttft_p99:.3f}",
                    f"{r.stall_total:.1f}", str(r.preemptions),
                ]
            else:
                metrics = ["—"] * 6
            lines.append(
                "| " + " | ".join(
                    [cell.cell_id, cell.status] + metrics
                    + [str(cell.attempts), f"{cell.duration_s:.2f}"]
                ) + " |"
            )
        failed = [c for c in self.cells if not c.ok]
        if failed:
            lines.append("")
            lines.append("## Failures")
            for cell in failed:
                lines.append(f"- `{cell.cell_id}` ({cell.status}): {cell.error}")
        return "\n".join(lines) + "\n"

    def to_json_dict(self) -> dict:
        cells = []
        for cell in self.cells:
            entry = {
                "cell": cell.cell_id,
                "status": cell.status,
                "attempts": cell.attempts,
                "duration_s": cell.duration_s,
                "cache_key": cell.cache_key,
            }
            if cell.report is not None:
                entry["report"] = report_to_dict(
                    cell.report, include_requests=False
                )
            if cell.error:
                entry["error"] = cell.error
            cells.append(entry)
        payload = {
            "jobs": self.jobs,
            "wall_s": self.wall_s,
            "code_version": self.code_version,
            "n_cells": len(self.cells),
            "n_ok": self.n_ok,
            "n_cached": self.n_cached,
            "n_failed": self.n_failed,
            "cells": cells,
        }
        if any(c.ok and c.report is not None for c in self.cells):
            payload["aggregate"] = report_to_dict(
                self.aggregate(), include_requests=False
            )
        return payload

    def write(self, directory) -> list:
        """Write ``matrix_report.md`` + ``matrix_report.json``; returns paths."""
        import json

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        md = directory / "matrix_report.md"
        md.write_text(self.render_markdown())
        js = directory / "matrix_report.json"
        js.write_text(json.dumps(self.to_json_dict(), indent=2) + "\n")
        return [md, js]
