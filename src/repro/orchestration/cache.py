"""Result cache for matrix cells, keyed on (spec-hash, code-version).

A cell's result is fully determined by its resolved spec (plus the
explicit workload for inline cells) and the simulator code itself —
the runs are deterministic.  So repeated CI invocations can skip any
cell whose spec hash and code version both match a stored result.

The code version is a SHA-256 over every ``src/repro/**/*.py`` file
(path + contents), not the git HEAD: it changes exactly when behaviour
can change, works in exported/dirty trees, and is computed once per
process (~tens of ms).

Entries are pickled :class:`~repro.serving.metrics.RunReport` objects,
one file per key under the cache directory (default
``.repro-cache/matrix`` at the repo root, override with
``REPRO_CACHE_DIR``).  Corrupt or unreadable entries are treated as
misses — the cache can always be deleted wholesale.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path
from typing import Optional

_SRC_ROOT = Path(__file__).resolve().parents[1]  # src/repro
_code_version: Optional[str] = None


def code_version() -> str:
    """Hash of the simulator source tree (memoised per process)."""
    global _code_version
    if _code_version is None:
        digest = hashlib.sha256()
        for path in sorted(_SRC_ROOT.rglob("*.py")):
            digest.update(str(path.relative_to(_SRC_ROOT)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _code_version = digest.hexdigest()
    return _code_version


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    # src/repro/orchestration -> repo root
    return _SRC_ROOT.parents[1] / ".repro-cache" / "matrix"


class MatrixCache:
    """Pickle-file store of per-cell reports."""

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()

    def key(self, fingerprint: str, version: Optional[str] = None) -> str:
        """Cache key for a cell fingerprint under a code version."""
        version = version if version is not None else code_version()
        digest = hashlib.sha256()
        digest.update(version.encode())
        digest.update(b"\0")
        digest.update(fingerprint.encode())
        return digest.hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def load(self, key: str):
        """The stored report for ``key``, or ``None`` on a miss."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            return None

    def store(self, key: str, report) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "wb") as handle:
            pickle.dump(report, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)  # atomic: parallel writers never tear a file
