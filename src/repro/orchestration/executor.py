"""Deterministic multi-process execution of a scenario matrix.

``run_matrix`` expands a :class:`~repro.orchestration.matrix.MatrixSpec`
(or takes an explicit cell list), skips cells whose ``(spec-hash,
code-version)`` key is already in the result cache, and executes the
rest — serially for ``jobs == 1``, else across worker processes.
Deadline-free parallel runs reuse the shared warm pool from
:mod:`repro.orchestration.pool` (no per-call pool spin-up; the same
pool serves sharded-cluster runs); runs with ``timeout_s`` keep a
dedicated :class:`concurrent.futures.ProcessPoolExecutor`, because
enforcing a deadline can end with the pool's workers terminated.

Determinism contract (tested in ``tests/test_orchestration.py``):

* every cell runs the exact solo code path (``build_run(spec)`` on a
  spec resolved from the cell coordinates), with RNG streams derived
  only from the cell's own ``(scenario, scale, seed)`` — so a cell's
  :class:`~repro.serving.metrics.RunReport` is bit-identical whether it
  runs alone, serially, or in any parallel schedule;
* the :class:`~repro.orchestration.report.MatrixReport` lists cells in
  expansion order regardless of completion order.

Timeout/retry bookkeeping: a job that raises is resubmitted up to
``retries`` times (attempts are recorded per cell).  ``timeout_s`` is
a *run-time* deadline: the clock starts when the job is observed
running (at worst one poll interval after its true start), so queue
wait behind other cells never counts.  An over-deadline job is marked
``timeout`` and its worker slot written off (a worker cannot be
interrupted mid-job, so the processes are terminated once all verdicts
are in — a genuinely hung cell cannot hang the matrix); if every slot
is written off, still-queued cells are abandoned with a timeout
verdict rather than waiting forever.  Timeouts need process execution
— the in-process serial shortcut cannot interrupt a cell — so any
requested ``timeout_s`` routes through the pool, a 1-worker pool when
``jobs == 1``.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Optional, Sequence, Union

from repro.orchestration.cache import MatrixCache, code_version
from repro.orchestration.matrix import Cell, MatrixSpec, spec_fingerprint
from repro.orchestration.report import (
    STATUS_CACHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    CellResult,
    MatrixReport,
)
from repro.serving.metrics import RunReport, aggregate_reports

# How often the parallel loop wakes to check per-job deadlines.
_POLL_S = 0.25


def _execute_cell(cell: Cell) -> "tuple[RunReport, float]":
    """Worker body: build, run, and report one cell.

    Cluster cells are flattened to a single :class:`RunReport` through
    the same :func:`aggregate_reports` fold the cluster's own
    ``report()`` uses, so every cell yields one comparable report.
    """
    t0 = time.perf_counter()
    run = cell.build()
    report = run.execute()
    if run.is_cluster:
        report = aggregate_reports(
            report.per_instance, system=cell.resolve().system
        )
    return report, time.perf_counter() - t0


def run_matrix(
    matrix: Union[MatrixSpec, Sequence[Cell]],
    jobs: Optional[int] = None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    cache: bool = False,
    cache_dir=None,
) -> MatrixReport:
    """Execute every cell of ``matrix`` and return a :class:`MatrixReport`.

    Args:
        matrix: a :class:`MatrixSpec` or an explicit cell sequence.
        jobs: worker processes (default ``os.cpu_count()``, capped at
            the cell count); ``1`` runs serially in-process.
        timeout_s: per-job run-time deadline (measured from observed
            run start, not submission; forces pool execution).
        retries: resubmissions allowed per failing job.
        cache: reuse/store per-cell results keyed on
            ``(spec-hash, code-version)``.
        cache_dir: cache location override (default
            ``.repro-cache/matrix``, or ``REPRO_CACHE_DIR``).
    """
    cells = list(matrix.expand() if isinstance(matrix, MatrixSpec) else matrix)
    if jobs is None:
        jobs = max(1, min(os.cpu_count() or 1, len(cells)))
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")

    store = MatrixCache(cache_dir) if cache else None
    version = code_version()
    t_start = time.perf_counter()

    results: dict = {}  # cell index -> CellResult
    keys: dict = {}     # cell index -> cache key
    misses: list = []   # indices still to execute
    for idx, cell in enumerate(cells):
        if store is None:
            misses.append(idx)
            continue
        key = store.key(spec_fingerprint(cell), version)
        keys[idx] = key
        cached = store.load(key)
        if cached is not None:
            results[idx] = CellResult(
                cell_id=cell.cell_id, status=STATUS_CACHED, report=cached,
                attempts=0, duration_s=0.0, cache_key=key,
            )
        else:
            misses.append(idx)

    # Enforcing timeout_s needs a worker process to abandon, so any
    # requested deadline routes through the pool — even for jobs == 1
    # (a 1-worker pool) or a single miss.  Only deadline-free small
    # batches take the in-process serial shortcut.
    serial = timeout_s is None and (jobs == 1 or len(misses) <= 1)
    if serial:
        for idx in misses:
            results[idx] = _run_serial(cells[idx], retries)
    elif misses:
        if timeout_s is None:
            # No deadline to enforce: run on the shared warm pool
            # (repro.orchestration.pool) instead of paying a pool
            # spin-up per matrix call.  Deadline runs keep their own
            # dedicated pool below — enforcing a timeout can require
            # terminating the workers, which must never take the warm
            # pool down with it.
            _run_parallel_warm(cells, misses, results, jobs, retries)
        else:
            _run_parallel(cells, misses, results, jobs, timeout_s, retries)

    if store is not None:
        for idx in misses:
            result = results[idx]
            if result.status == STATUS_OK and result.report is not None:
                result.cache_key = keys[idx]
                store.store(keys[idx], result.report)

    return MatrixReport(
        cells=[results[idx] for idx in range(len(cells))],
        jobs=jobs,
        wall_s=time.perf_counter() - t_start,
        code_version=version,
    )


def _run_serial(cell: Cell, retries: int) -> CellResult:
    attempts = 0
    while True:
        attempts += 1
        t0 = time.perf_counter()
        try:
            report, duration = _execute_cell(cell)
        except Exception:
            if attempts <= retries:
                continue
            return CellResult(
                cell_id=cell.cell_id, status=STATUS_ERROR,
                error=traceback.format_exc(limit=3).strip(),
                attempts=attempts, duration_s=time.perf_counter() - t0,
            )
        return CellResult(
            cell_id=cell.cell_id, status=STATUS_OK, report=report,
            attempts=attempts, duration_s=duration,
        )


def _run_parallel_warm(
    cells: list,
    misses: list,
    results: dict,
    jobs: int,
    retries: int,
) -> None:
    """Deadline-free parallel execution on the shared warm pool.

    The warm pool may be *larger* than ``jobs`` (sharded-cluster runs
    grow it), so submission is throttled to at most ``jobs`` cells in
    flight — the concurrency contract of ``run_matrix`` does not
    depend on pool size.  A broken pool (a worker died mid-cell) is
    retired via :func:`~repro.orchestration.pool.reset_pool` and the
    attempt retried once on a fresh pool before counting against
    ``retries``-style bookkeeping, so one dead worker costs one
    attempt, not the whole matrix.
    """
    from concurrent.futures import BrokenExecutor

    from repro.orchestration.pool import get_pool, reset_pool

    pool = get_pool(min_workers=jobs)
    pending = list(misses)  # not yet submitted, expansion order
    inflight: dict = {}     # future -> [cell index, attempt, submit time]

    def submit(idx: int, attempt: int) -> bool:
        """Queue an attempt; one fresh-pool retry if the pool is broken."""
        nonlocal pool
        for retried in (False, True):
            try:
                inflight[pool.submit(_execute_cell, cells[idx])] = [
                    idx, attempt, time.monotonic()
                ]
                return True
            except (BrokenExecutor, RuntimeError):
                if retried:
                    return False
                reset_pool()
                pool = get_pool(min_workers=jobs)
        return False

    def record_error(idx: int, attempt: int, started: float,
                     message: str) -> None:
        results[idx] = CellResult(
            cell_id=cells[idx].cell_id, status=STATUS_ERROR,
            error=message, attempts=attempt,
            duration_s=time.monotonic() - started,
        )

    while pending or inflight:
        while pending and len(inflight) < jobs:
            idx = pending.pop(0)
            if not submit(idx, 1):
                record_error(idx, 1, time.monotonic(),
                             "could not submit to worker pool")
        if not inflight:
            continue
        done, _ = wait(set(inflight), return_when=FIRST_COMPLETED)
        for future in done:
            idx, attempt, t_submit = inflight.pop(future)
            try:
                report, duration = future.result()
            except Exception as exc:
                message = f"{type(exc).__name__}: {exc}"
                if isinstance(exc, BrokenExecutor):
                    # The shared pool is unusable for everyone now;
                    # retire it so this loop (and later callers) fork
                    # a fresh one instead of inheriting the corpse.
                    reset_pool()
                    pool = get_pool(min_workers=jobs)
                if attempt > retries or not submit(idx, attempt + 1):
                    record_error(idx, attempt, t_submit, message)
            else:
                results[idx] = CellResult(
                    cell_id=cells[idx].cell_id, status=STATUS_OK,
                    report=report, attempts=attempt, duration_s=duration,
                )


def _run_parallel(
    cells: list,
    misses: list,
    results: dict,
    jobs: int,
    timeout_s: Optional[float],
    retries: int,
) -> None:
    """Fill ``results`` for ``misses`` using a dedicated process pool
    (deadline enforcement may terminate its workers)."""
    from concurrent.futures import BrokenExecutor

    pool = ProcessPoolExecutor(max_workers=jobs)
    # Worker slots held by over-deadline jobs are treated as lost (the
    # worker may be genuinely hung).  Once every slot is lost, queued
    # cells can never start, so they are abandoned instead of being
    # resubmitted forever.
    dead_slots = 0
    try:
        # future -> [cell index, attempt number, submit time,
        #            run start time (None while queued)].
        # The deadline clock starts when the job is *observed running*
        # (at worst one poll interval after it truly started), so queue
        # wait never counts against timeout_s.
        inflight = {
            pool.submit(_execute_cell, cells[idx]):
                [idx, 1, time.monotonic(), None]
            for idx in misses
        }

        def resubmit(idx: int, attempt: int) -> bool:
            """Queue another attempt; False if the pool is unusable
            (a worker died and broke the executor)."""
            try:
                inflight[pool.submit(_execute_cell, cells[idx])] = [
                    idx, attempt, time.monotonic(), None
                ]
                return True
            except (BrokenExecutor, RuntimeError):
                return False

        def record_error(idx: int, attempt: int, started: float,
                         message: str) -> None:
            results[idx] = CellResult(
                cell_id=cells[idx].cell_id, status=STATUS_ERROR,
                error=message, attempts=attempt,
                duration_s=time.monotonic() - started,
            )

        while inflight:
            done, _ = wait(
                set(inflight),
                timeout=_POLL_S if timeout_s is not None else None,
                return_when=FIRST_COMPLETED,
            )
            for future in done:
                idx, attempt, t_submit, _t_run = inflight.pop(future)
                cell = cells[idx]
                try:
                    report, duration = future.result()
                except Exception as exc:
                    message = f"{type(exc).__name__}: {exc}"
                    if attempt > retries or not resubmit(idx, attempt + 1):
                        record_error(idx, attempt, t_submit, message)
                else:
                    results[idx] = CellResult(
                        cell_id=cell.cell_id, status=STATUS_OK, report=report,
                        attempts=attempt, duration_s=duration,
                    )
            if timeout_s is None:
                continue
            now = time.monotonic()
            # Only `jobs` cells can truly execute at once; the rest of
            # the RUNNING-state futures merely sit in the executor's
            # bounded call queue (Future.running() flips when a job is
            # *buffered*, max_workers+1 deep, not when a worker picks
            # it up).  Start at most that many deadline clocks,
            # oldest-submission-first, counting written-off slots as
            # permanently busy — so genuine queue wait never counts
            # against timeout_s.
            executing = dead_slots + sum(
                1 for m in inflight.values() if m[3] is not None
            )
            for future, meta in list(inflight.items()):
                if meta[3] is None:
                    if executing < jobs and future.running():
                        meta[3] = now  # presumed start; clock begins here
                        executing += 1
                    continue
                if now - meta[3] <= timeout_s:
                    continue
                # Running past its deadline: record the timeout and
                # treat the slot as lost.  The worker cannot be
                # interrupted mid-cell; its late result is discarded,
                # and the whole pool is torn down (workers terminated)
                # once every cell has a verdict, so a hung cell cannot
                # hang the matrix.
                dead_slots += 1
                del inflight[future]
                future.add_done_callback(lambda f: f.exception())
                idx = meta[0]
                results[idx] = CellResult(
                    cell_id=cells[idx].cell_id, status=STATUS_TIMEOUT,
                    error=f"exceeded {timeout_s:.1f}s deadline",
                    attempts=meta[1], duration_s=now - meta[3],
                )
            if dead_slots >= jobs and inflight:
                # Every worker slot is held by an over-deadline job:
                # the remaining cells can never start (items buffered
                # in the call queue are not even cancellable), so
                # abandon them all — the pool is torn down and its
                # workers terminated on the way out.
                for future, meta in inflight.items():
                    future.cancel()
                    future.add_done_callback(lambda f: f.exception())
                    results[meta[0]] = CellResult(
                        cell_id=cells[meta[0]].cell_id,
                        status=STATUS_TIMEOUT,
                        error=(f"abandoned: all {jobs} worker slot(s) "
                               f"held by over-deadline jobs"),
                        attempts=meta[1],
                        duration_s=now - meta[2],
                    )
                inflight.clear()
    finally:
        if dead_slots:
            # Don't wait for abandoned workers: drop the queue, kill
            # the worker processes, and reap them.  The worker mapping
            # must be snapshotted *before* shutdown clears it.  (It is
            # a private executor attribute; if it ever disappears we
            # degrade to waiting, which only costs time, not
            # correctness.)
            workers = list((getattr(pool, "_processes", None) or {}).values())
            pool.shutdown(wait=False, cancel_futures=True)
            for proc in workers:
                proc.terminate()
            for proc in workers:
                proc.join(timeout=5.0)
        else:
            pool.shutdown(wait=True)
