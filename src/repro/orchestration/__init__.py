"""Scenario-matrix orchestration.

Expands a :class:`~repro.orchestration.matrix.MatrixSpec` — scenarios
× routers × replica-counts × seeds — into independent jobs, runs them
across worker processes with per-job timeout/retry bookkeeping and a
``(spec-hash, code-version)`` result cache, and folds the per-cell
reports into one :class:`~repro.orchestration.report.MatrixReport`.

Every cell executes the exact solo ``build_run`` code path, so matrix
results are bit-identical to standalone ``repro run`` invocations of
the same cell.  Entry points: ``repro matrix`` (CLI),
:func:`repro.scenarios.build.run_matrix` (library), and the batch
paths of :mod:`repro.experiments.runner` and the figure sweeps.
"""

from repro.orchestration.cache import MatrixCache, code_version
from repro.orchestration.executor import run_matrix
from repro.orchestration.matrix import (
    Cell,
    InlineCell,
    MatrixCell,
    MatrixSpec,
    spec_fingerprint,
)
from repro.orchestration.report import CellResult, MatrixReport

__all__ = [
    "Cell",
    "CellResult",
    "InlineCell",
    "MatrixCache",
    "MatrixCell",
    "MatrixReport",
    "MatrixSpec",
    "code_version",
    "run_matrix",
    "spec_fingerprint",
]
