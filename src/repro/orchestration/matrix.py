"""Matrix-of-scenarios specification and job expansion.

A :class:`MatrixSpec` names an experiment *matrix* — scenarios ×
routers × replica-counts × seeds — and expands it into independent
:class:`MatrixCell` jobs.  Each cell is a plain value object (no
callables, no built systems), so it pickles cleanly into a worker
process and resolves to exactly the same :class:`ScenarioSpec` that a
solo ``repro run`` would build: a cell run inside the matrix is
bit-identical to the same cell run alone.

Seeding: a cell's workload RNG is derived from ``(scenario name,
scale, seed)`` alone — the registry builder feeds the seed into
:class:`~repro.sim.rng.RngStreams`, which derives per-consumer streams
from the root seed and stable stream-name hashes.  Nothing about the
matrix (cell order, worker id, sibling cells) enters the derivation,
which is what makes solo and in-matrix runs reproduce each other.

:class:`InlineCell` covers the other batch shape in the repo: several
systems (or parameter settings) racing on one *explicit* shared
workload, as ``run_comparison`` and the figure sweeps do.  It carries
a fully-resolved workloadless :class:`ScenarioSpec` plus the request
list itself.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from repro.scenarios.build import ScenarioRun, build_run
from repro.scenarios.registry import get_scenario, scenario_names
from repro.scenarios.spec import ScenarioSpec
from repro.serving.routers import ROUTERS


def _known_system_names() -> set:
    """Every system name :func:`build_system` resolves.

    Imported lazily: the experiments package pulls in the runner stack,
    which routes back through the scenarios layer at import time.
    """
    from repro.experiments.systems import (
        ABLATION_NAMES,
        EXTRA_SYSTEM_NAMES,
        SYSTEM_NAMES,
    )

    return set(SYSTEM_NAMES) | set(EXTRA_SYSTEM_NAMES) | set(ABLATION_NAMES)


@dataclass(frozen=True)
class MatrixCell:
    """One registry-scenario job of the matrix.

    ``router`` / ``replicas`` / ``system`` of ``None`` keep the
    scenario's own default, so a bare one-axis matrix reproduces the
    registered scenarios exactly.
    """

    scenario: str
    seed: int = 0
    scale: float = 1.0
    router: Optional[str] = None
    replicas: Optional[int] = None
    system: Optional[str] = None
    shards: Optional[int] = None

    @property
    def cell_id(self) -> str:
        """Stable human-readable identifier (report rows, cache keys)."""
        parts = [self.scenario]
        if self.system is not None:
            parts.append(f"sys={self.system}")
        if self.router is not None:
            parts.append(f"router={self.router}")
        if self.replicas is not None:
            parts.append(f"replicas={self.replicas}")
        if self.shards is not None:
            parts.append(f"shards={self.shards}")
        parts.append(f"seed={self.seed}")
        if self.scale != 1.0:
            parts.append(f"scale={self.scale:g}")
        return "/".join(parts)

    def overrides(self) -> dict:
        out: dict = {}
        if self.router is not None:
            out["router"] = self.router
        if self.replicas is not None:
            out["replicas"] = self.replicas
        if self.system is not None:
            out["system"] = self.system
        if self.shards is not None:
            out["shards"] = self.shards
        return out

    def resolve(self) -> ScenarioSpec:
        """The exact spec a solo ``repro run`` of this cell would build."""
        return get_scenario(
            self.scenario, scale=self.scale, seed=self.seed, **self.overrides()
        )

    def build(self) -> ScenarioRun:
        return build_run(self.resolve())


@dataclass(frozen=True)
class InlineCell:
    """One ad-hoc job: a resolved spec plus its explicit workload.

    Used by the comparison/sweep migrations, where every cell shares
    one request list built once by the caller.  ``spec.workload`` must
    be ``None`` (callables do not pickle); the requests ride along
    instead.
    """

    spec: ScenarioSpec
    requests: tuple
    label: str = ""

    def __post_init__(self) -> None:
        if self.spec.workload is not None:
            raise ValueError(
                "InlineCell specs must be workloadless (callables do not "
                "pickle across processes); pass the requests explicitly"
            )

    @property
    def cell_id(self) -> str:
        return self.label or self.spec.name or self.spec.system

    def resolve(self) -> ScenarioSpec:
        return self.spec

    def build(self) -> ScenarioRun:
        return build_run(self.spec, requests=list(self.requests))


Cell = Union[MatrixCell, InlineCell]


@dataclass(frozen=True)
class MatrixSpec:
    """A scenarios × routers × replicas × shards × seeds matrix.

    Axis values of ``None`` (inside ``routers`` / ``replicas`` /
    ``systems``) keep each scenario's registered default.  ``expand``
    order is the deterministic nested-loop order of the axes as given;
    reports preserve it regardless of job completion order.
    """

    scenarios: Tuple[str, ...]
    routers: Tuple[Optional[str], ...] = (None,)
    replicas: Tuple[Optional[int], ...] = (None,)
    seeds: Tuple[int, ...] = (0,)
    systems: Tuple[Optional[str], ...] = (None,)
    shards: Tuple[Optional[int], ...] = (None,)
    scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError("matrix needs at least one scenario")
        for axis in ("routers", "replicas", "seeds", "systems", "shards"):
            if not getattr(self, axis):
                raise ValueError(f"matrix axis {axis!r} must be non-empty")
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        known = set(scenario_names())
        unknown = [name for name in self.scenarios if name not in known]
        if unknown:
            raise KeyError(
                f"unknown scenario(s) {unknown}; known: {sorted(known)}"
            )
        # Pre-flight the remaining axes too: a typo'd system or a
        # non-positive replica count should be a usage error here, not
        # N per-cell worker failures (times retries) at run time.
        for n_replicas in self.replicas:
            if n_replicas is not None and n_replicas <= 0:
                raise ValueError(
                    f"replicas must be positive, got {n_replicas}"
                )
        for n_shards in self.shards:
            if n_shards is not None and n_shards <= 0:
                raise ValueError(f"shards must be positive, got {n_shards}")
        for seed in self.seeds:
            if seed < 0:
                raise ValueError(f"seeds must be non-negative, got {seed}")
        for router in self.routers:
            if router is not None and router not in ROUTERS:
                raise ValueError(
                    f"unknown router {router!r}; known: {sorted(ROUTERS)}"
                )
        known_systems = _known_system_names()
        for system in self.systems:
            if system is not None and system not in known_systems:
                raise KeyError(
                    f"unknown system {system!r}; known: "
                    f"{sorted(known_systems)}"
                )

    @classmethod
    def from_axes(
        cls,
        scenarios: Optional[Sequence[str]] = None,
        routers: Optional[Sequence[str]] = None,
        replicas: Optional[Sequence[int]] = None,
        seeds: Optional[Sequence[int]] = None,
        systems: Optional[Sequence[str]] = None,
        shards: Optional[Sequence[int]] = None,
        scale: float = 1.0,
    ) -> "MatrixSpec":
        """Build from CLI-style axis lists (None = default axis)."""
        return cls(
            scenarios=tuple(scenarios) if scenarios else tuple(scenario_names()),
            routers=tuple(routers) if routers else (None,),
            replicas=tuple(int(n) for n in replicas) if replicas else (None,),
            seeds=tuple(int(s) for s in seeds) if seeds else (0,),
            systems=tuple(systems) if systems else (None,),
            shards=tuple(int(k) for k in shards) if shards else (None,),
            scale=scale,
        )

    @property
    def n_cells(self) -> int:
        return (len(self.scenarios) * len(self.systems) * len(self.routers)
                * len(self.replicas) * len(self.shards) * len(self.seeds))

    def expand(self) -> list:
        """The matrix as a deterministic list of :class:`MatrixCell`."""
        return [
            MatrixCell(
                scenario=scenario,
                system=system,
                router=router,
                replicas=n_replicas,
                shards=n_shards,
                seed=seed,
                scale=self.scale,
            )
            for scenario, system, router, n_replicas, n_shards, seed
            in itertools.product(
                self.scenarios, self.systems, self.routers,
                self.replicas, self.shards, self.seeds,
            )
        ]


def spec_fingerprint(cell: Cell) -> str:
    """A stable textual fingerprint of everything that determines a
    cell's result (used with the code version as the cache key).

    Built from the *resolved* spec, so e.g. a scenario builder changing
    its default router or memory fraction changes the fingerprint even
    when the cell coordinates look the same.
    """
    spec = cell.resolve()
    fields = {
        name: _stable(getattr(spec, name))
        for name in sorted(f.name for f in dataclasses.fields(spec))
        if name != "workload"
    }
    parts = [f"cell={cell.cell_id}", f"spec={fields!r}"]
    if isinstance(cell, InlineCell):
        workload = tuple(
            (r.req_id, r.arrival_time, r.prompt_len, r.output_len, r.rate,
             r.is_agent, r.session_id)
            for r in cell.requests
        )
        parts.append(f"requests={workload!r}")
    else:
        # Registry cells re-derive their workload from (name, scale,
        # seed), all of which are in the resolved spec already.
        parts.append("requests=registry")
    return "\n".join(parts)


def _stable(value) -> str:
    """Deterministic repr for spec field values (dataclasses included)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        inner = {
            f.name: _stable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return f"{type(value).__name__}({inner!r})"
    if isinstance(value, (tuple, list)):
        return repr([_stable(v) for v in value])
    if isinstance(value, dict):
        return repr({str(k): _stable(v) for k, v in sorted(value.items())})
    if isinstance(value, (int, float, str, bool)) or value is None:
        return repr(value)
    return f"{type(value).__name__}:{value!r}"
