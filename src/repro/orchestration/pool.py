"""Warm process-pool plumbing shared across parallel runs.

Spinning a ``ProcessPoolExecutor`` (and a ``multiprocessing.Manager``
for cross-process queues) per call costs fork + interpreter warm-up on
every matrix invocation and every sharded-cluster run.  This module
keeps ONE warm pool and ONE manager per process, handed out on demand:

* :func:`get_pool` returns the warm executor, transparently growing it
  (by recreation, only when idle between runs) when a caller needs
  more concurrent workers than it was built with — sharded clusters
  need all ``K`` long-lived shard loops resident at once, so a pool
  smaller than ``K`` would deadlock.
* :func:`get_manager` returns the shared queue server used by the
  shard transport (queue proxies pickle into pool tasks; raw
  ``multiprocessing`` queues do not).
* :func:`reset_pool` tears both down.  Tests that monkeypatch code the
  forked workers must see call it to force a re-fork, and the matrix
  executor calls it when the pool comes back broken so the next run
  starts from a clean pool instead of inheriting the corpse.

Pool workers are forked processes: they inherit the parent's imported
modules at creation time, which is exactly what the deterministic
simulation needs (no per-task re-import, no spawn-time module skew).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Optional

_pool: Optional[ProcessPoolExecutor] = None
_pool_workers: int = 0
_manager = None
_owner_pid: int = 0


def _disown_inherited() -> None:
    """Drop pool/manager globals inherited through ``fork``.

    A pool worker forks with the parent's module state, including a
    non-None ``_pool`` whose queues and management thread only exist
    in the parent — submitting to it from the child deadlocks (the
    sharded cluster inside a matrix worker hits exactly this).  The
    child must start its own pool; the parent's is not ours to shut
    down, so just drop the references.
    """
    global _pool, _pool_workers, _manager
    if _owner_pid != os.getpid():
        _pool = None
        _pool_workers = 0
        _manager = None


def get_pool(min_workers: int = 1) -> ProcessPoolExecutor:
    """Return the warm executor, with at least ``min_workers`` workers.

    Growing recreates the pool at the larger size (sizes never shrink,
    so repeated mixed-size callers settle on the largest requirement
    and stay warm from then on).  Callers must not assume exclusive
    use: submit tasks and throttle in-flight work yourself if you need
    a concurrency bound below the pool size.
    """
    global _pool, _pool_workers, _owner_pid
    if min_workers < 1:
        raise ValueError(f"min_workers must be positive, got {min_workers}")
    _disown_inherited()
    if _pool is None or _pool_workers < min_workers:
        if _pool is not None:
            _pool.shutdown(wait=True)
        _pool_workers = max(min_workers, _pool_workers)
        _pool = ProcessPoolExecutor(max_workers=_pool_workers)
        _owner_pid = os.getpid()
    return _pool


def get_manager():
    """Return the shared ``multiprocessing.Manager`` (lazily started)."""
    global _manager, _owner_pid
    _disown_inherited()
    if _manager is None:
        _manager = multiprocessing.Manager()
        _owner_pid = os.getpid()
    return _manager


def pool_workers() -> int:
    """Current warm-pool size (0 when no pool is alive)."""
    return _pool_workers if _pool is not None else 0


# --- message batching ---------------------------------------------------
#
# Manager-queue puts pay one proxy round-trip (pickle + socket) each.
# Protocol steps that emit several messages to the same worker
# back-to-back (a sharded coordination round flushes buffered
# placements and then pauses, in one breath) fold them into a single
# envelope so the queue is touched once per worker per round.

BATCH_KIND = "batch"


def pack_messages(msgs: list):
    """Fold ``msgs`` into one queue payload (unwrapped single message,
    or a ``(BATCH_KIND, msgs)`` envelope for more than one)."""
    if len(msgs) == 1:
        return msgs[0]
    return (BATCH_KIND, list(msgs))


def iter_messages(payload):
    """Yield the protocol messages inside one queue payload."""
    if payload and payload[0] == BATCH_KIND:
        for msg in payload[1]:
            yield msg
    else:
        yield payload


def reset_pool() -> None:
    """Tear down the warm pool and manager.

    The next :func:`get_pool` / :func:`get_manager` call starts fresh
    processes — use after breaking the pool (dead workers) or before
    monkeypatching module code that forked workers must observe.
    """
    global _pool, _pool_workers, _manager
    _disown_inherited()
    if _pool is not None:
        _pool.shutdown(wait=False, cancel_futures=True)
    _pool = None
    _pool_workers = 0
    if _manager is not None:
        _manager.shutdown()
    _manager = None
