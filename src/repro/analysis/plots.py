"""ASCII charts for terminal-friendly figure rendering.

The paper's figures are line charts; benches and examples render their
data as tables plus these lightweight ASCII plots, so "the same series
the paper plots" is visible directly in test logs.
"""

from __future__ import annotations

from typing import Sequence


def ascii_sparkline(values: Sequence, width: int = 60) -> str:
    """One-line sparkline of a series (resampled to ``width``)."""
    ticks = "▁▂▃▄▅▆▇█"
    data = [float(v) for v in values]
    if not data:
        return ""
    if len(data) > width:
        # Average-pool down to the target width.
        stride = len(data) / width
        data = [
            sum(data[int(i * stride):max(int(i * stride) + 1, int((i + 1) * stride))])
            / max(1, len(data[int(i * stride):max(int(i * stride) + 1, int((i + 1) * stride))]))
            for i in range(width)
        ]
    low, high = min(data), max(data)
    span = high - low
    if span <= 0:
        return ticks[0] * len(data)
    return "".join(ticks[min(7, int((v - low) / span * 8))] for v in data)


def ascii_chart(
    series: dict,
    height: int = 12,
    width: int = 64,
    title: str = "",
    y_label: str = "",
) -> str:
    """Multi-series ASCII line chart.

    Args:
        series: {name: sequence of y values}; all series share an
            implicit x axis and are resampled to ``width`` columns.
        height: plot rows.
        width: plot columns.
    """
    if not series:
        raise ValueError("need at least one series")
    if height < 2 or width < 8:
        raise ValueError("chart too small")
    markers = "*o+x#@%&"
    resampled: dict = {}
    for name, values in series.items():
        data = [float(v) for v in values]
        if not data:
            raise ValueError(f"series {name!r} is empty")
        if len(data) >= width:
            stride = len(data) / width
            data = [data[min(len(data) - 1, int(i * stride))] for i in range(width)]
        else:
            # Stretch short series across the full width.
            data = [
                data[min(len(data) - 1, int(i * len(data) / width))]
                for i in range(width)
            ]
        resampled[name] = data

    low = min(min(d) for d in resampled.values())
    high = max(max(d) for d in resampled.values())
    span = high - low if high > low else 1.0
    grid = [[" "] * width for _ in range(height)]
    for idx, (name, data) in enumerate(resampled.items()):
        marker = markers[idx % len(markers)]
        for col, value in enumerate(data):
            row = height - 1 - int((value - low) / span * (height - 1))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{high:10.1f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{low:10.1f} ┤" + "".join(grid[-1]))
    legend = "   ".join(
        f"{markers[idx % len(markers)]}={name}" for idx, name in enumerate(resampled)
    )
    lines.append(" " * 12 + legend + (f"   ({y_label})" if y_label else ""))
    return "\n".join(lines)
