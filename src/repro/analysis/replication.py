"""Multi-seed replication: run an experiment across seeds, aggregate.

Single-seed comparisons can flatter either side; the paper reports
averages over repeated runs.  :func:`replicate` drives any
seed-parameterised experiment function across seeds and aggregates
each numeric metric into mean / std / min / max, with a paired
win-rate helper for A/B claims ("TokenFlow beats SGLang on TTFT in
k of n seeds").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class MetricAggregate:
    """Across-seed summary of one scalar metric."""

    name: str
    mean: float
    std: float
    minimum: float
    maximum: float
    n: int

    def as_row(self) -> list:
        return [self.name, round(self.mean, 3), round(self.std, 3),
                round(self.minimum, 3), round(self.maximum, 3), self.n]


def replicate(
    experiment: Callable[[int], dict],
    seeds: Sequence,
) -> dict:
    """Run ``experiment(seed) -> {metric: value}`` across seeds.

    Returns {metric: MetricAggregate}.  Metrics missing from some
    seeds, or non-numeric, are skipped.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    samples: dict = {}
    for seed in seeds:
        result = experiment(int(seed))
        for name, value in result.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            samples.setdefault(name, []).append(float(value))
    aggregates: dict = {}
    for name, values in samples.items():
        data = np.asarray(values)
        aggregates[name] = MetricAggregate(
            name=name,
            mean=float(data.mean()),
            std=float(data.std()),
            minimum=float(data.min()),
            maximum=float(data.max()),
            n=int(data.size),
        )
    return aggregates


def paired_win_rate(
    experiment: Callable[[int], tuple],
    seeds: Sequence,
    lower_is_better: bool = False,
) -> float:
    """Fraction of seeds where candidate beats baseline.

    ``experiment(seed)`` returns ``(candidate_value, baseline_value)``.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    wins = 0
    for seed in seeds:
        candidate, baseline = experiment(int(seed))
        if lower_is_better:
            wins += candidate < baseline
        else:
            wins += candidate > baseline
    return wins / len(seeds)


def report_metrics(report) -> dict:
    """Extract the scalar metrics of a RunReport for replication."""
    return {
        "throughput": report.throughput,
        "effective_throughput": report.effective_throughput,
        "ttft_mean": report.ttft_mean,
        "ttft_p50": report.ttft_p50,
        "ttft_p99": report.ttft_p99,
        "stall_total": report.stall_total,
        "qos": report.qos,
        "preemptions": report.preemptions,
    }
