"""ASCII rendering for bench output (tables and series).

The benchmark harness prints the same rows/series the paper's tables
and figures report; these helpers keep that output aligned and
readable in test logs.
"""

from __future__ import annotations

from typing import Sequence


def format_number(value, digits: int = 3) -> str:
    """Compact numeric formatting for table cells."""
    if isinstance(value, str):
        return value
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    magnitude = abs(value)
    if magnitude != 0 and (magnitude >= 1e5 or magnitude < 1e-3):
        return f"{value:.{digits}e}"
    return f"{value:.{digits}f}"


def render_table(headers: Sequence, rows: Sequence, title: str = "") -> str:
    """Render rows as a fixed-width ASCII table."""
    str_rows = [[format_number(cell) for cell in row] for row in rows]
    str_headers = [str(h) for h in headers]
    widths = [len(h) for h in str_headers]
    for row in str_rows:
        if len(row) != len(str_headers):
            raise ValueError("row width does not match header width")
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(str_headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    name: str, xs: Sequence, ys: Sequence, x_label: str = "x", y_label: str = "y"
) -> str:
    """Render an (x, y) series as aligned two-column text."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    rows = [(x, y) for x, y in zip(xs, ys)]
    return render_table([x_label, y_label], rows, title=name)
