"""Reporting helpers: summary statistics, ASCII tables, and charts."""

from repro.analysis.compare import (
    Delta,
    compare_reports,
    improvement_matrix,
    render_comparison,
)
from repro.analysis.plots import ascii_chart, ascii_sparkline
from repro.analysis.replication import (
    MetricAggregate,
    paired_win_rate,
    replicate,
    report_metrics,
)
from repro.analysis.stats import Summary, percentile, summarize
from repro.analysis.tables import format_number, render_series, render_table

__all__ = [
    "Delta",
    "compare_reports",
    "improvement_matrix",
    "render_comparison",
    "ascii_chart",
    "ascii_sparkline",
    "MetricAggregate",
    "paired_win_rate",
    "replicate",
    "report_metrics",
    "percentile",
    "summarize",
    "Summary",
    "render_table",
    "render_series",
    "format_number",
]
