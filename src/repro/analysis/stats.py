"""Summary statistics used across metrics and benches."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def percentile(values: Sequence, q: float) -> float:
    """Linear-interpolated percentile; q in [0, 100]."""
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("cannot take a percentile of no data")
    return float(np.percentile(data, q))


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    p50: float
    p99: float
    minimum: float
    maximum: float


def summarize(values: Sequence) -> Summary:
    """Mean / P50 / P99 / min / max of a non-empty sample."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        count=int(data.size),
        mean=float(data.mean()),
        p50=float(np.percentile(data, 50)),
        p99=float(np.percentile(data, 99)),
        minimum=float(data.min()),
        maximum=float(data.max()),
    )
