"""Comparison utilities over run reports.

Benches and the CLI repeatedly compute "TokenFlow vs baseline" deltas;
this module centralises that arithmetic: pairwise improvement
summaries, a full improvement matrix across systems, and a rendered
comparison table with the deltas the paper's prose quotes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.tables import render_table

# Metric name -> (attribute, lower_is_better)
HEADLINE_METRICS = {
    "effective_throughput": ("effective_throughput", False),
    "throughput": ("throughput", False),
    "ttft_mean": ("ttft_mean", True),
    "ttft_p99": ("ttft_p99", True),
    "stall_total": ("stall_total", True),
    "qos": ("qos", False),
}


@dataclass(frozen=True)
class Delta:
    """One metric's candidate-vs-baseline relation."""

    metric: str
    candidate: float
    baseline: float
    lower_is_better: bool

    @property
    def ratio(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.candidate > 0 else 1.0
        return self.candidate / self.baseline

    @property
    def improvement(self) -> float:
        """Positive = candidate better, as a fraction.

        For lower-is-better metrics this is the reduction
        (1 − candidate/baseline); otherwise the gain
        (candidate/baseline − 1).
        """
        if self.lower_is_better:
            return 1.0 - self.ratio
        return self.ratio - 1.0

    @property
    def improved(self) -> bool:
        return self.improvement > 0


def compare_reports(candidate, baseline) -> dict:
    """{metric: Delta} for the headline metrics of two RunReports."""
    deltas: dict = {}
    for name, (attribute, lower) in HEADLINE_METRICS.items():
        deltas[name] = Delta(
            metric=name,
            candidate=float(getattr(candidate, attribute)),
            baseline=float(getattr(baseline, attribute)),
            lower_is_better=lower,
        )
    return deltas


def improvement_matrix(reports: dict, baseline: str) -> dict:
    """{system: {metric: improvement}} against one baseline."""
    if baseline not in reports:
        raise KeyError(f"baseline {baseline!r} not among reports")
    base = reports[baseline]
    matrix: dict = {}
    for name, report in reports.items():
        if name == baseline:
            continue
        matrix[name] = {
            metric: delta.improvement
            for metric, delta in compare_reports(report, base).items()
        }
    return matrix


def render_comparison(
    reports: dict,
    baseline: str,
    metrics: Sequence = ("effective_throughput", "ttft_mean", "ttft_p99",
                         "throughput"),
    title: str = "",
) -> str:
    """Comparison table with percentage deltas against the baseline."""
    matrix = improvement_matrix(reports, baseline)
    rows = []
    for system, deltas in matrix.items():
        rows.append(
            [system] + [f"{deltas[m] * 100:+.1f}%" for m in metrics]
        )
    return render_table(
        ["system vs " + baseline] + list(metrics),
        rows,
        title=title or f"Improvements over {baseline}",
    )
