"""Roofline calibration checks against published serving numbers.

The substitution argument (DESIGN.md §2) holds only if the latency
model lands in the right *regimes*: single-stream decode speeds in the
published ballpark, batch scaling saturating where memory bandwidth
says it must, prefill far faster per token than decode, and PCIe
transfers cheaper than recompute for contexts past a small crossover.
This module computes those checkpoints so tests (and users picking
custom specs) can verify a hardware/model pairing behaves sanely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.hardware import HardwareSpec
from repro.gpu.latency import LatencyModel
from repro.gpu.models import ModelSpec


@dataclass(frozen=True)
class CalibrationReport:
    """Key operating points of one (hardware, model) pairing."""

    hardware: str
    model: str
    single_stream_tok_s: float       # decode speed, batch 1, ctx 512
    batch32_tok_s: float             # decode throughput, batch 32
    batch_scaling: float             # batch32 / single-stream
    prefill_tok_s: float             # prefill rate on a 2k prompt
    prefill_to_decode_ratio: float   # per-token prefill vs decode cost
    load_vs_recompute_crossover: int  # ctx tokens where load wins
    weights_fit: bool                # weights fit in device memory

    def rows(self) -> list:
        return [
            ["single-stream decode (tok/s)", round(self.single_stream_tok_s, 1)],
            ["batch-32 decode (tok/s)", round(self.batch32_tok_s, 1)],
            ["batch-32 scaling (x)", round(self.batch_scaling, 1)],
            ["prefill rate (tok/s)", round(self.prefill_tok_s, 0)],
            ["prefill/decode per-token speedup", round(self.prefill_to_decode_ratio, 1)],
            ["load-beats-recompute from ctx", self.load_vs_recompute_crossover],
            ["weights fit in memory", self.weights_fit],
        ]


def _load_recompute_crossover(latency: LatencyModel, limit: int = 65536) -> int:
    """Smallest context where loading KV beats recomputing it.

    With compute-bound prefill and bandwidth-bound PCIe both linear in
    context length, the comparison is scale-free; the fixed prefill
    iteration overhead is what loading must amortise, so the crossover
    sits at small contexts. Returns ``limit`` if recompute always wins.
    """
    low, high = 1, limit
    if latency.transfer_time(high) >= latency.recompute_time(high):
        return limit
    while low < high:
        mid = (low + high) // 2
        if latency.transfer_time(mid) < latency.recompute_time(mid):
            high = mid
        else:
            low = mid + 1
    return low


def calibrate(hardware: HardwareSpec, model: ModelSpec) -> CalibrationReport:
    """Compute the calibration checkpoints for one pairing."""
    latency = LatencyModel(hardware, model)
    single = 1.0 / latency.decode_step_time([512])
    batch32 = latency.decode_throughput(32, 512)
    prefill_time = latency.prefill_time([2048])
    prefill_rate = 2048.0 / prefill_time if prefill_time > 0 else float("inf")
    decode_per_token = latency.decode_step_time([2048])
    prefill_per_token = prefill_time / 2048.0
    return CalibrationReport(
        hardware=hardware.name,
        model=model.name,
        single_stream_tok_s=single,
        batch32_tok_s=batch32,
        batch_scaling=batch32 / single if single > 0 else float("inf"),
        prefill_tok_s=prefill_rate,
        prefill_to_decode_ratio=decode_per_token / prefill_per_token,
        load_vs_recompute_crossover=_load_recompute_crossover(latency),
        weights_fit=model.weight_bytes < hardware.mem_capacity_bytes,
    )


def sanity_check(report: CalibrationReport) -> list:
    """Return a list of violated expectations (empty = healthy).

    Thresholds encode what any credible LLM-serving deployment shows:
    meaningful batch scaling, prefill ≫ decode per token, and a
    load-vs-recompute crossover well below typical context lengths.
    """
    problems: list = []
    if not report.weights_fit:
        problems.append("model weights exceed device memory")
    if report.single_stream_tok_s < 5.0:
        problems.append(
            f"single-stream decode {report.single_stream_tok_s:.1f} tok/s "
            "is implausibly slow"
        )
    if report.batch_scaling < 4.0:
        problems.append(
            f"batch-32 scaling {report.batch_scaling:.1f}x is too flat "
            "(decode should be bandwidth-bound at small batch)"
        )
    if report.prefill_to_decode_ratio < 10.0:
        problems.append(
            "prefill is not clearly cheaper per token than decode"
        )
    if report.load_vs_recompute_crossover > 8192:
        problems.append(
            "KV loading never beats recompute below 8k context — PCIe "
            "or prefill calibration is off"
        )
    return problems
