"""Hardware specifications for the GPUs used in the paper's evaluation.

Numbers are public datasheet values: dense FP16/BF16 tensor throughput
(no sparsity), HBM/GDDR bandwidth, device memory, and host-link
bandwidth.  Efficiency factors fold in the usual gap between datasheet
peaks and achieved LLM-serving numbers (kernel launch overheads,
attention inefficiency, non-overlapped PCIe setup, ...).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HardwareSpec:
    """A single accelerator + host link.

    Attributes:
        name: canonical identifier (lowercase).
        fp16_tflops: dense FP16/BF16 tensor throughput, TFLOP/s.
        mem_bandwidth_gbps: device memory bandwidth, GB/s.
        mem_capacity_gb: device memory capacity, GB.
        pcie_bandwidth_gbps: effective host-link bandwidth per
            direction, GB/s (links are full duplex).
        compute_efficiency: fraction of peak FLOPs achieved on
            prefill-style GEMMs.
        bandwidth_efficiency: fraction of peak memory bandwidth
            achieved on decode-style weight/KV streaming.
        iteration_overhead_s: fixed per-iteration launch/scheduling
            overhead in seconds.
    """

    name: str
    fp16_tflops: float
    mem_bandwidth_gbps: float
    mem_capacity_gb: float
    pcie_bandwidth_gbps: float
    compute_efficiency: float = 0.50
    bandwidth_efficiency: float = 0.75
    iteration_overhead_s: float = 0.002

    def __post_init__(self) -> None:
        for field_name in (
            "fp16_tflops",
            "mem_bandwidth_gbps",
            "mem_capacity_gb",
            "pcie_bandwidth_gbps",
        ):
            value = getattr(self, field_name)
            if value <= 0:
                raise ValueError(f"{field_name} must be positive, got {value}")
        if not 0 < self.compute_efficiency <= 1:
            raise ValueError("compute_efficiency must be in (0, 1]")
        if not 0 < self.bandwidth_efficiency <= 1:
            raise ValueError("bandwidth_efficiency must be in (0, 1]")

    @property
    def effective_flops(self) -> float:
        """Achievable FLOP/s on large GEMMs."""
        return self.fp16_tflops * 1e12 * self.compute_efficiency

    @property
    def effective_mem_bandwidth(self) -> float:
        """Achievable device-memory bytes/s."""
        return self.mem_bandwidth_gbps * 1e9 * self.bandwidth_efficiency

    @property
    def mem_capacity_bytes(self) -> int:
        return int(self.mem_capacity_gb * 1e9)

    @property
    def pcie_bytes_per_s(self) -> float:
        return self.pcie_bandwidth_gbps * 1e9


# RTX 4090: 82.6 TFLOPs FP16 (dense tensor), 1008 GB/s GDDR6X, 24 GB,
# PCIe 4.0 x16 (~25 GB/s effective).
# A6000 (Ampere): 77.4 -> use 155 TFLOPs w/ TF32? Datasheet FP16 tensor
# dense is 154.8 with sparsity off at 77.4; we use 77.4. 768 GB/s, 48 GB.
# H200: 989 TFLOPs BF16 dense, 4.8 TB/s HBM3e, 141 GB, PCIe 5.0 x16
# (~50 GB/s effective).
# Ascend 910B: ~376 TFLOPs FP16, ~1.6 TB/s, 64 GB, PCIe 4.0.
HARDWARE_SPECS: dict[str, HardwareSpec] = {
    "rtx4090": HardwareSpec(
        name="rtx4090",
        fp16_tflops=82.6,
        mem_bandwidth_gbps=1008.0,
        mem_capacity_gb=24.0,
        pcie_bandwidth_gbps=25.0,
    ),
    "a6000": HardwareSpec(
        name="a6000",
        fp16_tflops=77.4,
        mem_bandwidth_gbps=768.0,
        mem_capacity_gb=48.0,
        pcie_bandwidth_gbps=25.0,
    ),
    "h200": HardwareSpec(
        name="h200",
        fp16_tflops=989.0,
        mem_bandwidth_gbps=4800.0,
        mem_capacity_gb=141.0,
        pcie_bandwidth_gbps=50.0,
    ),
    "ascend910b": HardwareSpec(
        name="ascend910b",
        fp16_tflops=376.0,
        mem_bandwidth_gbps=1600.0,
        mem_capacity_gb=64.0,
        pcie_bandwidth_gbps=25.0,
    ),
}


def get_hardware(name: str) -> HardwareSpec:
    """Look up a hardware spec by (case-insensitive) name."""
    key = name.lower().replace("-", "").replace("_", "").replace(" ", "")
    if key not in HARDWARE_SPECS:
        known = ", ".join(sorted(HARDWARE_SPECS))
        raise KeyError(f"unknown hardware {name!r}; known: {known}")
    return HARDWARE_SPECS[key]
